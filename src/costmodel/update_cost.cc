#include "costmodel/update_cost.h"

#include <cmath>

#include "common/math_util.h"
#include "costmodel/yao.h"

namespace spatialjoin {

UpdateCosts ComputeUpdateCosts(const ModelParameters& params) {
  UpdateCosts costs;
  const double k = params.k;
  const double n_tuples = static_cast<double>(params.N());
  const double m = static_cast<double>(params.m());
  const double pages = static_cast<double>(params.RelationPages());

  costs.u_i = 0.0;

  // Expected height of the new object: (1/N)·Σ_{i=1..n} i·k^i.
  double expected_height = 0.0;
  for (int i = 1; i <= params.n; ++i) {
    expected_height += static_cast<double>(i) * params.NodesAtHeight(i);
  }
  expected_height /= n_tuples;

  // Per level: k/2 child tests; unclustered trees pay a Yao-number of
  // random page fetches for those k/2 nodes, clustered trees only
  // (k/2)/m sequential page fetches.
  double compute_per_level = k / 2.0 * params.c_u;
  double io_unclustered =
      Yao(std::ceil(k / 2.0), pages, n_tuples) * params.c_io;
  double io_clustered = k / (2.0 * m) * params.c_io;

  costs.u_iia = (compute_per_level + io_unclustered) * expected_height;
  costs.u_iib = (compute_per_level + io_clustered) * expected_height;

  // Join indices maintained for all T spatial tuples in the database.
  costs.u_iii = static_cast<double>(params.T) *
                (params.c_u + params.c_io / m);
  return costs;
}

}  // namespace spatialjoin
