#ifndef SPATIALJOIN_COSTMODEL_REPORT_H_
#define SPATIALJOIN_COSTMODEL_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace spatialjoin {

/// Logarithmically spaced values in [lo, hi] inclusive, for selectivity
/// sweeps along the paper's log-scaled x axes.
std::vector<double> LogSpace(double lo, double hi, int count);

/// A simple column-aligned numeric table, used by the figure benches to
/// print the same series the paper plots (one row per selectivity).
class TableReport {
 public:
  explicit TableReport(std::vector<std::string> column_names);

  /// Appends a row; must have one value per column.
  void AddRow(const std::vector<double>& values);

  /// Prints the header and all rows in scientific notation.
  void Print(std::ostream& os) const;

  size_t num_rows() const { return rows_.size(); }
  const std::vector<double>& row(size_t i) const;
  const std::vector<std::string>& columns() const { return columns_; }

  /// Index of the column with the smallest value in row `i`, skipping
  /// column 0 (the x axis) — "who wins" at that selectivity.
  size_t ArgMinOfRow(size_t i) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<double>> rows_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_REPORT_H_
