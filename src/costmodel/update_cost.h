#ifndef SPATIALJOIN_COSTMODEL_UPDATE_COST_H_
#define SPATIALJOIN_COSTMODEL_UPDATE_COST_H_

#include "costmodel/parameters.h"

namespace spatialjoin {

/// Expected costs of inserting one new tuple (paper §4.2). Updates do not
/// depend on the matching distribution.
struct UpdateCosts {
  double u_i = 0.0;    ///< strategy I (nested loop): nothing to maintain
  double u_iia = 0.0;  ///< strategy IIa: unclustered generalization tree
  double u_iib = 0.0;  ///< strategy IIb: clustered generalization tree
  double u_iii = 0.0;  ///< strategy III: join indices over all T tuples
};

/// Evaluates U_I, U_IIa, U_IIb, U_III(T) for the given parameters.
///
/// The expected storage height of a new object,
/// (1/N)·Σ_{i=1..n} i·k^i, weights the per-level cost
/// (k/2 child tests plus the level's page fetches). U_III charges a θ test
/// against every one of the T spatial tuples in the database plus the
/// pages holding them (§4.2's prohibitively high join-index update cost).
UpdateCosts ComputeUpdateCosts(const ModelParameters& params);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_UPDATE_COST_H_
