#include "costmodel/distributions.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

const char* MatchDistributionName(MatchDistribution dist) {
  switch (dist) {
    case MatchDistribution::kUniform:
      return "UNIFORM";
    case MatchDistribution::kNoLoc:
      return "NO-LOC";
    case MatchDistribution::kHiLoc:
      return "HI-LOC";
  }
  return "UNKNOWN";
}

double MatchProbability(MatchDistribution dist, double p, int i1, int i2,
                        int lca) {
  SJ_CHECK_GE(i1, 0);
  SJ_CHECK_GE(i2, 0);
  SJ_CHECK(p >= 0.0 && p <= 1.0);
  switch (dist) {
    case MatchDistribution::kUniform:
      return p;
    case MatchDistribution::kNoLoc:
      return DPow(p, std::max(std::min(i1, i2), 1));
    case MatchDistribution::kHiLoc: {
      SJ_CHECK_LE(lca, std::min(i1, i2));
      SJ_CHECK_GE(lca, 0);
      int d1 = i1 - lca;
      int d2 = i2 - lca;
      return DPow(p, d1 * d2);
    }
  }
  return 0.0;
}

PiTable::PiTable(MatchDistribution dist, int n, int k, double p)
    : dist_(dist), n_(n), k_(k), p_(p) {
  SJ_CHECK_GE(n, 1);
  SJ_CHECK_GE(k, 2);
  SJ_CHECK(p >= 0.0 && p <= 1.0);
  table_.resize(static_cast<size_t>((n + 1) * (n + 1)));
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      table_[static_cast<size_t>(i * (n + 1) + j)] = ComputePi(i, j);
    }
  }
}

double PiTable::ComputePi(int i, int j) const {
  switch (dist_) {
    case MatchDistribution::kUniform:
      return p_;
    case MatchDistribution::kNoLoc:
      return DPow(p_, std::max(std::min(i, j), 1));
    case MatchDistribution::kHiLoc: {
      // Average ρ = p^{d1·d2} over all positions of a node at height j
      // relative to a fixed node at height i. Grouping the k^j candidate
      // nodes by the height a of the lowest common ancestor:
      //   a < min(i,j): (k^{j−a} − k^{j−a−1}) nodes under the height-a
      //                 ancestor but not the height-(a+1) one;
      //   a = min(i,j): k^{j−min(i,j)} nodes (ancestor or descendants),
      //                 matching with probability p^0 = 1.
      // Dividing by k^j gives a form independent of which argument is
      // larger (symmetric in i, j).
      int lo = std::min(i, j);
      double total = DPow(static_cast<double>(k_), -lo);
      double one_minus_inv_k = 1.0 - 1.0 / static_cast<double>(k_);
      for (int a = 0; a < lo; ++a) {
        double weight =
            one_minus_inv_k * DPow(static_cast<double>(k_), -a);
        total += weight * DPow(p_, (i - a) * (j - a));
      }
      return std::min(total, 1.0);
    }
  }
  return 0.0;
}

double PiTable::pi(int i, int j) const {
  // The paper's technical convention for the JOIN cost sum (§4.4).
  if ((i == 0 && j == -1) || (i == -1 && j == 0)) return 1.0;
  SJ_CHECK_GE(i, 0);
  SJ_CHECK_GE(j, 0);
  SJ_CHECK_LE(i, n_);
  SJ_CHECK_LE(j, n_);
  return table_[static_cast<size_t>(i * (n_ + 1) + j)];
}

double PiTable::sigma(int i) const {
  SJ_CHECK_GE(i, 1);  // siblings need a parent
  SJ_CHECK_LE(i, n_);
  switch (dist_) {
    case MatchDistribution::kUniform:
      return p_;
    case MatchDistribution::kNoLoc:
      return DPow(p_, std::max(i, 1));
    case MatchDistribution::kHiLoc:
      return p_;  // d1 = d2 = 1
  }
  return 0.0;
}

}  // namespace spatialjoin
