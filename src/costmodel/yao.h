#ifndef SPATIALJOIN_COSTMODEL_YAO_H_
#define SPATIALJOIN_COSTMODEL_YAO_H_

#include <cstdint>

namespace spatialjoin {

/// Yao's formula [Yao77] (paper §4.2): the expected number of page
/// accesses when retrieving `x` records randomly chosen among `z` records
/// stored on `y` pages,
///
///   Y(x, y, z) = y · [ 1 − Π_{i=1..x} (z − z/y − i + 1) / (z − i + 1) ].
///
/// Guards (DESIGN.md §3.3): Y(0,·,·) = 0; x ≥ z retrieves every page
/// (Y = y); the result never exceeds min(x, y); degenerate small inputs
/// short-circuit before the product loop can misbehave.
double Yao(double x, double y, double z);

/// Integer-argument convenience overload.
double Yao(int64_t x, int64_t y, int64_t z);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_YAO_H_
