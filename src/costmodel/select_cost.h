#ifndef SPATIALJOIN_COSTMODEL_SELECT_COST_H_
#define SPATIALJOIN_COSTMODEL_SELECT_COST_H_

#include "costmodel/distributions.h"
#include "costmodel/parameters.h"

namespace spatialjoin {

/// Expected costs of one spatial selection (paper §4.3, Figs. 8–10): a
/// degenerate join whose one selector object sits at height h of its own
/// generalization tree (the study uses h = n, a leaf).
struct SelectCosts {
  double c_i = 0.0;    ///< strategy I: exhaustive scan
  double c_iia = 0.0;  ///< strategy IIa: SELECT over an unclustered tree
  double c_iib = 0.0;  ///< strategy IIb: SELECT over a clustered tree
  double c_iii = 0.0;  ///< strategy III: join-index lookup
  /// Shared computation term C_II^Θ(h) (identical for IIa and IIb).
  double c_ii_compute = 0.0;
};

/// Evaluates C_I, C_IIa, C_IIb, C_III for the given parameters and
/// matching distribution, using the level probabilities π_{h,i}.
SelectCosts ComputeSelectCosts(const ModelParameters& params,
                               MatchDistribution dist);

/// As above but with a caller-supplied π table (for sensitivity studies
/// that perturb π directly).
SelectCosts ComputeSelectCosts(const ModelParameters& params,
                               const PiTable& pi_table);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_SELECT_COST_H_
