#include "costmodel/parameters.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

int64_t ModelParameters::N() const {
  int64_t total = 0;
  for (int i = 0; i <= n; ++i) total += IPow(k, i);
  return total;
}

int64_t ModelParameters::m() const {
  int64_t per_page = static_cast<int64_t>(
      std::floor(static_cast<double>(s) * l / static_cast<double>(v)));
  SJ_CHECK_GE(per_page, 1);
  return per_page;
}

int ModelParameters::d() const {
  double height = std::log(static_cast<double>(N())) /
                  std::log(static_cast<double>(z));
  return static_cast<int>(std::ceil(height)) ;
}

double ModelParameters::NodesAtHeight(int i) const {
  SJ_CHECK_GE(i, 0);
  SJ_CHECK_LE(i, n);
  return DPow(static_cast<double>(k), i);
}

int64_t ModelParameters::RelationPages() const { return CeilDiv(N(), m()); }

std::string ModelParameters::ToString() const {
  std::ostringstream os;
  os << "n=" << n << " k=" << k << " p=" << p << " v=" << v << " l=" << l
     << " h=" << h << " T=" << T << " s=" << s << " z=" << z << " M=" << M
     << " C_theta=" << c_theta << " C_IO=" << c_io << " C_U=" << c_u
     << " W=" << threads << " | N=" << N() << " m=" << m() << " d=" << d();
  return os.str();
}

ModelParameters PaperParameters() {
  // Table 3 verbatim; derived values N = 1,111,111, m = 5, d = 4 are
  // recomputed and asserted by tests.
  return ModelParameters{};
}

}  // namespace spatialjoin
