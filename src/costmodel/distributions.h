#ifndef SPATIALJOIN_COSTMODEL_DISTRIBUTIONS_H_
#define SPATIALJOIN_COSTMODEL_DISTRIBUTIONS_H_

#include <string>
#include <vector>

namespace spatialjoin {

/// The three match-probability distributions of the comparative study
/// (paper §4.1, Fig. 7). The parameter p is the join selectivity: low p
/// means few matching pairs.
enum class MatchDistribution {
  /// ρ(o1, o2) = p for every pair — operators with no notion of spatial
  /// proximity at all ("to the Northwest of").
  kUniform,
  /// ρ = p^{max(min(i1,i2),1)} for heights i1, i2 — no locality, but
  /// larger (higher) objects match more easily ("between 50 and 100 km").
  kNoLoc,
  /// ρ = p^{d1·d2} with d1, d2 the height distances to the lowest common
  /// ancestor — strong locality; ancestors/descendants always match.
  /// Only meaningful when both objects live in the same tree (self-join /
  /// selection with a stored selector). The exponent is reconstructed
  /// from the paper's constraints (σ_i = p, ancestor probability 1); see
  /// DESIGN.md §3.1.
  kHiLoc,
};

/// Display name ("UNIFORM", "NO-LOC", "HI-LOC").
const char* MatchDistributionName(MatchDistribution dist);

/// Pairwise match probability ρ(o1, o2) for objects at heights i1, i2
/// whose lowest common ancestor sits at height `lca` (lca <= min(i1,i2)).
/// For UNIFORM and NO-LOC the lca argument is ignored.
double MatchProbability(MatchDistribution dist, double p, int i1, int i2,
                        int lca);

/// Precomputed level-average match probabilities π_ij for a balanced
/// k-ary tree of height n: the probability that a random node at height i
/// Θ-matches a random node at height j. Supports the paper's boundary
/// convention π_{0,−1} = π_{−1,0} = 1 (§4.4).
class PiTable {
 public:
  PiTable(MatchDistribution dist, int n, int k, double p);

  double pi(int i, int j) const;

  /// σ_i: match probability of two *siblings* at height i (Fig. 7
  /// cross-check: σ_i = p for UNIFORM/HI-LOC, p^{max(1,i)} for NO-LOC).
  double sigma(int i) const;

  int n() const { return n_; }
  double p() const { return p_; }
  MatchDistribution distribution() const { return dist_; }

 private:
  double ComputePi(int i, int j) const;

  MatchDistribution dist_;
  int n_;
  int k_;
  double p_;
  std::vector<double> table_;  // (n+1) × (n+1)
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_DISTRIBUTIONS_H_
