#include "costmodel/yao.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spatialjoin {

double Yao(double x, double y, double z) {
  SJ_CHECK_GE(y, 0.0);
  SJ_CHECK_GE(z, 0.0);
  if (x <= 0.0 || y <= 0.0 || z <= 0.0) return 0.0;
  if (y <= 1.0) return 1.0;
  // No x >= z shortcut: when records are sparser than pages (z/y < 1) the
  // raw product correctly charges less than y even for x = z; for dense
  // files the product reaches zero on its own and yields y.

  double records_per_page = z / y;
  double product = 1.0;
  int64_t iterations = static_cast<int64_t>(std::floor(x));
  for (int64_t i = 1; i <= iterations; ++i) {
    double numerator = z - records_per_page - static_cast<double>(i) + 1.0;
    double denominator = z - static_cast<double>(i) + 1.0;
    if (numerator <= 0.0 || denominator <= 0.0) {
      product = 0.0;
      break;
    }
    product *= numerator / denominator;
    // Once the hit probability is ~1 for every page, stop early: the
    // result is y to double precision.
    if (product < 1e-18) {
      product = 0.0;
      break;
    }
  }
  double expected = y * (1.0 - product);
  return std::min({expected, x, y});
}

double Yao(int64_t x, int64_t y, int64_t z) {
  return Yao(static_cast<double>(x), static_cast<double>(y),
             static_cast<double>(z));
}

}  // namespace spatialjoin
