#include "costmodel/join_cost.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "costmodel/yao.h"

namespace spatialjoin {

JoinCosts ComputeJoinCosts(const ModelParameters& params,
                           MatchDistribution dist) {
  PiTable pi(dist, params.n, params.k, params.p);
  return ComputeJoinCosts(params, pi);
}

JoinCosts ComputeJoinCosts(const ModelParameters& params,
                           const PiTable& pi) {
  SJ_CHECK_EQ(pi.n(), params.n);
  JoinCosts costs;
  const int n = params.n;
  const double k = params.k;
  const double n_tuples = static_cast<double>(params.N());
  const double m = static_cast<double>(params.m());
  const double pages = static_cast<double>(params.RelationPages());
  const double memory_tuples =
      m * static_cast<double>(params.M - 10);  // tuples per M−10 pages

  // Strategy I: N² θ tests; ⌈N/(m(M−10))⌉ passes each scanning S, plus
  // one full read of R.
  double passes_nl = std::ceil(n_tuples / memory_tuples);
  costs.d_i = n_tuples * n_tuples * params.c_theta +
              (passes_nl + 1.0) * std::ceil(n_tuples / m) * params.c_io;

  // Strategy II computation: a pair (a, b) at height i is examined with
  // probability π_{i,i−1} (the two correlated parent conditions are
  // charged as one, §4.4), giving π_{i,i−1}·k^{2i} qualifying pairs.
  // Each performs two SELECT passes over the partner subtrees:
  // 1 + Σ_{j=i..n−1} (π_ij + π_ji)·k^{j−i+1} Θ/θ evaluations.
  double compute = 0.0;
  for (int i = 0; i <= n; ++i) {
    double pair_prob = (i == 0) ? 1.0 : pi.pi(i, i - 1);
    double qual_pairs = pair_prob * DPow(k, 2 * i);
    double per_pair = 1.0;
    for (int j = i; j < n; ++j) {
      per_pair += (pi.pi(i, j) + pi.pi(j, i)) * DPow(k, j - i + 1);
    }
    compute += qual_pairs * per_pair;
  }
  costs.d_ii_compute = params.c_theta * compute;

  // Participating nodes: those whose parent Θ-matches at least the other
  // tree's root — 1 + Σ_{i=0..n−1} π_{0,i}·k^{i+1} per tree.
  double participating_r = 1.0;
  for (int i = 0; i < n; ++i) {
    participating_r += pi.pi(0, i) * DPow(k, i + 1);
  }
  double passes_tree = std::ceil(participating_r / memory_tuples);

  // Per-pass page fetches for scanning the S-side tree, and the one-time
  // fetch of the R-side participants (§4.4).
  double scan_unclustered = 0.0;
  double scan_clustered = 0.0;
  double load_unclustered = 0.0;
  double load_clustered = 0.0;
  for (int i = 0; i < n; ++i) {
    double s_nodes = std::ceil(pi.pi(0, i) * DPow(k, i + 1));
    double r_nodes = std::ceil(pi.pi(i, 0) * DPow(k, i + 1));
    scan_unclustered += Yao(s_nodes, pages, n_tuples);
    load_unclustered += Yao(r_nodes, pages, n_tuples);
    double s_parents = std::ceil(pi.pi(0, i) * DPow(k, i));
    double r_parents = std::ceil(pi.pi(i, 0) * DPow(k, i));
    double level_records = DPow(k, i);
    double level_pages = std::ceil(DPow(k, i + 1) / m);
    scan_clustered += Yao(s_parents, level_pages, level_records);
    load_clustered += Yao(r_parents, level_pages, level_records);
  }
  costs.d_iia = costs.d_ii_compute +
                params.c_io * (passes_tree * scan_unclustered +
                               load_unclustered);
  costs.d_iib = costs.d_ii_compute +
                params.c_io * (passes_tree * scan_clustered +
                               load_clustered);

  // Parallel strategies (DESIGN.md §7): only computation scales with the
  // worker count — I/O stays on the materializing thread.
  const double workers = static_cast<double>(std::max(1, params.threads));
  costs.d_ii_par = costs.d_ii_compute / workers +
                   params.c_io * (passes_tree * scan_clustered +
                                  load_clustered);
  costs.d_pbsm = 2.0 * pages * params.c_io +
                 params.p * n_tuples * n_tuples * params.c_theta / workers;

  // Strategy III (reconstructed; see header and DESIGN.md §3.2).
  double expected_entries = 0.0;  // W
  for (int i = 0; i <= n; ++i) {
    for (int j = 0; j <= n; ++j) {
      expected_entries += pi.pi(i, j) * DPow(k, i) * DPow(k, j);
    }
  }
  double participating_tuples = 0.0;  // A
  for (int i = 0; i <= n; ++i) {
    participating_tuples += pi.pi(i, 0) * DPow(k, i);
  }
  double passes_ji = std::ceil(participating_tuples / memory_tuples);
  double pair_match_prob = expected_entries / (n_tuples * n_tuples);
  pair_match_prob = Clamp(pair_match_prob, 0.0, 1.0);
  double s_hit_prob =
      1.0 - std::pow(1.0 - pair_match_prob, memory_tuples);
  costs.d_iii =
      params.c_io *
      (std::ceil(expected_entries / static_cast<double>(params.z)) +
       Yao(std::ceil(participating_tuples), pages, n_tuples) +
       passes_ji * Yao(std::ceil(s_hit_prob * n_tuples), pages, n_tuples));
  return costs;
}

}  // namespace spatialjoin
