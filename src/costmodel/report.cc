#include "costmodel/report.h"

#include <cmath>
#include <iomanip>
#include <ostream>

#include "common/check.h"

namespace spatialjoin {

std::vector<double> LogSpace(double lo, double hi, int count) {
  SJ_CHECK_GT(lo, 0.0);
  SJ_CHECK_GE(hi, lo);
  SJ_CHECK_GE(count, 2);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(count));
  double log_lo = std::log10(lo);
  double log_hi = std::log10(hi);
  for (int i = 0; i < count; ++i) {
    double t = static_cast<double>(i) / static_cast<double>(count - 1);
    out.push_back(std::pow(10.0, log_lo + t * (log_hi - log_lo)));
  }
  return out;
}

TableReport::TableReport(std::vector<std::string> column_names)
    : columns_(std::move(column_names)) {
  SJ_CHECK(!columns_.empty());
}

void TableReport::AddRow(const std::vector<double>& values) {
  SJ_CHECK_EQ(values.size(), columns_.size());
  rows_.push_back(values);
}

const std::vector<double>& TableReport::row(size_t i) const {
  SJ_CHECK_LT(i, rows_.size());
  return rows_[i];
}

size_t TableReport::ArgMinOfRow(size_t i) const {
  const std::vector<double>& r = row(i);
  SJ_CHECK_GE(r.size(), 2u);
  size_t best = 1;
  for (size_t c = 2; c < r.size(); ++c) {
    if (r[c] < r[best]) best = c;
  }
  return best;
}

void TableReport::Print(std::ostream& os) const {
  for (size_t c = 0; c < columns_.size(); ++c) {
    os << std::setw(14) << columns_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    os << std::scientific << std::setprecision(4);
    for (double v : row) os << std::setw(14) << v;
    os << "\n";
  }
  os.copyfmt(std::ios(nullptr));
}

}  // namespace spatialjoin
