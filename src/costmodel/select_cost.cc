#include "costmodel/select_cost.h"

#include <cmath>

#include "common/check.h"
#include "common/math_util.h"
#include "costmodel/yao.h"

namespace spatialjoin {

SelectCosts ComputeSelectCosts(const ModelParameters& params,
                               MatchDistribution dist) {
  PiTable pi(dist, params.n, params.k, params.p);
  return ComputeSelectCosts(params, pi);
}

SelectCosts ComputeSelectCosts(const ModelParameters& params,
                               const PiTable& pi) {
  SJ_CHECK_EQ(pi.n(), params.n);
  SelectCosts costs;
  const int n = params.n;
  const int h = params.h;
  const double n_tuples = static_cast<double>(params.N());
  const double m = static_cast<double>(params.m());
  const double pages = static_cast<double>(params.RelationPages());

  // Strategy I: exhaustive search — θ-test all N tuples, scan all pages.
  costs.c_i = n_tuples * params.c_theta +
              std::ceil(n_tuples / m) * params.c_io;

  // Strategy II computation: the root is always tested; a Θ-match at
  // height i expands its k children, so height i+1 examines
  // π_{h,i}·k^{i+1} nodes.
  double compute = 1.0;
  for (int i = 0; i < n; ++i) {
    compute += pi.pi(h, i) * DPow(params.k, i + 1);
  }
  costs.c_ii_compute = params.c_theta * compute;

  // Strategy IIa I/O: the π_{h,i}·k^{i+1} nodes visited at height i+1 are
  // scattered uniformly over the relation's pages (root pinned in memory).
  double io_unclustered = 0.0;
  for (int i = 0; i < n; ++i) {
    double fetched = std::ceil(pi.pi(h, i) * DPow(params.k, i + 1));
    io_unclustered += Yao(fetched, pages, n_tuples);
  }
  costs.c_iia = costs.c_ii_compute + params.c_io * io_unclustered;

  // Strategy IIb I/O: siblings are stored contiguously; each of the
  // π_{h,i}·k^i matching height-i nodes pulls one k-child "record" from
  // the ⌈k^{i+1}/m⌉ pages storing the k^i records of that level.
  double io_clustered = 0.0;
  for (int i = 0; i < n; ++i) {
    double matching_parents = std::ceil(pi.pi(h, i) * DPow(params.k, i));
    double level_records = DPow(params.k, i);
    double level_pages = std::ceil(DPow(params.k, i + 1) / m);
    io_clustered += Yao(matching_parents, level_pages, level_records);
  }
  costs.c_iib = costs.c_ii_compute + params.c_io * io_clustered;

  // Strategy III: Σ_{i=0..n} π_{h,i}·k^i index entries relate to the
  // selector; descend the B⁺-tree (d levels, root pinned), read the
  // entry pages, then fetch the matching tuples.
  double entries = 0.0;
  for (int i = 0; i <= n; ++i) {
    entries += pi.pi(h, i) * DPow(params.k, i);
  }
  costs.c_iii =
      params.c_io * (static_cast<double>(params.d()) +
                     std::ceil(entries / static_cast<double>(params.z)) +
                     Yao(std::ceil(entries), pages, n_tuples));
  return costs;
}

}  // namespace spatialjoin
