#ifndef SPATIALJOIN_COSTMODEL_PARAMETERS_H_
#define SPATIALJOIN_COSTMODEL_PARAMETERS_H_

#include <cstdint>
#include <string>

namespace spatialjoin {

/// The analytical model's parameters (paper Table 2) with the defaults of
/// the comparative study (Table 3). Modeling assumptions S1–S4 (§4.1):
/// balanced k-ary trees of height n, every node an application object,
/// Θ ⇔ θ, and B⁺-tree join indices.
struct ModelParameters {
  // Database dependent.
  int n = 6;        ///< height of the generalization trees (root = 0)
  int k = 10;       ///< tree fan-out
  double p = 0.1;   ///< join selectivity (match probability parameter)
  int64_t v = 300;  ///< tuple size in bytes
  double l = 0.75;  ///< average space utilization of data pages
  int h = 6;        ///< height of the selector object (leaf by default)
  int64_t T = 1111111;  ///< total tuples with spatial attributes (for U_III)

  // System dependent.
  int64_t s = 2000;  ///< page size in bytes
  int64_t z = 100;   ///< join-index entries per page
  int64_t M = 4000;  ///< main-memory size in pages

  // System performance dependent (cost units).
  double c_theta = 1.0;  ///< cost of one Θ/θ evaluation
  double c_io = 1000.0;  ///< cost of one page access
  double c_u = 1.0;      ///< cost of one update computation step

  /// Worker threads available to the parallel strategies (DESIGN.md §7).
  /// Only the computation terms scale with it; I/O stays serialized
  /// because the storage layer is single-threaded.
  int threads = 1;

  /// Derived: number of tuples in one relation = number of tree nodes,
  /// Σ_{i=0..n} k^i (Table 3: 1,111,111 for n=6, k=10).
  int64_t N() const;

  /// Derived: tuples per page, ⌊s·l / v⌋ (Table 3: 5).
  int64_t m() const;

  /// Derived: height of the join-index B⁺-tree, ⌈log_z N⌉ (Table 3: 4).
  int d() const;

  /// Number of nodes at height `i` in the balanced k-ary tree: k^i.
  double NodesAtHeight(int i) const;

  /// Pages occupied by one relation, ⌈N/m⌉.
  int64_t RelationPages() const;

  /// Renders a one-line summary of all parameters.
  std::string ToString() const;
};

/// The exact parameter set of the paper's comparative study (Table 3).
ModelParameters PaperParameters();

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_PARAMETERS_H_
