#ifndef SPATIALJOIN_COSTMODEL_JOIN_COST_H_
#define SPATIALJOIN_COSTMODEL_JOIN_COST_H_

#include "costmodel/distributions.h"
#include "costmodel/parameters.h"

namespace spatialjoin {

/// Expected costs of one general spatial join of two N-tuple relations
/// (paper §4.4, Figs. 11–13).
struct JoinCosts {
  double d_i = 0.0;    ///< strategy I: blocked nested loop
  double d_iia = 0.0;  ///< strategy IIa: Algorithm JOIN, unclustered
  double d_iib = 0.0;  ///< strategy IIb: Algorithm JOIN, clustered
  double d_iii = 0.0;  ///< strategy III: join index
  /// Shared computation term D_II^Θ (identical for IIa and IIb).
  double d_ii_compute = 0.0;
  /// Parallel Algorithm JOIN over W = params.threads workers: the
  /// computation term divides by W (QualPairs worklists are sharded),
  /// the clustered I/O term does not (the tree snapshot is materialized
  /// by one thread).  D_II_par = D_II^Θ/W + (D_IIb − D_II^Θ).
  double d_ii_par = 0.0;
  /// PBSM-style partitioned join (DESIGN.md §7): one sequential read of
  /// each relation plus the sweep's candidate verification divided by W.
  /// D_PBSM = 2·⌈N/m⌉·C_IO + p·N²·C_Θ/W.
  double d_pbsm = 0.0;
};

/// Evaluates D_I, D_IIa, D_IIb, D_III for the given parameters and
/// matching distribution.
///
/// D_III follows the reconstruction documented in DESIGN.md §3.2: with
/// W = Σ_i Σ_j π_ij·k^i·k^j expected index entries, A = Σ_i π_{i,0}·k^i
/// participating R tuples, P = ⌈A/(m(M−10))⌉ passes and per-pass S-hit
/// probability q = 1 − (1 − W/N²)^{m(M−10)},
///   D_III = C_IO·( ⌈W/z⌉ + Y(⌈A⌉, ⌈N/m⌉, N) + P·Y(⌈qN⌉, ⌈N/m⌉, N) ).
JoinCosts ComputeJoinCosts(const ModelParameters& params,
                           MatchDistribution dist);

/// As above with a caller-supplied π table.
JoinCosts ComputeJoinCosts(const ModelParameters& params,
                           const PiTable& pi_table);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COSTMODEL_JOIN_COST_H_
