#ifndef SPATIALJOIN_COMMON_STATUS_H_
#define SPATIALJOIN_COMMON_STATUS_H_

#include <string>
#include <utility>

#include "common/check.h"

namespace spatialjoin {

/// Error categories used across the library. The library does not throw;
/// fallible operations return Status or Result<T>.
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kOutOfRange,
  kResourceExhausted,
  kFailedPrecondition,
  kInternal,
  kDeadlineExceeded,
  kCancelled,
};

/// Human-readable name of a StatusCode (e.g. "NOT_FOUND").
const char* StatusCodeName(StatusCode code);

namespace internal_status {

/// Observer invoked on every non-OK Status construction — the hook the
/// observability layer (obs/event_log.cc) uses to capture the *origin*
/// of error propagation in the structured event log without the common
/// layer depending on obs. At most one observer; a null pointer disables
/// the hook. The observer must be cheap and must not construct a Status.
using StatusErrorObserver = void (*)(StatusCode code, const char* message);
void SetStatusErrorObserver(StatusErrorObserver observer);

/// Called from the Status error constructor (out of line so the header
/// stays dependency-free).
void NotifyStatusError(StatusCode code, const char* message);

}  // namespace internal_status

/// A lightweight status object carrying a code and optional message.
///
/// [[nodiscard]]: a dropped Status is a silently-ignored failure (the
/// exact bug class this engine's storage layer had with unflushed dirty
/// pages), so discarding one is a compile error repo-wide. Where a
/// discard is *deliberate* — a best-effort path whose failure is benign —
/// call `IgnoreError()` and say why in a comment (DESIGN.md §9).
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {
    if (code_ != StatusCode::kOk) {
      internal_status::NotifyStatusError(code_, message_.c_str());
    }
  }

  static Status Ok() { return Status(); }
  static Status NotFound(std::string m = "") {
    return Status(StatusCode::kNotFound, std::move(m));
  }
  static Status AlreadyExists(std::string m = "") {
    return Status(StatusCode::kAlreadyExists, std::move(m));
  }
  static Status InvalidArgument(std::string m = "") {
    return Status(StatusCode::kInvalidArgument, std::move(m));
  }
  static Status OutOfRange(std::string m = "") {
    return Status(StatusCode::kOutOfRange, std::move(m));
  }
  static Status ResourceExhausted(std::string m = "") {
    return Status(StatusCode::kResourceExhausted, std::move(m));
  }
  static Status FailedPrecondition(std::string m = "") {
    return Status(StatusCode::kFailedPrecondition, std::move(m));
  }
  static Status Internal(std::string m = "") {
    return Status(StatusCode::kInternal, std::move(m));
  }
  static Status DeadlineExceeded(std::string m = "") {
    return Status(StatusCode::kDeadlineExceeded, std::move(m));
  }
  static Status Cancelled(std::string m = "") {
    return Status(StatusCode::kCancelled, std::move(m));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// The documented escape hatch from [[nodiscard]]: consumes this status
  /// without acting on it. Every call site must carry a comment
  /// explaining why ignoring the error is correct there; the negative-
  /// compile suite (tests/static_analysis/) proves plain discards do not
  /// build.
  void IgnoreError() const {}

  /// Renders "OK" or "CODE: message".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Result<T> is either a value or an error Status. Accessing the value of an
/// error result is a checked programmer error. [[nodiscard]] for the same
/// reason as Status: an unexamined Result is a swallowed failure.
template <typename T>
class [[nodiscard]] Result {
 public:
  /// Implicit construction from a value or a non-OK status keeps call sites
  /// terse (`return value;` / `return Status::NotFound();`).
  Result(T value) : status_(), value_(std::move(value)) {}  // NOLINT
  Result(Status status) : status_(std::move(status)) {      // NOLINT
    SJ_CHECK_MSG(!status_.ok(), "Result built from OK status without value");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    SJ_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return value_;
  }
  T& value() & {
    SJ_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return value_;
  }
  T&& value() && {
    SJ_CHECK_MSG(ok(), "value() on error Result: " << status_.ToString());
    return std::move(value_);
  }

  /// Returns the value or `fallback` when this holds an error.
  T value_or(T fallback) const {
    return ok() ? value_ : std::move(fallback);
  }

 private:
  Status status_;
  T value_{};
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_STATUS_H_
