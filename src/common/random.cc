#include "common/random.h"

#include <cmath>

#include "common/check.h"

namespace spatialjoin {

namespace {

inline uint64_t RotL(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

// splitmix64, used to expand the seed into the xoshiro state.
inline uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(sm);
  // xoshiro must not start in the all-zero state.
  if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
}

uint64_t Rng::NextUint64() {
  const uint64_t result = RotL(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = RotL(state_[3], 45);
  return result;
}

uint64_t Rng::NextUint64(uint64_t bound) {
  SJ_CHECK_GT(bound, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = (0 - bound) % bound;
  for (;;) {
    uint64_t r = NextUint64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Rng::NextInt(int64_t lo, int64_t hi) {
  SJ_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextUint64());  // full range
  return lo + static_cast<int64_t>(NextUint64(span));
}

double Rng::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::NextDouble(double lo, double hi) {
  SJ_CHECK_LE(lo, hi);
  return lo + (hi - lo) * NextDouble();
}

bool Rng::NextBernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

double Rng::NextGaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  // Guard against log(0).
  if (u1 < 1e-300) u1 = 1e-300;
  double mag = std::sqrt(-2.0 * std::log(u1));
  cached_gaussian_ = mag * std::sin(2.0 * M_PI * u2);
  has_cached_gaussian_ = true;
  return mag * std::cos(2.0 * M_PI * u2);
}

}  // namespace spatialjoin
