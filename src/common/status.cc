#include "common/status.h"

#include <atomic>

namespace spatialjoin {

namespace internal_status {

namespace {
std::atomic<StatusErrorObserver> status_observer{nullptr};
}  // namespace

void SetStatusErrorObserver(StatusErrorObserver observer) {
  status_observer.store(observer, std::memory_order_release);
}

void NotifyStatusError(StatusCode code, const char* message) {
  StatusErrorObserver observer =
      status_observer.load(std::memory_order_acquire);
  if (observer != nullptr) observer(code, message);
}

}  // namespace internal_status

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace spatialjoin
