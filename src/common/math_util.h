#ifndef SPATIALJOIN_COMMON_MATH_UTIL_H_
#define SPATIALJOIN_COMMON_MATH_UTIL_H_

#include <cmath>
#include <cstdint>

#include "common/check.h"

namespace spatialjoin {

/// Ceiling division for non-negative integers; CeilDiv(7,2) == 4.
constexpr int64_t CeilDiv(int64_t numerator, int64_t denominator) {
  return (numerator + denominator - 1) / denominator;
}

/// Ceiling of a non-negative double as int64 with guard against negative
/// inputs produced by floating-point noise.
inline int64_t CeilToInt64(double x) {
  if (x <= 0.0) return 0;
  return static_cast<int64_t>(std::ceil(x));
}

/// Integer power base^exp for small exponents (exp >= 0). Checked against
/// overflow only by the caller's choice of ranges; used for k^i with
/// k <= 16, i <= 12 in the cost model.
constexpr int64_t IPow(int64_t base, int exp) {
  int64_t result = 1;
  for (int i = 0; i < exp; ++i) result *= base;
  return result;
}

/// Double-precision power base^exp for integer exponents (exp may be large).
inline double DPow(double base, int exp) {
  return std::pow(base, static_cast<double>(exp));
}

/// Clamps `x` into [lo, hi].
template <typename T>
constexpr T Clamp(T x, T lo, T hi) {
  return x < lo ? lo : (x > hi ? hi : x);
}

/// Approximate equality for doubles, |a-b| <= abs_tol + rel_tol*max(|a|,|b|).
inline bool AlmostEqual(double a, double b, double rel_tol = 1e-9,
                        double abs_tol = 1e-12) {
  double diff = std::fabs(a - b);
  double scale = std::fmax(std::fabs(a), std::fabs(b));
  return diff <= abs_tol + rel_tol * scale;
}

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_MATH_UTIL_H_
