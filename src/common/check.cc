#include "common/check.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace spatialjoin {
namespace internal_check {

namespace {
std::atomic<CheckFailureObserver> check_observer{nullptr};
// A check failure *inside* the observer (e.g. while serializing the
// dump) must not recurse into it.
std::atomic<bool> observer_running{false};
}  // namespace

void SetCheckFailureObserver(CheckFailureObserver observer) {
  check_observer.store(observer, std::memory_order_release);
}

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  CheckFailureObserver observer =
      check_observer.load(std::memory_order_acquire);
  if (observer != nullptr &&
      !observer_running.exchange(true, std::memory_order_acq_rel)) {
    observer(file, line, expr, message.c_str());
  }
  // The console line stays even with a dump pipeline installed: it is the
  // one diagnostic that survives a full disk or an unwritable dump path.
  // sj-lint: allow(stderr-in-lib)
  std::fprintf(stderr, "SJ_CHECK failed at %s:%d: %s%s%s\n", file, line, expr,
               message.empty() ? "" : " — ", message.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal_check
}  // namespace spatialjoin
