#ifndef SPATIALJOIN_COMMON_STATS_H_
#define SPATIALJOIN_COMMON_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace spatialjoin {

/// Online accumulator for mean / variance / min / max (Welford's method).
/// Used by benches to summarize measured counter series.
class RunningStat {
 public:
  RunningStat() = default;

  /// Adds one observation.
  void Add(double x);

  int64_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when fewer than two observations.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }

  /// Renders "n=… mean=… sd=… min=… max=…".
  std::string ToString() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Returns the q-quantile (0 <= q <= 1) of `values` by linear interpolation.
/// `values` need not be sorted; the function copies and sorts internally.
double Quantile(const std::vector<double>& values, double q);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_STATS_H_
