#ifndef SPATIALJOIN_COMMON_THREAD_ANNOTATIONS_H_
#define SPATIALJOIN_COMMON_THREAD_ANNOTATIONS_H_

/// Clang Thread Safety Analysis annotations (Abseil-style, SJ_ prefix).
///
/// These macros attach locking contracts to types, fields, and functions
/// so that `clang -Wthread-safety` rejects lock-discipline violations at
/// compile time — the static counterpart of the TSan CI job, which only
/// sees the interleavings a test happens to execute. Under compilers
/// without the attributes (GCC builds this tree too) every macro expands
/// to nothing, so annotations are zero-cost and portable.
///
/// Conventions (DESIGN.md §9):
///  * Every field protected by a mutex is declared `SJ_GUARDED_BY(mu_)`.
///  * Private helpers that assume the lock is already held are named
///    `*Locked()` and declared `SJ_REQUIRES(mu_)`.
///  * Public entry points that take the lock themselves are annotated
///    `SJ_EXCLUDES(mu_)` when calling them with the lock held would
///    deadlock.
///  * Use `spatialjoin::Mutex` / `MutexLock` (common/mutex.h) instead of
///    `std::mutex` / `std::lock_guard`: libstdc++'s std::mutex carries no
///    capability attributes, so the analysis cannot see through it.
///
/// The analysis is opt-out per function via SJ_NO_THREAD_SAFETY_ANALYSIS;
/// every use of that escape hatch must carry a comment saying why the
/// static analysis cannot express the protocol.

#if defined(__clang__) && defined(__has_attribute)
#define SJ_TS_HAS_ATTRIBUTE(x) __has_attribute(x)
#else
#define SJ_TS_HAS_ATTRIBUTE(x) 0
#endif

#if SJ_TS_HAS_ATTRIBUTE(guarded_by)
#define SJ_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define SJ_TS_ATTRIBUTE(x)  // no-op
#endif

/// Declares a type to be a capability ("mutex"): lockable by the analysis.
#define SJ_CAPABILITY(x) SJ_TS_ATTRIBUTE(capability(x))

/// Legacy spelling of SJ_CAPABILITY("mutex").
#define SJ_LOCKABLE SJ_CAPABILITY("mutex")

/// Declares an RAII type whose constructor acquires and destructor
/// releases a capability (e.g. MutexLock).
#define SJ_SCOPED_CAPABILITY SJ_TS_ATTRIBUTE(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define SJ_GUARDED_BY(x) SJ_TS_ATTRIBUTE(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`
/// (the pointer itself may be read freely).
#define SJ_PT_GUARDED_BY(x) SJ_TS_ATTRIBUTE(pt_guarded_by(x))

/// Lock-ordering declarations (deadlock detection).
#define SJ_ACQUIRED_BEFORE(...) SJ_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define SJ_ACQUIRED_AFTER(...) SJ_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))

/// Function annotation: the caller must hold the given capabilities
/// exclusively (the `*Locked()` helper contract).
#define SJ_REQUIRES(...) SJ_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))

/// Function annotation: the caller must hold the capabilities shared.
#define SJ_REQUIRES_SHARED(...) \
  SJ_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

/// Function annotations: the function acquires/releases the capability.
#define SJ_ACQUIRE(...) SJ_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SJ_ACQUIRE_SHARED(...) \
  SJ_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define SJ_RELEASE(...) SJ_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define SJ_RELEASE_SHARED(...) \
  SJ_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))

/// Function annotation: attempts the lock; on `ret` it is held.
#define SJ_TRY_ACQUIRE(...) SJ_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))

/// Function annotation: must be called *without* the capability held
/// (the function takes it itself; re-entry would deadlock).
#define SJ_EXCLUDES(...) SJ_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))

/// Function annotation: returns a reference to the named capability.
#define SJ_RETURN_CAPABILITY(x) SJ_TS_ATTRIBUTE(lock_returned(x))

/// Runtime assertion that the capability is held (informs the analysis).
#define SJ_ASSERT_CAPABILITY(x) SJ_TS_ATTRIBUTE(assert_capability(x))

/// Escape hatch: disables the analysis for one function. Every use must
/// carry a comment explaining why the protocol is not expressible.
#define SJ_NO_THREAD_SAFETY_ANALYSIS \
  SJ_TS_ATTRIBUTE(no_thread_safety_analysis)

// ---------------------------------------------------------------------------
// Whole-program contract annotations, checked by scripts/analysis/
// sj_analyze.py (DESIGN.md §9) rather than by the compiler. Under clang
// they also emit an `annotate` attribute so the libclang frontend reads
// them straight from the AST; elsewhere they expand to nothing and the
// textual frontend matches the macro token instead. Both spellings must
// appear at the *start* of a declaration (`SJ_HOT bool ThetaUpper(...)`)
// — GNU attributes are only portable in the decl-specifier position.
// ---------------------------------------------------------------------------

#if defined(__clang__) && SJ_TS_HAS_ATTRIBUTE(annotate)
#define SJ_ANALYZE_ANNOTATE(x) __attribute__((annotate(x)))
#else
#define SJ_ANALYZE_ANNOTATE(x)  // no-op
#endif

/// Hot-path purity contract: this function — and everything reachable
/// from it through direct calls — must not allocate, lock, throw, or
/// make virtual calls. Adopted on the Θ-kernel per-pair bodies
/// (core/join_detail.h), the Θ predicate kernels (core/theta_ops.cc),
/// FrozenTree node scans, and slotted-page readers, so ROADMAP's SIMD
/// and query-compilation passes can refactor against a machine-checked
/// invariant. Known, reviewed exceptions (e.g. worklist growth pending
/// the arena/SoA refactor) live in scripts/analysis/
/// sj_analyze_baseline.json with per-entry justifications — not here.
#define SJ_HOT SJ_ANALYZE_ANNOTATE("sj::hot")

/// Async-signal-safety contract: this function is (transitively) called
/// from a fatal-signal handler, so it must stay within the POSIX
/// async-signal-safe allowlist — no allocation, no mutexes, no stdio or
/// iostream, no SJ_EVENT (vsnprintf + ring publication is normal-context
/// only). sj_analyze treats every marked function as an additional
/// checker root alongside the handlers it discovers via sigaction.
#define SJ_SIGNAL_SAFE SJ_ANALYZE_ANNOTATE("sj::signal_safe")

#endif  // SPATIALJOIN_COMMON_THREAD_ANNOTATIONS_H_
