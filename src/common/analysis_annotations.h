#ifndef SPATIALJOIN_COMMON_ANALYSIS_ANNOTATIONS_H_
#define SPATIALJOIN_COMMON_ANALYSIS_ANNOTATIONS_H_

/// Dataflow contract annotations for the interprocedural checkers in
/// scripts/analysis/sj_analyze.py (DESIGN.md §9): wire-taint,
/// blocking-under-lock, and cancellation-reachability. Like SJ_HOT /
/// SJ_SIGNAL_SAFE (common/thread_annotations.h), these are no-ops at
/// runtime; under clang they additionally emit an `annotate` attribute
/// for the libclang frontend, and the textual frontend matches the
/// macro token. Function annotations go in the decl-specifier position
/// (`SJ_UNTRUSTED uint32_t ReadU32();`).

#include "common/thread_annotations.h"

/// Taint source: every integer/size/count this function returns or
/// writes through an out-parameter originates in an untrusted wire
/// frame (FrameDecoder payload bytes). sj_analyze's wire-taint checker
/// tracks such values interprocedurally and fails if one reaches an
/// allocation size, container index, loop bound, resize/reserve, or
/// memcpy length without first passing through an SJ_VALIDATES
/// sanitizer.
#define SJ_UNTRUSTED SJ_ANALYZE_ANNOTATE("sj::untrusted")

/// Taint sanitizer: this function range-checks its inputs (rejecting
/// or clamping out-of-range values), so the values it returns or
/// writes through out-parameters — and the arguments it was given —
/// are considered validated downstream. The sanitizer's *own* body is
/// still analyzed: a bug inside an SJ_VALIDATES function is reported,
/// not blessed.
#define SJ_VALIDATES SJ_ANALYZE_ANNOTATE("sj::validates")

/// Blocking contract: this function may block the calling thread for
/// an unbounded time (socket I/O, disk I/O, condition waits, queue
/// backpressure) even though the analyzer cannot see a blocking leaf
/// call inside it. The blocking-under-lock checker treats every call
/// to it as a blocking sink: calling it with any Mutex held is a
/// finding.
#define SJ_BLOCKING SJ_ANALYZE_ANNOTATE("sj::blocking")

/// Statement marker: the enclosing loop provably does bounded work (a
/// fixed number of iterations over in-memory data, no I/O), so it is
/// exempt from the cancellation-reachability rule that every loop
/// reachable from QueryScheduler dispatch must poll a CancelToken.
/// Write it as the first statement of the loop body:
///
///   for (const auto& pair : current_level) {
///     SJ_BOUNDED_WORK;  // one tree level; the level loop above polls
///     ...
///   }
///
/// Every use must carry a comment saying why the bound holds.
#define SJ_BOUNDED_WORK static_cast<void>(0)

#endif  // SPATIALJOIN_COMMON_ANALYSIS_ANNOTATIONS_H_
