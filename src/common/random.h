#ifndef SPATIALJOIN_COMMON_RANDOM_H_
#define SPATIALJOIN_COMMON_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace spatialjoin {

/// Deterministic pseudo-random generator (xoshiro256**). All experiments in
/// this repository are seeded so that benches and tests are reproducible
/// run-to-run; std::mt19937_64 is avoided because its distributions are not
/// specified bit-exactly across standard libraries.
class Rng {
 public:
  /// Seeds the generator; the same seed yields the same sequence on every
  /// platform.
  explicit Rng(uint64_t seed);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform value in [0, bound). `bound` must be positive.
  uint64_t NextUint64(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double NextDouble(double lo, double hi);

  /// Bernoulli draw with success probability `p` (clamped to [0,1]).
  bool NextBernoulli(double p);

  /// Standard normal draw (Box–Muller).
  double NextGaussian();

  /// Fisher–Yates shuffles `values` in place.
  template <typename T>
  void Shuffle(std::vector<T>& values) {
    for (std::size_t i = values.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextUint64(i));
      std::swap(values[i - 1], values[j]);
    }
  }

 private:
  uint64_t state_[4];
  bool has_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_RANDOM_H_
