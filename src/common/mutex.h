#ifndef SPATIALJOIN_COMMON_MUTEX_H_
#define SPATIALJOIN_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace spatialjoin {

/// Annotated mutex. A thin wrapper over std::mutex whose acquire/release
/// methods carry thread-safety-analysis attributes — libstdc++'s
/// std::mutex has none, so `clang -Wthread-safety` cannot check code
/// that locks it directly. All engine code uses this type (and MutexLock
/// below) so the analysis sees every critical section.
///
/// Also satisfies BasicLockable (lowercase lock()/unlock()), so it can
/// be waited on by CondVar without exposing the wrapped std::mutex.
class SJ_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() SJ_ACQUIRE() { mu_.lock(); }
  void Unlock() SJ_RELEASE() { mu_.unlock(); }
  bool TryLock() SJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// BasicLockable spellings for std interop (CondVar waits).
  void lock() SJ_ACQUIRE() { mu_.lock(); }
  void unlock() SJ_RELEASE() { mu_.unlock(); }
  bool try_lock() SJ_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  std::mutex mu_;
};

/// RAII lock for Mutex; the direct replacement for std::lock_guard /
/// std::scoped_lock in annotated code.
class SJ_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) SJ_ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;
  ~MutexLock() SJ_RELEASE() { mu_.Unlock(); }

 private:
  Mutex& mu_;
};

/// Condition variable paired with Mutex. Waits take the Mutex itself
/// (condition_variable_any unlocks/relocks it around the sleep), so wait
/// sites stay inside one annotated critical section: the analysis treats
/// the mutex as held across the wait, which matches the invariant that
/// guarded state is only *observed* with the lock held — the transient
/// release inside wait() never exposes it.
///
/// Deliberately predicate-free: a predicate lambda is its own function
/// to the analysis and would not inherit the caller's lock set, so every
/// guarded read inside it would (rightly) warn. Callers write the
/// standard loop instead, which keeps the predicate in the annotated
/// scope:
///
///   MutexLock lock(mu_);
///   while (!condition) cv_.Wait(mu_);   // spurious wakeups re-loop
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases `mu`, sleeps until notified (or spuriously), reacquires.
  void Wait(Mutex& mu) SJ_REQUIRES(mu) { cv_.wait(mu); }

  /// As Wait, but also wakes (with the lock held) after `timeout`.
  /// Returns false iff the wake was the timeout rather than a notify —
  /// the admission queue and graceful-shutdown paths branch on it
  /// ("signalled or out of patience?"). As with Wait, wakeups may be
  /// spurious, so callers re-test their predicate either way.
  template <typename Rep, typename Period>
  [[nodiscard]] bool WaitFor(Mutex& mu,
                             const std::chrono::duration<Rep, Period>& timeout)
      SJ_REQUIRES(mu) {
    return cv_.wait_for(mu, timeout) == std::cv_status::no_timeout;
  }

  /// As WaitFor, but against an absolute deadline — the right form for a
  /// loop that re-waits after spurious wakeups without stretching its
  /// total budget. Returns false iff the deadline passed.
  template <typename Clock, typename Duration>
  [[nodiscard]] bool WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      SJ_REQUIRES(mu) {
    return cv_.wait_until(mu, deadline) == std::cv_status::no_timeout;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable_any cv_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_MUTEX_H_
