#ifndef SPATIALJOIN_COMMON_CHECK_H_
#define SPATIALJOIN_COMMON_CHECK_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace spatialjoin {

namespace internal_check {

/// Aborts the process after printing `message` (with source location).
/// Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

/// Observer invoked by CheckFailed *before* it prints and aborts — the
/// hook the flight recorder (obs/flight_recorder.cc) uses to record a
/// structured event and write a crash dump without the common layer
/// depending on obs. The observer runs in normal (non-signal) context but
/// the process is already doomed: it must not assume engine invariants
/// hold, must not take locks that library code holds around SJ_CHECK
/// sites, and must return (CheckFailed still aborts).
using CheckFailureObserver = void (*)(const char* file, int line,
                                      const char* expr, const char* message);
void SetCheckFailureObserver(CheckFailureObserver observer);

}  // namespace internal_check

/// SJ_CHECK(cond) aborts with a diagnostic if `cond` is false. Used for
/// programmer errors and invariant violations; the library does not use
/// exceptions (see DESIGN.md conventions).
#define SJ_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::spatialjoin::internal_check::CheckFailed(__FILE__, __LINE__, #cond, \
                                                 "");                       \
    }                                                                       \
  } while (0)

/// SJ_CHECK_MSG(cond, msg) is SJ_CHECK with an additional streamed message.
#define SJ_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sj_check_stream_;                                  \
      sj_check_stream_ << msg;                                              \
      ::spatialjoin::internal_check::CheckFailed(__FILE__, __LINE__, #cond, \
                                                 sj_check_stream_.str());   \
    }                                                                       \
  } while (0)

/// SJ_CHECK_OK(expr) evaluates a Status expression and aborts with the
/// rendered status if it is not OK. The standard way to consume a
/// [[nodiscard]] Status whose failure has no recovery path at the call
/// site (benches, tests, infallible-by-construction sequences).
#define SJ_CHECK_OK(expr)                                                  \
  do {                                                                     \
    const auto& sj_check_ok_status_ = (expr);                              \
    SJ_CHECK_MSG(sj_check_ok_status_.ok(),                                 \
                 "non-OK status: " << sj_check_ok_status_.ToString());     \
  } while (0)

#define SJ_CHECK_EQ(a, b) SJ_CHECK_MSG((a) == (b), "expected equality")
#define SJ_CHECK_NE(a, b) SJ_CHECK_MSG((a) != (b), "expected inequality")
#define SJ_CHECK_LT(a, b) SJ_CHECK_MSG((a) < (b), "expected less-than")
#define SJ_CHECK_LE(a, b) SJ_CHECK_MSG((a) <= (b), "expected less-or-equal")
#define SJ_CHECK_GT(a, b) SJ_CHECK_MSG((a) > (b), "expected greater-than")
#define SJ_CHECK_GE(a, b) SJ_CHECK_MSG((a) >= (b), "expected greater-or-equal")

/// SJ_DCHECK(cond) is SJ_CHECK in debug builds and vanishes under NDEBUG
/// (the default RelWithDebInfo build compiles it out). For invariants on
/// hot paths whose cost matters — e.g. per-record validity checks inside
/// scan loops. Two rules, both machine-enforced:
///   * the condition must be side-effect free (sj_lint's
///     `dcheck-side-effect` rule — a mutation here would make debug and
///     release behave differently);
///   * anything that guards memory safety or on-disk integrity stays a
///     full SJ_CHECK.
/// The compiled-out form still odr-uses nothing but parses `cond`, so a
/// condition that stops compiling is caught in every build type.
#ifdef NDEBUG
#define SJ_DCHECK(cond) \
  do {                  \
    if (false) {        \
      (void)(cond);     \
    }                   \
  } while (0)
#define SJ_DCHECK_MSG(cond, msg) SJ_DCHECK(cond)
#else
#define SJ_DCHECK(cond) SJ_CHECK(cond)
#define SJ_DCHECK_MSG(cond, msg) SJ_CHECK_MSG(cond, msg)
#endif

#define SJ_DCHECK_EQ(a, b) SJ_DCHECK_MSG((a) == (b), "expected equality")
#define SJ_DCHECK_NE(a, b) SJ_DCHECK_MSG((a) != (b), "expected inequality")
#define SJ_DCHECK_LT(a, b) SJ_DCHECK_MSG((a) < (b), "expected less-than")
#define SJ_DCHECK_LE(a, b) SJ_DCHECK_MSG((a) <= (b), "expected less-or-equal")
#define SJ_DCHECK_GT(a, b) SJ_DCHECK_MSG((a) > (b), "expected greater-than")
#define SJ_DCHECK_GE(a, b) \
  SJ_DCHECK_MSG((a) >= (b), "expected greater-or-equal")

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_CHECK_H_
