#ifndef SPATIALJOIN_COMMON_CHECK_H_
#define SPATIALJOIN_COMMON_CHECK_H_

#include <cstdint>
#include <sstream>
#include <string>

namespace spatialjoin {

namespace internal_check {

/// Aborts the process after printing `message` (with source location).
/// Never returns.
[[noreturn]] void CheckFailed(const char* file, int line, const char* expr,
                              const std::string& message);

}  // namespace internal_check

/// SJ_CHECK(cond) aborts with a diagnostic if `cond` is false. Used for
/// programmer errors and invariant violations; the library does not use
/// exceptions (see DESIGN.md conventions).
#define SJ_CHECK(cond)                                                      \
  do {                                                                      \
    if (!(cond)) {                                                          \
      ::spatialjoin::internal_check::CheckFailed(__FILE__, __LINE__, #cond, \
                                                 "");                       \
    }                                                                       \
  } while (0)

/// SJ_CHECK_MSG(cond, msg) is SJ_CHECK with an additional streamed message.
#define SJ_CHECK_MSG(cond, msg)                                             \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::ostringstream sj_check_stream_;                                  \
      sj_check_stream_ << msg;                                              \
      ::spatialjoin::internal_check::CheckFailed(__FILE__, __LINE__, #cond, \
                                                 sj_check_stream_.str());   \
    }                                                                       \
  } while (0)

#define SJ_CHECK_EQ(a, b) SJ_CHECK_MSG((a) == (b), "expected equality")
#define SJ_CHECK_NE(a, b) SJ_CHECK_MSG((a) != (b), "expected inequality")
#define SJ_CHECK_LT(a, b) SJ_CHECK_MSG((a) < (b), "expected less-than")
#define SJ_CHECK_LE(a, b) SJ_CHECK_MSG((a) <= (b), "expected less-or-equal")
#define SJ_CHECK_GT(a, b) SJ_CHECK_MSG((a) > (b), "expected greater-than")
#define SJ_CHECK_GE(a, b) SJ_CHECK_MSG((a) >= (b), "expected greater-or-equal")

}  // namespace spatialjoin

#endif  // SPATIALJOIN_COMMON_CHECK_H_
