#include "common/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"

namespace spatialjoin {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = x;
    max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

std::string RunningStat::ToString() const {
  std::ostringstream os;
  os << "n=" << count_ << " mean=" << mean_ << " sd=" << stddev()
     << " min=" << min_ << " max=" << max_;
  return os.str();
}

double Quantile(const std::vector<double>& values, double q) {
  SJ_CHECK(!values.empty());
  SJ_CHECK(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  if (sorted.size() == 1) return sorted[0];
  double pos = q * static_cast<double>(sorted.size() - 1);
  size_t lo = static_cast<size_t>(pos);
  size_t hi = std::min(lo + 1, sorted.size() - 1);
  double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

}  // namespace spatialjoin
