#include "zorder/zdecompose.h"

#include <algorithm>
#include <deque>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

namespace {

// Quadtree cells are half-open: [x0, x1) × [y0, y1). A cell participates
// only if its open interior meets the query rectangle; otherwise exact
// power-of-two rectangles would drag in all their boundary neighbors.
// Degenerate (zero-extent) query axes fall back to closed comparison.
bool CellOverlaps(const Rectangle& cell, const Rectangle& query) {
  bool x_ok = query.width() == 0.0
                  ? (cell.min_x() <= query.max_x() &&
                     query.min_x() < cell.max_x())
                  : (cell.min_x() < query.max_x() &&
                     query.min_x() < cell.max_x());
  bool y_ok = query.height() == 0.0
                  ? (cell.min_y() <= query.max_y() &&
                     query.min_y() < cell.max_y())
                  : (cell.min_y() < query.max_y() &&
                     query.min_y() < cell.max_y());
  return x_ok && y_ok;
}

}  // namespace

std::vector<ZCell> DecomposeRectangle(const Rectangle& r, const ZGrid& grid,
                                      const ZDecomposeOptions& options) {
  SJ_CHECK(!r.is_empty());
  SJ_CHECK_GE(options.max_level, 0);
  SJ_CHECK_LE(options.max_level, ZCell::kMaxLevel);
  SJ_CHECK_GE(options.max_cells, 1);

  // Clip to the world; everything outside maps to boundary cells anyway.
  Rectangle clipped = r.Intersection(grid.world());
  if (clipped.is_empty()) {
    // Degenerate: the object lies entirely outside the indexed world.
    // Cover it with the boundary cell nearest to it.
    ZCell cell = grid.CellOf(Point(r.Center()));
    cell.level = options.max_level;
    // Re-derive the prefix at the coarser level by masking.
    uint64_t size = uint64_t{1} << (2 * (ZCell::kMaxLevel - cell.level));
    cell.prefix -= cell.prefix % size;
    return {cell};
  }

  std::vector<ZCell> result;
  std::deque<ZCell> frontier;
  frontier.push_back(ZCell{});  // root cell: whole world

  while (!frontier.empty()) {
    SJ_BOUNDED_WORK;  // quadtree refinement capped by options.max_cells
    ZCell cell = frontier.front();
    frontier.pop_front();
    Rectangle cell_rect = grid.CellRect(cell);
    if (!CellOverlaps(cell_rect, clipped)) continue;
    bool at_limit =
        cell.level >= options.max_level ||
        static_cast<int>(result.size() + frontier.size()) + 1 >=
            options.max_cells;
    if (at_limit || clipped.Contains(cell_rect)) {
      result.push_back(cell);
      continue;
    }
    for (int q = 0; q < 4; ++q) frontier.push_back(cell.Child(q));
  }

  std::sort(result.begin(), result.end(),
            [](const ZCell& a, const ZCell& b) {
              if (a.interval_lo() != b.interval_lo()) {
                return a.interval_lo() < b.interval_lo();
              }
              return a.level < b.level;
            });
  SJ_CHECK(!result.empty());
  return result;
}

}  // namespace spatialjoin
