#include "zorder/hilbert.h"

#include "common/check.h"

namespace spatialjoin {

namespace {

// One Gray-code rotation step of the classic Hilbert transform.
void Rotate(uint32_t side, uint32_t* x, uint32_t* y, uint32_t rx,
            uint32_t ry) {
  if (ry == 0) {
    if (rx == 1) {
      *x = side - 1 - *x;
      *y = side - 1 - *y;
    }
    uint32_t tmp = *x;
    *x = *y;
    *y = tmp;
  }
}

}  // namespace

uint64_t XYToHilbert(uint32_t x, uint32_t y, int order) {
  SJ_CHECK_GE(order, 1);
  SJ_CHECK_LE(order, 31);
  SJ_CHECK_LT(x, uint32_t{1} << order);
  SJ_CHECK_LT(y, uint32_t{1} << order);
  uint64_t d = 0;
  for (uint32_t s = uint32_t{1} << (order - 1); s > 0; s /= 2) {
    uint32_t rx = (x & s) > 0 ? 1 : 0;
    uint32_t ry = (y & s) > 0 ? 1 : 0;
    d += static_cast<uint64_t>(s) * s * ((3 * rx) ^ ry);
    Rotate(s, &x, &y, rx, ry);
  }
  return d;
}

void HilbertToXY(uint64_t d, int order, uint32_t* x, uint32_t* y) {
  SJ_CHECK_GE(order, 1);
  SJ_CHECK_LE(order, 31);
  SJ_CHECK_LT(d, uint64_t{1} << (2 * order));
  uint32_t rx, ry;
  uint64_t t = d;
  *x = 0;
  *y = 0;
  for (uint32_t s = 1; s < (uint32_t{1} << order); s *= 2) {
    rx = static_cast<uint32_t>(1 & (t / 2));
    ry = static_cast<uint32_t>(1 & (t ^ rx));
    Rotate(s, x, y, rx, ry);
    *x += s * rx;
    *y += s * ry;
    t /= 4;
  }
}

uint64_t HilbertValueOf(const ZGrid& grid, const Point& p) {
  uint32_t cx = 0;
  uint32_t cy = 0;
  grid.CellCoords(p, &cx, &cy);
  return XYToHilbert(cx, cy, ZCell::kMaxLevel);
}

}  // namespace spatialjoin
