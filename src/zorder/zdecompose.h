#ifndef SPATIALJOIN_ZORDER_ZDECOMPOSE_H_
#define SPATIALJOIN_ZORDER_ZDECOMPOSE_H_

#include <vector>

#include "geometry/rectangle.h"
#include "zorder/zorder.h"

namespace spatialjoin {

/// Options controlling the quadtree decomposition of an object's MBR into
/// z-cells (Orenstein-style redundant decomposition).
struct ZDecomposeOptions {
  /// Do not subdivide beyond this quadtree level.
  int max_level = 10;
  /// Stop refining once this many cells have been produced; remaining
  /// frontier cells are emitted unrefined (conservative covering).
  int max_cells = 16;
};

/// Decomposes rectangle `r` into a small set of quadtree cells that
/// together cover it. Cells are maximal: a cell fully inside `r` is not
/// subdivided. The result is sorted by z-interval start and the cells'
/// intervals are pairwise disjoint.
///
/// Two objects' MBRs overlap ⇒ their cell sets contain at least one pair of
/// cells whose z-intervals nest (ancestor/descendant in the quadtree) — the
/// property the sort-merge join relies on. As the paper notes, an overlap
/// may be reported once per shared cell; callers deduplicate.
std::vector<ZCell> DecomposeRectangle(const Rectangle& r, const ZGrid& grid,
                                      const ZDecomposeOptions& options = {});

}  // namespace spatialjoin

#endif  // SPATIALJOIN_ZORDER_ZDECOMPOSE_H_
