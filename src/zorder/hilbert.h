#ifndef SPATIALJOIN_ZORDER_HILBERT_H_
#define SPATIALJOIN_ZORDER_HILBERT_H_

#include <cstdint>

#include "geometry/point.h"
#include "zorder/zorder.h"

namespace spatialjoin {

/// Hilbert curve encoding — the other classic space-filling total order.
/// The paper's §2.2 argument is order-agnostic ("similar examples can be
/// constructed for any other spatial ordering"): Hilbert has better
/// locality than z-order (every curve step is a unit step in space) yet
/// still cannot preserve proximity globally; the tests demonstrate both
/// facts.

/// Maps grid coordinates (x, y) in [0, 2^order) to the Hilbert index.
uint64_t XYToHilbert(uint32_t x, uint32_t y, int order);

/// Inverse of XYToHilbert.
void HilbertToXY(uint64_t d, int order, uint32_t* x, uint32_t* y);

/// Hilbert index of the grid cell of `p` under `grid`'s discretization
/// (order = ZCell::kMaxLevel, matching ZGrid::ZValueOf's resolution).
uint64_t HilbertValueOf(const ZGrid& grid, const Point& p);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_ZORDER_HILBERT_H_
