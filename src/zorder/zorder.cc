#include "zorder/zorder.h"

#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

namespace {

// Spreads the low 32 bits of v so bit i moves to position 2i.
uint64_t SpreadBits(uint32_t v) {
  uint64_t x = v;
  x = (x | (x << 16)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x << 8)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x << 4)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x << 2)) & 0x3333333333333333ULL;
  x = (x | (x << 1)) & 0x5555555555555555ULL;
  return x;
}

// Inverse of SpreadBits: collects bits at even positions.
uint32_t CompactBits(uint64_t x) {
  x &= 0x5555555555555555ULL;
  x = (x | (x >> 1)) & 0x3333333333333333ULL;
  x = (x | (x >> 2)) & 0x0F0F0F0F0F0F0F0FULL;
  x = (x | (x >> 4)) & 0x00FF00FF00FF00FFULL;
  x = (x | (x >> 8)) & 0x0000FFFF0000FFFFULL;
  x = (x | (x >> 16)) & 0x00000000FFFFFFFFULL;
  return static_cast<uint32_t>(x);
}

}  // namespace

uint64_t InterleaveBits(uint32_t x, uint32_t y) {
  return SpreadBits(x) | (SpreadBits(y) << 1);
}

void DeinterleaveBits(uint64_t z, uint32_t* x, uint32_t* y) {
  *x = CompactBits(z);
  *y = CompactBits(z >> 1);
}

ZCell ZCell::Child(int q) const {
  SJ_CHECK_GE(q, 0);
  SJ_CHECK_LT(q, 4);
  SJ_CHECK_LT(level, kMaxLevel);
  ZCell child;
  child.level = level + 1;
  uint64_t quarter = (interval_hi() - interval_lo()) / 4;
  child.prefix = prefix + quarter * static_cast<uint64_t>(q);
  return child;
}

std::string ZCell::ToString() const {
  std::ostringstream os;
  os << "z=" << prefix << "/L" << level;
  return os.str();
}

ZGrid::ZGrid(const Rectangle& world) : world_(world) {
  SJ_CHECK(!world.is_empty());
  SJ_CHECK_MSG(world.width() > 0 && world.height() > 0,
               "ZGrid world must have positive extent");
  cell_w_ = world.width() / static_cast<double>(CellsPerAxis());
  cell_h_ = world.height() / static_cast<double>(CellsPerAxis());
}

void ZGrid::CellCoords(const Point& p, uint32_t* cx, uint32_t* cy) const {
  double fx = (p.x - world_.min_x()) / cell_w_;
  double fy = (p.y - world_.min_y()) / cell_h_;
  int64_t ix = static_cast<int64_t>(std::floor(fx));
  int64_t iy = static_cast<int64_t>(std::floor(fy));
  int64_t max_cell = static_cast<int64_t>(CellsPerAxis()) - 1;
  *cx = static_cast<uint32_t>(Clamp<int64_t>(ix, 0, max_cell));
  *cy = static_cast<uint32_t>(Clamp<int64_t>(iy, 0, max_cell));
}

uint64_t ZGrid::ZValueOf(const Point& p) const {
  uint32_t cx = 0;
  uint32_t cy = 0;
  CellCoords(p, &cx, &cy);
  return InterleaveBits(cx, cy);
}

ZCell ZGrid::CellOf(const Point& p) const {
  ZCell cell;
  cell.prefix = ZValueOf(p);
  cell.level = ZCell::kMaxLevel;
  return cell;
}

Rectangle ZGrid::CellRect(const ZCell& cell) const {
  uint32_t cx = 0;
  uint32_t cy = 0;
  DeinterleaveBits(cell.prefix, &cx, &cy);
  uint32_t span = uint32_t{1} << (ZCell::kMaxLevel - cell.level);
  double x0 = world_.min_x() + cell_w_ * static_cast<double>(cx);
  double y0 = world_.min_y() + cell_h_ * static_cast<double>(cy);
  return Rectangle(x0, y0, x0 + cell_w_ * static_cast<double>(span),
                   y0 + cell_h_ * static_cast<double>(span));
}

}  // namespace spatialjoin
