#ifndef SPATIALJOIN_ZORDER_ZORDER_H_
#define SPATIALJOIN_ZORDER_ZORDER_H_

#include <cstdint>
#include <string>

#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// Z-ordering (Peano curves, paper Fig. 1 / Orenstein [Oren86]): a mapping
/// from 2-D grid cells to a 1-D sort key by bit interleaving. The paper uses
/// z-ordering both to illustrate why no spatial total order preserves
/// proximity (§2.2) and as the one workable sort-merge strategy for the
/// `overlaps` operator. This module provides the bit-level machinery; the
/// sort-merge join itself lives in core/sort_merge_zorder.

/// Interleaves the low 32 bits of x and y: bit i of x lands at position 2i,
/// bit i of y at position 2i+1.
uint64_t InterleaveBits(uint32_t x, uint32_t y);

/// Inverse of InterleaveBits.
void DeinterleaveBits(uint64_t z, uint32_t* x, uint32_t* y);

/// A quadtree cell in z-space, identified by its z-prefix and level.
/// Level 0 is the whole space; each level splits every cell in four.
/// The cell covers the half-open z-interval [interval_lo, interval_hi).
struct ZCell {
  /// Z-value of the cell's lowest point at full (kMaxLevel) resolution.
  uint64_t prefix = 0;
  /// Depth in the quadtree; 0 = root cell covering everything.
  int level = 0;

  /// Finest supported subdivision: 2^kMaxLevel × 2^kMaxLevel grid cells.
  static constexpr int kMaxLevel = 24;

  /// First z-value covered by this cell.
  uint64_t interval_lo() const { return prefix; }
  /// One past the last z-value covered by this cell.
  uint64_t interval_hi() const {
    return prefix + (uint64_t{1} << (2 * (kMaxLevel - level)));
  }

  /// True iff this cell contains (or equals) `o` in the quadtree.
  bool ContainsCell(const ZCell& o) const {
    return level <= o.level && interval_lo() <= o.interval_lo() &&
           o.interval_hi() <= interval_hi();
  }

  /// The child cell with index q in 0..3 (z-order of quadrants).
  ZCell Child(int q) const;

  friend bool operator==(const ZCell& a, const ZCell& b) {
    return a.prefix == b.prefix && a.level == b.level;
  }

  /// Renders "z=<prefix>/L<level>".
  std::string ToString() const;
};

/// Maps world coordinates onto the integer grid that z-values index.
/// The grid has 2^kMaxLevel cells per axis over the world rectangle.
class ZGrid {
 public:
  /// `world` is the finite region the grid covers; points outside are
  /// clamped onto the boundary cells.
  explicit ZGrid(const Rectangle& world);

  const Rectangle& world() const { return world_; }

  /// Grid cell coordinates (column, row) of a point.
  void CellCoords(const Point& p, uint32_t* cx, uint32_t* cy) const;

  /// Z-value of the finest-level cell containing `p`.
  uint64_t ZValueOf(const Point& p) const;

  /// The finest-level ZCell containing `p`.
  ZCell CellOf(const Point& p) const;

  /// World-space rectangle covered by a cell.
  Rectangle CellRect(const ZCell& cell) const;

  /// Number of cells per axis at the finest level.
  static constexpr uint32_t CellsPerAxis() {
    return uint32_t{1} << ZCell::kMaxLevel;
  }

 private:
  Rectangle world_;
  double cell_w_;
  double cell_h_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_ZORDER_ZORDER_H_
