#include "workload/scenario_houses_lakes.h"

#include <string>

#include "common/check.h"
#include "common/random.h"
#include "workload/rect_generator.h"

namespace spatialjoin {

Rectangle HousesLakesWorld(const HousesLakesOptions& options) {
  return Rectangle(0, 0, options.world_km, options.world_km);
}

HousesLakesScenario GenerateHousesLakes(const HousesLakesOptions& options,
                                        BufferPool* pool) {
  SJ_CHECK_GE(options.num_houses, 1);
  SJ_CHECK_GE(options.num_lakes, 1);
  Rectangle world = HousesLakesWorld(options);
  RectGenerator gen(world, options.seed);
  Rng rng(options.seed ^ 0x9e3779b97f4a7c15ULL);

  HousesLakesScenario scenario;
  Schema lake_schema({{"lid", ValueType::kInt64},
                      {"name", ValueType::kString},
                      {"larea", ValueType::kPolygon}});
  scenario.lakes = std::make_unique<Relation>("lake", lake_schema, pool);
  std::vector<Polygon> lake_shapes;
  for (int i = 0; i < options.num_lakes; ++i) {
    Polygon shape = gen.NextPolygon(options.lake_min_radius,
                                    options.lake_max_radius,
                                    options.lake_vertices);
    lake_shapes.push_back(shape);
    Tuple tuple({Value(static_cast<int64_t>(i)),
                 Value("lake-" + std::to_string(i)), Value(shape)});
    scenario.lakes->Insert(tuple);
  }

  Schema house_schema({{"hid", ValueType::kInt64},
                       {"hprice", ValueType::kDouble},
                       {"hlocation", ValueType::kPoint}});
  scenario.houses = std::make_unique<Relation>("house", house_schema, pool);
  for (int i = 0; i < options.num_houses; ++i) {
    Point location;
    if (rng.NextBernoulli(2.0 / 3.0)) {
      // Lakeside house: Gaussian scatter around a lake centroid.
      const Polygon& lake = lake_shapes[static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(options.num_lakes)))];
      Point c = lake.Centroid();
      double sigma = options.lake_max_radius;
      do {
        location = Point(c.x + rng.NextGaussian() * sigma,
                         c.y + rng.NextGaussian() * sigma);
      } while (!world.ContainsPoint(location));
    } else {
      location = gen.NextPoint();
    }
    double price = 100000.0 + rng.NextDouble() * 900000.0;
    Tuple tuple({Value(static_cast<int64_t>(i)), Value(price),
                 Value(location)});
    scenario.houses->Insert(tuple);
  }
  return scenario;
}

}  // namespace spatialjoin
