#include "workload/hierarchy_generator.h"

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "common/check.h"

namespace spatialjoin {

namespace {

struct ProtoNode {
  int64_t parent = -1;  // index in BFS order
  Rectangle rect;
  int height = 0;
};

// Splits `parent` into a near-square grid of `fanout` cells, each shrunk
// around its center.
std::vector<Rectangle> SplitCell(const Rectangle& parent, int fanout,
                                 double shrink) {
  int cols = static_cast<int>(std::ceil(std::sqrt(fanout)));
  int rows = (fanout + cols - 1) / cols;
  double cell_w = parent.width() / cols;
  double cell_h = parent.height() / rows;
  std::vector<Rectangle> cells;
  cells.reserve(static_cast<size_t>(fanout));
  for (int i = 0; i < fanout; ++i) {
    int cx = i % cols;
    int cy = i / cols;
    double x0 = parent.min_x() + cell_w * cx;
    double y0 = parent.min_y() + cell_h * cy;
    double margin_w = cell_w * (1.0 - shrink) / 2.0;
    double margin_h = cell_h * (1.0 - shrink) / 2.0;
    cells.emplace_back(x0 + margin_w, y0 + margin_h,
                       x0 + cell_w - margin_w, y0 + cell_h - margin_h);
  }
  return cells;
}

}  // namespace

GeneratedHierarchy GenerateHierarchy(const Rectangle& world,
                                     const HierarchyOptions& options,
                                     BufferPool* pool, RelationLayout layout,
                                     size_t pad_tuples_to,
                                     bool shuffle_storage_order) {
  SJ_CHECK(!world.is_empty());
  SJ_CHECK_GE(options.height, 1);
  SJ_CHECK_GE(options.fanout, 2);
  SJ_CHECK(options.shrink > 0.0 && options.shrink <= 1.0);

  // Lay out the balanced k-ary tree in BFS order.
  std::vector<ProtoNode> nodes;
  nodes.push_back(ProtoNode{-1, world, 0});
  for (size_t i = 0; i < nodes.size(); ++i) {
    if (nodes[i].height >= options.height) continue;
    std::vector<Rectangle> cells =
        SplitCell(nodes[i].rect, options.fanout, options.shrink);
    for (const Rectangle& cell : cells) {
      nodes.push_back(ProtoNode{static_cast<int64_t>(i), cell,
                                nodes[i].height + 1});
    }
  }

  GeneratedHierarchy out;
  Schema schema({{"id", ValueType::kInt64},
                 {"label", ValueType::kString},
                 {"area", ValueType::kRectangle}});
  out.relation = std::make_unique<Relation>(
      "hierarchy", schema, pool, layout, pad_tuples_to);

  // Storage order: BFS (the paper's clustered order) or a deterministic
  // shuffle (strategy IIa's "randomly distributed in the file").
  std::vector<int64_t> storage_order(nodes.size());
  std::iota(storage_order.begin(), storage_order.end(), 0);
  if (shuffle_storage_order) {
    Rng rng(options.seed);
    rng.Shuffle(storage_order);
  }
  std::vector<TupleId> tid_of(nodes.size(), kInvalidTupleId);
  for (int64_t node_idx : storage_order) {
    const ProtoNode& node = nodes[static_cast<size_t>(node_idx)];
    std::string label = "node-" + std::to_string(node_idx) + "-h" +
                        std::to_string(node.height);
    Tuple tuple({Value(static_cast<int64_t>(node_idx)), Value(label),
                 Value(node.rect)});
    tid_of[static_cast<size_t>(node_idx)] = out.relation->Insert(tuple);
  }

  // Build the generalization tree (BFS order keeps parents before
  // children) and back it by the relation.
  out.tree = std::make_unique<MemoryGenTree>();
  std::vector<NodeId> tree_id(nodes.size(), kInvalidNodeId);
  for (size_t i = 0; i < nodes.size(); ++i) {
    NodeId parent = nodes[i].parent < 0
                        ? kInvalidNodeId
                        : tree_id[static_cast<size_t>(nodes[i].parent)];
    tree_id[i] = out.tree->AddNode(parent, Value(nodes[i].rect), tid_of[i],
                                   "node-" + std::to_string(i));
  }
  out.tree->AttachRelation(out.relation.get(), out.spatial_column);
  return out;
}

}  // namespace spatialjoin
