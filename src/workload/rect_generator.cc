#include "workload/rect_generator.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace spatialjoin {

RectGenerator::RectGenerator(const Rectangle& world, uint64_t seed)
    : world_(world), rng_(seed) {
  SJ_CHECK(!world.is_empty());
  SJ_CHECK(world.width() > 0 && world.height() > 0);
}

Point RectGenerator::NextPoint() {
  return Point(rng_.NextDouble(world_.min_x(), world_.max_x()),
               rng_.NextDouble(world_.min_y(), world_.max_y()));
}

Rectangle RectGenerator::NextRect(double min_extent, double max_extent) {
  SJ_CHECK(0 <= min_extent && min_extent <= max_extent);
  double w = rng_.NextDouble(min_extent, max_extent);
  double h = rng_.NextDouble(min_extent, max_extent);
  w = std::min(w, world_.width());
  h = std::min(h, world_.height());
  double x = rng_.NextDouble(world_.min_x(), world_.max_x() - w);
  double y = rng_.NextDouble(world_.min_y(), world_.max_y() - h);
  return Rectangle(x, y, x + w, y + h);
}

Polygon RectGenerator::NextPolygon(double min_radius, double max_radius,
                                   int num_vertices) {
  SJ_CHECK(0 < min_radius && min_radius <= max_radius);
  SJ_CHECK_GE(num_vertices, 3);
  // Keep the whole disk inside the world.
  Point center(
      rng_.NextDouble(world_.min_x() + max_radius,
                      world_.max_x() - max_radius),
      rng_.NextDouble(world_.min_y() + max_radius,
                      world_.max_y() - max_radius));
  std::vector<Point> ring;
  ring.reserve(static_cast<size_t>(num_vertices));
  for (int i = 0; i < num_vertices; ++i) {
    double angle = 2.0 * M_PI * static_cast<double>(i) /
                   static_cast<double>(num_vertices);
    double radius = rng_.NextDouble(min_radius, max_radius);
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(std::move(ring));
}

std::vector<Rectangle> RectGenerator::Rects(int count, double min_extent,
                                            double max_extent) {
  std::vector<Rectangle> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(NextRect(min_extent,
                                                         max_extent));
  return out;
}

std::vector<Point> RectGenerator::Points(int count) {
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(count));
  for (int i = 0; i < count; ++i) out.push_back(NextPoint());
  return out;
}

std::vector<Point> RectGenerator::ClusteredPoints(int count,
                                                  int cluster_count,
                                                  double cluster_sigma) {
  SJ_CHECK_GE(cluster_count, 1);
  SJ_CHECK_GT(cluster_sigma, 0.0);
  std::vector<Point> centers = Points(cluster_count);
  std::vector<Point> out;
  out.reserve(static_cast<size_t>(count));
  while (static_cast<int>(out.size()) < count) {
    const Point& c =
        centers[static_cast<size_t>(rng_.NextUint64(
            static_cast<uint64_t>(cluster_count)))];
    Point p(c.x + rng_.NextGaussian() * cluster_sigma,
            c.y + rng_.NextGaussian() * cluster_sigma);
    if (world_.ContainsPoint(p)) out.push_back(p);
  }
  return out;
}

}  // namespace spatialjoin
