#ifndef SPATIALJOIN_WORKLOAD_HIERARCHY_GENERATOR_H_
#define SPATIALJOIN_WORKLOAD_HIERARCHY_GENERATOR_H_

#include <memory>

#include "common/random.h"
#include "core/memory_gentree.h"
#include "geometry/rectangle.h"
#include "relational/relation.h"

namespace spatialjoin {

/// Parameters for a synthetic cartographic hierarchy (paper Fig. 3 /
/// model assumptions S1–S2: a balanced k-ary tree of height n where every
/// node is an application object).
struct HierarchyOptions {
  int height = 3;   ///< the model's n (root at 0)
  int fanout = 4;   ///< the model's k
  /// Each child rectangle is the parent cell scaled by this factor around
  /// its center, creating the dead space real hierarchies have. 1.0 tiles
  /// the parent exactly.
  double shrink = 0.9;
  uint64_t seed = 42;
};

/// A generated hierarchy: the relation storing one tuple per node
/// (columns: id INT64, label STRING, area RECTANGLE) plus the
/// generalization tree over it (attached, so Geometry() pays tuple I/O).
struct GeneratedHierarchy {
  std::unique_ptr<Relation> relation;
  std::unique_ptr<MemoryGenTree> tree;
  /// Column of the spatial attribute in `relation`.
  size_t spatial_column = 2;
};

/// Builds a balanced k-ary hierarchy of nested rectangles over `world`.
/// Children split their parent's cell in a near-square grid and shrink by
/// `options.shrink`. Tuples are inserted in breadth-first tree order, so
/// with RelationLayout::kClustered the physical layout is exactly the
/// paper's strategy-IIb clustering; kHeap gives IIa after shuffling is
/// not needed (heap order is BFS too, so IIa uses a shuffled insertion —
/// see `shuffle_storage_order`).
GeneratedHierarchy GenerateHierarchy(const Rectangle& world,
                                     const HierarchyOptions& options,
                                     BufferPool* pool, RelationLayout layout,
                                     size_t pad_tuples_to = 0,
                                     bool shuffle_storage_order = false);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_WORKLOAD_HIERARCHY_GENERATOR_H_
