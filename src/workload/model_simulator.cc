#include "workload/model_simulator.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_set>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"

namespace spatialjoin {

namespace {

// Deterministic page placement for the unclustered layout.
int64_t HashPage(int height, int64_t index, uint64_t salt, int64_t pages) {
  uint64_t x = salt ^ (static_cast<uint64_t>(height) << 56) ^
               static_cast<uint64_t>(index);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  x ^= x >> 31;
  return static_cast<int64_t>(x % static_cast<uint64_t>(pages));
}

// Conditional probability of a child Θ-match given the parent matched,
// under the hierarchical coupling (marginal at height i is pi_i).
double ConditionalRatio(double pi_child, double pi_parent) {
  if (pi_parent <= 0.0) return 0.0;
  return Clamp(pi_child / pi_parent, 0.0, 1.0);
}

}  // namespace

SimulatedSelect SimulateSelect(const ModelParameters& params,
                               MatchDistribution dist, uint64_t seed) {
  PiTable pi(dist, params.n, params.k, params.p);
  Rng rng(seed);
  SimulatedSelect result;
  const int n = params.n;
  const int h = params.h;
  const int64_t k = params.k;
  const int64_t pages = params.RelationPages();

  struct VNode {
    int64_t index;  // position within its level, 0 .. k^height − 1
  };

  result.nodes_examined = 1;  // the root is always checked
  std::vector<VNode> matched;
  if (rng.NextBernoulli(pi.pi(h, 0))) {
    matched.push_back(VNode{0});
    result.matches = 1;
  }

  for (int i = 0; i < n && !matched.empty(); ++i) {
    double ratio = ConditionalRatio(pi.pi(h, i + 1), pi.pi(h, i));
    std::vector<VNode> next;
    std::unordered_set<int64_t> level_pages_unclustered;
    std::unordered_set<int64_t> level_pages_clustered;
    for (const VNode& node : matched) {
      for (int64_t c = 0; c < k; ++c) {
        int64_t child_index = node.index * k + c;
        ++result.nodes_examined;
        level_pages_unclustered.insert(
            HashPage(i + 1, child_index, seed * 2654435761u, pages));
        // Clustered accounting uses the model's unit: one fetch per
        // k-sibling "record" (§4.3 — "one needs to fetch a 'record'
        // containing k nodes"), i.e. one per matching parent.
        level_pages_clustered.insert(node.index);
        if (rng.NextBernoulli(ratio)) {
          ++result.matches;
          next.push_back(VNode{child_index});
        }
      }
    }
    result.pages_unclustered +=
        static_cast<int64_t>(level_pages_unclustered.size());
    result.pages_clustered +=
        static_cast<int64_t>(level_pages_clustered.size());
    matched = std::move(next);
  }
  return result;
}

namespace {

// Simulates one JOIN4 selection pass: the anchor node sits at height
// `anchor_height`; its subtree below runs from anchor_height+1 to n with
// marginal match probabilities pi(selector_height, j). Returns the number
// of nodes examined; `matched_children_out` gets the count of matched
// *direct* children (they seed the next QualPairs level).
int64_t SimulatePass(const PiTable& pi, Rng& rng, int selector_height,
                     int anchor_height, int n, int64_t k,
                     int64_t* matched_children_out) {
  int64_t examined = 0;
  // The paper prices each pass with the *unconditional* SELECT formula
  // C_II^Θ, under which even the anchor node matches only with marginal
  // probability π(i,i) — it does not exploit that the pass only runs
  // because the anchor pair already Θ-matched. The simulation mirrors
  // that approximation: the anchor re-matches with π(i,i), descendants
  // follow the hierarchical ratio chain.
  int64_t matched =
      rng.NextBernoulli(pi.pi(selector_height, anchor_height)) ? 1 : 0;
  double prev_pi = pi.pi(selector_height, anchor_height);
  *matched_children_out = 0;
  for (int j = anchor_height + 1; j <= n && matched > 0; ++j) {
    double ratio = ConditionalRatio(pi.pi(selector_height, j), prev_pi);
    prev_pi = pi.pi(selector_height, j);
    int64_t children = matched * k;
    examined += children;
    int64_t next_matched = 0;
    for (int64_t c = 0; c < children; ++c) {
      if (rng.NextBernoulli(ratio)) ++next_matched;
    }
    if (j == anchor_height + 1) *matched_children_out = next_matched;
    matched = next_matched;
  }
  return examined;
}

}  // namespace

SimulatedJoin SimulateJoin(const ModelParameters& params,
                           MatchDistribution dist, uint64_t seed) {
  PiTable pi(dist, params.n, params.k, params.p);
  Rng rng(seed);
  SimulatedJoin result;
  const int n = params.n;
  const int64_t k = params.k;

  // Matched pairs per level, per the model's approximation: level i holds
  // Binomial(k^{2i}, π_{i,i−1}) matched pairs (π_{0,−1} = 1); each pays
  // one pair test plus two selection passes over the partner subtrees.
  for (int i = 0; i <= n; ++i) {
    double pair_prob = pi.pi(i == 0 ? 0 : i, i == 0 ? -1 : i - 1);
    int64_t population = IPow(k, 2 * i);
    int64_t matched_pairs = 0;
    if (pair_prob >= 1.0) {
      matched_pairs = population;
    } else if (pair_prob > 0.0) {
      // Draw Binomial(population, pair_prob); for large populations use
      // the normal approximation to keep the simulation O(matched).
      if (population <= 100000) {
        for (int64_t t = 0; t < population; ++t) {
          if (rng.NextBernoulli(pair_prob)) ++matched_pairs;
        }
      } else {
        double mean = static_cast<double>(population) * pair_prob;
        double sd = std::sqrt(mean * (1.0 - pair_prob));
        matched_pairs = std::max<int64_t>(
            0, static_cast<int64_t>(mean + sd * rng.NextGaussian() + 0.5));
      }
    }
    result.qual_pairs += matched_pairs;
    for (int64_t q = 0; q < matched_pairs; ++q) {
      int64_t dummy = 0;
      int64_t pass1 = SimulatePass(pi, rng, i, i, n, k, &dummy);
      int64_t pass2 = SimulatePass(pi, rng, i, i, n, k, &dummy);
      // 1 for the pair check; each pass examined that many more nodes.
      result.theta_evaluations += 1 + pass1 + pass2;
    }
  }
  return result;
}

}  // namespace spatialjoin
