#ifndef SPATIALJOIN_WORKLOAD_SCENARIO_ROADS_TOWNS_H_
#define SPATIALJOIN_WORKLOAD_SCENARIO_ROADS_TOWNS_H_

#include <memory>

#include "geometry/polyline.h"
#include "geometry/rectangle.h"
#include "relational/relation.h"
#include "storage/buffer_pool.h"

namespace spatialjoin {

/// A second end-to-end scenario exercising curve geometry (the paper's
/// "lines … and curves" data types):
///   road(rid INT64, name STRING, course POLYLINE)
///   town(tid INT64, name STRING, area RECTANGLE)
/// with queries like "towns crossed by a road" (overlaps) and "towns
/// reachable from road X in t minutes" (the Table-1 buffer operator).
struct RoadsTownsScenario {
  std::unique_ptr<Relation> roads;
  std::unique_ptr<Relation> towns;
  size_t road_course_column = 2;
  size_t town_area_column = 2;
};

struct RoadsTownsOptions {
  int num_roads = 30;
  int num_towns = 200;
  double world_km = 300.0;
  /// Roads are random walks with this many waypoints.
  int road_waypoints = 12;
  /// Step length between waypoints (km).
  double road_step_km = 25.0;
  /// Town square side lengths (km).
  double town_min_km = 1.0;
  double town_max_km = 6.0;
  /// Fraction of towns snapped near a road (the rest scatter uniformly).
  double roadside_fraction = 0.6;
  uint64_t seed = 17;
};

/// Generates the scenario; roadside towns cluster within a few km of a
/// road waypoint so distance/overlap joins have realistic locality.
RoadsTownsScenario GenerateRoadsTowns(const RoadsTownsOptions& options,
                                      BufferPool* pool);

/// The world rectangle of a scenario generated with `options`.
Rectangle RoadsTownsWorld(const RoadsTownsOptions& options);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_WORKLOAD_SCENARIO_ROADS_TOWNS_H_
