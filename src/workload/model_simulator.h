#ifndef SPATIALJOIN_WORKLOAD_MODEL_SIMULATOR_H_
#define SPATIALJOIN_WORKLOAD_MODEL_SIMULATOR_H_

#include <cstdint>

#include "costmodel/distributions.h"
#include "costmodel/parameters.h"

namespace spatialjoin {

/// Monte-Carlo validation of the analytical cost model (experiment E1):
/// runs Algorithm SELECT / the JOIN worklist process on a *virtual*
/// balanced k-ary tree whose Θ-oracle draws matches at exactly the
/// marginal probabilities π_{h,i} of the chosen distribution.
///
/// Draws are hierarchically coupled — a node can only Θ-match if its
/// parent did, with conditional probability π_{h,i}/π_{h,i−1} — which is
/// the coupling under which the paper's level-by-level expectations
/// (π_{h,i}·k^{i+1} nodes examined at height i+1) are exact: for real,
/// containment-monotone Θ operators a match implies all ancestors match,
/// so every matching node is reached by the traversal. Means over seeds
/// therefore converge to the closed-form predictions.

/// Counters from one simulated spatial selection.
struct SimulatedSelect {
  /// Nodes examined (= Θ evaluations), including the root.
  int64_t nodes_examined = 0;
  /// Θ-matching nodes.
  int64_t matches = 0;
  /// Distinct data pages touched, unclustered placement (per-level
  /// distinct counts summed, matching the model's per-level Yao sum;
  /// root excluded — it is pinned in memory).
  int64_t pages_unclustered = 0;
  /// Fetches with breadth-first clustering, in the model's unit: one
  /// k-sibling "record" per matching parent (paper §4.3).
  int64_t pages_clustered = 0;
};

/// Simulates one SELECT with the given parameters, distribution, and
/// seed. The selector sits at height params.h of its own tree (leftmost
/// branch), as in the study.
SimulatedSelect SimulateSelect(const ModelParameters& params,
                               MatchDistribution dist, uint64_t seed);

/// Counters from one simulated general-join computation (computation
/// cost only; the I/O model reuses the SELECT machinery).
struct SimulatedJoin {
  /// Pairs that entered the QualPairs worklists.
  int64_t qual_pairs = 0;
  /// Total Θ/θ evaluations across JOIN2/JOIN3/JOIN4 (the model's D_II^Θ
  /// in units of C_θ).
  int64_t theta_evaluations = 0;
};

/// Simulates the JOIN worklist process. Intended for scaled-down
/// parameters (e.g. n = 3, k = 4): the pair population grows as k^{2i}.
SimulatedJoin SimulateJoin(const ModelParameters& params,
                           MatchDistribution dist, uint64_t seed);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_WORKLOAD_MODEL_SIMULATOR_H_
