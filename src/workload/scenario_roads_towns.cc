#include "workload/scenario_roads_towns.h"

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"

namespace spatialjoin {

Rectangle RoadsTownsWorld(const RoadsTownsOptions& options) {
  return Rectangle(0, 0, options.world_km, options.world_km);
}

RoadsTownsScenario GenerateRoadsTowns(const RoadsTownsOptions& options,
                                      BufferPool* pool) {
  SJ_CHECK_GE(options.num_roads, 1);
  SJ_CHECK_GE(options.num_towns, 1);
  SJ_CHECK_GE(options.road_waypoints, 2);
  Rectangle world = RoadsTownsWorld(options);
  Rng rng(options.seed);

  RoadsTownsScenario scenario;
  Schema road_schema({{"rid", ValueType::kInt64},
                      {"name", ValueType::kString},
                      {"course", ValueType::kPolyline}});
  scenario.roads = std::make_unique<Relation>("road", road_schema, pool);

  std::vector<Polyline> courses;
  for (int i = 0; i < options.num_roads; ++i) {
    // Random walk with momentum: heading drifts, steps clamp into the
    // world so the polyline never escapes.
    Point position(rng.NextDouble(world.min_x(), world.max_x()),
                   rng.NextDouble(world.min_y(), world.max_y()));
    double heading = rng.NextDouble(0, 2.0 * M_PI);
    std::vector<Point> waypoints{position};
    for (int w = 1; w < options.road_waypoints; ++w) {
      heading += rng.NextGaussian() * 0.5;
      position.x += options.road_step_km * std::cos(heading);
      position.y += options.road_step_km * std::sin(heading);
      position.x = Clamp(position.x, world.min_x(), world.max_x());
      position.y = Clamp(position.y, world.min_y(), world.max_y());
      // Clamping can create zero-length steps; nudge to keep the
      // polyline simple enough for distance computations.
      if (position == waypoints.back()) {
        heading += M_PI / 2.0;
        continue;
      }
      waypoints.push_back(position);
    }
    if (waypoints.size() < 2) {
      waypoints.push_back(Point(waypoints[0].x + 1.0, waypoints[0].y));
    }
    Polyline course(waypoints);
    courses.push_back(course);
    scenario.roads->Insert(Tuple({Value(static_cast<int64_t>(i)),
                                  Value("road-" + std::to_string(i)),
                                  Value(course)}));
  }

  Schema town_schema({{"tid", ValueType::kInt64},
                      {"name", ValueType::kString},
                      {"area", ValueType::kRectangle}});
  scenario.towns = std::make_unique<Relation>("town", town_schema, pool);
  for (int i = 0; i < options.num_towns; ++i) {
    double side = rng.NextDouble(options.town_min_km, options.town_max_km);
    Point center;
    if (rng.NextBernoulli(options.roadside_fraction)) {
      const Polyline& road = courses[static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(courses.size())))];
      const auto& vs = road.vertices();
      const Point& anchor = vs[static_cast<size_t>(
          rng.NextUint64(static_cast<uint64_t>(vs.size())))];
      center = Point(anchor.x + rng.NextGaussian() * 4.0,
                     anchor.y + rng.NextGaussian() * 4.0);
    } else {
      center = Point(rng.NextDouble(world.min_x(), world.max_x()),
                     rng.NextDouble(world.min_y(), world.max_y()));
    }
    double half = side / 2.0;
    double x0 = Clamp(center.x - half, world.min_x(), world.max_x() - side);
    double y0 = Clamp(center.y - half, world.min_y(), world.max_y() - side);
    Rectangle area(x0, y0, x0 + side, y0 + side);
    scenario.towns->Insert(Tuple({Value(static_cast<int64_t>(i)),
                                  Value("town-" + std::to_string(i)),
                                  Value(area)}));
  }
  return scenario;
}

}  // namespace spatialjoin
