#ifndef SPATIALJOIN_WORKLOAD_SCENARIO_HOUSES_LAKES_H_
#define SPATIALJOIN_WORKLOAD_SCENARIO_HOUSES_LAKES_H_

#include <memory>

#include "geometry/rectangle.h"
#include "relational/relation.h"
#include "storage/buffer_pool.h"

namespace spatialjoin {

/// The paper's running example (§1, §2.2):
///   house(hid INT64, hprice DOUBLE, hlocation POINT)
///   lake(lid INT64, name STRING, larea POLYGON)
/// and the query "find all houses within 10 kilometers from a lake".
struct HousesLakesScenario {
  std::unique_ptr<Relation> houses;
  std::unique_ptr<Relation> lakes;
  size_t house_location_column = 2;
  size_t lake_area_column = 2;
};

/// Options for the generator. Coordinates are in kilometers.
struct HousesLakesOptions {
  int num_houses = 2000;
  int num_lakes = 50;
  double world_km = 200.0;       ///< square world side length
  double lake_min_radius = 1.0;  ///< km
  double lake_max_radius = 8.0;  ///< km
  int lake_vertices = 12;
  uint64_t seed = 7;
};

/// Generates the scenario: houses cluster around lakes (two thirds) and
/// scatter uniformly elsewhere (one third), so distance joins have
/// realistic locality.
HousesLakesScenario GenerateHousesLakes(const HousesLakesOptions& options,
                                        BufferPool* pool);

/// The world rectangle of a scenario generated with `options`.
Rectangle HousesLakesWorld(const HousesLakesOptions& options);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_WORKLOAD_SCENARIO_HOUSES_LAKES_H_
