#ifndef SPATIALJOIN_WORKLOAD_RECT_GENERATOR_H_
#define SPATIALJOIN_WORKLOAD_RECT_GENERATOR_H_

#include <vector>

#include "common/random.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// Synthetic spatial data for the empirical experiments: uniformly placed
/// rectangles, points, and simple polygons inside a world rectangle.
/// Extent parameters control selectivity (bigger objects ⇒ more overlap
/// matches).
class RectGenerator {
 public:
  RectGenerator(const Rectangle& world, uint64_t seed);

  const Rectangle& world() const { return world_; }

  /// A random point uniform in the world.
  Point NextPoint();

  /// A random rectangle with side lengths uniform in
  /// [min_extent, max_extent], clipped to stay inside the world.
  Rectangle NextRect(double min_extent, double max_extent);

  /// A random convex polygon: a regular n-gon with per-vertex radius
  /// jitter (stays simple because vertices keep their angular order).
  Polygon NextPolygon(double min_radius, double max_radius,
                      int num_vertices);

  /// `count` rectangles at once.
  std::vector<Rectangle> Rects(int count, double min_extent,
                               double max_extent);

  /// `count` points at once.
  std::vector<Point> Points(int count);

  /// A point set with `cluster_count` Gaussian clusters (for skewed-data
  /// experiments); points falling outside the world are re-drawn.
  std::vector<Point> ClusteredPoints(int count, int cluster_count,
                                     double cluster_sigma);

 private:
  Rectangle world_;
  Rng rng_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_WORKLOAD_RECT_GENERATOR_H_
