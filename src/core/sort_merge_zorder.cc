#include "core/sort_merge_zorder.h"

#include <algorithm>
#include <set>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

namespace {

struct SweepEntry {
  uint64_t lo = 0;
  uint64_t hi = 0;
  TupleId tid = kInvalidTupleId;
  bool from_r = true;
};

}  // namespace

JoinResult SortMergeZOrderJoin(const Relation& r, size_t col_r,
                               const Relation& s, size_t col_s,
                               const ThetaOperator& op, const ZGrid& grid,
                               const ZDecomposeOptions& options,
                               ZOrderJoinStats* stats,
                               const exec::CancelToken* cancel) {
  JoinResult result;
  ZOrderJoinStats local_stats;

  // Phase 1: decompose every object into z-cells ("sort keys"). MBRs are
  // padded by one finest grid cell so that closed-rectangle contacts that
  // fall exactly on a cell boundary still produce a shared cell (the
  // quadtree decomposition treats cells as half-open); the padding only
  // adds candidates, which the θ verification filters out.
  double epsilon =
      std::max(grid.world().width(), grid.world().height()) /
      static_cast<double>(ZGrid::CellsPerAxis());
  std::vector<SweepEntry> entries;
  auto decompose_relation = [&](const Relation& rel, size_t col,
                                bool from_r, int64_t* cell_count) {
    rel.Scan([&](TupleId tid, const Tuple& tuple) {
      ++result.nodes_accessed;
      Rectangle mbr = tuple.value(col).Mbr().Expanded(epsilon);
      for (const ZCell& cell : DecomposeRectangle(mbr, grid, options)) {
        SJ_BOUNDED_WORK;  // one object's cells, capped by options.max_cells
        entries.push_back(SweepEntry{cell.interval_lo(), cell.interval_hi(),
                                     tid, from_r});
        ++*cell_count;
      }
    });
  };
  decompose_relation(r, col_r, true, &local_stats.z_cells_r);
  decompose_relation(s, col_s, false, &local_stats.z_cells_s);

  // Phase 2: sort. Containing intervals order before contained ones so
  // ancestors are on the stack when descendants arrive.
  std::sort(entries.begin(), entries.end(),
            [](const SweepEntry& a, const SweepEntry& b) {
              if (a.lo != b.lo) return a.lo < b.lo;
              return a.hi > b.hi;
            });

  // Phase 3: merge. Quadtree z-intervals are pairwise nested or disjoint,
  // so a stack of "open" intervals holds exactly the ancestors of the
  // current position; every opposite-side member shares a cell with the
  // arriving entry.
  std::vector<SweepEntry> stack;
  std::set<std::pair<TupleId, TupleId>> candidates;
  for (const SweepEntry& e : entries) {
    if (cancel != nullptr && cancel->ShouldStop()) break;
    while (!stack.empty() && stack.back().hi <= e.lo) {
      SJ_BOUNDED_WORK;  // pops the open-interval stack; the sweep polls
      stack.pop_back();
    }
    for (const SweepEntry& open : stack) {
      SJ_BOUNDED_WORK;  // open ancestors of one entry; the sweep polls
      if (open.from_r == e.from_r) continue;
      ++local_stats.candidate_pairs;
      std::pair<TupleId, TupleId> pair =
          e.from_r ? std::make_pair(e.tid, open.tid)
                   : std::make_pair(open.tid, e.tid);
      if (!candidates.insert(pair).second) {
        ++local_stats.duplicates_suppressed;
      }
    }
    stack.push_back(e);
  }

  // Phase 4: verify candidates with the exact θ test.
  for (const auto& [r_tid, s_tid] : candidates) {
    if (cancel != nullptr && cancel->ShouldStop()) break;
    Value r_value = r.Read(r_tid).value(col_r);
    Value s_value = s.Read(s_tid).value(col_s);
    result.nodes_accessed += 2;
    ++result.theta_tests;
    if (op.Theta(r_value, s_value)) {
      result.matches.emplace_back(r_tid, s_tid);
    }
  }

  if (stats != nullptr) *stats = local_stats;
  return result;
}

}  // namespace spatialjoin
