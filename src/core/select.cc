#include "core/select.h"

#include <deque>

#include "common/check.h"

namespace spatialjoin {

namespace {

// Visits `node`: Θ-test, then on success θ-test + match bookkeeping, and
// returns whether the children should be expanded.
bool VisitNode(const Value& selector, const GeneralizationTree& tree,
               const ThetaOperator& op, NodeId node, SelectResult* result) {
  ++result->theta_upper_tests;
  if (!op.ThetaUpper(selector.Mbr(), tree.MbrOf(node))) return false;
  // The node qualifies at index level; fetch its object and apply θ.
  Value geometry = tree.Geometry(node);
  ++result->nodes_accessed;
  ++result->theta_tests;
  if (op.Theta(selector, geometry)) {
    result->matching_nodes.push_back(node);
    if (tree.IsApplicationNode(node)) {
      result->matching_tuples.push_back(tree.TupleOf(node));
    }
  }
  return true;
}

}  // namespace

SelectResult SpatialSelectFrom(const Value& selector,
                               const GeneralizationTree& tree,
                               const std::vector<NodeId>& start_nodes,
                               const ThetaOperator& op, Traversal traversal) {
  SelectResult result;
  if (traversal == Traversal::kBreadthFirst) {
    // The paper's SELECT1/SELECT2: QualNodes[j] per height, processed in
    // height order. A deque models the concatenated QualNodes lists.
    std::deque<NodeId> worklist(start_nodes.begin(), start_nodes.end());
    while (!worklist.empty()) {
      NodeId node = worklist.front();
      worklist.pop_front();
      if (VisitNode(selector, tree, op, node, &result)) {
        for (NodeId child : tree.Children(node)) worklist.push_back(child);
      }
    }
  } else {
    // Depth-first variant: LIFO stack, children pushed in reverse so the
    // leftmost subtree is explored first.
    std::vector<NodeId> stack(start_nodes.rbegin(), start_nodes.rend());
    while (!stack.empty()) {
      NodeId node = stack.back();
      stack.pop_back();
      if (VisitNode(selector, tree, op, node, &result)) {
        std::vector<NodeId> children = tree.Children(node);
        for (auto it = children.rbegin(); it != children.rend(); ++it) {
          stack.push_back(*it);
        }
      }
    }
  }
  return result;
}

SelectResult SpatialSelect(const Value& selector,
                           const GeneralizationTree& tree,
                           const ThetaOperator& op, Traversal traversal) {
  return SpatialSelectFrom(selector, tree, {tree.root()}, op, traversal);
}

}  // namespace spatialjoin
