#include "core/select.h"

#include <deque>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "exec/cancel.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

namespace {

// Visits `node`: Θ-test, then on success θ-test + match bookkeeping, and
// returns whether the children should be expanded. When tracing, the
// visit is attributed to the trace level of the node's height (for the
// breadth-first variant that height is exactly the QualNodes[j] index).
bool VisitNode(const Value& selector, const GeneralizationTree& tree,
               const ThetaOperator& op, NodeId node, SelectResult* result,
               QueryTrace* trace) {
  TraceLevel* level = nullptr;
  PoolSnapshot pool_before;
  int64_t start_ns = 0;
  if (trace != nullptr) {
    level = &trace->Level(tree.HeightOf(node));
    ++level->worklist;
    pool_before = PoolSnapshot::Take();
    start_ns = MonotonicNowNs();
  }

  ++result->theta_upper_tests;
  bool expand = op.ThetaUpper(selector.Mbr(), tree.MbrOf(node));
  if (expand) {
    // The node qualifies at index level; fetch its object and apply θ.
    Value geometry = tree.Geometry(node);
    ++result->nodes_accessed;
    ++result->theta_tests;
    if (op.Theta(selector, geometry)) {
      result->matching_nodes.push_back(node);
      if (tree.IsApplicationNode(node)) {
        result->matching_tuples.push_back(tree.TupleOf(node));
      }
    }
  }

  if (level != nullptr) {
    ++level->theta_upper_tests;
    if (expand) {
      ++level->theta_tests;
      ++level->descended;
    } else {
      ++level->pruned;
    }
    PoolSnapshot pool_delta = PoolSnapshot::Take() - pool_before;
    level->pool_hits += pool_delta.hits;
    level->pool_misses += pool_delta.misses;
    level->wall_ns += static_cast<double>(MonotonicNowNs() - start_ns);
  }
  return expand;
}

// Timeline span per QualNodes height. The BFS worklist is processed in
// height order, so one span opens when the frontier reaches a new height
// and closes at the next transition (explicit TraceBegin/TraceEnd — the
// extent crosses loop iterations, so RAII does not fit).
class LevelSpans {
 public:
  ~LevelSpans() {
    if (open_) TraceEnd("select.level", "core");
  }

  void OnNode(const GeneralizationTree& tree, NodeId node) {
    if (!Tracing::enabled()) return;
    int height = tree.HeightOf(node);
    if (open_ && height == height_) return;
    if (open_) TraceEnd("select.level", "core");
    TraceBegin("select.level", "core");
    open_ = true;
    height_ = height;
  }

 private:
  bool open_ = false;
  int height_ = 0;
};

}  // namespace

SelectResult SpatialSelectFrom(const Value& selector,
                               const GeneralizationTree& tree,
                               const std::vector<NodeId>& start_nodes,
                               const ThetaOperator& op, Traversal traversal,
                               QueryTrace* trace,
                               const exec::CancelToken* cancel) {
  SelectResult result;
  // Already cancelled / past deadline at entry: do no work at all (the
  // deterministic guarantee the deadline tests pin).
  if (cancel != nullptr && cancel->ShouldStop()) return result;
  // Watchdog heartbeat every 256 visits: SELECT has no cheap per-level
  // boundary in the DFS variant, and a per-node clock read would be
  // measurable on the traversal hot path; the stride keeps a healthy
  // traversal's heartbeat far fresher than any plausible stall budget at
  // negligible cost. The cancel token is polled on the same stride — one
  // relaxed load (plus a clock read only with a deadline armed), and
  // finer-grained than a level boundary.
  uint32_t visits = 0;
  if (traversal == Traversal::kBreadthFirst) {
    // The paper's SELECT1/SELECT2: QualNodes[j] per height, processed in
    // height order. A deque models the concatenated QualNodes lists.
    LevelSpans spans;
    std::deque<NodeId> worklist(start_nodes.begin(), start_nodes.end());
    while (!worklist.empty()) {
      NodeId node = worklist.front();
      worklist.pop_front();
      spans.OnNode(tree, node);
      if ((++visits & 0xFF) == 0) {
        ActivityScope::BeatThisThread();
        if (cancel != nullptr && cancel->ShouldStop()) break;
      }
      if (VisitNode(selector, tree, op, node, &result, trace)) {
        for (NodeId child : tree.Children(node)) {
          SJ_BOUNDED_WORK;  // one node's children; the visit loop polls
          worklist.push_back(child);
        }
      }
    }
  } else {
    // Depth-first variant: LIFO stack, children pushed in reverse so the
    // leftmost subtree is explored first. Heights interleave, so the
    // whole traversal is one span rather than one per level.
    SJ_SPAN_CAT("select.depth_first", "core");
    std::vector<NodeId> stack(start_nodes.rbegin(), start_nodes.rend());
    while (!stack.empty()) {
      NodeId node = stack.back();
      stack.pop_back();
      if ((++visits & 0xFF) == 0) {
        ActivityScope::BeatThisThread();
        if (cancel != nullptr && cancel->ShouldStop()) break;
      }
      if (VisitNode(selector, tree, op, node, &result, trace)) {
        std::vector<NodeId> children = tree.Children(node);
        for (auto it = children.rbegin(); it != children.rend(); ++it) {
          SJ_BOUNDED_WORK;  // one node's children; the visit loop polls
          stack.push_back(*it);
        }
      }
    }
  }
  return result;
}

SelectResult SpatialSelect(const Value& selector,
                           const GeneralizationTree& tree,
                           const ThetaOperator& op, Traversal traversal,
                           QueryTrace* trace,
                           const exec::CancelToken* cancel) {
  return SpatialSelectFrom(selector, tree, {tree.root()}, op, traversal,
                           trace, cancel);
}

}  // namespace spatialjoin
