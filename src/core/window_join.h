#ifndef SPATIALJOIN_CORE_WINDOW_JOIN_H_
#define SPATIALJOIN_CORE_WINDOW_JOIN_H_

#include "core/join.h"
#include "core/theta_ops.h"
#include "gridfile/grid_file.h"
#include "relational/relation.h"
#include "rtree/rtree.h"

namespace spatialjoin {

/// Window-probe joins: the index-supported strategy in the form Rotem
/// demonstrated for grid files (paper §2.2) — scan one relation and, for
/// each tuple, issue a rectangular window query against the other
/// relation's access method. The window comes from the operator's
/// ProbeWindow derivation (Θ(a,b) ⇒ MBR(a) overlaps W(b)), so the probe
/// is complete; candidates are verified with the exact θ.
///
/// Both functions are checked errors if the operator has no finite probe
/// window (use Algorithm SELECT / JOIN instead — tree descent supports
/// every Θ).

/// R indexed by a native R-tree: for each S tuple, window-search the
/// R-tree, then θ-verify against the R tuples.
JoinResult RTreeWindowJoin(const RTree& r_index, const Relation& r,
                           size_t col_r, const Relation& s, size_t col_s,
                           const ThetaOperator& op, const Rectangle& world);

/// R's points indexed by a grid file (point geometry only): for each S
/// tuple, window-search the grid file, then θ-verify.
JoinResult GridFileWindowJoin(const GridFile& r_index, const Relation& r,
                              size_t col_r, const Relation& s, size_t col_s,
                              const ThetaOperator& op);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_WINDOW_JOIN_H_
