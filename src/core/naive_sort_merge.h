#ifndef SPATIALJOIN_CORE_NAIVE_SORT_MERGE_H_
#define SPATIALJOIN_CORE_NAIVE_SORT_MERGE_H_

#include "core/join.h"
#include "core/theta_ops.h"
#include "relational/relation.h"
#include "zorder/zorder.h"

namespace spatialjoin {

/// The total order used by the naive sort-merge strawman. Hilbert has
/// strictly better locality than z-order, but the paper's impossibility
/// argument applies to both (and the tests show both stay incomplete).
enum class SortCurve {
  kZOrder,
  kHilbert,
};

/// The strawman the paper dismantles in §2.2: a classical sort-merge
/// join transplanted to spatial data by sorting both relations along a
/// space-filling curve (z-order of the objects' centerpoints) and merging
/// with a bounded band — each R object is θ-tested only against the S
/// objects whose sort positions fall within `band` ranks of its own.
///
/// Because *no total ordering preserves spatial proximity*, this is
/// INCOMPLETE for every proximity-dependent θ: objects adjacent in space
/// can lie arbitrarily far apart in the z-sequence (the paper's Fig. 1
/// pair o3/o9), so some matches are missed no matter the band width
/// short of |S|. Provided for demonstration and tests; never use it as a
/// real strategy — that is exactly the paper's point.
JoinResult NaiveCentroidSortMergeJoin(const Relation& r, size_t col_r,
                                      const Relation& s, size_t col_s,
                                      const ThetaOperator& op,
                                      const ZGrid& grid, int band,
                                      SortCurve curve = SortCurve::kZOrder);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_NAIVE_SORT_MERGE_H_
