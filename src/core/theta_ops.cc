#include "core/theta_ops.h"

#include <algorithm>
#include <limits>
#include <optional>
#include <sstream>

#include "common/check.h"
#include "common/thread_annotations.h"
#include "geometry/buffer.h"
#include "geometry/distance.h"
#include "geometry/polygon.h"
#include "geometry/polyline.h"
#include "geometry/predicates.h"

namespace spatialjoin {

namespace {

// Converts any spatial value to a polygon for mixed-type geometry tests.
// Points become tiny degenerate handling via dedicated branches instead.
Polygon AsPolygon(const Value& v) {
  switch (v.type()) {
    case ValueType::kRectangle:
      return Polygon::FromRectangle(v.AsRectangle());
    case ValueType::kPolygon:
      return v.AsPolygon();
    default:
      SJ_CHECK_MSG(false, "AsPolygon on " << v.ToString());
  }
  return Polygon();
}

bool IsPoint(const Value& v) { return v.type() == ValueType::kPoint; }

bool IsPolyline(const Value& v) {
  return v.type() == ValueType::kPolyline;
}

// True iff `p` lies on the boundary ring of `poly`.
bool PointOnAnyEdge(const Polygon& poly, const Point& p) {
  const auto& ring = poly.ring();
  for (size_t i = 0; i < ring.size(); ++i) {
    if (PointOnSegment(p, ring[i], ring[(i + 1) % ring.size()])) {
      return true;
    }
  }
  return false;
}

// Minimum distance between a polyline and an areal value (rectangle or
// polygon): 0 when a vertex is inside or an edge crosses the boundary,
// otherwise the closest edge pair.
double PolylineArealDistance(const Polyline& line, const Polygon& area) {
  for (const Point& p : line.vertices()) {
    if (area.ContainsPoint(p)) return 0.0;
  }
  double best = std::numeric_limits<double>::infinity();
  const auto& vs = line.vertices();
  const auto& ring = area.ring();
  for (size_t i = 0; i + 1 < vs.size(); ++i) {
    for (size_t j = 0; j < ring.size(); ++j) {
      best = std::min(best,
                      DistanceSegmentSegment(vs[i], vs[i + 1], ring[j],
                                             ring[(j + 1) % ring.size()]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

}  // namespace

Point CenterpointOf(const Value& v) {
  switch (v.type()) {
    case ValueType::kPoint:
      return v.AsPoint();
    case ValueType::kRectangle:
      return v.AsRectangle().Center();
    case ValueType::kPolygon:
      return v.AsPolygon().Centroid();
    case ValueType::kPolyline:
      // The arc-length midpoint — the natural centerpoint of a curve.
      return v.AsPolyline().Midpoint();
    default:
      SJ_CHECK_MSG(false, "CenterpointOf on non-spatial " << v.ToString());
  }
  return Point();
}

double MinDistanceBetween(const Value& a, const Value& b) {
  if (IsPolyline(a)) {
    const Polyline& line = a.AsPolyline();
    if (IsPoint(b)) return line.DistanceToPoint(b.AsPoint());
    if (IsPolyline(b)) return line.DistanceToPolyline(b.AsPolyline());
    return PolylineArealDistance(line, AsPolygon(b));
  }
  if (IsPolyline(b)) return MinDistanceBetween(b, a);
  if (IsPoint(a) && IsPoint(b)) return Distance(a.AsPoint(), b.AsPoint());
  if (IsPoint(a)) {
    if (b.type() == ValueType::kRectangle) {
      return b.AsRectangle().MinDistanceToPoint(a.AsPoint());
    }
    return b.AsPolygon().DistanceToPoint(a.AsPoint());
  }
  if (IsPoint(b)) return MinDistanceBetween(b, a);
  if (a.type() == ValueType::kRectangle &&
      b.type() == ValueType::kRectangle) {
    return a.AsRectangle().MinDistance(b.AsRectangle());
  }
  return AsPolygon(a).DistanceToPolygon(AsPolygon(b));
}

bool GeometriesOverlap(const Value& a, const Value& b) {
  if (IsPolyline(a) || IsPolyline(b)) {
    return MinDistanceBetween(a, b) == 0.0;
  }
  if (IsPoint(a) && IsPoint(b)) return a.AsPoint() == b.AsPoint();
  if (IsPoint(a)) {
    if (b.type() == ValueType::kRectangle) {
      return b.AsRectangle().ContainsPoint(a.AsPoint());
    }
    return b.AsPolygon().ContainsPoint(a.AsPoint());
  }
  if (IsPoint(b)) return GeometriesOverlap(b, a);
  if (a.type() == ValueType::kRectangle &&
      b.type() == ValueType::kRectangle) {
    return a.AsRectangle().Overlaps(b.AsRectangle());
  }
  return AsPolygon(a).Intersects(AsPolygon(b));
}

bool GeometryContains(const Value& a, const Value& b) {
  if (IsPolyline(a)) {
    // A curve has no interior: it contains exactly the points on it and
    // itself.
    if (IsPoint(b)) return a.AsPolyline().DistanceToPoint(b.AsPoint()) == 0.0;
    return IsPolyline(b) &&
           a.AsPolyline().vertices() == b.AsPolyline().vertices();
  }
  if (IsPolyline(b)) {
    if (IsPoint(a)) return false;
    // An areal value contains a curve iff it contains every vertex and
    // no edge escapes (convexity not assumed: check edge crossings too).
    const Polyline& line = b.AsPolyline();
    Polygon area = AsPolygon(a);
    for (const Point& p : line.vertices()) {
      if (!area.ContainsPoint(p)) return false;
    }
    // Vertices inside + distance-0 boundary contact is still inside for
    // closed regions; a proper escape requires a vertex outside, which
    // simple (convex or monotone) areas guarantee. For concave areas we
    // additionally reject edges that properly cross the boundary.
    const auto& vs = line.vertices();
    const auto& ring = area.ring();
    for (size_t i = 0; i + 1 < vs.size(); ++i) {
      for (size_t j = 0; j < ring.size(); ++j) {
        const Point& r1 = ring[j];
        const Point& r2 = ring[(j + 1) % ring.size()];
        int o1 = Orientation(r1, r2, vs[i]);
        int o2 = Orientation(r1, r2, vs[i + 1]);
        int o3 = Orientation(vs[i], vs[i + 1], r1);
        int o4 = Orientation(vs[i], vs[i + 1], r2);
        if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 &&
            o4 != 0) {
          return false;
        }
      }
    }
    return true;
  }
  if (IsPoint(a)) {
    // A point contains only an identical point.
    return IsPoint(b) && a.AsPoint() == b.AsPoint();
  }
  if (a.type() == ValueType::kRectangle) {
    if (IsPoint(b)) return a.AsRectangle().ContainsPoint(b.AsPoint());
    return a.AsRectangle().Contains(b.Mbr());
  }
  // a is a polygon.
  if (IsPoint(b)) return a.AsPolygon().ContainsPoint(b.AsPoint());
  return a.AsPolygon().ContainsPolygon(AsPolygon(b));
}

// --------------------------------------------------------------------------
// WithinDistanceOp
// --------------------------------------------------------------------------

WithinDistanceOp::WithinDistanceOp(double distance) : distance_(distance) {
  SJ_CHECK_GE(distance, 0.0);
}

std::string WithinDistanceOp::name() const {
  std::ostringstream os;
  os << "within_distance(" << distance_ << ")";
  return os.str();
}

bool WithinDistanceOp::Theta(const Value& a, const Value& b) const {
  return Distance(CenterpointOf(a), CenterpointOf(b)) <= distance_;
}

SJ_HOT bool WithinDistanceOp::ThetaUpper(const Rectangle& a,
                                         const Rectangle& b) const {
  return RectanglesWithinDistance(a, b, distance_);
}

std::optional<Rectangle> WithinDistanceOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  // Θ(a, b) means minDist(a, b) <= d, so a must reach into the d-buffer.
  return BufferMbr(b, distance_);
}

// --------------------------------------------------------------------------
// OverlapsOp
// --------------------------------------------------------------------------

bool OverlapsOp::Theta(const Value& a, const Value& b) const {
  return GeometriesOverlap(a, b);
}

SJ_HOT bool OverlapsOp::ThetaUpper(const Rectangle& a,
                                   const Rectangle& b) const {
  return a.Overlaps(b);
}

std::optional<Rectangle> OverlapsOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  return b;
}

// --------------------------------------------------------------------------
// IncludesOp / ContainedInOp
// --------------------------------------------------------------------------

bool IncludesOp::Theta(const Value& a, const Value& b) const {
  return GeometryContains(a, b);
}

SJ_HOT bool IncludesOp::ThetaUpper(const Rectangle& a,
                                   const Rectangle& b) const {
  // Fig. 4: o1' and o2' merely overlapping already admits a subobject of
  // o1 including a subobject of o2.
  return a.Overlaps(b);
}

std::optional<Rectangle> IncludesOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  return b;
}

bool ContainedInOp::Theta(const Value& a, const Value& b) const {
  return GeometryContains(b, a);
}

SJ_HOT bool ContainedInOp::ThetaUpper(const Rectangle& a,
                                      const Rectangle& b) const {
  return a.Overlaps(b);
}

std::optional<Rectangle> ContainedInOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  return b;
}

// --------------------------------------------------------------------------
// NorthwestOfOp
// --------------------------------------------------------------------------

bool NorthwestOfOp::Theta(const Value& a, const Value& b) const {
  return NorthwestOf(CenterpointOf(a), CenterpointOf(b));
}

SJ_HOT bool NorthwestOfOp::ThetaUpper(const Rectangle& a,
                                      const Rectangle& b) const {
  if (a.is_empty() || b.is_empty()) return false;
  // The NW quadrant of b is bounded by b's right vertical tangent
  // (x = b.max_x) and b's lower horizontal tangent (y = b.min_y).
  // a overlaps it iff some part of a has x <= b.max_x and y >= b.min_y.
  return a.min_x() <= b.max_x() && a.max_y() >= b.min_y();
}

std::optional<Rectangle> NorthwestOfOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  // The NW quadrant clipped to the indexed world. Degenerate if b lies
  // outside the world entirely; callers clip objects to the world.
  if (b.is_empty() || world.is_empty()) return std::nullopt;
  double min_x = std::min(world.min_x(), b.min_x());
  double max_x = b.max_x();
  double min_y = b.min_y();
  double max_y = std::max(world.max_y(), b.max_y());
  return Rectangle(min_x, min_y, max_x, max_y);
}

// --------------------------------------------------------------------------
// AdjacentOp
// --------------------------------------------------------------------------

bool AdjacentOp::Theta(const Value& a, const Value& b) const {
  if (MinDistanceBetween(a, b) != 0.0) return false;
  // Contact without shared interior. For rectangle pairs the shared
  // region's area decides; for other combinations a point or curve can
  // only ever share boundary, so contact alone suffices; polygon pairs
  // approximate interior sharing by the MBR intersection having positive
  // area AND mutual containment of some vertex (conservative for convex
  // shapes, exact for rectangles — the Fig. 1 setting).
  if (a.type() == ValueType::kRectangle &&
      b.type() == ValueType::kRectangle) {
    return a.AsRectangle().Intersection(b.AsRectangle()).Area() == 0.0;
  }
  if (a.type() == ValueType::kPoint || b.type() == ValueType::kPoint ||
      a.type() == ValueType::kPolyline ||
      b.type() == ValueType::kPolyline) {
    return true;
  }
  // Polygon-involved: interiors are shared iff a vertex of one lies
  // strictly inside the other, or their boundaries properly cross.
  const Polygon pa = AsPolygon(a);
  const Polygon pb = AsPolygon(b);
  for (const Point& v : pb.ring()) {
    if (pa.ContainsPoint(v) && !PointOnAnyEdge(pa, v)) return false;
  }
  for (const Point& v : pa.ring()) {
    if (pb.ContainsPoint(v) && !PointOnAnyEdge(pb, v)) return false;
  }
  const auto& ra = pa.ring();
  const auto& rb = pb.ring();
  for (size_t i = 0; i < ra.size(); ++i) {
    for (size_t j = 0; j < rb.size(); ++j) {
      int o1 = Orientation(ra[i], ra[(i + 1) % ra.size()], rb[j]);
      int o2 = Orientation(ra[i], ra[(i + 1) % ra.size()],
                           rb[(j + 1) % rb.size()]);
      int o3 = Orientation(rb[j], rb[(j + 1) % rb.size()], ra[i]);
      int o4 = Orientation(rb[j], rb[(j + 1) % rb.size()],
                           ra[(i + 1) % ra.size()]);
      if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 &&
          o4 != 0) {
        return false;  // proper boundary crossing => shared interior
      }
    }
  }
  return true;
}

SJ_HOT bool AdjacentOp::ThetaUpper(const Rectangle& a,
                                   const Rectangle& b) const {
  return a.Overlaps(b);
}

std::optional<Rectangle> AdjacentOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  return b;
}

// --------------------------------------------------------------------------
// ReachableWithinOp
// --------------------------------------------------------------------------

ReachableWithinOp::ReachableWithinOp(double minutes, double speed_per_minute)
    : minutes_(minutes), speed_per_minute_(speed_per_minute) {
  SJ_CHECK_GE(minutes, 0.0);
  SJ_CHECK_GT(speed_per_minute, 0.0);
}

std::string ReachableWithinOp::name() const {
  std::ostringstream os;
  os << "reachable_within(" << minutes_ << "min @" << speed_per_minute_
     << ")";
  return os.str();
}

bool ReachableWithinOp::Theta(const Value& a, const Value& b) const {
  return MinDistanceBetween(a, b) <= minutes_ * speed_per_minute_;
}

SJ_HOT bool ReachableWithinOp::ThetaUpper(const Rectangle& a,
                                          const Rectangle& b) const {
  // "o1' overlaps the x-minute buffer of o2'": expand b's MBR by the
  // crow-flies travel radius and test overlap.
  if (a.is_empty() || b.is_empty()) return false;
  return a.Overlaps(BufferMbr(b, minutes_ * speed_per_minute_));
}

std::optional<Rectangle> ReachableWithinOp::ProbeWindow(
    const Rectangle& b, const Rectangle& world) const {
  (void)world;
  return BufferMbr(b, minutes_ * speed_per_minute_);
}

// --------------------------------------------------------------------------
// CountingTheta
// --------------------------------------------------------------------------

CountingTheta::CountingTheta(const ThetaOperator* inner) : inner_(inner) {
  SJ_CHECK(inner != nullptr);
}

bool CountingTheta::Theta(const Value& a, const Value& b) const {
  ++theta_count_;
  return inner_->Theta(a, b);
}

bool CountingTheta::ThetaUpper(const Rectangle& a, const Rectangle& b) const {
  ++theta_upper_count_;
  return inner_->ThetaUpper(a, b);
}

void CountingTheta::Reset() {
  theta_count_ = 0;
  theta_upper_count_ = 0;
}

}  // namespace spatialjoin
