#ifndef SPATIALJOIN_CORE_JOIN_INDEX_H_
#define SPATIALJOIN_CORE_JOIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "btree/bplus_tree.h"
#include "core/join.h"
#include "core/theta_ops.h"
#include "relational/relation.h"

namespace spatialjoin {

/// Strategy III: a precomputed join index [Vald87] (paper §2.1, §4).
/// "A join index is nothing but a two-column relation that stores the
/// tuple IDs of matching tuples." It is kept in two B⁺-trees (assumption
/// S4) — forward (R-tid → S-tid) and backward (S-tid → R-tid) — so both
/// join directions and both update directions are O(log) lookups.
///
/// Join computation is then a scan of the index plus retrieval of the
/// matching tuples; no θ evaluations are needed at query time. The price
/// is paid on update: a new tuple must be θ-tested against the *entire*
/// other relation (§4.2: U_III grows with the total database size T).
class JoinIndex {
 public:
  /// `entries_per_page` models the paper's parameter z (Table 3: z = 100);
  /// 0 packs as many as fit.
  JoinIndex(BufferPool* pool, int entries_per_page = 0);

  JoinIndex(const JoinIndex&) = delete;
  JoinIndex& operator=(const JoinIndex&) = delete;

  /// Precomputes the index for R ⋈_θ S by exhaustive θ evaluation
  /// (the paper's maintenance model). Returns the number of θ tests.
  int64_t Build(const Relation& r, size_t col_r, const Relation& s,
                size_t col_s, const ThetaOperator& op);

  /// Registers one matching pair.
  void Add(TupleId r_tid, TupleId s_tid);

  /// Removes one matching pair; false if absent.
  bool Remove(TupleId r_tid, TupleId s_tid);

  /// Maintenance after inserting a new R tuple: θ-tests it against every
  /// S tuple and records matches. Returns the number of θ tests (= |S|).
  int64_t OnInsertR(TupleId new_r, const Value& geometry, const Relation& s,
                    size_t col_s, const ThetaOperator& op);

  /// Symmetric maintenance for a new S tuple.
  int64_t OnInsertS(TupleId new_s, const Value& geometry, const Relation& r,
                    size_t col_r, const ThetaOperator& op);

  /// Computes the join from the index alone: scans the forward tree and
  /// fetches the matching tuples from both relations (charging their I/O).
  /// θ is never evaluated.
  JoinResult Execute(const Relation& r, const Relation& s) const;

  /// All S tuples matching `r_tid` (spatial-selection support when the
  /// selector is a stored R tuple).
  std::vector<TupleId> SMatchesOf(TupleId r_tid) const;

  /// All R tuples matching `s_tid`.
  std::vector<TupleId> RMatchesOf(TupleId s_tid) const;

  int64_t num_pairs() const { return forward_.num_entries(); }
  /// Height of the forward B⁺-tree — the model's parameter d.
  int height() const { return forward_.height(); }
  /// Pages used by both direction trees (the index's space cost).
  int64_t num_pages() const {
    return forward_.num_pages() + backward_.num_pages();
  }

 private:
  BPlusTree forward_;
  BPlusTree backward_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_JOIN_INDEX_H_
