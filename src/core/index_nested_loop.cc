#include "core/index_nested_loop.h"

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

namespace {

// Flips the operand order so a probe with selector s still evaluates
// θ(r, s) / Θ(r', s').
class SwappedTheta : public ThetaOperator {
 public:
  explicit SwappedTheta(const ThetaOperator* inner) : inner_(inner) {}
  std::string name() const override { return "swapped(" + inner_->name() + ")"; }
  bool Theta(const Value& a, const Value& b) const override {
    return inner_->Theta(b, a);
  }
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override {
    return inner_->ThetaUpper(b, a);
  }
  bool is_symmetric() const override { return inner_->is_symmetric(); }

 private:
  const ThetaOperator* inner_;
};

}  // namespace

JoinResult IndexNestedLoopJoin(const GeneralizationTree& r_tree,
                               const Relation& s, size_t col_s,
                               const ThetaOperator& op, Traversal traversal,
                               const exec::CancelToken* cancel) {
  SJ_CHECK_LT(col_s, s.schema().num_columns());
  SwappedTheta probe_op(&op);
  JoinResult result;
  s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
    ++result.nodes_accessed;
    SelectResult probe =
        SpatialSelect(s_tuple.value(col_s), r_tree, probe_op, traversal,
                      /*trace=*/nullptr, cancel);
    result.theta_tests += probe.theta_tests;
    result.theta_upper_tests += probe.theta_upper_tests;
    result.nodes_accessed += probe.nodes_accessed;
    for (TupleId r_tid : probe.matching_tuples) {
      SJ_BOUNDED_WORK;  // one probe's match list; the probe itself polls
      result.matches.emplace_back(r_tid, s_tid);
    }
  });
  return result;
}

}  // namespace spatialjoin
