#include "core/nested_loop.h"

#include <algorithm>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

JoinResult NestedLoopJoin(const Relation& r, size_t col_r, const Relation& s,
                          size_t col_s, const ThetaOperator& op,
                          const NestedLoopOptions& options,
                          const exec::CancelToken* cancel) {
  SJ_CHECK_GT(options.memory_pages, options.reserved_pages);
  JoinResult result;
  if (r.num_tuples() == 0 || s.num_tuples() == 0) return result;

  // Block capacity in tuples: (M−10) pages × m tuples per page.
  int64_t tuples_per_page =
      std::max<int64_t>(1, CeilDiv(r.num_tuples(), std::max<int64_t>(
                                                       1, r.num_pages())));
  int64_t block_tuples =
      (options.memory_pages - options.reserved_pages) * tuples_per_page;
  SJ_CHECK_GT(block_tuples, 0);

  for (TupleId block_start = 0; block_start < r.num_tuples();
       block_start += block_tuples) {
    if (cancel != nullptr && cancel->ShouldStop()) break;
    TupleId block_end =
        std::min<TupleId>(block_start + block_tuples, r.num_tuples());
    // Pass 1 of the pass: bring the R block into memory.
    std::vector<std::pair<TupleId, Value>> block;
    block.reserve(static_cast<size_t>(block_end - block_start));
    for (TupleId tid = block_start; tid < block_end; ++tid) {
      SJ_BOUNDED_WORK;  // one R block (M-10 pages); the block loop polls
      block.emplace_back(tid, r.Read(tid).value(col_r));
      ++result.nodes_accessed;
    }
    // Scan S once for this block.
    s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
      const Value& s_value = s_tuple.value(col_s);
      ++result.nodes_accessed;
      for (const auto& [r_tid, r_value] : block) {
        SJ_BOUNDED_WORK;  // one in-memory R block; the block loop polls
        ++result.theta_tests;
        if (op.Theta(r_value, s_value)) {
          result.matches.emplace_back(r_tid, s_tid);
        }
      }
    });
  }
  return result;
}

JoinResult NestedLoopSelect(const Value& selector, const Relation& r,
                            size_t col_r, const ThetaOperator& op) {
  JoinResult result;
  r.Scan([&](TupleId tid, const Tuple& tuple) {
    ++result.nodes_accessed;
    ++result.theta_tests;
    if (op.Theta(selector, tuple.value(col_r))) {
      result.matches.emplace_back(tid, kInvalidTupleId);
    }
  });
  return result;
}

}  // namespace spatialjoin
