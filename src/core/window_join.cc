#include "core/window_join.h"

#include "common/check.h"

namespace spatialjoin {

JoinResult RTreeWindowJoin(const RTree& r_index, const Relation& r,
                           size_t col_r, const Relation& s, size_t col_s,
                           const ThetaOperator& op, const Rectangle& world) {
  JoinResult result;
  s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
    ++result.nodes_accessed;
    const Value& s_value = s_tuple.value(col_s);
    std::optional<Rectangle> window =
        op.ProbeWindow(s_value.Mbr(), world);
    SJ_CHECK_MSG(window.has_value(),
                 op.name() << " has no finite probe window; use the "
                              "generalization-tree strategies");
    r_index.Search(*window, [&](const Rectangle&, TupleId r_tid) {
      Value r_value = r.Read(r_tid).value(col_r);
      ++result.nodes_accessed;
      ++result.theta_tests;
      if (op.Theta(r_value, s_value)) {
        result.matches.emplace_back(r_tid, s_tid);
      }
    });
  });
  return result;
}

JoinResult GridFileWindowJoin(const GridFile& r_index, const Relation& r,
                              size_t col_r, const Relation& s, size_t col_s,
                              const ThetaOperator& op) {
  JoinResult result;
  const Rectangle& world = r_index.world();
  s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
    ++result.nodes_accessed;
    const Value& s_value = s_tuple.value(col_s);
    std::optional<Rectangle> window =
        op.ProbeWindow(s_value.Mbr(), world);
    SJ_CHECK_MSG(window.has_value(),
                 op.name() << " has no finite probe window; use the "
                              "generalization-tree strategies");
    for (TupleId r_tid : r_index.SearchTids(*window)) {
      Value r_value = r.Read(r_tid).value(col_r);
      ++result.nodes_accessed;
      ++result.theta_tests;
      if (op.Theta(r_value, s_value)) {
        result.matches.emplace_back(r_tid, s_tid);
      }
    }
  });
  return result;
}

}  // namespace spatialjoin
