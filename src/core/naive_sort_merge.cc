#include "core/naive_sort_merge.h"

#include <algorithm>
#include <vector>

#include "common/check.h"
#include "zorder/hilbert.h"

namespace spatialjoin {

namespace {

struct SortedEntry {
  uint64_t z = 0;
  TupleId tid = kInvalidTupleId;
  Value value;
};

std::vector<SortedEntry> SortRelation(const Relation& rel, size_t col,
                                      const ZGrid& grid, SortCurve curve,
                                      JoinResult* result) {
  std::vector<SortedEntry> entries;
  entries.reserve(static_cast<size_t>(rel.num_tuples()));
  rel.Scan([&](TupleId tid, const Tuple& tuple) {
    ++result->nodes_accessed;
    const Value& v = tuple.value(col);
    Point center = CenterpointOf(v);
    uint64_t key = curve == SortCurve::kZOrder
                       ? grid.ZValueOf(center)
                       : HilbertValueOf(grid, center);
    entries.push_back(SortedEntry{key, tid, v});
  });
  std::sort(entries.begin(), entries.end(),
            [](const SortedEntry& a, const SortedEntry& b) {
              return a.z < b.z;
            });
  return entries;
}

}  // namespace

JoinResult NaiveCentroidSortMergeJoin(const Relation& r, size_t col_r,
                                      const Relation& s, size_t col_s,
                                      const ThetaOperator& op,
                                      const ZGrid& grid, int band,
                                      SortCurve curve) {
  SJ_CHECK_GE(band, 0);
  JoinResult result;
  std::vector<SortedEntry> r_sorted =
      SortRelation(r, col_r, grid, curve, &result);
  std::vector<SortedEntry> s_sorted =
      SortRelation(s, col_s, grid, curve, &result);
  if (r_sorted.empty() || s_sorted.empty()) return result;

  // Merge: walk R in sort order, keeping an S cursor at the first entry
  // with z >= current R z; test the band around the cursor.
  size_t cursor = 0;
  for (const SortedEntry& re : r_sorted) {
    while (cursor < s_sorted.size() && s_sorted[cursor].z < re.z) ++cursor;
    int64_t lo = static_cast<int64_t>(cursor) - band;
    int64_t hi = static_cast<int64_t>(cursor) + band;
    lo = std::max<int64_t>(lo, 0);
    hi = std::min<int64_t>(hi, static_cast<int64_t>(s_sorted.size()) - 1);
    for (int64_t i = lo; i <= hi; ++i) {
      const SortedEntry& se = s_sorted[static_cast<size_t>(i)];
      ++result.theta_tests;
      if (op.Theta(re.value, se.value)) {
        result.matches.emplace_back(re.tid, se.tid);
      }
    }
  }
  return result;
}

}  // namespace spatialjoin
