#ifndef SPATIALJOIN_CORE_JOIN_DETAIL_H_
#define SPATIALJOIN_CORE_JOIN_DETAIL_H_

#include <deque>
#include <utility>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/thread_annotations.h"
#include "core/gentree.h"
#include "core/join.h"
#include "core/theta_ops.h"

namespace spatialjoin {
namespace join_detail {

/// One JOIN4 selection pass (paper §3.3): tests `selector_geom` (the
/// object of `selector_node` from `selector_tree`) against all strict
/// descendants of `anchor` in `tree`. Emits matches into `result` (ordered
/// according to `selector_is_r`), and returns the direct children of
/// `anchor` that Θ-qualify (they seed the next QualPairs level).
///
/// Shared between the sequential TreeJoin and exec::ParallelTreeJoin so
/// the two implementations cannot drift: a parallel worker runs exactly
/// this pass against its chunk-local JoinResult. Thread-safe as long as
/// the trees and the operator are safe for concurrent reads and `result`
/// is not shared between callers.
///
/// SJ_HOT: the per-pair Θ-kernel body ROADMAP items 3/4 (SIMD, query
/// compilation) will refactor against. Current exceptions (worklist
/// growth, virtual generalization-tree/Θ dispatch) are enumerated in
/// scripts/analysis/sj_analyze_baseline.json; do not add new ones.
SJ_HOT inline std::vector<NodeId> SelectPass(
    const GeneralizationTree& selector_tree, NodeId selector_node,
    const Value& selector_geom, const GeneralizationTree& tree, NodeId anchor,
    const ThetaOperator& op, bool selector_is_r, JoinResult* result) {
  std::vector<NodeId> qualifying_children;
  Rectangle selector_mbr = selector_tree.MbrOf(selector_node);
  std::vector<NodeId> direct_children = tree.Children(anchor);
  std::deque<std::pair<NodeId, bool>> worklist;  // (node, is_direct_child)
  for (NodeId c : direct_children) {
    SJ_BOUNDED_WORK;  // one anchor's direct children (node fanout)
    worklist.emplace_back(c, true);
  }
  while (!worklist.empty()) {
    SJ_BOUNDED_WORK;  // one anchor's subtree; the JOIN level loop polls
    auto [node, is_direct] = worklist.front();
    worklist.pop_front();
    ++result->theta_upper_tests;
    // Θ must see its operands in R-before-S order (Θ can be asymmetric,
    // e.g. "to the Northwest of", Table 1).
    Rectangle node_mbr = tree.MbrOf(node);
    bool upper_match = selector_is_r ? op.ThetaUpper(selector_mbr, node_mbr)
                                     : op.ThetaUpper(node_mbr, selector_mbr);
    if (!upper_match) continue;
    if (is_direct) qualifying_children.push_back(node);
    Value geometry = tree.Geometry(node);
    ++result->nodes_accessed;
    ++result->theta_tests;
    bool theta_match = selector_is_r ? op.Theta(selector_geom, geometry)
                                     : op.Theta(geometry, selector_geom);
    if (theta_match && tree.IsApplicationNode(node) &&
        selector_tree.IsApplicationNode(selector_node)) {
      TupleId selector_tuple = selector_tree.TupleOf(selector_node);
      TupleId node_tuple = tree.TupleOf(node);
      if (selector_is_r) {
        result->matches.emplace_back(selector_tuple, node_tuple);
      } else {
        result->matches.emplace_back(node_tuple, selector_tuple);
      }
    }
    for (NodeId child : tree.Children(node)) {
      SJ_BOUNDED_WORK;  // one node's children (node fanout)
      worklist.emplace_back(child, false);
    }
  }
  return qualifying_children;
}

/// The JOIN2/JOIN3/JOIN4 body for one QualPairs entry (a, b): Θ-test the
/// pair, θ-test it on success, run the two selection passes, and append
/// the cross product of the qualifying children to `next_level`. Returns
/// false when the pair was pruned at JOIN2. All counters land in `result`.
SJ_HOT inline bool ProcessQualPair(const GeneralizationTree& r_tree,
                            const GeneralizationTree& s_tree, NodeId a,
                            NodeId b, const ThetaOperator& op,
                            JoinResult* result,
                            std::vector<std::pair<NodeId, NodeId>>*
                                next_level) {
  ++result->qual_pairs_examined;
  // JOIN2: Θ-test the pair itself.
  ++result->theta_upper_tests;
  if (!op.ThetaUpper(r_tree.MbrOf(a), s_tree.MbrOf(b))) return false;

  Value geom_a = r_tree.Geometry(a);
  Value geom_b = s_tree.Geometry(b);
  result->nodes_accessed += 2;

  // JOIN3: θ-test; equal-height matches are emitted here.
  ++result->theta_tests;
  if (op.Theta(geom_a, geom_b) && r_tree.IsApplicationNode(a) &&
      s_tree.IsApplicationNode(b)) {
    result->matches.emplace_back(r_tree.TupleOf(a), s_tree.TupleOf(b));
  }

  // JOIN4: two selection passes for unequal-height matches, recording
  // cross-qualifying direct children for the next level.
  std::vector<NodeId> qual_b = SelectPass(r_tree, a, geom_a, s_tree, b, op,
                                          /*selector_is_r=*/true, result);
  std::vector<NodeId> qual_a = SelectPass(s_tree, b, geom_b, r_tree, a, op,
                                          /*selector_is_r=*/false, result);
  for (NodeId a2 : qual_a) {
    SJ_BOUNDED_WORK;  // qualifying children of one pair (fanout^2)
    for (NodeId b2 : qual_b) {
      SJ_BOUNDED_WORK;  // qualifying children of one pair (fanout^2)
      next_level->emplace_back(a2, b2);
    }
  }
  return true;
}

}  // namespace join_detail
}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_JOIN_DETAIL_H_
