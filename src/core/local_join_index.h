#ifndef SPATIALJOIN_CORE_LOCAL_JOIN_INDEX_H_
#define SPATIALJOIN_CORE_LOCAL_JOIN_INDEX_H_

#include <cstdint>
#include <vector>

#include "btree/bplus_tree.h"
#include "core/gentree.h"
#include "core/join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"

namespace spatialjoin {

/// The mixed strategy the paper proposes as future work (§5): "local join
/// indices between objects that are indexed by the same generalization
/// tree and have some ancestor in common … a mixture between the pure
/// generalization trees (strategy II) and pure join indices (strategy
/// III)".
///
/// Concretely: the tree's subtrees rooted at `partition_height` partition
/// the application objects. Matching pairs whose two objects share such an
/// ancestor are *precomputed* and stored in a B⁺-tree (the local join
/// indices); pairs crossing partitions are computed at query time with
/// Θ-pruned traversal. Under a locality-heavy matching distribution
/// (HI-LOC) most matches are intra-partition, so queries approach join-
/// index speed while an update only has to be θ-tested against its own
/// partition (cost ∝ partition size, not ∝ N as for strategy III).
///
/// Scope: this implementation requires all application objects to sit at
/// heights >= partition_height (true for R-trees and for the synthetic
/// k-ary trees used in the experiments); Build checks this.
class LocalJoinIndex {
 public:
  LocalJoinIndex(BufferPool* pool, const GeneralizationTree* tree,
                 int partition_height, int entries_per_page = 0);

  LocalJoinIndex(const LocalJoinIndex&) = delete;
  LocalJoinIndex& operator=(const LocalJoinIndex&) = delete;

  /// Precomputes all intra-partition matching pairs (ordered pairs of
  /// distinct application nodes). Returns the number of θ tests spent.
  int64_t Build(const ThetaOperator& op);

  /// Self-join of the indexed relation: intra-partition pairs come from
  /// the local indices (no θ), cross-partition pairs are computed live
  /// with Θ pruning at partition and member level. `cancel` (optional) is
  /// polled once per partition pair in the live phase.
  JoinResult Execute(const ThetaOperator& op,
                     const exec::CancelToken* cancel = nullptr) const;

  /// Maintenance cost (θ tests) of inserting an object with this MBR:
  /// the size of the partition it falls into. Compare with strategy III's
  /// N tests. Returns 0 if the object falls outside every partition (it
  /// would start a new one).
  int64_t UpdateCost(const Rectangle& mbr) const;

  int64_t num_partitions() const {
    return static_cast<int64_t>(partitions_.size());
  }
  int64_t num_indexed_pairs() const { return pairs_.num_entries(); }
  /// Pages used by the precomputed part.
  int64_t num_pages() const { return pairs_.num_pages(); }

 private:
  struct Member {
    NodeId node = kInvalidNodeId;
    TupleId tuple = kInvalidTupleId;
    Rectangle mbr;
  };
  struct Partition {
    NodeId root = kInvalidNodeId;
    Rectangle mbr;
    std::vector<Member> members;
  };

  // Collects partition roots (nodes at partition_height) and their
  // application-node members.
  void CollectPartitions();

  const GeneralizationTree* tree_;
  int partition_height_;
  std::vector<Partition> partitions_;
  BPlusTree pairs_;  // node a → node b, intra-partition matches
  bool built_ = false;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_LOCAL_JOIN_INDEX_H_
