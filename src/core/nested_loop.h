#ifndef SPATIALJOIN_CORE_NESTED_LOOP_H_
#define SPATIALJOIN_CORE_NESTED_LOOP_H_

#include <cstdint>

#include "core/join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "relational/relation.h"

namespace spatialjoin {

/// Memory budget for the blocked nested-loop strategy (paper §4.4 /
/// [Vald87]): `memory_pages` is the paper's M; `reserved_pages` the 10
/// pages held back for the inner scan, giving M−10 pages per outer block.
struct NestedLoopOptions {
  int64_t memory_pages = 4000;
  int64_t reserved_pages = 10;
};

/// Strategy I for the general spatial join: blocked nested loop. Fills
/// M−10 pages worth of R tuples into memory, scans S once per block, and
/// θ-tests every pair. No Θ pruning — every pair costs a full θ test,
/// which is why the paper finds the strategy "never really competitive".
/// `cancel` (optional) is polled once per outer block — the strategy's
/// natural level boundary; a cancelled join returns the matches found so
/// far (callers surface CANCELLED from the token, not the result).
JoinResult NestedLoopJoin(const Relation& r, size_t col_r, const Relation& s,
                          size_t col_s, const ThetaOperator& op,
                          const NestedLoopOptions& options = {},
                          const exec::CancelToken* cancel = nullptr);

/// Strategy I for the spatial selection: exhaustive scan of the relation,
/// θ-testing the selector against every tuple (§4.3: "the nested loop
/// strategy degenerates to an exhaustive search").
JoinResult NestedLoopSelect(const Value& selector, const Relation& r,
                            size_t col_r, const ThetaOperator& op);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_NESTED_LOOP_H_
