#include "core/memory_gentree.h"

#include <algorithm>

#include "common/check.h"

namespace spatialjoin {

const MemoryGenTree::Node& MemoryGenTree::NodeAt(NodeId id) const {
  SJ_CHECK_GE(id, 0);
  SJ_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

NodeId MemoryGenTree::AddNode(NodeId parent, Value geometry, TupleId tuple,
                              std::string label) {
  Node node;
  node.parent = parent;
  node.mbr = geometry.Mbr();
  node.geometry = std::move(geometry);
  node.tuple = tuple;
  node.label = std::move(label);
  if (parent == kInvalidNodeId) {
    SJ_CHECK_MSG(nodes_.empty(), "tree already has a root");
    node.height = 0;
  } else {
    const Node& p = NodeAt(parent);
    node.height = p.height + 1;
    SJ_CHECK_MSG(p.mbr.Contains(node.mbr),
                 "child MBR " << node.mbr.ToString()
                              << " not contained in parent "
                              << p.mbr.ToString());
  }
  NodeId id = num_nodes();
  height_ = std::max(height_, node.height);
  nodes_.push_back(std::move(node));
  if (parent != kInvalidNodeId) {
    nodes_[static_cast<size_t>(parent)].children.push_back(id);
  }
  return id;
}

void MemoryGenTree::AttachRelation(const Relation* relation, size_t column) {
  SJ_CHECK(relation != nullptr);
  SJ_CHECK_LT(column, relation->schema().num_columns());
  SJ_CHECK(relation->schema().IsSpatial(column));
  relation_ = relation;
  relation_column_ = column;
}

NodeId MemoryGenTree::InsertByContainment(Value geometry, TupleId tuple,
                                          int64_t* tests_out) {
  SJ_CHECK(!nodes_.empty());
  Rectangle mbr = geometry.Mbr();
  int64_t tests = 0;
  NodeId current = root();
  SJ_CHECK_MSG(NodeAt(current).mbr.Contains(mbr),
               "object " << mbr.ToString() << " outside the root object");
  for (;;) {
    NodeId next = kInvalidNodeId;
    for (NodeId child : NodeAt(current).children) {
      ++tests;
      if (NodeAt(child).mbr.Contains(mbr)) {
        next = child;
        break;
      }
    }
    if (next == kInvalidNodeId) break;
    current = next;
  }
  if (tests_out != nullptr) *tests_out = tests;
  return AddNode(current, std::move(geometry), tuple);
}

bool MemoryGenTree::ValidateContainment() const {
  for (const Node& node : nodes_) {
    if (node.parent == kInvalidNodeId) continue;
    if (!NodeAt(node.parent).mbr.Contains(node.mbr)) return false;
  }
  return true;
}

const std::string& MemoryGenTree::LabelOf(NodeId node) const {
  return NodeAt(node).label;
}

NodeId MemoryGenTree::ParentOf(NodeId node) const {
  return NodeAt(node).parent;
}

NodeId MemoryGenTree::root() const {
  SJ_CHECK_MSG(!nodes_.empty(), "tree is empty");
  return 0;
}

int MemoryGenTree::HeightOf(NodeId node) const { return NodeAt(node).height; }

std::vector<NodeId> MemoryGenTree::Children(NodeId node) const {
  return NodeAt(node).children;
}

Value MemoryGenTree::Geometry(NodeId node) const {
  const Node& n = NodeAt(node);
  if (relation_ != nullptr && n.tuple != kInvalidTupleId) {
    // Disk-backed node: fetch the stored tuple (this is where strategy
    // IIa/IIb I/O happens).
    Tuple t = relation_->Read(n.tuple);
    return t.value(relation_column_);
  }
  return n.geometry;
}

Rectangle MemoryGenTree::MbrOf(NodeId node) const { return NodeAt(node).mbr; }

bool MemoryGenTree::IsApplicationNode(NodeId node) const {
  return NodeAt(node).tuple != kInvalidTupleId;
}

TupleId MemoryGenTree::TupleOf(NodeId node) const {
  return NodeAt(node).tuple;
}

}  // namespace spatialjoin
