#ifndef SPATIALJOIN_CORE_MEMORY_GENTREE_H_
#define SPATIALJOIN_CORE_MEMORY_GENTREE_H_

#include <string>
#include <vector>

#include "core/gentree.h"
#include "relational/relation.h"

namespace spatialjoin {

/// An explicitly built generalization tree — the representation for
/// application-specific hierarchies of detail (paper Fig. 3: a map divided
/// into countries, countries into regions, regions into cities). Every
/// node may carry an application object; containment between a node and
/// its parent is the application's PART-OF relationship.
///
/// Structure (parent/child links, MBRs, heights) lives in memory; the
/// node *objects* can optionally be backed by a stored Relation, in which
/// case `Geometry(node)` reads the tuple from disk and the tree behaves
/// like the paper's strategy IIa/IIb index depending on the relation's
/// layout.
class MemoryGenTree : public GeneralizationTree {
 public:
  MemoryGenTree() = default;

  MemoryGenTree(const MemoryGenTree&) = delete;
  MemoryGenTree& operator=(const MemoryGenTree&) = delete;

  /// Adds a node under `parent` (pass kInvalidNodeId exactly once, for the
  /// root). `geometry` is the node's spatial object; `tuple` links it to a
  /// relation tuple (kInvalidTupleId for technical nodes); `label` is a
  /// display name ("Germany", "Bavaria", …).
  NodeId AddNode(NodeId parent, Value geometry,
                 TupleId tuple = kInvalidTupleId, std::string label = "");

  /// Backs application nodes by `relation`: Geometry(node) for a node with
  /// a valid tuple id reads column `column` of that tuple from storage
  /// (paying I/O). Must be called before queries that should count I/O.
  void AttachRelation(const Relation* relation, size_t column);

  /// Inserts a new object below the deepest node whose geometry MBR
  /// contains it, scanning children in order (the paper's §4.2 update
  /// model searches an expected k/2 children per level). Returns the new
  /// node and reports how many child MBR tests were made in
  /// `*tests_out` (may be null).
  NodeId InsertByContainment(Value geometry, TupleId tuple,
                             int64_t* tests_out = nullptr);

  /// True iff every non-root node's MBR lies inside its parent's MBR —
  /// the generalization-tree invariant.
  bool ValidateContainment() const;

  const std::string& LabelOf(NodeId node) const;
  NodeId ParentOf(NodeId node) const;

  // GeneralizationTree interface.
  NodeId root() const override;
  int height() const override { return height_; }
  int HeightOf(NodeId node) const override;
  std::vector<NodeId> Children(NodeId node) const override;
  Value Geometry(NodeId node) const override;
  Rectangle MbrOf(NodeId node) const override;
  bool IsApplicationNode(NodeId node) const override;
  TupleId TupleOf(NodeId node) const override;
  int64_t num_nodes() const override {
    return static_cast<int64_t>(nodes_.size());
  }

 private:
  struct Node {
    NodeId parent = kInvalidNodeId;
    std::vector<NodeId> children;
    Value geometry;
    Rectangle mbr;
    TupleId tuple = kInvalidTupleId;
    int height = 0;
    std::string label;
  };

  const Node& NodeAt(NodeId id) const;

  std::vector<Node> nodes_;
  int height_ = 0;
  const Relation* relation_ = nullptr;
  size_t relation_column_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_MEMORY_GENTREE_H_
