#ifndef SPATIALJOIN_CORE_HISTOGRAM_H_
#define SPATIALJOIN_CORE_HISTOGRAM_H_

#include <cstdint>
#include <vector>

#include "geometry/rectangle.h"
#include "relational/relation.h"

namespace spatialjoin {

/// An equi-width 2-D grid histogram over object MBRs — catalog-style
/// statistics for the strategy planner. Where `EstimateJoinStatistics`
/// θ-samples both relations at plan time (paying C_θ per probe), a
/// histogram is built once per relation during loading and lets the
/// planner estimate overlap-join selectivity from counts alone.
class GridHistogram {
 public:
  /// `cells_per_axis` equi-width cells over `world` per axis.
  GridHistogram(const Rectangle& world, int cells_per_axis);

  /// Registers one object: every cell its MBR touches is incremented.
  void Add(const Rectangle& mbr);

  /// Builds a histogram from a relation's spatial column in one scan.
  static GridHistogram Build(const Relation& relation, size_t column,
                             const Rectangle& world, int cells_per_axis);

  int64_t num_objects() const { return num_objects_; }
  int cells_per_axis() const { return cells_per_axis_; }
  const Rectangle& world() const { return world_; }

  /// Count of objects touching cell (x, y).
  int64_t CellCount(int x, int y) const;

  /// Estimated probability that a random object of `r` overlaps a random
  /// object of `s`: Σ_cells P_r(touch cell)·P_s(touch cell), clamped to
  /// [0, 1]. Touching a common cell is necessary for overlap and (at
  /// adequate resolution) nearly sufficient, so the estimate brackets
  /// the true selectivity from above at the granularity of one cell.
  /// Histograms must share world and resolution.
  static double EstimateOverlapSelectivity(const GridHistogram& r,
                                           const GridHistogram& s);

 private:
  int64_t IndexOf(double coord, double lo, double width) const;

  Rectangle world_;
  int cells_per_axis_;
  double cell_w_;
  double cell_h_;
  std::vector<int64_t> counts_;  // row-major
  int64_t num_objects_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_HISTOGRAM_H_
