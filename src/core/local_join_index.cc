#include "core/local_join_index.h"

#include <deque>

#include "common/check.h"

namespace spatialjoin {

LocalJoinIndex::LocalJoinIndex(BufferPool* pool,
                               const GeneralizationTree* tree,
                               int partition_height, int entries_per_page)
    : tree_(tree),
      partition_height_(partition_height),
      pairs_(pool, entries_per_page, entries_per_page) {
  SJ_CHECK(tree != nullptr);
  SJ_CHECK_GE(partition_height, 1);
  SJ_CHECK_LE(partition_height, tree->height());
}

void LocalJoinIndex::CollectPartitions() {
  partitions_.clear();
  // BFS down to partition_height; everything at that height roots a
  // partition. Shallower application nodes are rejected (see header).
  std::deque<NodeId> worklist{tree_->root()};
  std::vector<NodeId> roots;
  while (!worklist.empty()) {
    NodeId node = worklist.front();
    worklist.pop_front();
    int h = tree_->HeightOf(node);
    if (h == partition_height_) {
      roots.push_back(node);
      continue;
    }
    SJ_CHECK_MSG(!tree_->IsApplicationNode(node),
                 "application object above partition height "
                     << partition_height_);
    for (NodeId child : tree_->Children(node)) worklist.push_back(child);
  }
  for (NodeId root : roots) {
    Partition partition;
    partition.root = root;
    partition.mbr = tree_->MbrOf(root);
    std::deque<NodeId> sub{root};
    while (!sub.empty()) {
      NodeId node = sub.front();
      sub.pop_front();
      if (tree_->IsApplicationNode(node)) {
        partition.members.push_back(
            Member{node, tree_->TupleOf(node), tree_->MbrOf(node)});
      }
      for (NodeId child : tree_->Children(node)) sub.push_back(child);
    }
    partitions_.push_back(std::move(partition));
  }
}

int64_t LocalJoinIndex::Build(const ThetaOperator& op) {
  CollectPartitions();
  int64_t tests = 0;
  for (const Partition& partition : partitions_) {
    for (size_t i = 0; i < partition.members.size(); ++i) {
      Value gi = tree_->Geometry(partition.members[i].node);
      for (size_t j = 0; j < partition.members.size(); ++j) {
        if (i == j) continue;
        ++tests;
        if (op.Theta(gi, tree_->Geometry(partition.members[j].node))) {
          pairs_.Insert(
              static_cast<uint64_t>(partition.members[i].node),
              static_cast<uint64_t>(partition.members[j].node));
        }
      }
    }
  }
  built_ = true;
  return tests;
}

JoinResult LocalJoinIndex::Execute(const ThetaOperator& op,
                                   const exec::CancelToken* cancel) const {
  SJ_CHECK_MSG(built_, "Execute before Build");
  JoinResult result;
  // Intra-partition: read off the precomputed pairs.
  pairs_.ScanAll([&](uint64_t a, uint64_t b) {
    result.matches.emplace_back(tree_->TupleOf(static_cast<NodeId>(a)),
                                tree_->TupleOf(static_cast<NodeId>(b)));
  });
  // Cross-partition: Θ-pruned live computation.
  for (size_t p = 0; p < partitions_.size(); ++p) {
    for (size_t q = 0; q < partitions_.size(); ++q) {
      if (cancel != nullptr && cancel->ShouldStop()) return result;
      if (p == q) continue;
      const Partition& pp = partitions_[p];
      const Partition& qq = partitions_[q];
      ++result.theta_upper_tests;
      if (!op.ThetaUpper(pp.mbr, qq.mbr)) continue;
      for (const Member& a : pp.members) {
        SJ_BOUNDED_WORK;  // one partition's members; the pair loop polls
        Value ga = tree_->Geometry(a.node);
        ++result.nodes_accessed;
        for (const Member& b : qq.members) {
          SJ_BOUNDED_WORK;  // one partition's members; the pair loop polls
          ++result.theta_upper_tests;
          if (!op.ThetaUpper(a.mbr, b.mbr)) continue;
          ++result.theta_tests;
          ++result.nodes_accessed;
          if (op.Theta(ga, tree_->Geometry(b.node))) {
            result.matches.emplace_back(a.tuple, b.tuple);
          }
        }
      }
    }
  }
  return result;
}

int64_t LocalJoinIndex::UpdateCost(const Rectangle& mbr) const {
  SJ_CHECK_MSG(built_, "UpdateCost before Build");
  for (const Partition& partition : partitions_) {
    if (partition.mbr.Contains(mbr)) {
      return static_cast<int64_t>(partition.members.size());
    }
  }
  return 0;
}

}  // namespace spatialjoin
