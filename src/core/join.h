#ifndef SPATIALJOIN_CORE_JOIN_H_
#define SPATIALJOIN_CORE_JOIN_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "core/gentree.h"
#include "core/select.h"
#include "core/theta_ops.h"

namespace spatialjoin {

namespace exec {
class CancelToken;
}  // namespace exec

/// Outcome of a general spatial join, with the counters the cost model
/// prices.
struct JoinResult {
  /// Matching (R-tuple, S-tuple) pairs. Each matching pair appears exactly
  /// once (equal-height matches via JOIN3, unequal-height matches via the
  /// JOIN4 selection passes).
  std::vector<std::pair<TupleId, TupleId>> matches;
  int64_t theta_upper_tests = 0;
  int64_t theta_tests = 0;
  int64_t nodes_accessed = 0;
  /// Total size of the QualPairs worklists (pairs examined by JOIN2).
  int64_t qual_pairs_examined = 0;
};

/// Algorithm JOIN (paper §3.3): computes R ⋈_θ S over two generalization
/// trees by synchronized descent.
///
/// A QualPairs worklist per height holds pairs (a, b) of same-height nodes
/// whose parents Θ-matched crosswise. For each pair that Θ-matches, the
/// algorithm (JOIN3) θ-tests the pair itself and (JOIN4) runs two
/// selection passes — object a against the subtree below b and object b
/// against the subtree below a — to catch matches at unequal heights,
/// while recording which direct children cross-qualify to seed the next
/// worklist.
///
/// When `trace` is non-null, each QualPairs level j contributes one trace
/// level: worklist size (|QualPairs[j]|), Θ/θ tests (including the JOIN4
/// selection passes triggered from that level), pairs pruned vs.
/// descended at JOIN2, buffer-pool traffic, and wall-clock time.
///
/// `cancel` (optional) is polled at every QualPairs level boundary: a
/// cancelled or over-deadline query stops before starting the next level
/// and returns the matches found so far, with the token's latched reason
/// telling the caller the result is partial (exec/cancel.h).
JoinResult TreeJoin(const GeneralizationTree& r_tree,
                    const GeneralizationTree& s_tree,
                    const ThetaOperator& op,
                    Traversal traversal = Traversal::kBreadthFirst,
                    QueryTrace* trace = nullptr,
                    const exec::CancelToken* cancel = nullptr);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_JOIN_H_
