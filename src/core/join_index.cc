#include "core/join_index.h"

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

JoinIndex::JoinIndex(BufferPool* pool, int entries_per_page)
    : forward_(pool, entries_per_page, entries_per_page),
      backward_(pool, entries_per_page, entries_per_page) {}

int64_t JoinIndex::Build(const Relation& r, size_t col_r, const Relation& s,
                         size_t col_s, const ThetaOperator& op) {
  int64_t tests = 0;
  r.Scan([&](TupleId r_tid, const Tuple& r_tuple) {
    const Value& r_value = r_tuple.value(col_r);
    s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
      ++tests;
      if (op.Theta(r_value, s_tuple.value(col_s))) {
        Add(r_tid, s_tid);
      }
    });
  });
  return tests;
}

void JoinIndex::Add(TupleId r_tid, TupleId s_tid) {
  SJ_CHECK_GE(r_tid, 0);
  SJ_CHECK_GE(s_tid, 0);
  forward_.Insert(static_cast<uint64_t>(r_tid),
                  static_cast<uint64_t>(s_tid));
  backward_.Insert(static_cast<uint64_t>(s_tid),
                   static_cast<uint64_t>(r_tid));
}

bool JoinIndex::Remove(TupleId r_tid, TupleId s_tid) {
  bool fwd = forward_.Delete(static_cast<uint64_t>(r_tid),
                             static_cast<uint64_t>(s_tid));
  bool bwd = backward_.Delete(static_cast<uint64_t>(s_tid),
                              static_cast<uint64_t>(r_tid));
  SJ_CHECK_EQ(fwd, bwd);
  return fwd;
}

int64_t JoinIndex::OnInsertR(TupleId new_r, const Value& geometry,
                             const Relation& s, size_t col_s,
                             const ThetaOperator& op) {
  int64_t tests = 0;
  s.Scan([&](TupleId s_tid, const Tuple& s_tuple) {
    ++tests;
    if (op.Theta(geometry, s_tuple.value(col_s))) {
      Add(new_r, s_tid);
    }
  });
  return tests;
}

int64_t JoinIndex::OnInsertS(TupleId new_s, const Value& geometry,
                             const Relation& r, size_t col_r,
                             const ThetaOperator& op) {
  int64_t tests = 0;
  r.Scan([&](TupleId r_tid, const Tuple& r_tuple) {
    ++tests;
    if (op.Theta(r_tuple.value(col_r), geometry)) {
      Add(r_tid, new_s);
    }
  });
  return tests;
}

JoinResult JoinIndex::Execute(const Relation& r, const Relation& s) const {
  JoinResult result;
  forward_.ScanAll([&](uint64_t r_tid, uint64_t s_tid) {
    // Retrieve the joined tuples (this is the paper's dominant I/O term
    // for strategy III); the tuples themselves are discarded here, only
    // the access cost matters.
    (void)r.Read(static_cast<TupleId>(r_tid));
    (void)s.Read(static_cast<TupleId>(s_tid));
    result.nodes_accessed += 2;
    result.matches.emplace_back(static_cast<TupleId>(r_tid),
                                static_cast<TupleId>(s_tid));
  });
  return result;
}

std::vector<TupleId> JoinIndex::SMatchesOf(TupleId r_tid) const {
  std::vector<TupleId> out;
  for (uint64_t v : forward_.Lookup(static_cast<uint64_t>(r_tid))) {
    SJ_BOUNDED_WORK;  // one tuple's precomputed match list
    out.push_back(static_cast<TupleId>(v));
  }
  return out;
}

std::vector<TupleId> JoinIndex::RMatchesOf(TupleId s_tid) const {
  std::vector<TupleId> out;
  for (uint64_t v : backward_.Lookup(static_cast<uint64_t>(s_tid))) {
    out.push_back(static_cast<TupleId>(v));
  }
  return out;
}

}  // namespace spatialjoin
