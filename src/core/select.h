#ifndef SPATIALJOIN_CORE_SELECT_H_
#define SPATIALJOIN_CORE_SELECT_H_

#include <cstdint>
#include <vector>

#include "core/gentree.h"
#include "core/theta_ops.h"
#include "obs/trace.h"

namespace spatialjoin {

namespace exec {
class CancelToken;
}  // namespace exec

/// Traversal order for Algorithm SELECT. The paper formulates the
/// breadth-first variant (QualNodes[j] per height) and notes a depth-first
/// variant is equally possible, their relative efficiency depending on the
/// physical clustering of the tree (§3.2); the ablation bench measures
/// exactly that.
enum class Traversal {
  kBreadthFirst,
  kDepthFirst,
};

/// Outcome of a spatial selection, with the counters the cost model prices.
struct SelectResult {
  /// Matching nodes, in traversal order.
  std::vector<NodeId> matching_nodes;
  /// Tuples of matching application nodes (subset of matching_nodes).
  std::vector<TupleId> matching_tuples;
  /// Number of Θ evaluations performed (each visited node costs one).
  int64_t theta_upper_tests = 0;
  /// Number of θ evaluations performed (one per Θ-qualifying node).
  int64_t theta_tests = 0;
  /// Nodes whose geometry was accessed.
  int64_t nodes_accessed = 0;
};

/// Algorithm SELECT (paper §3.2): computes all nodes a of `tree` with
/// `selector` θ a, by pruning with Θ top-down.
///
/// Per the paper's SELECT2 step, for each node a on the worklist the
/// algorithm tests selector Θ a; on success it (1) tests selector θ a and
/// reports a match if the node is an application node, and (2) expands a's
/// children into the next worklist. Θ's defining property guarantees no
/// matching descendant is pruned. Works whether or not the selector object
/// is stored in the indexed relation.
///
/// When `trace` is non-null, every visited node is recorded into the
/// trace level of its height: worklist membership (the QualNodes[j]
/// analog), Θ/θ test counts, pruned vs. descended, buffer-pool traffic,
/// and wall-clock time. A null trace adds no work to the hot path.
///
/// `cancel` (optional) is polled on the same stride as the watchdog
/// heartbeat (entry + every 256 visits — finer than one tree level for
/// any realistic fanout): a cancelled or over-deadline selection stops
/// there with the matches found so far, the token's latched reason
/// marking the result partial (exec/cancel.h).
SelectResult SpatialSelect(const Value& selector,
                           const GeneralizationTree& tree,
                           const ThetaOperator& op,
                           Traversal traversal = Traversal::kBreadthFirst,
                           QueryTrace* trace = nullptr,
                           const exec::CancelToken* cancel = nullptr);

/// As SpatialSelect, but starting from an explicit set of root nodes
/// (used by Algorithm JOIN's step JOIN4 to search the subtrees below a
/// qualifying node without re-testing that node).
SelectResult SpatialSelectFrom(const Value& selector,
                               const GeneralizationTree& tree,
                               const std::vector<NodeId>& start_nodes,
                               const ThetaOperator& op,
                               Traversal traversal = Traversal::kBreadthFirst,
                               QueryTrace* trace = nullptr,
                               const exec::CancelToken* cancel = nullptr);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_SELECT_H_
