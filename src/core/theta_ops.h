#ifndef SPATIALJOIN_CORE_THETA_OPS_H_
#define SPATIALJOIN_CORE_THETA_OPS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "relational/value.h"

namespace spatialjoin {

/// A θ-operator together with its conservative Θ-counterpart (paper §3.1,
/// Table 1). The defining property is
///
///     o1 θ o2  ⇒  o1' Θ o2'   for the enclosing abstract objects o1', o2',
///
/// i.e. Θ never prunes a branch that could still contain a θ-match. The
/// converse need not hold: Θ may admit false positives, which the
/// algorithms resolve at finer granularity.
///
/// θ is evaluated on actual geometries (Values); Θ on abstract objects,
/// which in this library are MBRs (the R-tree case) or the objects' own
/// bounding rectangles (application hierarchies).
class ThetaOperator {
 public:
  virtual ~ThetaOperator() = default;

  /// Operator name for reports ("overlaps", "within_distance(10)", …).
  virtual std::string name() const = 0;

  /// The exact user-level predicate o1 θ o2.
  virtual bool Theta(const Value& a, const Value& b) const = 0;

  /// The conservative index-level predicate o1' Θ o2' on enclosing
  /// rectangles.
  virtual bool ThetaUpper(const Rectangle& a, const Rectangle& b) const = 0;

  /// A probe window for window-based access methods (grid file, native
  /// R-tree search): a rectangle W(b) such that Θ(a, b) implies a
  /// overlaps W(b). Returns nullopt when no finite window exists (the
  /// operator is then unsupported by window probes and callers must fall
  /// back to a scan or tree descent). `world` bounds half-open windows
  /// like the Northwest quadrant.
  virtual std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const {
    (void)b;
    (void)world;
    return std::nullopt;
  }

  /// True iff a θ b implies b θ a (used by self-join optimizations).
  virtual bool is_symmetric() const { return false; }
};

/// Centerpoint of a spatial value (paper §3.1: "the object's center of
/// gravity"): the point itself, the rectangle center, or the polygon
/// centroid. Checked error on scalar values.
Point CenterpointOf(const Value& v);

/// Minimum distance between two spatial values' geometries (0 when they
/// intersect). Handles all point/rectangle/polygon combinations.
double MinDistanceBetween(const Value& a, const Value& b);

/// True iff the two spatial values' geometries share at least one point.
bool GeometriesOverlap(const Value& a, const Value& b);

/// True iff geometry `a` contains geometry `b` entirely.
bool GeometryContains(const Value& a, const Value& b);

// ---------------------------------------------------------------------------
// Table 1 operators.
// ---------------------------------------------------------------------------

/// "o1 within distance d from o2" — θ measured between centerpoints,
/// Θ measured between closest points of the enclosing rectangles (Table 1,
/// row 1). Θ is conservative because the centerpoints of contained objects
/// cannot be closer than the closest points of the containers.
class WithinDistanceOp : public ThetaOperator {
 public:
  explicit WithinDistanceOp(double distance);
  std::string name() const override;
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
  bool is_symmetric() const override { return true; }

 private:
  double distance_;
};

/// "o1 overlaps o2" — Θ is rectangle overlap (Table 1, row 2).
class OverlapsOp : public ThetaOperator {
 public:
  std::string name() const override { return "overlaps"; }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
  bool is_symmetric() const override { return true; }
};

/// "o1 includes o2" — Θ is rectangle overlap (Table 1, row 3 / Fig. 4:
/// a subobject of o1' may include a subobject of o2' as soon as the
/// containers overlap).
class IncludesOp : public ThetaOperator {
 public:
  std::string name() const override { return "includes"; }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
};

/// "o1 contained in o2" — mirror of IncludesOp (Table 1, row 4).
class ContainedInOp : public ThetaOperator {
 public:
  std::string name() const override { return "contained_in"; }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
};

/// "o1 to the Northwest of o2" — θ between centerpoints; Θ: o1' overlaps
/// the NW quadrant formed by the right vertical and the lower horizontal
/// tangent on o2' (Table 1, row 5 / Fig. 5). The quadrant is
/// { (x,y) : x <= o2'.max_x  and  y >= o2'.min_y }.
class NorthwestOfOp : public ThetaOperator {
 public:
  std::string name() const override { return "northwest_of"; }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
};

/// "o1 adjacent to o2" — the operator of the paper's Fig.-1 sort-merge
/// counterexample: the geometries touch (share boundary points) without
/// sharing interior. For rectangles: closest distance 0 but zero-area
/// intersection. Θ is closed overlap (touching containers are necessary
/// for touching contents).
class AdjacentOp : public ThetaOperator {
 public:
  std::string name() const override { return "adjacent"; }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
  bool is_symmetric() const override { return true; }
};

/// "o1 reachable from o2 in x minutes" — modeled with a travel speed:
/// reachable ⇔ closest-point distance <= speed·minutes (our synthetic
/// stand-in for the road-network buffer of Table 1, row 6; the Θ-level
/// test "o1' overlaps the x-minute buffer of o2'" becomes an expanded-MBR
/// overlap, which is conservative for any road network no faster than
/// `speed` as the crow flies).
class ReachableWithinOp : public ThetaOperator {
 public:
  ReachableWithinOp(double minutes, double speed_per_minute);
  std::string name() const override;
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override;
  bool is_symmetric() const override { return true; }

 private:
  double minutes_;
  double speed_per_minute_;
};

/// Decorator counting θ and Θ evaluations — the empirical analogue of the
/// model's computation cost (C_θ per test; Θ and θ are charged alike,
/// matching the paper's single C_θ).
class CountingTheta : public ThetaOperator {
 public:
  explicit CountingTheta(const ThetaOperator* inner);

  std::string name() const override { return inner_->name(); }
  bool Theta(const Value& a, const Value& b) const override;
  bool ThetaUpper(const Rectangle& a, const Rectangle& b) const override;
  std::optional<Rectangle> ProbeWindow(
      const Rectangle& b, const Rectangle& world) const override {
    // Window derivation is planning, not a priced Θ evaluation.
    return inner_->ProbeWindow(b, world);
  }
  bool is_symmetric() const override { return inner_->is_symmetric(); }

  int64_t theta_count() const { return theta_count_; }
  int64_t theta_upper_count() const { return theta_upper_count_; }
  int64_t total_count() const { return theta_count_ + theta_upper_count_; }
  void Reset();

 private:
  const ThetaOperator* inner_;
  mutable int64_t theta_count_ = 0;
  mutable int64_t theta_upper_count_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_THETA_OPS_H_
