#include "core/spatial_join.h"

#include <algorithm>
#include <string>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "core/index_nested_loop.h"
#include "core/sort_merge_zorder.h"
#include "exec/cancel.h"
#include "exec/frozen_tree.h"
#include "exec/parallel_join.h"
#include "exec/parallel_select.h"
#include "exec/partitioned_join.h"
#include "exec/thread_pool.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

const char* JoinStrategyName(JoinStrategy strategy) {
  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      return "nested_loop";
    case JoinStrategy::kTreeJoin:
      return "tree_join";
    case JoinStrategy::kIndexNestedLoop:
      return "index_nested_loop";
    case JoinStrategy::kSortMergeZOrder:
      return "sort_merge_zorder";
    case JoinStrategy::kJoinIndex:
      return "join_index";
    case JoinStrategy::kParallelTreeJoin:
      return "parallel_tree_join";
    case JoinStrategy::kPartitionedJoin:
      return "partitioned_join";
  }
  return "unknown";
}

const char* SelectStrategyName(SelectStrategy strategy) {
  switch (strategy) {
    case SelectStrategy::kExhaustive:
      return "exhaustive";
    case SelectStrategy::kTree:
      return "tree_select";
    case SelectStrategy::kJoinIndexLookup:
      return "join_index_lookup";
    case SelectStrategy::kParallelTree:
      return "parallel_tree_select";
  }
  return "unknown";
}

namespace {

JoinResult DispatchJoin(JoinStrategy strategy, const SpatialJoinContext& ctx,
                        const ThetaOperator& op) {
  switch (strategy) {
    case JoinStrategy::kNestedLoop:
      SJ_CHECK(ctx.r != nullptr && ctx.s != nullptr);
      return NestedLoopJoin(*ctx.r, ctx.col_r, *ctx.s, ctx.col_s, op,
                            ctx.nested_loop_options, ctx.cancel);
    case JoinStrategy::kTreeJoin:
      SJ_CHECK_MSG(ctx.r_tree != nullptr && ctx.s_tree != nullptr,
                   "tree_join needs generalization trees on both inputs");
      return TreeJoin(*ctx.r_tree, *ctx.s_tree, op, ctx.traversal,
                      ctx.trace, ctx.cancel);
    case JoinStrategy::kIndexNestedLoop:
      SJ_CHECK_MSG(ctx.r_tree != nullptr && ctx.s != nullptr,
                   "index_nested_loop needs a tree on R and relation S");
      return IndexNestedLoopJoin(*ctx.r_tree, *ctx.s, ctx.col_s, op,
                                 ctx.traversal, ctx.cancel);
    case JoinStrategy::kSortMergeZOrder:
      SJ_CHECK_MSG(ctx.zgrid != nullptr, "sort_merge_zorder needs a ZGrid");
      SJ_CHECK(ctx.r != nullptr && ctx.s != nullptr);
      return SortMergeZOrderJoin(*ctx.r, ctx.col_r, *ctx.s, ctx.col_s, op,
                                 *ctx.zgrid, ctx.zorder_options,
                                 /*stats=*/nullptr, ctx.cancel);
    case JoinStrategy::kJoinIndex:
      SJ_CHECK_MSG(ctx.join_index != nullptr,
                   "join_index strategy needs a prebuilt JoinIndex");
      SJ_CHECK(ctx.r != nullptr && ctx.s != nullptr);
      return ctx.join_index->Execute(*ctx.r, *ctx.s);
    case JoinStrategy::kParallelTreeJoin: {
      SJ_CHECK_MSG(ctx.r_tree != nullptr && ctx.s_tree != nullptr,
                   "parallel_tree_join needs generalization trees on both "
                   "inputs");
      SJ_CHECK_MSG(ctx.exec_pool != nullptr,
                   "parallel_tree_join needs a SpatialJoinContext.exec_pool");
      // Snapshot both trees on this thread (the storage layer is
      // single-threaded), then fan the level-synchronized join out.
      exec::FrozenTree r_frozen = exec::FrozenTree::Materialize(*ctx.r_tree);
      exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*ctx.s_tree);
      return exec::ParallelTreeJoin(r_frozen, s_frozen, op, ctx.exec_pool,
                                    {}, ctx.cancel);
    }
    case JoinStrategy::kPartitionedJoin: {
      SJ_CHECK(ctx.r != nullptr && ctx.s != nullptr);
      SJ_CHECK_MSG(ctx.exec_pool != nullptr,
                   "partitioned_join needs a SpatialJoinContext.exec_pool");
      SJ_CHECK_MSG(exec::PartitionedJoinSupports(op),
                   "partitioned_join needs an operator with a finite probe "
                   "window");
      std::vector<exec::JoinItem> r_items =
          exec::CollectJoinItems(*ctx.r, ctx.col_r);
      std::vector<exec::JoinItem> s_items =
          exec::CollectJoinItems(*ctx.s, ctx.col_s);
      exec::PartitionedJoinOptions options;
      options.grid_cols = ctx.exec_grid;
      options.grid_rows = ctx.exec_grid;
      return exec::PartitionedJoin(r_items, s_items, op, ctx.exec_pool,
                                   options, ctx.cancel);
    }
  }
  SJ_CHECK_MSG(false, "unreachable");
  return JoinResult{};
}

}  // namespace

JoinResult ExecuteJoin(JoinStrategy strategy, const SpatialJoinContext& ctx,
                       const ThetaOperator& op) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("query.join.count")->Increment();
  registry
      .GetCounter(std::string("query.join.strategy.") +
                  JoinStrategyName(strategy))
      ->Increment();
  SJ_EVENT(kQueryAdmitted, kInfo, "join %s (op %s)",
           JoinStrategyName(strategy), op.name().c_str());
  // With a token attached, the advisory budget becomes enforceable: arm
  // the token so the level loops actually stop at the deadline.
  if (ctx.cancel != nullptr && ctx.deadline_budget_ns > 0) {
    ctx.cancel->ArmDeadline(ctx.deadline_budget_ns);
  }

  JoinResult result;
  double wall_ns = 0.0;
  {
    // JoinStrategyName returns static strings, as SJ_SPAN (and
    // ActivityScope) names must be. The scope registers the query with
    // the flight recorder: level loops heartbeat it, the watchdog flags
    // it if it stalls or overruns ctx.deadline_budget_ns.
    ActivityScope activity("query.join", JoinStrategyName(strategy),
                           ctx.deadline_budget_ns);
    ScopedSpan span(JoinStrategyName(strategy), "query.join");
    ScopedTimer timer(registry.GetHistogram("query.join.wall_ns"), &wall_ns);
    result = DispatchJoin(strategy, ctx, op);
  }
  if (ctx.cancel != nullptr &&
      ctx.cancel->reason() != exec::StopReason::kNone) {
    const bool deadline =
        ctx.cancel->reason() == exec::StopReason::kDeadline;
    registry
        .GetCounter(deadline ? "query.join.stopped.deadline"
                             : "query.join.stopped.cancelled")
        ->Increment();
    SJ_EVENT(kDeadlineExceeded, kWarn, "join %s stopped early (%s)",
             JoinStrategyName(strategy), deadline ? "deadline" : "cancel");
  }
  SJ_EVENT(kQueryFinished, kInfo, "join %s: %lld matches, %.2f ms",
           JoinStrategyName(strategy),
           static_cast<long long>(result.matches.size()), wall_ns / 1e6);
  registry.GetCounter("query.join.matches")
      ->Increment(static_cast<int64_t>(result.matches.size()));
  if (ctx.trace != nullptr) {
    ctx.trace->set_strategy(JoinStrategyName(strategy));
    ctx.trace->set_wall_ns(wall_ns);
    ctx.trace->set_matches(static_cast<int64_t>(result.matches.size()));
  }
  return result;
}

namespace {

JoinResult DispatchSelect(SelectStrategy strategy,
                          const SpatialJoinContext& ctx,
                          const Value& selector, TupleId selector_tid,
                          const ThetaOperator& op) {
  switch (strategy) {
    case SelectStrategy::kExhaustive: {
      SJ_CHECK(ctx.s != nullptr);
      JoinResult result =
          NestedLoopSelect(selector, *ctx.s, ctx.col_s, op);
      // NestedLoopSelect reports matches on the left; reorient to S side.
      for (auto& m : result.matches) {
        SJ_BOUNDED_WORK;  // one pass over the finished result
        m = {selector_tid, m.first};
      }
      return result;
    }
    case SelectStrategy::kTree: {
      SJ_CHECK_MSG(ctx.s_tree != nullptr, "tree select needs a tree on S");
      SelectResult sel = SpatialSelect(selector, *ctx.s_tree, op,
                                       ctx.traversal, ctx.trace, ctx.cancel);
      JoinResult result;
      result.theta_tests = sel.theta_tests;
      result.theta_upper_tests = sel.theta_upper_tests;
      result.nodes_accessed = sel.nodes_accessed;
      for (TupleId tid : sel.matching_tuples) {
        SJ_BOUNDED_WORK;  // repackages a finished select's matches
        result.matches.emplace_back(selector_tid, tid);
      }
      return result;
    }
    case SelectStrategy::kJoinIndexLookup: {
      SJ_CHECK_MSG(ctx.join_index != nullptr && ctx.s != nullptr,
                   "join-index lookup needs the index and relation S");
      SJ_CHECK_MSG(selector_tid != kInvalidTupleId,
                   "join-index lookup requires a stored selector tuple");
      JoinResult result;
      for (TupleId s_tid : ctx.join_index->SMatchesOf(selector_tid)) {
        SJ_BOUNDED_WORK;  // one tuple's precomputed match list
        (void)ctx.s->Read(s_tid);
        ++result.nodes_accessed;
        result.matches.emplace_back(selector_tid, s_tid);
      }
      return result;
    }
    case SelectStrategy::kParallelTree: {
      SJ_CHECK_MSG(ctx.s_tree != nullptr,
                   "parallel tree select needs a tree on S");
      SJ_CHECK_MSG(ctx.exec_pool != nullptr,
                   "parallel tree select needs a SpatialJoinContext."
                   "exec_pool");
      exec::FrozenTree s_frozen = exec::FrozenTree::Materialize(*ctx.s_tree);
      SelectResult sel = exec::ParallelSelect(selector, s_frozen, op,
                                              ctx.exec_pool, {}, ctx.cancel);
      JoinResult result;
      result.theta_tests = sel.theta_tests;
      result.theta_upper_tests = sel.theta_upper_tests;
      result.nodes_accessed = sel.nodes_accessed;
      for (TupleId tid : sel.matching_tuples) {
        SJ_BOUNDED_WORK;  // repackages a finished select's matches
        result.matches.emplace_back(selector_tid, tid);
      }
      return result;
    }
  }
  SJ_CHECK_MSG(false, "unreachable");
  return JoinResult{};
}

}  // namespace

JoinResult ExecuteSelect(SelectStrategy strategy,
                         const SpatialJoinContext& ctx, const Value& selector,
                         TupleId selector_tid, const ThetaOperator& op) {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("query.select.count")->Increment();
  registry
      .GetCounter(std::string("query.select.strategy.") +
                  SelectStrategyName(strategy))
      ->Increment();

  SJ_EVENT(kQueryAdmitted, kInfo, "select %s (op %s)",
           SelectStrategyName(strategy), op.name().c_str());
  if (ctx.cancel != nullptr && ctx.deadline_budget_ns > 0) {
    ctx.cancel->ArmDeadline(ctx.deadline_budget_ns);
  }
  JoinResult result;
  double wall_ns = 0.0;
  {
    ActivityScope activity("query.select", SelectStrategyName(strategy),
                           ctx.deadline_budget_ns);
    ScopedSpan span(SelectStrategyName(strategy), "query.select");
    ScopedTimer timer(registry.GetHistogram("query.select.wall_ns"),
                      &wall_ns);
    result = DispatchSelect(strategy, ctx, selector, selector_tid, op);
  }
  if (ctx.cancel != nullptr &&
      ctx.cancel->reason() != exec::StopReason::kNone) {
    const bool deadline =
        ctx.cancel->reason() == exec::StopReason::kDeadline;
    registry
        .GetCounter(deadline ? "query.select.stopped.deadline"
                             : "query.select.stopped.cancelled")
        ->Increment();
    SJ_EVENT(kDeadlineExceeded, kWarn, "select %s stopped early (%s)",
             SelectStrategyName(strategy), deadline ? "deadline" : "cancel");
  }
  SJ_EVENT(kQueryFinished, kInfo, "select %s: %lld matches, %.2f ms",
           SelectStrategyName(strategy),
           static_cast<long long>(result.matches.size()), wall_ns / 1e6);
  registry.GetCounter("query.select.matches")
      ->Increment(static_cast<int64_t>(result.matches.size()));
  if (ctx.trace != nullptr) {
    ctx.trace->set_strategy(SelectStrategyName(strategy));
    ctx.trace->set_wall_ns(wall_ns);
    ctx.trace->set_matches(static_cast<int64_t>(result.matches.size()));
  }
  return result;
}

void NormalizeMatches(JoinResult* result) {
  std::sort(result->matches.begin(), result->matches.end());
  result->matches.erase(
      std::unique(result->matches.begin(), result->matches.end()),
      result->matches.end());
}

}  // namespace spatialjoin
