#include "core/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

GridHistogram::GridHistogram(const Rectangle& world, int cells_per_axis)
    : world_(world), cells_per_axis_(cells_per_axis) {
  SJ_CHECK(!world.is_empty());
  SJ_CHECK(world.width() > 0 && world.height() > 0);
  SJ_CHECK_GE(cells_per_axis, 1);
  SJ_CHECK_LE(cells_per_axis, 4096);
  cell_w_ = world.width() / cells_per_axis;
  cell_h_ = world.height() / cells_per_axis;
  counts_.assign(
      static_cast<size_t>(cells_per_axis) * cells_per_axis, 0);
}

int64_t GridHistogram::IndexOf(double coord, double lo, double width) const {
  int64_t idx = static_cast<int64_t>(std::floor((coord - lo) / width));
  return Clamp<int64_t>(idx, 0, cells_per_axis_ - 1);
}

void GridHistogram::Add(const Rectangle& mbr) {
  SJ_CHECK(!mbr.is_empty());
  int64_t x_lo = IndexOf(mbr.min_x(), world_.min_x(), cell_w_);
  int64_t x_hi = IndexOf(mbr.max_x(), world_.min_x(), cell_w_);
  int64_t y_lo = IndexOf(mbr.min_y(), world_.min_y(), cell_h_);
  int64_t y_hi = IndexOf(mbr.max_y(), world_.min_y(), cell_h_);
  for (int64_t y = y_lo; y <= y_hi; ++y) {
    for (int64_t x = x_lo; x <= x_hi; ++x) {
      ++counts_[static_cast<size_t>(y * cells_per_axis_ + x)];
    }
  }
  ++num_objects_;
}

GridHistogram GridHistogram::Build(const Relation& relation, size_t column,
                                   const Rectangle& world,
                                   int cells_per_axis) {
  GridHistogram histogram(world, cells_per_axis);
  relation.Scan([&](TupleId, const Tuple& tuple) {
    histogram.Add(tuple.value(column).Mbr());
  });
  return histogram;
}

int64_t GridHistogram::CellCount(int x, int y) const {
  SJ_CHECK_GE(x, 0);
  SJ_CHECK_LT(x, cells_per_axis_);
  SJ_CHECK_GE(y, 0);
  SJ_CHECK_LT(y, cells_per_axis_);
  return counts_[static_cast<size_t>(y) *
                     static_cast<size_t>(cells_per_axis_) +
                 static_cast<size_t>(x)];
}

double GridHistogram::EstimateOverlapSelectivity(const GridHistogram& r,
                                                 const GridHistogram& s) {
  SJ_CHECK_EQ(r.cells_per_axis_, s.cells_per_axis_);
  SJ_CHECK(r.world_ == s.world_);
  if (r.num_objects_ == 0 || s.num_objects_ == 0) return 0.0;
  double total = 0.0;
  double nr = static_cast<double>(r.num_objects_);
  double ns = static_cast<double>(s.num_objects_);
  for (size_t i = 0; i < r.counts_.size(); ++i) {
    total += (static_cast<double>(r.counts_[i]) / nr) *
             (static_cast<double>(s.counts_[i]) / ns);
  }
  return Clamp(total, 0.0, 1.0);
}

}  // namespace spatialjoin
