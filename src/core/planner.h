#ifndef SPATIALJOIN_CORE_PLANNER_H_
#define SPATIALJOIN_CORE_PLANNER_H_

#include <string>

#include "core/spatial_join.h"
#include "core/theta_ops.h"
#include "costmodel/parameters.h"
#include "relational/relation.h"

namespace spatialjoin {

/// Input statistics for strategy selection, obtainable by sampling.
struct JoinStatistics {
  int64_t r_tuples = 0;
  int64_t s_tuples = 0;
  /// Estimated P(θ(r, s)) for a random pair — the model's p.
  double selectivity = 0.0;
  /// Standard error of the selectivity estimate, √(p̂(1−p̂)/samples).
  /// Zero when the selectivity was supplied rather than sampled; the
  /// planner then treats only exact cost ties as ties.
  double selectivity_stderr = 0.0;
  /// θ evaluations spent estimating (the planner's own cost).
  int64_t sample_tests = 0;
};

/// Estimates join selectivity by θ-testing `sample_pairs` random tuple
/// pairs (with replacement, seeded — deterministic).
JoinStatistics EstimateJoinStatistics(const Relation& r, size_t col_r,
                                      const Relation& s, size_t col_s,
                                      const ThetaOperator& op,
                                      int sample_pairs, uint64_t seed);

/// Maps observed relation sizes and selectivity onto the paper's balanced
/// k-ary model tree: keeps the paper's fan-out, derives the height from N,
/// clamps p into (0, 1]. Used by the planner to price strategies and by
/// ExplainAnalyze to produce the predicted side of its report.
ModelParameters FitModelParameters(const JoinStatistics& stats);

/// What the planner may choose between, and the workload context that
/// shifts the trade-off (the paper's §5: "join indices are only
/// efficient if update ratios are very low and join selectivities are
/// comparatively low").
struct PlannerContext {
  bool r_tree_available = false;
  bool s_tree_available = false;
  bool join_index_available = false;
  /// θ is overlap-like (sort-merge on z-order is sound).
  bool overlap_like = false;
  /// Expected inserts per join query; join-index maintenance is charged
  /// at U_III per insert, tree maintenance at U_IIb.
  double updates_per_query = 0.0;
  /// Worker threads available for the exec-layer strategies; parallel
  /// alternatives are infeasible below 2.
  int threads = 1;
  /// θ has a finite probe window (Table 1 column W(b)); required by the
  /// partitioned (PBSM-style) join.
  bool probe_window_available = false;
};

/// One scored alternative, for explainability.
struct PlannedAlternative {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  bool feasible = false;
  double estimated_cost = 0.0;
  /// The cost gap to the chosen plan is within the sampling noise: the
  /// cost intervals obtained by re-pricing at p̂ ± stderr overlap the
  /// winner's interval, so the ranking between the two is not
  /// statistically meaningful.  Always false on the chosen strategy.
  bool near_tie = false;
};

/// The chosen plan plus all scored alternatives.
struct JoinPlan {
  JoinStrategy strategy = JoinStrategy::kNestedLoop;
  double estimated_cost = 0.0;
  PlannedAlternative alternatives[7];
  /// Renders the ranking for diagnostics.
  std::string ToString() const;
};

/// Chooses the cheapest feasible strategy by instantiating the paper's
/// cost model at the observed relation sizes and estimated selectivity
/// (UNIFORM distribution — the planner has no locality information),
/// amortizing maintenance per `updates_per_query`. Nested loop is always
/// feasible, so a plan always exists.
JoinPlan PlanJoin(const JoinStatistics& stats, const PlannerContext& ctx);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_PLANNER_H_
