#ifndef SPATIALJOIN_CORE_INDEX_NESTED_LOOP_H_
#define SPATIALJOIN_CORE_INDEX_NESTED_LOOP_H_

#include "core/gentree.h"
#include "core/join.h"
#include "core/select.h"
#include "exec/cancel.h"
#include "core/theta_ops.h"
#include "relational/relation.h"

namespace spatialjoin {

/// Index-supported join (paper §2.1/§2.2, the strategy Rotem demonstrated
/// for grid files): scan the unindexed relation S and, for each S tuple,
/// probe R's generalization tree with Algorithm SELECT. Requires only one
/// index; complements TreeJoin, which needs one per side.
///
/// The result pairs are ordered (R tuple, S tuple) and θ is applied as
/// θ(r, s) even though the probe runs with s as the selector.
///
/// `cancel` (optional) is forwarded into every SELECT probe, which polls
/// it at its level boundaries; a cancelled join returns the matches found
/// so far.
JoinResult IndexNestedLoopJoin(const GeneralizationTree& r_tree,
                               const Relation& s, size_t col_s,
                               const ThetaOperator& op,
                               Traversal traversal = Traversal::kBreadthFirst,
                               const exec::CancelToken* cancel = nullptr);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_INDEX_NESTED_LOOP_H_
