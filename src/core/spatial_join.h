#ifndef SPATIALJOIN_CORE_SPATIAL_JOIN_H_
#define SPATIALJOIN_CORE_SPATIAL_JOIN_H_

#include <string>

#include "core/gentree.h"
#include "core/join.h"
#include "core/join_index.h"
#include "core/nested_loop.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "obs/trace.h"
#include "relational/relation.h"
#include "zorder/zdecompose.h"
#include "zorder/zorder.h"

namespace spatialjoin {

namespace exec {
class CancelToken;
class ThreadPool;
}  // namespace exec

/// The join-processing strategies compared in the paper (§2, §4), the
/// index-supported strategy of §2.2, and the parallel strategies of the
/// exec layer (DESIGN.md §7).
enum class JoinStrategy {
  kNestedLoop,        // strategy I
  kTreeJoin,          // strategy II (Algorithm JOIN over two trees)
  kIndexNestedLoop,   // index-supported join with one tree
  kSortMergeZOrder,   // Orenstein sort-merge; overlap-like θ only
  kJoinIndex,         // strategy III (precomputed)
  kParallelTreeJoin,  // strategy II, QualPairs sharded over a thread pool
  kPartitionedJoin,   // PBSM-style grid partitioning + per-tile sweep
};

/// Display name ("nested_loop", "tree_join", …).
const char* JoinStrategyName(JoinStrategy strategy);

/// All inputs a strategy might need; unused fields may stay null, but
/// dispatching to a strategy whose prerequisites are missing is a checked
/// error (e.g. kTreeJoin without both trees).
struct SpatialJoinContext {
  const Relation* r = nullptr;
  size_t col_r = 0;
  const Relation* s = nullptr;
  size_t col_s = 0;
  const GeneralizationTree* r_tree = nullptr;
  const GeneralizationTree* s_tree = nullptr;
  const JoinIndex* join_index = nullptr;
  const ZGrid* zgrid = nullptr;
  NestedLoopOptions nested_loop_options;
  ZDecomposeOptions zorder_options;
  Traversal traversal = Traversal::kBreadthFirst;
  /// Optional per-query trace. ExecuteJoin/ExecuteSelect stamp strategy,
  /// wall time, and match count on it; the tree strategies additionally
  /// fill per-level events (see QueryTrace).
  QueryTrace* trace = nullptr;
  /// Worker pool for the parallel strategies (kParallelTreeJoin,
  /// kPartitionedJoin, SelectStrategy::kParallelTree); dispatching one of
  /// them with a null pool is a checked error. The storage layer is
  /// single-threaded, so the dispatcher materializes thread-safe
  /// snapshots (exec::FrozenTree / exec::JoinItem vectors) on the calling
  /// thread before fanning out.
  exec::ThreadPool* exec_pool = nullptr;
  /// Grid granularity for kPartitionedJoin (tiles per axis; 0 = derive
  /// from the input size).
  int exec_grid = 0;
  /// Wall-clock budget for the query in nanoseconds (0 = none). Two
  /// consumers: the flight recorder's watchdog (obs/flight_recorder.h)
  /// reports an over-deadline query with a deadline_exceeded event and a
  /// dump, and when `cancel` is set the dispatcher arms the token with
  /// this budget so the traversal actually stops (see below).
  int64_t deadline_budget_ns = 0;
  /// Optional cooperative cancellation/deadline token (exec/cancel.h).
  /// The tree-walking strategies poll it at their level boundaries and
  /// stop early when it fires; ExecuteJoin/ExecuteSelect then return the
  /// partial result with the token's reason latched — callers that need
  /// a Status convert via cancel->ToStatus() (the query service does).
  /// Strategies without level structure (nested loop, sort-merge, join
  /// index) ignore the token and run to completion.
  exec::CancelToken* cancel = nullptr;
};

/// Runs R ⋈_θ S with the chosen strategy. All strategies produce the same
/// match set (sort-merge only for overlap-like θ); they differ in the
/// counters, which the benches translate into paper-comparable costs.
///
/// Every execution emits into the global MetricsRegistry: query.join.count,
/// query.join.strategy.<name>, query.join.matches, and the wall-clock
/// histogram query.join.wall_ns.
JoinResult ExecuteJoin(JoinStrategy strategy, const SpatialJoinContext& ctx,
                       const ThetaOperator& op);

/// Strategies for the degenerate join (spatial selection, §4.3).
enum class SelectStrategy {
  kExhaustive,       // strategy I
  kTree,             // strategy II (Algorithm SELECT)
  kJoinIndexLookup,  // strategy III; selector must be a stored R tuple
  kParallelTree,     // strategy II with the frontier sharded per level
};

/// Display name for a selection strategy.
const char* SelectStrategyName(SelectStrategy strategy);

/// Runs a spatial selection over S: all S tuples with selector θ s.
/// For kJoinIndexLookup, `selector_tid` names the stored R tuple whose
/// matches are read from ctx.join_index; other strategies use `selector`.
JoinResult ExecuteSelect(SelectStrategy strategy,
                         const SpatialJoinContext& ctx, const Value& selector,
                         TupleId selector_tid, const ThetaOperator& op);

/// Sorts matches lexicographically and removes duplicates, for comparing
/// strategies' outputs.
void NormalizeMatches(JoinResult* result);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_SPATIAL_JOIN_H_
