#ifndef SPATIALJOIN_CORE_GENTREE_H_
#define SPATIALJOIN_CORE_GENTREE_H_

#include <cstdint>
#include <vector>

#include "geometry/rectangle.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace spatialjoin {

/// Identifier of a node within one generalization tree.
using NodeId = int64_t;

/// Sentinel for "no node".
inline constexpr NodeId kInvalidNodeId = -1;

/// A generalization tree (paper §3.1): a tree where each node corresponds
/// to a spatial object and, except for the root, each object is completely
/// contained in its parent's object. Siblings may overlap and need not
/// cover their parent (dead space is allowed).
///
/// The definition subsumes
///  * abstract spatial indices such as Guttman's R-tree (interior nodes
///    are technical bounding rectangles of no interest to the user), and
///  * application-specific hierarchies of detail (Fig. 3: countries →
///    regions → cities), where every node is an application object.
///
/// Each generalization tree serves as a secondary index on one spatial
/// column of one relation (the paper's standing assumption from §3.1).
///
/// Height convention (paper §3.2): the root is at height 0 and heights
/// grow downward; `height()` is the height of the deepest leaves.
///
/// I/O discipline: `Geometry(node)` is the access that touches the stored
/// object (paper assumption: "tree nodes contain the complete tuples");
/// disk-backed implementations charge page I/O there and in `Children`.
/// Metadata (`HeightOf`, `root`, …) is free, mirroring the model's
/// root-locked-in-memory assumption.
class GeneralizationTree {
 public:
  virtual ~GeneralizationTree() = default;

  /// The root node. Trees are never empty.
  virtual NodeId root() const = 0;

  /// Height of the deepest leaf (root = 0).
  virtual int height() const = 0;

  /// Height of `node` (distance from the root).
  virtual int HeightOf(NodeId node) const = 0;

  /// Child nodes of `node`, empty for leaves. May perform page I/O.
  virtual std::vector<NodeId> Children(NodeId node) const = 0;

  /// The spatial object of `node`. For technical nodes (e.g. R-tree
  /// interior nodes) this is the bounding rectangle; for application
  /// nodes it is the stored geometry. May perform page I/O.
  virtual Value Geometry(NodeId node) const = 0;

  /// MBR of the node's object. Derivable from Geometry but kept separate
  /// because index-level MBRs are typically available without fetching
  /// the full object.
  virtual Rectangle MbrOf(NodeId node) const = 0;

  /// True iff the node corresponds to an application object that may
  /// qualify for a query answer (paper: "we allow for the possibility
  /// that interior nodes correspond to application objects").
  virtual bool IsApplicationNode(NodeId node) const = 0;

  /// The tuple this node represents, or kInvalidTupleId for technical
  /// nodes.
  virtual TupleId TupleOf(NodeId node) const = 0;

  /// Total number of nodes (application + technical).
  virtual int64_t num_nodes() const = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_GENTREE_H_
