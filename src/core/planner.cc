#include "core/planner.h"

#include <algorithm>
#include <array>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"
#include "costmodel/join_cost.h"
#include "costmodel/update_cost.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {

JoinStatistics EstimateJoinStatistics(const Relation& r, size_t col_r,
                                      const Relation& s, size_t col_s,
                                      const ThetaOperator& op,
                                      int sample_pairs, uint64_t seed) {
  SJ_CHECK_GE(sample_pairs, 1);
  SJ_SPAN_CAT("planner.estimate_statistics", "planner");
  JoinStatistics stats;
  stats.r_tuples = r.num_tuples();
  stats.s_tuples = s.num_tuples();
  if (stats.r_tuples == 0 || stats.s_tuples == 0) return stats;
  Rng rng(seed);
  int64_t hits = 0;
  for (int i = 0; i < sample_pairs; ++i) {
    TupleId r_tid = static_cast<TupleId>(
        rng.NextUint64(static_cast<uint64_t>(stats.r_tuples)));
    TupleId s_tid = static_cast<TupleId>(
        rng.NextUint64(static_cast<uint64_t>(stats.s_tuples)));
    ++stats.sample_tests;
    if (op.Theta(r.Read(r_tid).value(col_r), s.Read(s_tid).value(col_s))) {
      ++hits;
    }
  }
  stats.selectivity =
      static_cast<double>(hits) / static_cast<double>(sample_pairs);
  // Zero hits in the sample still leaves p > 0 plausible; use the rule-
  // of-three upper bound so the planner does not assume an empty result.
  if (hits == 0) {
    stats.selectivity = 1.0 / (3.0 * static_cast<double>(sample_pairs));
  }
  stats.selectivity_stderr =
      std::sqrt(stats.selectivity * (1.0 - stats.selectivity) /
                static_cast<double>(sample_pairs));
  MetricsRegistry::Global()
      .GetCounter("planner.sample_theta_tests")
      ->Increment(stats.sample_tests);
  return stats;
}

ModelParameters FitModelParameters(const JoinStatistics& stats) {
  ModelParameters params = PaperParameters();
  int64_t n_tuples = std::max<int64_t>(
      {stats.r_tuples, stats.s_tuples, 2});
  params.n = std::max(
      1, static_cast<int>(std::ceil(std::log(static_cast<double>(n_tuples)) /
                                    std::log(static_cast<double>(params.k)))));
  params.h = params.n;
  params.p = Clamp(stats.selectivity, 1e-15, 1.0);
  params.T = n_tuples;
  return params;
}

std::string JoinPlan::ToString() const {
  std::ostringstream os;
  os << "plan: " << JoinStrategyName(strategy) << " (est. cost "
     << estimated_cost << ")";
  for (const PlannedAlternative& alt : alternatives) {
    os << "\n  " << JoinStrategyName(alt.strategy) << ": ";
    if (alt.feasible) {
      os << alt.estimated_cost;
      if (alt.near_tie) os << " (~tie)";
    } else {
      os << "infeasible";
    }
  }
  return os.str();
}

namespace {

constexpr int kNumAlternatives = 7;

/// Prices every strategy at the given selectivity.  Feasibility is
/// independent of p, so callers re-invoke this to bracket the costs at
/// p̂ ± stderr without touching the feasibility flags.
std::array<double, kNumAlternatives> PriceAlternatives(
    const JoinStatistics& stats, const PlannerContext& ctx,
    double selectivity) {
  JoinStatistics priced = stats;
  priced.selectivity = selectivity;
  ModelParameters params = FitModelParameters(priced);
  params.threads = std::max(1, ctx.threads);
  // The planner has no locality knowledge — score with UNIFORM, the
  // conservative choice (locality only helps the tree strategies).
  JoinCosts join_costs = ComputeJoinCosts(params, MatchDistribution::kUniform);
  UpdateCosts update_costs = ComputeUpdateCosts(params);

  std::array<double, kNumAlternatives> costs{};
  costs[0] = join_costs.d_i + ctx.updates_per_query * update_costs.u_i;
  costs[1] = join_costs.d_iib + ctx.updates_per_query * update_costs.u_iib;
  // One side scans, the other probes: between I and II; charge the tree
  // cost plus a full scan of the probing side.
  costs[2] = join_costs.d_iib +
             static_cast<double>(params.RelationPages()) * params.c_io +
             ctx.updates_per_query * update_costs.u_iib;
  // Sort both sides (z-decomposition ≈ one pass each) plus the candidate
  // verification ≈ result size.
  costs[3] = 2.0 * static_cast<double>(params.RelationPages()) * params.c_io +
             params.p * static_cast<double>(params.N()) *
                 static_cast<double>(params.N()) * params.c_theta;
  costs[4] = join_costs.d_iii + ctx.updates_per_query * update_costs.u_iii;
  // Parallel tree join maintains the same trees as IIb.
  costs[5] = join_costs.d_ii_par + ctx.updates_per_query * update_costs.u_iib;
  // The partitioned join builds its grid per query — no structure to
  // maintain.
  costs[6] = join_costs.d_pbsm;
  return costs;
}

}  // namespace

JoinPlan PlanJoin(const JoinStatistics& stats, const PlannerContext& ctx) {
  SJ_SPAN_CAT("planner.plan_join", "planner");
  const std::array<double, kNumAlternatives> costs =
      PriceAlternatives(stats, ctx, stats.selectivity);

  JoinPlan plan;
  auto& alts = plan.alternatives;
  alts[0] = {JoinStrategy::kNestedLoop, true, costs[0], false};
  alts[1] = {JoinStrategy::kTreeJoin,
             ctx.r_tree_available && ctx.s_tree_available, costs[1], false};
  alts[2] = {JoinStrategy::kIndexNestedLoop,
             ctx.r_tree_available || ctx.s_tree_available, costs[2], false};
  alts[3] = {JoinStrategy::kSortMergeZOrder, ctx.overlap_like, costs[3],
             false};
  alts[4] = {JoinStrategy::kJoinIndex, ctx.join_index_available, costs[4],
             false};
  alts[5] = {JoinStrategy::kParallelTreeJoin,
             ctx.r_tree_available && ctx.s_tree_available && ctx.threads > 1,
             costs[5], false};
  alts[6] = {JoinStrategy::kPartitionedJoin, ctx.probe_window_available,
             costs[6], false};

  plan.strategy = JoinStrategy::kNestedLoop;
  plan.estimated_cost = alts[0].estimated_cost;
  int chosen = 0;
  for (int i = 0; i < kNumAlternatives; ++i) {
    if (alts[i].feasible && alts[i].estimated_cost < plan.estimated_cost) {
      plan.strategy = alts[i].strategy;
      plan.estimated_cost = alts[i].estimated_cost;
      chosen = i;
    }
  }

  // Near-tie detection: re-price the alternatives at p̂ ± stderr and flag
  // every feasible loser whose cost interval overlaps the winner's — the
  // sampled selectivity cannot distinguish them, so the ranking between
  // the two should be treated as a tie by callers.
  if (stats.selectivity_stderr > 0.0) {
    const double lo_p =
        Clamp(stats.selectivity - stats.selectivity_stderr, 1e-15, 1.0);
    const double hi_p =
        Clamp(stats.selectivity + stats.selectivity_stderr, 1e-15, 1.0);
    const std::array<double, kNumAlternatives> lo = PriceAlternatives(
        stats, ctx, lo_p);
    const std::array<double, kNumAlternatives> hi = PriceAlternatives(
        stats, ctx, hi_p);
    const double chosen_min = std::min(lo[chosen], hi[chosen]);
    const double chosen_max = std::max(lo[chosen], hi[chosen]);
    for (int i = 0; i < kNumAlternatives; ++i) {
      if (i == chosen || !alts[i].feasible) continue;
      const double alt_min = std::min(lo[i], hi[i]);
      const double alt_max = std::max(lo[i], hi[i]);
      alts[i].near_tie = alt_min <= chosen_max && chosen_min <= alt_max;
      if (alts[i].near_tie) {
        MetricsRegistry::Global()
            .GetCounter("planner.near_ties")
            ->Increment();
      }
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("planner.plans")->Increment();
  registry
      .GetCounter(std::string("planner.chosen.") +
                  JoinStrategyName(plan.strategy))
      ->Increment();
  int near_ties = 0;
  for (const PlannedAlternative& alt : alts) {
    if (alt.near_tie) ++near_ties;
  }
  SJ_EVENT(kQueryPlanned, kInfo, "chose %s (est. cost %.1f, %d near-tie%s)",
           JoinStrategyName(plan.strategy), plan.estimated_cost, near_ties,
           near_ties == 1 ? "" : "s");
  return plan;
}

}  // namespace spatialjoin
