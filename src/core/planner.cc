#include "core/planner.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/check.h"
#include "common/math_util.h"
#include "common/random.h"
#include "costmodel/join_cost.h"
#include "costmodel/update_cost.h"
#include "obs/metrics.h"

namespace spatialjoin {

JoinStatistics EstimateJoinStatistics(const Relation& r, size_t col_r,
                                      const Relation& s, size_t col_s,
                                      const ThetaOperator& op,
                                      int sample_pairs, uint64_t seed) {
  SJ_CHECK_GE(sample_pairs, 1);
  JoinStatistics stats;
  stats.r_tuples = r.num_tuples();
  stats.s_tuples = s.num_tuples();
  if (stats.r_tuples == 0 || stats.s_tuples == 0) return stats;
  Rng rng(seed);
  int64_t hits = 0;
  for (int i = 0; i < sample_pairs; ++i) {
    TupleId r_tid = static_cast<TupleId>(
        rng.NextUint64(static_cast<uint64_t>(stats.r_tuples)));
    TupleId s_tid = static_cast<TupleId>(
        rng.NextUint64(static_cast<uint64_t>(stats.s_tuples)));
    ++stats.sample_tests;
    if (op.Theta(r.Read(r_tid).value(col_r), s.Read(s_tid).value(col_s))) {
      ++hits;
    }
  }
  stats.selectivity =
      static_cast<double>(hits) / static_cast<double>(sample_pairs);
  // Zero hits in the sample still leaves p > 0 plausible; use the rule-
  // of-three upper bound so the planner does not assume an empty result.
  if (hits == 0) {
    stats.selectivity = 1.0 / (3.0 * static_cast<double>(sample_pairs));
  }
  MetricsRegistry::Global()
      .GetCounter("planner.sample_theta_tests")
      ->Increment(stats.sample_tests);
  return stats;
}

ModelParameters FitModelParameters(const JoinStatistics& stats) {
  ModelParameters params = PaperParameters();
  int64_t n_tuples = std::max<int64_t>(
      {stats.r_tuples, stats.s_tuples, 2});
  params.n = std::max(
      1, static_cast<int>(std::ceil(std::log(static_cast<double>(n_tuples)) /
                                    std::log(static_cast<double>(params.k)))));
  params.h = params.n;
  params.p = Clamp(stats.selectivity, 1e-15, 1.0);
  params.T = n_tuples;
  return params;
}

std::string JoinPlan::ToString() const {
  std::ostringstream os;
  os << "plan: " << JoinStrategyName(strategy) << " (est. cost "
     << estimated_cost << ")";
  for (const PlannedAlternative& alt : alternatives) {
    os << "\n  " << JoinStrategyName(alt.strategy) << ": ";
    if (alt.feasible) {
      os << alt.estimated_cost;
    } else {
      os << "infeasible";
    }
  }
  return os.str();
}

JoinPlan PlanJoin(const JoinStatistics& stats, const PlannerContext& ctx) {
  ModelParameters params = FitModelParameters(stats);
  // The planner has no locality knowledge — score with UNIFORM, the
  // conservative choice (locality only helps the tree strategies).
  JoinCosts join_costs = ComputeJoinCosts(params, MatchDistribution::kUniform);
  UpdateCosts update_costs = ComputeUpdateCosts(params);

  JoinPlan plan;
  auto& alts = plan.alternatives;
  alts[0] = {JoinStrategy::kNestedLoop, true,
             join_costs.d_i + ctx.updates_per_query * update_costs.u_i};
  alts[1] = {JoinStrategy::kTreeJoin,
             ctx.r_tree_available && ctx.s_tree_available,
             join_costs.d_iib + ctx.updates_per_query * update_costs.u_iib};
  alts[2] = {JoinStrategy::kIndexNestedLoop,
             ctx.r_tree_available || ctx.s_tree_available,
             // One side scans, the other probes: between I and II; charge
             // the tree cost plus a full scan of the probing side.
             join_costs.d_iib +
                 static_cast<double>(params.RelationPages()) * params.c_io +
                 ctx.updates_per_query * update_costs.u_iib};
  alts[3] = {JoinStrategy::kSortMergeZOrder, ctx.overlap_like,
             // Sort both sides (z-decomposition ≈ one pass each) plus the
             // candidate verification ≈ result size.
             2.0 * static_cast<double>(params.RelationPages()) * params.c_io +
                 params.p * static_cast<double>(params.N()) *
                     static_cast<double>(params.N()) * params.c_theta};
  alts[4] = {JoinStrategy::kJoinIndex, ctx.join_index_available,
             join_costs.d_iii + ctx.updates_per_query * update_costs.u_iii};

  plan.strategy = JoinStrategy::kNestedLoop;
  plan.estimated_cost = alts[0].estimated_cost;
  for (const PlannedAlternative& alt : alts) {
    if (alt.feasible && alt.estimated_cost < plan.estimated_cost) {
      plan.strategy = alt.strategy;
      plan.estimated_cost = alt.estimated_cost;
    }
  }
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("planner.plans")->Increment();
  registry
      .GetCounter(std::string("planner.chosen.") +
                  JoinStrategyName(plan.strategy))
      ->Increment();
  return plan;
}

}  // namespace spatialjoin
