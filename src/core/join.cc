#include "core/join.h"

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "core/join_detail.h"
#include "exec/cancel.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

JoinResult TreeJoin(const GeneralizationTree& r_tree,
                    const GeneralizationTree& s_tree, const ThetaOperator& op,
                    Traversal traversal, QueryTrace* trace,
                    const exec::CancelToken* cancel) {
  (void)traversal;  // JOIN4's internal passes are BFS; kept for symmetry.
  JoinResult result;
  int max_level = std::min(r_tree.height(), s_tree.height());

  // QualPairs[j], processed level by level (JOIN1/JOIN2). The per-pair
  // body (JOIN2–JOIN4) lives in join_detail::ProcessQualPair, shared with
  // exec::ParallelTreeJoin.
  std::vector<std::pair<NodeId, NodeId>> current_level;
  current_level.emplace_back(r_tree.root(), s_tree.root());

  for (int j = 0; j <= max_level && !current_level.empty(); ++j) {
    // Cooperative stop point: between levels, never mid-pair, so a
    // stopped join is a clean prefix of the level-synchronized run.
    if (cancel != nullptr && cancel->ShouldStop()) break;
    SJ_SPAN_CAT("join.level", "core");
    // Heartbeat for the watchdog (DESIGN.md §10): once per level is the
    // protocol's granularity for tree traversals.
    ActivityScope::BeatThisThread();
    TraceCounter("join.qual_pairs",
                 static_cast<int64_t>(current_level.size()));
    // Trace bookkeeping: snapshot counters at level entry, attribute the
    // level's deltas on exit. The JOIN4 passes descend into deeper
    // subtrees, but their cost is charged to the QualPairs level that
    // triggered them — matching how the model charges the per-pair
    // selection term to the pair's height (§4.4).
    PoolSnapshot pool_before;
    int64_t level_start_ns = 0;
    int64_t theta_upper_before = 0;
    int64_t theta_before = 0;
    if (trace != nullptr) {
      trace->Level(j).worklist +=
          static_cast<int64_t>(current_level.size());
      pool_before = PoolSnapshot::Take();
      theta_upper_before = result.theta_upper_tests;
      theta_before = result.theta_tests;
      level_start_ns = MonotonicNowNs();
    }
    int64_t level_pruned = 0;
    int64_t level_descended = 0;

    std::vector<std::pair<NodeId, NodeId>> next_level;
    for (const auto& [a, b] : current_level) {
      SJ_BOUNDED_WORK;  // one level's QualPairs; the level loop polls
      if (join_detail::ProcessQualPair(r_tree, s_tree, a, b, op, &result,
                                       &next_level)) {
        ++level_descended;
      } else {
        ++level_pruned;
      }
    }

    if (trace != nullptr) {
      TraceLevel& level = trace->Level(j);
      level.theta_upper_tests += result.theta_upper_tests -
                                 theta_upper_before;
      level.theta_tests += result.theta_tests - theta_before;
      level.pruned += level_pruned;
      level.descended += level_descended;
      PoolSnapshot pool_delta = PoolSnapshot::Take() - pool_before;
      level.pool_hits += pool_delta.hits;
      level.pool_misses += pool_delta.misses;
      level.wall_ns +=
          static_cast<double>(MonotonicNowNs() - level_start_ns);
    }
    current_level = std::move(next_level);
  }
  return result;
}

}  // namespace spatialjoin
