#include "core/join.h"

#include <chrono>
#include <deque>

#include "common/check.h"

namespace spatialjoin {

namespace {

// One JOIN4 selection pass: tests `selector_geom` (the object of
// `selector_node` from `selector_tree`) against all strict descendants of
// `anchor` in `tree`. Emits matches (ordered according to
// `selector_is_r`), and returns the direct children of `anchor` that
// Θ-qualify (they seed the next QualPairs level).
std::vector<NodeId> SelectPass(const GeneralizationTree& selector_tree,
                               NodeId selector_node,
                               const Value& selector_geom,
                               const GeneralizationTree& tree, NodeId anchor,
                               const ThetaOperator& op, bool selector_is_r,
                               JoinResult* result) {
  std::vector<NodeId> qualifying_children;
  Rectangle selector_mbr = selector_tree.MbrOf(selector_node);
  std::vector<NodeId> direct_children = tree.Children(anchor);
  std::deque<std::pair<NodeId, bool>> worklist;  // (node, is_direct_child)
  for (NodeId c : direct_children) worklist.emplace_back(c, true);
  while (!worklist.empty()) {
    auto [node, is_direct] = worklist.front();
    worklist.pop_front();
    ++result->theta_upper_tests;
    // Θ must see its operands in R-before-S order (Θ can be asymmetric,
    // e.g. "to the Northwest of", Table 1).
    Rectangle node_mbr = tree.MbrOf(node);
    bool upper_match = selector_is_r ? op.ThetaUpper(selector_mbr, node_mbr)
                                     : op.ThetaUpper(node_mbr, selector_mbr);
    if (!upper_match) continue;
    if (is_direct) qualifying_children.push_back(node);
    Value geometry = tree.Geometry(node);
    ++result->nodes_accessed;
    ++result->theta_tests;
    bool theta_match = selector_is_r ? op.Theta(selector_geom, geometry)
                                     : op.Theta(geometry, selector_geom);
    if (theta_match && tree.IsApplicationNode(node) &&
        selector_tree.IsApplicationNode(selector_node)) {
      TupleId selector_tuple = selector_tree.TupleOf(selector_node);
      TupleId node_tuple = tree.TupleOf(node);
      if (selector_is_r) {
        result->matches.emplace_back(selector_tuple, node_tuple);
      } else {
        result->matches.emplace_back(node_tuple, selector_tuple);
      }
    }
    for (NodeId child : tree.Children(node)) {
      worklist.emplace_back(child, false);
    }
  }
  return qualifying_children;
}

}  // namespace

JoinResult TreeJoin(const GeneralizationTree& r_tree,
                    const GeneralizationTree& s_tree, const ThetaOperator& op,
                    Traversal traversal, QueryTrace* trace) {
  (void)traversal;  // JOIN4's internal passes are BFS; kept for symmetry.
  JoinResult result;
  int max_level = std::min(r_tree.height(), s_tree.height());

  // QualPairs[j], processed level by level (JOIN1/JOIN2).
  std::vector<std::pair<NodeId, NodeId>> current_level;
  current_level.emplace_back(r_tree.root(), s_tree.root());

  for (int j = 0; j <= max_level && !current_level.empty(); ++j) {
    // Trace bookkeeping: snapshot counters at level entry, attribute the
    // level's deltas on exit. The JOIN4 passes descend into deeper
    // subtrees, but their cost is charged to the QualPairs level that
    // triggered them — matching how the model charges the per-pair
    // selection term to the pair's height (§4.4).
    PoolSnapshot pool_before;
    std::chrono::steady_clock::time_point level_start;
    int64_t theta_upper_before = 0;
    int64_t theta_before = 0;
    if (trace != nullptr) {
      trace->Level(j).worklist +=
          static_cast<int64_t>(current_level.size());
      pool_before = PoolSnapshot::Take();
      theta_upper_before = result.theta_upper_tests;
      theta_before = result.theta_tests;
      level_start = std::chrono::steady_clock::now();
    }
    int64_t level_pruned = 0;
    int64_t level_descended = 0;

    std::vector<std::pair<NodeId, NodeId>> next_level;
    for (const auto& [a, b] : current_level) {
      ++result.qual_pairs_examined;
      // JOIN2: Θ-test the pair itself.
      ++result.theta_upper_tests;
      if (!op.ThetaUpper(r_tree.MbrOf(a), s_tree.MbrOf(b))) {
        ++level_pruned;
        continue;
      }
      ++level_descended;

      Value geom_a = r_tree.Geometry(a);
      Value geom_b = s_tree.Geometry(b);
      result.nodes_accessed += 2;

      // JOIN3: θ-test; equal-height matches are emitted here.
      ++result.theta_tests;
      if (op.Theta(geom_a, geom_b) && r_tree.IsApplicationNode(a) &&
          s_tree.IsApplicationNode(b)) {
        result.matches.emplace_back(r_tree.TupleOf(a), s_tree.TupleOf(b));
      }

      // JOIN4: two selection passes for unequal-height matches, recording
      // cross-qualifying direct children for the next level.
      std::vector<NodeId> qual_b = SelectPass(
          r_tree, a, geom_a, s_tree, b, op, /*selector_is_r=*/true, &result);
      std::vector<NodeId> qual_a = SelectPass(
          s_tree, b, geom_b, r_tree, a, op, /*selector_is_r=*/false, &result);
      for (NodeId a2 : qual_a) {
        for (NodeId b2 : qual_b) next_level.emplace_back(a2, b2);
      }
    }

    if (trace != nullptr) {
      TraceLevel& level = trace->Level(j);
      level.theta_upper_tests += result.theta_upper_tests -
                                 theta_upper_before;
      level.theta_tests += result.theta_tests - theta_before;
      level.pruned += level_pruned;
      level.descended += level_descended;
      PoolSnapshot pool_delta = PoolSnapshot::Take() - pool_before;
      level.pool_hits += pool_delta.hits;
      level.pool_misses += pool_delta.misses;
      level.wall_ns += static_cast<double>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - level_start)
              .count());
    }
    current_level = std::move(next_level);
  }
  return result;
}

}  // namespace spatialjoin
