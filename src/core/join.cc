#include "core/join.h"

#include <deque>

#include "common/check.h"

namespace spatialjoin {

namespace {

// One JOIN4 selection pass: tests `selector_geom` (the object of
// `selector_node` from `selector_tree`) against all strict descendants of
// `anchor` in `tree`. Emits matches (ordered according to
// `selector_is_r`), and returns the direct children of `anchor` that
// Θ-qualify (they seed the next QualPairs level).
std::vector<NodeId> SelectPass(const GeneralizationTree& selector_tree,
                               NodeId selector_node,
                               const Value& selector_geom,
                               const GeneralizationTree& tree, NodeId anchor,
                               const ThetaOperator& op, bool selector_is_r,
                               JoinResult* result) {
  std::vector<NodeId> qualifying_children;
  Rectangle selector_mbr = selector_tree.MbrOf(selector_node);
  std::vector<NodeId> direct_children = tree.Children(anchor);
  std::deque<std::pair<NodeId, bool>> worklist;  // (node, is_direct_child)
  for (NodeId c : direct_children) worklist.emplace_back(c, true);
  while (!worklist.empty()) {
    auto [node, is_direct] = worklist.front();
    worklist.pop_front();
    ++result->theta_upper_tests;
    // Θ must see its operands in R-before-S order (Θ can be asymmetric,
    // e.g. "to the Northwest of", Table 1).
    Rectangle node_mbr = tree.MbrOf(node);
    bool upper_match = selector_is_r ? op.ThetaUpper(selector_mbr, node_mbr)
                                     : op.ThetaUpper(node_mbr, selector_mbr);
    if (!upper_match) continue;
    if (is_direct) qualifying_children.push_back(node);
    Value geometry = tree.Geometry(node);
    ++result->nodes_accessed;
    ++result->theta_tests;
    bool theta_match = selector_is_r ? op.Theta(selector_geom, geometry)
                                     : op.Theta(geometry, selector_geom);
    if (theta_match && tree.IsApplicationNode(node) &&
        selector_tree.IsApplicationNode(selector_node)) {
      TupleId selector_tuple = selector_tree.TupleOf(selector_node);
      TupleId node_tuple = tree.TupleOf(node);
      if (selector_is_r) {
        result->matches.emplace_back(selector_tuple, node_tuple);
      } else {
        result->matches.emplace_back(node_tuple, selector_tuple);
      }
    }
    for (NodeId child : tree.Children(node)) {
      worklist.emplace_back(child, false);
    }
  }
  return qualifying_children;
}

}  // namespace

JoinResult TreeJoin(const GeneralizationTree& r_tree,
                    const GeneralizationTree& s_tree, const ThetaOperator& op,
                    Traversal traversal) {
  (void)traversal;  // JOIN4's internal passes are BFS; kept for symmetry.
  JoinResult result;
  int max_level = std::min(r_tree.height(), s_tree.height());

  // QualPairs[j], processed level by level (JOIN1/JOIN2).
  std::vector<std::pair<NodeId, NodeId>> current_level;
  current_level.emplace_back(r_tree.root(), s_tree.root());

  for (int j = 0; j <= max_level && !current_level.empty(); ++j) {
    std::vector<std::pair<NodeId, NodeId>> next_level;
    for (const auto& [a, b] : current_level) {
      ++result.qual_pairs_examined;
      // JOIN2: Θ-test the pair itself.
      ++result.theta_upper_tests;
      if (!op.ThetaUpper(r_tree.MbrOf(a), s_tree.MbrOf(b))) continue;

      Value geom_a = r_tree.Geometry(a);
      Value geom_b = s_tree.Geometry(b);
      result.nodes_accessed += 2;

      // JOIN3: θ-test; equal-height matches are emitted here.
      ++result.theta_tests;
      if (op.Theta(geom_a, geom_b) && r_tree.IsApplicationNode(a) &&
          s_tree.IsApplicationNode(b)) {
        result.matches.emplace_back(r_tree.TupleOf(a), s_tree.TupleOf(b));
      }

      // JOIN4: two selection passes for unequal-height matches, recording
      // cross-qualifying direct children for the next level.
      std::vector<NodeId> qual_b = SelectPass(
          r_tree, a, geom_a, s_tree, b, op, /*selector_is_r=*/true, &result);
      std::vector<NodeId> qual_a = SelectPass(
          s_tree, b, geom_b, r_tree, a, op, /*selector_is_r=*/false, &result);
      for (NodeId a2 : qual_a) {
        for (NodeId b2 : qual_b) next_level.emplace_back(a2, b2);
      }
    }
    current_level = std::move(next_level);
  }
  return result;
}

}  // namespace spatialjoin
