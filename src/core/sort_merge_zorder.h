#ifndef SPATIALJOIN_CORE_SORT_MERGE_ZORDER_H_
#define SPATIALJOIN_CORE_SORT_MERGE_ZORDER_H_

#include "core/join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "relational/relation.h"
#include "zorder/zdecompose.h"
#include "zorder/zorder.h"

namespace spatialjoin {

/// Statistics specific to the z-order sort-merge join.
struct ZOrderJoinStats {
  int64_t z_cells_r = 0;
  int64_t z_cells_s = 0;
  int64_t candidate_pairs = 0;
  int64_t duplicates_suppressed = 0;
};

/// The one sort-merge strategy that works for spatial data (paper §2.2):
/// Orenstein's z-ordering join for the `overlaps` operator. Each object's
/// MBR is decomposed into quadtree cells; cells map to z-intervals that
/// are pairwise disjoint or nested, so a single sorted sweep with a stack
/// of open intervals finds every pair of objects sharing a cell. As the
/// paper notes, "any overlap is likely to be reported more than once"
/// (once per shared cell); duplicates are suppressed and counted, and
/// candidates are verified with the exact θ test.
///
/// `op` must be an overlap-like operator: sort-merge is *only* sound when
/// θ(a, b) implies the objects' MBRs share a z-cell, which holds for
/// `overlaps` (and `includes`/`contained_in`, whose matches overlap) but
/// not for distance or direction operators — the paper's Fig. 1 example
/// of sort-merge missing the adjacent pair (o3, o9).
/// `cancel` (optional) is polled once per sweep entry in the merge phase
/// and once per candidate in the verification phase — the two loops whose
/// trip counts grow with the data; a cancelled join returns early with
/// whatever matches were already verified.
JoinResult SortMergeZOrderJoin(const Relation& r, size_t col_r,
                               const Relation& s, size_t col_s,
                               const ThetaOperator& op, const ZGrid& grid,
                               const ZDecomposeOptions& options = {},
                               ZOrderJoinStats* stats = nullptr,
                               const exec::CancelToken* cancel = nullptr);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_CORE_SORT_MERGE_ZORDER_H_
