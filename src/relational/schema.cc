#include "relational/schema.h"

#include <sstream>

#include "common/check.h"

namespace spatialjoin {

Schema::Schema(std::vector<Column> columns) : columns_(std::move(columns)) {
  for (size_t i = 0; i < columns_.size(); ++i) {
    SJ_CHECK_MSG(!columns_[i].name.empty(), "column " << i << " is unnamed");
    for (size_t j = 0; j < i; ++j) {
      SJ_CHECK_MSG(columns_[j].name != columns_[i].name,
                   "duplicate column name " << columns_[i].name);
    }
  }
}

const Column& Schema::column(size_t i) const {
  SJ_CHECK_LT(i, columns_.size());
  return columns_[i];
}

int Schema::IndexOf(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return static_cast<int>(i);
  }
  return -1;
}

bool Schema::IsSpatial(size_t i) const {
  ValueType t = column(i).type;
  return t == ValueType::kPoint || t == ValueType::kRectangle ||
         t == ValueType::kPolygon || t == ValueType::kPolyline;
}

int Schema::FirstSpatialColumn() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (IsSpatial(i)) return static_cast<int>(i);
  }
  return -1;
}

std::string Schema::ToString() const {
  std::ostringstream os;
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) os << ", ";
    os << columns_[i].name << " " << ValueTypeName(columns_[i].type);
  }
  return os.str();
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.columns_.size() != b.columns_.size()) return false;
  for (size_t i = 0; i < a.columns_.size(); ++i) {
    if (a.columns_[i].name != b.columns_[i].name ||
        a.columns_[i].type != b.columns_[i].type) {
      return false;
    }
  }
  return true;
}

}  // namespace spatialjoin
