#ifndef SPATIALJOIN_RELATIONAL_SCHEMA_H_
#define SPATIALJOIN_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "relational/value.h"

namespace spatialjoin {

/// A named, typed column.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;
};

/// Ordered column list of a relation, e.g. the paper's running example
/// house(hid INT64, hprice DOUBLE, hlocation POINT).
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns);

  size_t num_columns() const { return columns_.size(); }
  const Column& column(size_t i) const;
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of the column named `name`, or -1 if absent.
  int IndexOf(const std::string& name) const;

  /// True iff column `i` holds a spatial type (point/rectangle/polygon).
  bool IsSpatial(size_t i) const;

  /// Index of the first spatial column, or -1 when the schema has none.
  int FirstSpatialColumn() const;

  /// Renders "name TYPE, name TYPE, …".
  std::string ToString() const;

  friend bool operator==(const Schema& a, const Schema& b);
  friend bool operator!=(const Schema& a, const Schema& b) {
    return !(a == b);
  }

 private:
  std::vector<Column> columns_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RELATIONAL_SCHEMA_H_
