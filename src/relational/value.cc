#include "relational/value.h"

#include <cstring>
#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

namespace {

void AppendRaw(std::string* out, const void* data, size_t size) {
  out->append(reinterpret_cast<const char*>(data), size);
}

template <typename T>
void AppendPod(std::string* out, const T& v) {
  AppendRaw(out, &v, sizeof(T));
}

template <typename T>
T ReadPod(const std::string& in, size_t* pos) {
  SJ_CHECK_LE(*pos + sizeof(T), in.size());
  T v;
  std::memcpy(&v, in.data() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

void AppendPoint(std::string* out, const Point& p) {
  AppendPod(out, p.x);
  AppendPod(out, p.y);
}

Point ReadPoint(const std::string& in, size_t* pos) {
  double x = ReadPod<double>(in, pos);
  double y = ReadPod<double>(in, pos);
  return Point(x, y);
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kPoint:
      return "POINT";
    case ValueType::kRectangle:
      return "RECTANGLE";
    case ValueType::kPolygon:
      return "POLYGON";
    case ValueType::kPolyline:
      return "POLYLINE";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

int64_t Value::AsInt64() const {
  SJ_CHECK_MSG(type() == ValueType::kInt64, "value is " << ToString());
  return std::get<int64_t>(data_);
}

double Value::AsDouble() const {
  SJ_CHECK_MSG(type() == ValueType::kDouble, "value is " << ToString());
  return std::get<double>(data_);
}

const std::string& Value::AsString() const {
  SJ_CHECK_MSG(type() == ValueType::kString, "value is " << ToString());
  return std::get<std::string>(data_);
}

const Point& Value::AsPoint() const {
  SJ_CHECK_MSG(type() == ValueType::kPoint, "value is " << ToString());
  return std::get<Point>(data_);
}

const Rectangle& Value::AsRectangle() const {
  SJ_CHECK_MSG(type() == ValueType::kRectangle, "value is " << ToString());
  return std::get<Rectangle>(data_);
}

const Polygon& Value::AsPolygon() const {
  SJ_CHECK_MSG(type() == ValueType::kPolygon, "value is " << ToString());
  return std::get<Polygon>(data_);
}

const Polyline& Value::AsPolyline() const {
  SJ_CHECK_MSG(type() == ValueType::kPolyline, "value is " << ToString());
  return std::get<Polyline>(data_);
}

Rectangle Value::Mbr() const {
  switch (type()) {
    case ValueType::kPoint:
      return Rectangle::FromPoint(AsPoint());
    case ValueType::kRectangle:
      return AsRectangle();
    case ValueType::kPolygon:
      return AsPolygon().BoundingBox();
    case ValueType::kPolyline:
      return AsPolyline().BoundingBox();
    default:
      SJ_CHECK_MSG(false, "Mbr() on non-spatial value " << ToString());
  }
  return Rectangle::Empty();
}

void Value::SerializeTo(std::string* out) const {
  uint8_t tag = static_cast<uint8_t>(type());
  AppendPod(out, tag);
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      AppendPod(out, std::get<int64_t>(data_));
      break;
    case ValueType::kDouble:
      AppendPod(out, std::get<double>(data_));
      break;
    case ValueType::kString: {
      const std::string& s = std::get<std::string>(data_);
      AppendPod(out, static_cast<uint32_t>(s.size()));
      AppendRaw(out, s.data(), s.size());
      break;
    }
    case ValueType::kPoint:
      AppendPoint(out, std::get<Point>(data_));
      break;
    case ValueType::kRectangle: {
      const Rectangle& r = std::get<Rectangle>(data_);
      SJ_CHECK_MSG(!r.is_empty(), "cannot serialize the empty rectangle");
      AppendPoint(out, r.min_corner());
      AppendPoint(out, r.max_corner());
      break;
    }
    case ValueType::kPolygon: {
      const Polygon& poly = std::get<Polygon>(data_);
      AppendPod(out, static_cast<uint32_t>(poly.size()));
      for (const Point& p : poly.ring()) AppendPoint(out, p);
      break;
    }
    case ValueType::kPolyline: {
      const Polyline& line = std::get<Polyline>(data_);
      AppendPod(out, static_cast<uint32_t>(line.size()));
      for (const Point& p : line.vertices()) AppendPoint(out, p);
      break;
    }
  }
}

Value Value::Deserialize(const std::string& in, size_t* pos) {
  uint8_t tag = ReadPod<uint8_t>(in, pos);
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value();
    case ValueType::kInt64:
      return Value(ReadPod<int64_t>(in, pos));
    case ValueType::kDouble:
      return Value(ReadPod<double>(in, pos));
    case ValueType::kString: {
      uint32_t size = ReadPod<uint32_t>(in, pos);
      SJ_CHECK_LE(*pos + size, in.size());
      std::string s(in.data() + *pos, size);
      *pos += size;
      return Value(std::move(s));
    }
    case ValueType::kPoint:
      return Value(ReadPoint(in, pos));
    case ValueType::kRectangle: {
      Point lo = ReadPoint(in, pos);
      Point hi = ReadPoint(in, pos);
      return Value(Rectangle(lo, hi));
    }
    case ValueType::kPolygon: {
      uint32_t size = ReadPod<uint32_t>(in, pos);
      std::vector<Point> ring;
      ring.reserve(size);
      for (uint32_t i = 0; i < size; ++i) {
        SJ_BOUNDED_WORK;  // one stored geometry's vertices
        ring.push_back(ReadPoint(in, pos));
      }
      return Value(Polygon(std::move(ring)));
    }
    case ValueType::kPolyline: {
      uint32_t size = ReadPod<uint32_t>(in, pos);
      std::vector<Point> vertices;
      vertices.reserve(size);
      for (uint32_t i = 0; i < size; ++i) {
        SJ_BOUNDED_WORK;  // one stored geometry's vertices
        vertices.push_back(ReadPoint(in, pos));
      }
      return Value(Polyline(std::move(vertices)));
    }
  }
  SJ_CHECK_MSG(false, "corrupt value tag " << static_cast<int>(tag));
  return Value();
}

bool operator==(const Value& a, const Value& b) {
  if (a.type() != b.type()) return false;
  switch (a.type()) {
    case ValueType::kNull:
      return true;
    case ValueType::kInt64:
      return a.AsInt64() == b.AsInt64();
    case ValueType::kDouble:
      return a.AsDouble() == b.AsDouble();
    case ValueType::kString:
      return a.AsString() == b.AsString();
    case ValueType::kPoint:
      return a.AsPoint() == b.AsPoint();
    case ValueType::kRectangle:
      return a.AsRectangle() == b.AsRectangle();
    case ValueType::kPolygon:
      return a.AsPolygon().ring() == b.AsPolygon().ring();
    case ValueType::kPolyline:
      return a.AsPolyline().vertices() == b.AsPolyline().vertices();
  }
  return false;
}

std::string Value::ToString() const {
  std::ostringstream os;
  switch (type()) {
    case ValueType::kNull:
      os << "NULL";
      break;
    case ValueType::kInt64:
      os << std::get<int64_t>(data_);
      break;
    case ValueType::kDouble:
      os << std::get<double>(data_);
      break;
    case ValueType::kString:
      os << '"' << std::get<std::string>(data_) << '"';
      break;
    case ValueType::kPoint:
      os << spatialjoin::ToString(std::get<Point>(data_));
      break;
    case ValueType::kRectangle:
      os << std::get<Rectangle>(data_).ToString();
      break;
    case ValueType::kPolygon:
      os << std::get<Polygon>(data_).ToString();
      break;
    case ValueType::kPolyline:
      os << std::get<Polyline>(data_).ToString();
      break;
  }
  return os.str();
}

}  // namespace spatialjoin
