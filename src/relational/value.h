#ifndef SPATIALJOIN_RELATIONAL_VALUE_H_
#define SPATIALJOIN_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/polyline.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// Column types of the extended relational model the paper assumes
/// (§1: "a relational data model that is extended by spatial data types
/// and operators", as in POSTGRES / DASDBS). Scalar types serve ordinary
/// columns (hid, hprice, name); spatial types serve join columns.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kDouble = 2,
  kString = 3,
  kPoint = 4,
  kRectangle = 5,
  kPolygon = 6,
  kPolyline = 7,
};

/// Human-readable type name ("INT64", "POLYGON", …).
const char* ValueTypeName(ValueType type);

/// A dynamically typed column value. Passive value type with by-value
/// copy semantics; geometry payloads are held inline in the variant.
class Value {
 public:
  /// Constructs a NULL value.
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}
  explicit Value(const Point& v) : data_(v) {}
  explicit Value(const Rectangle& v) : data_(v) {}
  explicit Value(Polygon v) : data_(std::move(v)) {}
  explicit Value(Polyline v) : data_(std::move(v)) {}

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Typed accessors; calling the wrong accessor is a checked error.
  int64_t AsInt64() const;
  double AsDouble() const;
  const std::string& AsString() const;
  const Point& AsPoint() const;
  const Rectangle& AsRectangle() const;
  const Polygon& AsPolygon() const;
  const Polyline& AsPolyline() const;

  /// MBR of a spatial value (point → degenerate rectangle, polygon → its
  /// bounding box). Checked error for scalar values.
  Rectangle Mbr() const;

  /// Appends a self-describing binary encoding to `out`.
  void SerializeTo(std::string* out) const;

  /// Parses one value from `in` starting at `*pos`; advances `*pos`.
  static Value Deserialize(const std::string& in, size_t* pos);

  /// Structural equality (exact, including geometry coordinates).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Renders the value for diagnostics.
  std::string ToString() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string, Point, Rectangle,
               Polygon, Polyline>
      data_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RELATIONAL_VALUE_H_
