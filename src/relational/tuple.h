#ifndef SPATIALJOIN_RELATIONAL_TUPLE_H_
#define SPATIALJOIN_RELATIONAL_TUPLE_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"

namespace spatialjoin {

/// Identifier of a tuple within one relation: dense, 0-based, stable.
/// Join indices (paper §2.1 [Vald87]) store pairs of these.
using TupleId = int64_t;

/// Sentinel for "no tuple".
inline constexpr TupleId kInvalidTupleId = -1;

/// One row: an ordered list of values. Tuples are validated against a
/// Schema at insertion time, not on construction.
class Tuple {
 public:
  Tuple() = default;
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}

  size_t size() const { return values_.size(); }
  const Value& value(size_t i) const;
  const std::vector<Value>& values() const { return values_; }

  /// True iff arity and value types match `schema` (NULLs match any type).
  bool Conforms(const Schema& schema) const;

  /// Binary encoding: value list, optionally padded with trailing zero
  /// bytes to `pad_to` (models the paper's fixed tuple size v).
  std::string Serialize(size_t pad_to = 0) const;

  /// Inverse of Serialize; `num_columns` values are read, padding ignored.
  static Tuple Deserialize(const std::string& bytes, size_t num_columns);

  /// Concatenation of two tuples — the result of a join match (JOIN3:
  /// "join the corresponding tuples and add the resulting tuple").
  static Tuple Concat(const Tuple& a, const Tuple& b);

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  /// Renders "(v1, v2, …)".
  std::string ToString() const;

 private:
  std::vector<Value> values_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RELATIONAL_TUPLE_H_
