#include "relational/tuple.h"

#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

const Value& Tuple::value(size_t i) const {
  SJ_CHECK_LT(i, values_.size());
  return values_[i];
}

bool Tuple::Conforms(const Schema& schema) const {
  if (values_.size() != schema.num_columns()) return false;
  for (size_t i = 0; i < values_.size(); ++i) {
    if (values_[i].is_null()) continue;
    if (values_[i].type() != schema.column(i).type) return false;
  }
  return true;
}

std::string Tuple::Serialize(size_t pad_to) const {
  std::string out;
  for (const Value& v : values_) v.SerializeTo(&out);
  SJ_CHECK_MSG(pad_to == 0 || out.size() <= pad_to,
               "tuple encodes to " << out.size()
                                   << " bytes, beyond pad_to=" << pad_to);
  if (out.size() < pad_to) out.resize(pad_to, '\0');
  return out;
}

Tuple Tuple::Deserialize(const std::string& bytes, size_t num_columns) {
  std::vector<Value> values;
  values.reserve(num_columns);
  size_t pos = 0;
  for (size_t i = 0; i < num_columns; ++i) {
    SJ_BOUNDED_WORK;  // one tuple's columns (schema-bounded)
    values.push_back(Value::Deserialize(bytes, &pos));
  }
  return Tuple(std::move(values));
}

Tuple Tuple::Concat(const Tuple& a, const Tuple& b) {
  std::vector<Value> values = a.values_;
  values.insert(values.end(), b.values_.begin(), b.values_.end());
  return Tuple(std::move(values));
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << "(";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i].ToString();
  }
  os << ")";
  return os.str();
}

}  // namespace spatialjoin
