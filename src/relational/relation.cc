#include "relational/relation.h"

#include "common/check.h"

namespace spatialjoin {

Relation::Relation(std::string name, Schema schema, BufferPool* pool,
                   RelationLayout layout, size_t pad_tuples_to,
                   double fill_factor)
    : name_(std::move(name)),
      schema_(std::move(schema)),
      pool_(pool),
      layout_(layout),
      pad_tuples_to_(pad_tuples_to) {
  SJ_CHECK(pool != nullptr);
  if (layout_ == RelationLayout::kHeap) {
    heap_ = std::make_unique<HeapFile>(pool);
  } else {
    clustered_ = std::make_unique<ClusteredFile>(pool, fill_factor);
  }
}

TupleId Relation::Insert(const Tuple& tuple) {
  SJ_CHECK_MSG(tuple.Conforms(schema_),
               "tuple " << tuple.ToString() << " does not conform to "
                        << schema_.ToString());
  std::string bytes = tuple.Serialize(pad_tuples_to_);
  if (layout_ == RelationLayout::kHeap) {
    RecordId rid = heap_->Insert(bytes);
    rids_.push_back(rid);
  } else {
    int64_t ordinal = clustered_->Append(bytes);
    SJ_CHECK_EQ(ordinal, num_tuples_);
  }
  return num_tuples_++;
}

Tuple Relation::Read(TupleId tid) const {
  SJ_CHECK_GE(tid, 0);
  SJ_CHECK_LT(tid, num_tuples_);
  std::string bytes;
  if (layout_ == RelationLayout::kHeap) {
    bool ok = heap_->Read(rids_[static_cast<size_t>(tid)], &bytes);
    SJ_CHECK_MSG(ok, "tuple " << tid << " was deleted");
  } else {
    clustered_->Read(tid, &bytes);
  }
  return Tuple::Deserialize(bytes, schema_.num_columns());
}

Rectangle Relation::MbrOf(TupleId tid, size_t column) const {
  Tuple t = Read(tid);
  return t.value(column).Mbr();
}

void Relation::Scan(
    const std::function<void(TupleId, const Tuple&)>& fn) const {
  if (layout_ == RelationLayout::kHeap) {
    // Heap order equals insertion order for our append-only heap file, so
    // tids can be recovered by counting.
    TupleId tid = 0;
    heap_->Scan([&](const RecordId&, std::string_view bytes) {
      Tuple t = Tuple::Deserialize(std::string(bytes),
                                   schema_.num_columns());
      fn(tid++, t);
    });
  } else {
    clustered_->Scan([&](int64_t ordinal, std::string_view bytes) {
      Tuple t = Tuple::Deserialize(std::string(bytes),
                                   schema_.num_columns());
      fn(ordinal, t);
    });
  }
}

int64_t Relation::num_pages() const {
  return layout_ == RelationLayout::kHeap ? heap_->num_pages()
                                          : clustered_->num_pages();
}

PageId Relation::PageOf(TupleId tid) const {
  SJ_CHECK_GE(tid, 0);
  SJ_CHECK_LT(tid, num_tuples_);
  if (layout_ == RelationLayout::kHeap) {
    return rids_[static_cast<size_t>(tid)].page_id;
  }
  return clustered_->RidOf(tid).page_id;
}

}  // namespace spatialjoin
