#ifndef SPATIALJOIN_RELATIONAL_RELATION_H_
#define SPATIALJOIN_RELATIONAL_RELATION_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/clustered_file.h"
#include "storage/heap_file.h"

namespace spatialjoin {

/// Physical layout of a relation: the paper distinguishes unclustered
/// relations (strategy IIa — tuples randomly placed in a heap file) from
/// relations clustered on the spatial attribute in breadth-first tree
/// order (strategy IIb). The *logical* Relation API is identical; only
/// I/O locality differs.
enum class RelationLayout {
  kHeap,
  kClustered,
};

/// A stored relation with an extended-relational schema: scalar columns
/// plus spatial columns (point / rectangle / polygon). Tuples are
/// identified by dense TupleIds assigned at insertion.
class Relation {
 public:
  /// `pad_tuples_to` forces every stored record to a fixed byte size
  /// (paper parameter v = 300; with page size s = 2000 and utilization
  /// l = 0.75 this yields the paper's m = 5 tuples per page). 0 disables
  /// padding. `fill_factor` is the page utilization target l.
  Relation(std::string name, Schema schema, BufferPool* pool,
           RelationLayout layout = RelationLayout::kHeap,
           size_t pad_tuples_to = 0, double fill_factor = 1.0);

  Relation(const Relation&) = delete;
  Relation& operator=(const Relation&) = delete;

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }
  RelationLayout layout() const { return layout_; }

  /// Inserts a tuple (must conform to the schema); returns its id.
  TupleId Insert(const Tuple& tuple);

  /// Reads a tuple by id (checked: the id must have been returned by
  /// Insert on this relation).
  Tuple Read(TupleId tid) const;

  /// MBR of the spatial value in `column` of tuple `tid`.
  Rectangle MbrOf(TupleId tid, size_t column) const;

  /// Calls `fn(tid, tuple)` over all tuples in physical order.
  void Scan(const std::function<void(TupleId, const Tuple&)>& fn) const;

  int64_t num_tuples() const { return num_tuples_; }
  int64_t num_pages() const;

  /// Page on which tuple `tid` physically lives (for locality analysis).
  PageId PageOf(TupleId tid) const;

 private:
  std::string name_;
  Schema schema_;
  BufferPool* pool_;
  RelationLayout layout_;
  size_t pad_tuples_to_;
  // Exactly one of the two files is active, selected by layout_.
  std::unique_ptr<HeapFile> heap_;
  std::unique_ptr<ClusteredFile> clustered_;
  std::vector<RecordId> rids_;  // TupleId → record location (heap layout)
  int64_t num_tuples_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RELATIONAL_RELATION_H_
