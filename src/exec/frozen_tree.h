#ifndef SPATIALJOIN_EXEC_FROZEN_TREE_H_
#define SPATIALJOIN_EXEC_FROZEN_TREE_H_

#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "core/gentree.h"

namespace spatialjoin {
namespace exec {

/// An immutable, fully materialized snapshot of a GeneralizationTree.
///
/// The engine's storage layer is deliberately single-threaded (BufferPool
/// hands out unpinned pointers), so the disk-backed tree adapters are not
/// safe for concurrent reads. The parallel algorithms therefore run over a
/// FrozenTree: `Materialize` walks the source tree once on the calling
/// thread — paying all page I/O up front, which matches the load phase
/// that in-memory parallel join systems assume — and copies every node's
/// MBR, geometry, height, tuple link, and child list into flat arrays.
/// After that, all accessors are pure reads of immutable data and safe
/// from any number of threads.
///
/// Node ids are densified to [0, num_nodes) in BFS order with the root at
/// id 0, so per-node side arrays in the parallel algorithms can be plain
/// vectors indexed by NodeId.
class FrozenTree : public GeneralizationTree {
 public:
  /// Snapshots `source` (single-threaded; pays the full tree's I/O).
  static FrozenTree Materialize(const GeneralizationTree& source);

  FrozenTree(FrozenTree&&) = default;
  FrozenTree& operator=(FrozenTree&&) = default;
  FrozenTree(const FrozenTree&) = delete;
  FrozenTree& operator=(const FrozenTree&) = delete;

  // GeneralizationTree interface — all const, concurrently callable.
  // The per-node scans are SJ_HOT: they sit inside the parallel join's
  // innermost loops, so sj_analyze holds them to the no-alloc/no-lock
  // purity contract. Children() is the one exception — it returns a
  // freshly built vector (a baselined finding; ROADMAP item 3's
  // span-based accessor will retire it).
  NodeId root() const override { return 0; }
  int height() const override { return height_; }
  SJ_HOT int HeightOf(NodeId node) const override;
  SJ_HOT std::vector<NodeId> Children(NodeId node) const override;
  SJ_HOT Value Geometry(NodeId node) const override;
  SJ_HOT Rectangle MbrOf(NodeId node) const override;
  SJ_HOT bool IsApplicationNode(NodeId node) const override;
  SJ_HOT TupleId TupleOf(NodeId node) const override;
  int64_t num_nodes() const override {
    return static_cast<int64_t>(nodes_.size());
  }

 private:
  struct Node {
    Value geometry;
    Rectangle mbr;
    TupleId tuple = kInvalidTupleId;
    int height = 0;
    bool application = false;
    // Children occupy [child_begin, child_end) of children_.
    int64_t child_begin = 0;
    int64_t child_end = 0;
  };

  FrozenTree() = default;

  SJ_HOT const Node& NodeAt(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<NodeId> children_;
  int height_ = 0;
};

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_FROZEN_TREE_H_
