#ifndef SPATIALJOIN_EXEC_PARALLEL_JOIN_H_
#define SPATIALJOIN_EXEC_PARALLEL_JOIN_H_

#include <cstdint>

#include "core/gentree.h"
#include "core/join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "exec/thread_pool.h"

namespace spatialjoin {
namespace exec {

/// Tuning knobs for ParallelTreeJoin.
struct ParallelJoinOptions {
  /// QualPairs entries per task. The sharding is a function of this value
  /// and the worklist size only — never of the worker count — so the
  /// merged output is identical for every pool width.
  int64_t chunk_pairs = 16;
};

/// Algorithm JOIN (paper §3.3), level-synchronized and data-parallel.
///
/// Each QualPairs[j] worklist is an independent bag of (a, b) node pairs:
/// the worklist is cut into fixed-size chunks, every chunk runs the
/// sequential JOIN2–JOIN4 body (join_detail::ProcessQualPair) against its
/// own output buffer on some worker, and the per-chunk buffers are merged
/// in chunk order between levels. Because chunking depends only on
/// `chunk_pairs`, the merged matches, the next worklist, and every counter
/// are byte-identical to the sequential TreeJoin — at any thread count.
///
/// Both trees and the operator must be safe for concurrent reads; snapshot
/// disk-backed trees with FrozenTree::Materialize first (the strategy
/// dispatcher does exactly that).
///
/// `cancel` is polled at the level barrier, where no chunk is in flight:
/// a stopped join returns the merged prefix of completed levels and the
/// pool quiescent — identical semantics to the sequential TreeJoin's
/// level-boundary stop.
JoinResult ParallelTreeJoin(const GeneralizationTree& r_tree,
                            const GeneralizationTree& s_tree,
                            const ThetaOperator& op, ThreadPool* pool,
                            const ParallelJoinOptions& options = {},
                            const CancelToken* cancel = nullptr);

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_PARALLEL_JOIN_H_
