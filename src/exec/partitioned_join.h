#ifndef SPATIALJOIN_EXEC_PARTITIONED_JOIN_H_
#define SPATIALJOIN_EXEC_PARTITIONED_JOIN_H_

#include <cstdint>
#include <vector>

#include "core/join.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "exec/thread_pool.h"
#include "geometry/rectangle.h"
#include "relational/relation.h"

namespace spatialjoin {
namespace exec {

/// One input object of the partitioned join: a tuple with its exact
/// geometry and the geometry's MBR, fully materialized so the per-tile
/// workers never touch the (single-threaded) storage layer.
struct JoinItem {
  TupleId tid = kInvalidTupleId;
  Rectangle mbr;
  Value geometry;
};

/// Materializes column `column` of `rel` as JoinItems (single-threaded;
/// pays the relation scan's I/O up front).
std::vector<JoinItem> CollectJoinItems(const Relation& rel, size_t column);

/// Tuning knobs for PartitionedJoin.
struct PartitionedJoinOptions {
  /// Grid granularity; 0 derives ~sqrt((|R|+|S|)/64) tiles per axis, so a
  /// tile holds ~64 objects on uniform data.
  int grid_cols = 0;
  int grid_rows = 0;
};

/// True iff `op` supports the partitioned strategy: every Θ must reduce to
/// a finite probe window (ThetaOperator::ProbeWindow returns a value).
/// All Table 1 operators qualify.
bool PartitionedJoinSupports(const ThetaOperator& op);

/// PBSM-style partitioned spatial join (Patel & DeWitt; Tsitsigkos &
/// Mamoulis' in-memory variant, PAPERS.md):
///
///  1. Partition. A uniform grid covers the union of all MBRs and probe
///     windows. Each R item is replicated to every tile its MBR overlaps;
///     each S item to every tile its probe window W(s) overlaps (the
///     window generalizes PBSM beyond overlap joins: Θ(r, s) implies
///     r.mbr overlaps W(s), Table 1's defining property).
///  2. Sweep. Tiles are processed in parallel: both tile lists are sorted
///     by min-x and plane-swept; every (r, s) whose MBR/window intersect
///     is a candidate, filtered through Θ on the real MBRs and then θ on
///     the exact geometries.
///  3. Deduplicate. A pair replicated into several tiles is emitted only
///     in the tile that owns the *reference point* — the bottom-left
///     corner of mbr(r) ∩ W(s) — so each match appears exactly once with
///     no cross-tile coordination.
///
/// Results are deterministic at any thread count: tiles are merged in
/// tile order and each tile's sweep order is fixed by (min-x, tid).
/// The result's match set equals the sequential tuple join R ⋈_θ S.
///
/// `cancel` (optional) is polled in the window-derivation pass and inside
/// every tile sweep; a cancelled join returns early with a partial (but
/// still deterministic-prefix) result — callers surface CANCELLED from
/// the token, never the partial matches.
JoinResult PartitionedJoin(const std::vector<JoinItem>& r_items,
                           const std::vector<JoinItem>& s_items,
                           const ThetaOperator& op, ThreadPool* pool,
                           const PartitionedJoinOptions& options = {},
                           const CancelToken* cancel = nullptr);

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_PARTITIONED_JOIN_H_
