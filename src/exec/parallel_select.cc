#include "exec/parallel_select.h"

#include <algorithm>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {
namespace exec {

namespace {

// Chunk-local SELECT2 output: visited results plus the children to expand
// into the next frontier.
struct ChunkOutput {
  std::vector<NodeId> matching_nodes;
  std::vector<TupleId> matching_tuples;
  std::vector<NodeId> children;
  int64_t theta_upper_tests = 0;
  int64_t theta_tests = 0;
  int64_t nodes_accessed = 0;
};

}  // namespace

SelectResult ParallelSelect(const Value& selector,
                            const GeneralizationTree& tree,
                            const ThetaOperator& op, ThreadPool* pool,
                            const ParallelSelectOptions& options,
                            const CancelToken* cancel) {
  SJ_CHECK(pool != nullptr);
  SJ_CHECK_GE(options.chunk_nodes, 1);

  SelectResult result;
  Rectangle selector_mbr = selector.Mbr();

  std::vector<NodeId> frontier{tree.root()};
  int64_t levels_run = 0;
  while (!frontier.empty()) {
    // Cooperative stop at the level barrier (see ParallelTreeJoin).
    if (cancel != nullptr && cancel->ShouldStop()) break;
    ++levels_run;
    SJ_SPAN_CAT("parallel_select.level", "exec");
    // Per-level heartbeat on the coordinating thread (workers beat per
    // pool task).
    ActivityScope::BeatThisThread();
    TraceCounter("select.frontier", static_cast<int64_t>(frontier.size()));
    const int64_t n = static_cast<int64_t>(frontier.size());
    const int64_t chunk = options.chunk_nodes;
    const int64_t num_chunks = (n + chunk - 1) / chunk;

    std::vector<ChunkOutput> outputs(static_cast<size_t>(num_chunks));
    pool->ParallelFor(num_chunks, [&](int64_t c) {
      SJ_SPAN_CAT("parallel_select.chunk", "exec");
      ChunkOutput& out = outputs[static_cast<size_t>(c)];
      const int64_t begin = c * chunk;
      const int64_t end = std::min(n, begin + chunk);
      for (int64_t i = begin; i < end; ++i) {
        SJ_BOUNDED_WORK;  // one chunk (chunk_nodes); the level loop polls
        NodeId node = frontier[static_cast<size_t>(i)];
        // SELECT2: Θ-test; on success θ-test and expand the children.
        ++out.theta_upper_tests;
        if (!op.ThetaUpper(selector_mbr, tree.MbrOf(node))) continue;
        Value geometry = tree.Geometry(node);
        ++out.nodes_accessed;
        ++out.theta_tests;
        if (op.Theta(selector, geometry)) {
          out.matching_nodes.push_back(node);
          if (tree.IsApplicationNode(node)) {
            out.matching_tuples.push_back(tree.TupleOf(node));
          }
        }
        for (NodeId child : tree.Children(node)) {
          SJ_BOUNDED_WORK;  // one node's children (node fanout)
          out.children.push_back(child);
        }
      }
    });

    std::vector<NodeId> next_frontier;
    for (ChunkOutput& out : outputs) {
      SJ_BOUNDED_WORK;  // one level's chunk merge; the level loop polls
      result.matching_nodes.insert(result.matching_nodes.end(),
                                   out.matching_nodes.begin(),
                                   out.matching_nodes.end());
      result.matching_tuples.insert(result.matching_tuples.end(),
                                    out.matching_tuples.begin(),
                                    out.matching_tuples.end());
      result.theta_upper_tests += out.theta_upper_tests;
      result.theta_tests += out.theta_tests;
      result.nodes_accessed += out.nodes_accessed;
      next_frontier.insert(next_frontier.end(), out.children.begin(),
                           out.children.end());
    }
    frontier = std::move(next_frontier);
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("exec.parallel_select.runs")->Increment();
  registry.GetCounter("exec.parallel_select.levels")->Increment(levels_run);
  return result;
}

}  // namespace exec
}  // namespace spatialjoin
