#include "exec/frozen_tree.h"

#include <deque>
#include <utility>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/span.h"

namespace spatialjoin {
namespace exec {

FrozenTree FrozenTree::Materialize(const GeneralizationTree& source) {
  SJ_SPAN_CAT("frozen_tree.materialize", "exec");
  FrozenTree frozen;
  frozen.height_ = source.height();

  // BFS over the source, assigning dense ids in visit order. The child
  // lists are rewritten in terms of the dense ids in a second pass, once
  // every source node has its final position.
  std::vector<NodeId> source_ids;          // dense id -> source id
  std::vector<std::vector<NodeId>> kids;   // dense id -> source child ids
  std::deque<NodeId> worklist;
  worklist.push_back(source.root());
  while (!worklist.empty()) {
    SJ_BOUNDED_WORK;  // one BFS pass per dataset load; not a query path
    NodeId src = worklist.front();
    worklist.pop_front();
    source_ids.push_back(src);
    Node node;
    node.geometry = source.Geometry(src);
    node.mbr = source.MbrOf(src);
    node.tuple = source.TupleOf(src);
    node.height = source.HeightOf(src);
    node.application = source.IsApplicationNode(src);
    frozen.nodes_.push_back(std::move(node));
    kids.push_back(source.Children(src));
    for (NodeId child : kids.back()) {
      SJ_BOUNDED_WORK;  // one node's children (node fanout)
      worklist.push_back(child);
    }
  }

  // BFS visits children in push order, so the dense id of the j-th child
  // of dense node i is a running cursor over the visit sequence.
  NodeId next_dense = 1;
  for (size_t i = 0; i < kids.size(); ++i) {
    SJ_BOUNDED_WORK;  // child-rewrite pass per dataset load; not a query path
    Node& node = frozen.nodes_[i];
    node.child_begin = static_cast<int64_t>(frozen.children_.size());
    for (size_t j = 0; j < kids[i].size(); ++j) {
      SJ_BOUNDED_WORK;  // one node's children (node fanout)
      frozen.children_.push_back(next_dense++);
    }
    node.child_end = static_cast<int64_t>(frozen.children_.size());
  }
  SJ_CHECK_EQ(next_dense, static_cast<NodeId>(frozen.nodes_.size()));
  return frozen;
}

SJ_HOT const FrozenTree::Node& FrozenTree::NodeAt(NodeId id) const {
  SJ_CHECK(id >= 0 && id < static_cast<NodeId>(nodes_.size()));
  return nodes_[static_cast<size_t>(id)];
}

SJ_HOT int FrozenTree::HeightOf(NodeId node) const {
  return NodeAt(node).height;
}

SJ_HOT std::vector<NodeId> FrozenTree::Children(NodeId node) const {
  const Node& n = NodeAt(node);
  return std::vector<NodeId>(
      children_.begin() + static_cast<ptrdiff_t>(n.child_begin),
      children_.begin() + static_cast<ptrdiff_t>(n.child_end));
}

SJ_HOT Value FrozenTree::Geometry(NodeId node) const {
  return NodeAt(node).geometry;
}

SJ_HOT Rectangle FrozenTree::MbrOf(NodeId node) const {
  return NodeAt(node).mbr;
}

SJ_HOT bool FrozenTree::IsApplicationNode(NodeId node) const {
  return NodeAt(node).application;
}

SJ_HOT TupleId FrozenTree::TupleOf(NodeId node) const {
  return NodeAt(node).tuple;
}

}  // namespace exec
}  // namespace spatialjoin
