#include "exec/partitioned_join.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {
namespace exec {

namespace {

// The grid: uniform tiles over `bounds`, with half-open tile ownership
// ([x_i, x_{i+1}) × [y_j, y_{j+1}); the last row/column is closed) so
// every point of the plane inside `bounds` belongs to exactly one tile —
// the property the reference-point deduplication rests on.
struct Grid {
  Rectangle bounds;
  int cols = 1;
  int rows = 1;
  double tile_w = 0.0;
  double tile_h = 0.0;

  int num_tiles() const { return cols * rows; }

  int ColOf(double x) const {
    if (tile_w <= 0.0) return 0;
    double offset = std::floor((x - bounds.min_x()) / tile_w);
    return static_cast<int>(
        std::clamp(offset, 0.0, static_cast<double>(cols - 1)));
  }
  int RowOf(double y) const {
    if (tile_h <= 0.0) return 0;
    double offset = std::floor((y - bounds.min_y()) / tile_h);
    return static_cast<int>(
        std::clamp(offset, 0.0, static_cast<double>(rows - 1)));
  }
  int TileOfPoint(double x, double y) const {
    return RowOf(y) * cols + ColOf(x);
  }
};

Grid MakeGrid(const Rectangle& bounds, int64_t total_items,
              const PartitionedJoinOptions& options) {
  Grid grid;
  grid.bounds = bounds;
  int auto_axis = static_cast<int>(std::ceil(
      std::sqrt(static_cast<double>(std::max<int64_t>(total_items, 1)) /
                64.0)));
  auto_axis = std::clamp(auto_axis, 1, 64);
  grid.cols = options.grid_cols > 0 ? options.grid_cols : auto_axis;
  grid.rows = options.grid_rows > 0 ? options.grid_rows : auto_axis;
  grid.tile_w = bounds.width() / static_cast<double>(grid.cols);
  grid.tile_h = bounds.height() / static_cast<double>(grid.rows);
  return grid;
}

// Appends the indices of every tile `rect` overlaps to `tiles[tile]`.
void AssignToTiles(const Grid& grid, const Rectangle& rect, int64_t item,
                   std::vector<std::vector<int64_t>>* tiles) {
  int col_lo = grid.ColOf(rect.min_x());
  int col_hi = grid.ColOf(rect.max_x());
  int row_lo = grid.RowOf(rect.min_y());
  int row_hi = grid.RowOf(rect.max_y());
  for (int row = row_lo; row <= row_hi; ++row) {
    SJ_BOUNDED_WORK;  // one rect's tile span (<= 64x64 grid)
    for (int col = col_lo; col <= col_hi; ++col) {
      SJ_BOUNDED_WORK;  // one rect's tile span (<= 64x64 grid)
      (*tiles)[static_cast<size_t>(row * grid.cols + col)].push_back(item);
    }
  }
}

// Sweep-order comparator: min-x of the sweep rectangle, tuple id as the
// deterministic tie-break.
struct SweepEntry {
  int64_t item = 0;       // index into r_items / s_items
  double min_x = 0.0;
};

bool SweepLess(const SweepEntry& a, const SweepEntry& b) {
  if (a.min_x != b.min_x) return a.min_x < b.min_x;
  return a.item < b.item;
}

}  // namespace

std::vector<JoinItem> CollectJoinItems(const Relation& rel, size_t column) {
  std::vector<JoinItem> items;
  items.reserve(static_cast<size_t>(rel.num_tuples()));
  rel.Scan([&](TupleId tid, const Tuple& tuple) {
    JoinItem item;
    item.tid = tid;
    item.geometry = tuple.value(column);
    item.mbr = item.geometry.Mbr();
    items.push_back(std::move(item));
  });
  return items;
}

bool PartitionedJoinSupports(const ThetaOperator& op) {
  // Representative probe: the window derivation of every ThetaOperator in
  // this library is shape-independent (a fixed transform of b's MBR), so
  // one finite answer means all answers are finite.
  return op.ProbeWindow(Rectangle(0, 0, 1, 1), Rectangle(0, 0, 2, 2))
      .has_value();
}

JoinResult PartitionedJoin(const std::vector<JoinItem>& r_items,
                           const std::vector<JoinItem>& s_items,
                           const ThetaOperator& op, ThreadPool* pool,
                           const PartitionedJoinOptions& options,
                           const CancelToken* cancel) {
  SJ_CHECK(pool != nullptr);
  JoinResult result;
  if (r_items.empty() || s_items.empty()) return result;

  // Every input geometry was materialized exactly once by the caller
  // (CollectJoinItems); charge those accesses here so the counters stay
  // comparable with the tree strategies.
  result.nodes_accessed =
      static_cast<int64_t>(r_items.size() + s_items.size());

  // Data bounds: all MBRs, used both as the window-clipping world and
  // (extended by the windows) as the grid extent.
  Rectangle world = Rectangle::Empty();
  for (const JoinItem& r : r_items) {
    SJ_BOUNDED_WORK;  // one Extend per input; cheap next to the sweep
    world.Extend(r.mbr);
  }
  for (const JoinItem& s : s_items) {
    SJ_BOUNDED_WORK;  // one Extend per input; cheap next to the sweep
    world.Extend(s.mbr);
  }

  // Probe windows W(s): Θ(r, s) ⇒ mbr(r) overlaps W(s), so sweeping
  // mbr(r) against W(s) is a conservative candidate test for any Table 1
  // operator, not just overlap.
  std::vector<Rectangle> windows(s_items.size());
  Rectangle grid_bounds = world;
  for (size_t i = 0; i < s_items.size(); ++i) {
    if (cancel != nullptr && cancel->ShouldStop()) return result;
    auto window = op.ProbeWindow(s_items[i].mbr, world);
    SJ_CHECK_MSG(window.has_value(),
                 "PartitionedJoin requires an operator with a finite probe "
                 "window (see PartitionedJoinSupports)");
    windows[i] = *window;
    grid_bounds.Extend(windows[i]);
  }

  Grid grid = MakeGrid(
      grid_bounds,
      static_cast<int64_t>(r_items.size() + s_items.size()), options);

  // Partition: replicate R by MBR and S by window into every overlapping
  // tile. Single-threaded — O(items · replication), trivial next to the
  // sweeps.
  std::vector<std::vector<int64_t>> r_tiles(
      static_cast<size_t>(grid.num_tiles()));
  std::vector<std::vector<int64_t>> s_tiles(
      static_cast<size_t>(grid.num_tiles()));
  {
    SJ_SPAN_CAT("pbsm.partition", "exec");
    // Phase boundary heartbeat: partitioning is the longest single-
    // threaded stretch of PBSM.
    ActivityScope::BeatThisThread();
    for (size_t i = 0; i < r_items.size(); ++i) {
      SJ_BOUNDED_WORK;  // replication pass; O(items x tile span)
      AssignToTiles(grid, r_items[i].mbr, static_cast<int64_t>(i), &r_tiles);
    }
    for (size_t i = 0; i < s_items.size(); ++i) {
      SJ_BOUNDED_WORK;  // replication pass; O(items x tile span)
      AssignToTiles(grid, windows[i], static_cast<int64_t>(i), &s_tiles);
    }
  }
  int64_t replicated = 0;
  for (const auto& t : r_tiles) {
    SJ_BOUNDED_WORK;  // one size() read per tile (<= 64x64 grid)
    replicated += static_cast<int64_t>(t.size());
  }
  for (const auto& t : s_tiles) {
    SJ_BOUNDED_WORK;  // one size() read per tile (<= 64x64 grid)
    replicated += static_cast<int64_t>(t.size());
  }
  TraceCounter("pbsm.replicated_items", replicated);

  // Per-tile parallel plane sweep into per-tile output slots.
  struct TileOutput {
    std::vector<std::pair<TupleId, TupleId>> matches;
    int64_t candidates = 0;
    int64_t theta_upper_tests = 0;
    int64_t theta_tests = 0;
  };
  std::vector<TileOutput> outputs(static_cast<size_t>(grid.num_tiles()));

  pool->ParallelFor(grid.num_tiles(), [&](int64_t tile) {
    const auto& r_list = r_tiles[static_cast<size_t>(tile)];
    const auto& s_list = s_tiles[static_cast<size_t>(tile)];
    if (r_list.empty() || s_list.empty()) return;
    SJ_SPAN_CAT("pbsm.tile_sweep", "exec");
    // Per-tile heartbeat on whichever worker sweeps it.
    ActivityScope::BeatThisThread();
    TileOutput& out = outputs[static_cast<size_t>(tile)];

    std::vector<SweepEntry> r_sweep;
    r_sweep.reserve(r_list.size());
    for (int64_t i : r_list) {
      SJ_BOUNDED_WORK;  // one tile's item list; the sweep below polls
      r_sweep.push_back({i, r_items[static_cast<size_t>(i)].mbr.min_x()});
    }
    std::vector<SweepEntry> s_sweep;
    s_sweep.reserve(s_list.size());
    for (int64_t i : s_list) {
      SJ_BOUNDED_WORK;  // one tile's item list; the sweep below polls
      s_sweep.push_back({i, windows[static_cast<size_t>(i)].min_x()});
    }
    std::sort(r_sweep.begin(), r_sweep.end(), SweepLess);
    std::sort(s_sweep.begin(), s_sweep.end(), SweepLess);

    // Candidate check for one x-overlapping pair; the reference-point
    // test makes exactly one tile emit each replicated pair.
    auto check_pair = [&](int64_t ri, int64_t si) {
      const JoinItem& r = r_items[static_cast<size_t>(ri)];
      const JoinItem& s = s_items[static_cast<size_t>(si)];
      const Rectangle& window = windows[static_cast<size_t>(si)];
      Rectangle common = r.mbr.Intersection(window);
      if (common.is_empty()) return;
      ++out.candidates;
      if (grid.TileOfPoint(common.min_x(), common.min_y()) != tile) return;
      ++out.theta_upper_tests;
      if (!op.ThetaUpper(r.mbr, s.mbr)) return;
      ++out.theta_tests;
      if (op.Theta(r.geometry, s.geometry)) {
        out.matches.emplace_back(r.tid, s.tid);
      }
    };

    // Forward plane sweep over the two sorted lists (Brinkhoff et al.):
    // repeatedly take the list head with the smaller min-x and scan the
    // other list while x-intervals still overlap.
    size_t i = 0;
    size_t j = 0;
    while (i < r_sweep.size() && j < s_sweep.size()) {
      if (cancel != nullptr && cancel->ShouldStop()) return;
      if (SweepLess(r_sweep[i], s_sweep[j])) {
        const JoinItem& r = r_items[static_cast<size_t>(r_sweep[i].item)];
        for (size_t j2 = j; j2 < s_sweep.size() &&
                            s_sweep[j2].min_x <= r.mbr.max_x();
             ++j2) {
          SJ_BOUNDED_WORK;  // one head's x-overlap run; the sweep polls
          check_pair(r_sweep[i].item, s_sweep[j2].item);
        }
        ++i;
      } else {
        const Rectangle& window =
            windows[static_cast<size_t>(s_sweep[j].item)];
        for (size_t i2 = i; i2 < r_sweep.size() &&
                            r_sweep[i2].min_x <= window.max_x();
             ++i2) {
          SJ_BOUNDED_WORK;  // one head's x-overlap run; the sweep polls
          check_pair(r_sweep[i2].item, s_sweep[j].item);
        }
        ++j;
      }
    }
  });

  int64_t candidates = 0;
  for (TileOutput& out : outputs) {
    SJ_BOUNDED_WORK;  // one merge per tile (<= 64x64 grid)
    result.matches.insert(result.matches.end(), out.matches.begin(),
                          out.matches.end());
    result.theta_upper_tests += out.theta_upper_tests;
    result.theta_tests += out.theta_tests;
    candidates += out.candidates;
  }
  result.qual_pairs_examined = candidates;

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("exec.partitioned_join.runs")->Increment();
  registry.GetCounter("exec.partitioned_join.tiles")
      ->Increment(grid.num_tiles());
  registry.GetCounter("exec.partitioned_join.replicated_items")
      ->Increment(replicated);
  registry.GetCounter("exec.partitioned_join.candidates")
      ->Increment(candidates);
  return result;
}

}  // namespace exec
}  // namespace spatialjoin
