#include "exec/thread_pool.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <utility>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/attribution.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {
namespace exec {

namespace {

// Worker identity of the current thread, so Submit from inside a task
// pushes onto the calling worker's own deque (LIFO locality) and helping
// threads are distinguishable from workers in the steal accounting.
thread_local const ThreadPool* tls_pool = nullptr;
thread_local int tls_worker = -1;

// Pools are created freely (one per bench probe, per test, ...); a
// process-wide sequence number keeps their workers' timeline tracks
// distinguishable ("pool3.worker1").
std::atomic<int> pool_sequence{0};

}  // namespace

ThreadPool::ThreadPool(int num_workers)
    : pool_id_(pool_sequence.fetch_add(1, std::memory_order_relaxed)) {
  SJ_CHECK_GE(num_workers, 1);
  workers_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  threads_.reserve(static_cast<size_t>(num_workers));
  for (int i = 0; i < num_workers; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  if (!Quiescent()) {
    // Structured record first: the SJ_CHECK below aborts, and the flight
    // dump's event tail should say which pool died with what backlog.
    Stats snapshot = stats();
    SJ_EVENT(kPoolAnomaly, kError,
             "pool%d torn down with tasks outstanding "
             "(submitted %lld, executed %lld, queued %lld)",
             pool_id_, static_cast<long long>(snapshot.tasks_submitted),
             static_cast<long long>(snapshot.tasks_executed),
             static_cast<long long>(snapshot.tasks_queued));
  }
  SJ_CHECK_MSG(Quiescent(),
               "ThreadPool destroyed with tasks outstanding — join every "
               "TaskGroup before teardown");
  {
    MutexLock lock(wake_mu_);
    stop_ = true;
  }
  wake_cv_.NotifyAll();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> fn) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  // Attribution propagation (obs/attribution.h): a task spawned while
  // working for a query carries that query's charge sink, so the body
  // charges the right query no matter which worker (or helping caller)
  // ends up running it. The wrapper also charges the task's queue wait —
  // submit to run — to the same query; tasks submitted outside any query
  // scope skip the wrapper entirely (no clock read, no capture).
  if (attribution::QueryCharges* charges = attribution::CurrentCharges()) {
    const int64_t submit_ns = MonotonicNowNs();
    fn = [charges, submit_ns, body = std::move(fn)] {
      charges->AddQueueWait(MonotonicNowNs() - submit_ns);
      charges->AddPoolTask();
      attribution::QueryChargeScope scope(charges);
      body();
    };
  }
  size_t target;
  if (tls_pool == this && tls_worker >= 0) {
    target = static_cast<size_t>(tls_worker);
  } else {
    target = static_cast<size_t>(next_queue_.fetch_add(
                 1, std::memory_order_relaxed)) %
             workers_.size();
  }
  {
    Worker& worker = *workers_[target];
    MutexLock lock(worker.mu);
    worker.tasks.push_back(std::move(fn));
  }
  {
    MutexLock lock(wake_mu_);
    ++work_epoch_;
  }
  wake_cv_.NotifyOne();
}

bool ThreadPool::RunOneTask(int self) {
  std::function<void()> task;
  bool stole = false;
  const int width = num_workers();
  if (self >= 0) {
    Worker& own = *workers_[static_cast<size_t>(self)];
    MutexLock lock(own.mu);
    if (!own.tasks.empty()) {
      // Owner takes the back: the most recently pushed — and most likely
      // cache-resident — task.
      task = std::move(own.tasks.back());
      own.tasks.pop_back();
    }
  }
  if (!task) {
    const int start =
        self >= 0 ? (self + 1) % width
                  : static_cast<int>(next_queue_.fetch_add(
                                         1, std::memory_order_relaxed) %
                                     static_cast<uint64_t>(width));
    for (int i = 0; i < width && !task; ++i) {
      SJ_BOUNDED_WORK;  // one steal scan over the fixed worker set
      const int victim = (start + i) % width;
      if (victim == self) continue;
      Worker& worker = *workers_[static_cast<size_t>(victim)];
      MutexLock lock(worker.mu);
      if (!worker.tasks.empty()) {
        // Thieves take the front: the oldest pending task.
        task = std::move(worker.tasks.front());
        worker.tasks.pop_front();
      }
    }
    if (task) {
      stole = true;
      stolen_.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (!task) return false;
  // Account *before* running: a task's completion signal (the TaskGroup
  // decrement inside the closure) must not become observable while the
  // pool's counters still lag, or a caller that joined every group could
  // race the destructor's Quiescent() check.
  executed_.fetch_add(1, std::memory_order_relaxed);
  {
    // Distinct categories let timeline views color owned work vs. stolen
    // work per worker track (helping callers show up on their own track).
    ScopedSpan span("pool.task", stole ? "steal" : "run");
    // Heartbeat per task, on whichever thread runs it — workers and
    // helping callers alike. A task that never returns is the stall the
    // watchdog exists to catch; the beat pins the stall onset to the
    // task boundary.
    ActivityScope::BeatThisThread();
    task();
  }
  return true;
}

void ThreadPool::WorkerLoop(int self) {
  tls_pool = this;
  tls_worker = self;
  char label[32];
  std::snprintf(label, sizeof(label), "pool%d.worker%d", pool_id_, self);
  Tracing::SetThreadName(label);
  // Register with the flight recorder: the watchdog treats a busy worker
  // whose heartbeat goes stale as a stuck task. Kind/label must be static
  // strings (read from the signal path); the per-worker identity goes in
  // the copied detail field instead.
  ActivityScope activity("pool.worker", "worker");
  activity.SetDetail(label);
  while (true) {
    uint64_t epoch;
    {
      MutexLock lock(wake_mu_);
      if (stop_) return;
      epoch = work_epoch_;
    }
    activity.Beat();
    if (RunOneTask(self)) continue;
    // All deques were empty at scan time; sleep until a submission bumps
    // the epoch (a submission racing the scan already bumped it, so the
    // loop condition is immediately false and no wakeup is missed).
    ScopedSpan park("pool.park", "park");
    {
      // Parking with work still in our own deque means the scan and the
      // epoch protocol disagree. A submission between our scan and this
      // check makes it fire spuriously (Submit pushes before it bumps the
      // epoch), so the record stays at info severity: visible in dumps,
      // never echoed.
      MutexLock own_lock(workers_[static_cast<size_t>(self)]->mu);
      if (!workers_[static_cast<size_t>(self)]->tasks.empty()) {
        SJ_EVENT(kPoolAnomaly, kInfo,
                 "%s parking with %lld tasks in its own deque", label,
                 static_cast<long long>(
                     workers_[static_cast<size_t>(self)]->tasks.size()));
      }
    }
    activity.SetIdle(true);
    MutexLock lock(wake_mu_);
    while (!stop_ && work_epoch_ == epoch) wake_cv_.Wait(wake_mu_);
    activity.SetIdle(false);
    if (stop_) return;
  }
}

void ThreadPool::ParallelFor(int64_t n,
                             const std::function<void(int64_t)>& body) {
  if (n <= 0) return;
  if (num_workers() == 1 || n == 1) {
    // Degenerate widths run inline: same invocation set, zero scheduling
    // overhead, and exactly the sequential execution order.
    for (int64_t i = 0; i < n; ++i) {
      SJ_BOUNDED_WORK;  // runs the caller's body; query-path bodies poll
      body(i);
    }
    return;
  }
  TaskGroup group(this);
  for (int64_t i = 0; i < n; ++i) {
    SJ_BOUNDED_WORK;  // one Spawn per index; the spawned bodies poll
    group.Spawn([&body, i] { body(i); });
  }
  group.Wait();
}

ThreadPool::TaskGroup::TaskGroup(ThreadPool* pool)
    : pool_(pool), sync_(std::make_shared<Sync>()) {
  SJ_CHECK(pool != nullptr);
}

ThreadPool::TaskGroup::~TaskGroup() { Wait(); }

void ThreadPool::TaskGroup::Spawn(std::function<void()> fn) {
  {
    MutexLock lock(sync_->mu);
    ++sync_->pending;
  }
  pool_->Submit([sync = sync_, fn = std::move(fn)] {
    fn();
    MutexLock lock(sync->mu);
    if (--sync->pending == 0) sync->cv.NotifyAll();
  });
}

void ThreadPool::TaskGroup::Wait() {
  const int self = tls_pool == pool_ ? tls_worker : -1;
  while (true) {
    SJ_BOUNDED_WORK;  // exits when pending==0; the tasks it helps run poll
    {
      MutexLock lock(sync_->mu);
      if (sync_->pending == 0) return;
    }
    // Help: run pending pool tasks (ours or anyone's) instead of blocking.
    if (pool_->RunOneTask(self)) continue;
    // Nothing runnable — our stragglers are in flight on other threads.
    // The timed wait re-checks for helpable work in case new tasks land.
    MutexLock lock(sync_->mu);
    if (sync_->pending != 0) {
      // Timeout vs notify is immaterial here: either way the loop
      // re-scans for helpable work and re-tests pending.
      (void)sync_->cv.WaitFor(sync_->mu, std::chrono::milliseconds(1));
    }
    if (sync_->pending == 0) return;
  }
}

void ThreadPool::Post(std::function<void()> fn) { Submit(std::move(fn)); }

ThreadPool::Stats ThreadPool::stats() const {
  Stats stats;
  stats.workers = num_workers();
  stats.tasks_submitted = submitted_.load(std::memory_order_relaxed);
  stats.tasks_executed = executed_.load(std::memory_order_relaxed);
  stats.tasks_stolen = stolen_.load(std::memory_order_relaxed);
  for (const auto& worker : workers_) {
    SJ_BOUNDED_WORK;  // one size() read per worker (fixed pool width)
    MutexLock lock(worker->mu);
    stats.tasks_queued += static_cast<int64_t>(worker->tasks.size());
  }
  return stats;
}

bool ThreadPool::Quiescent() const {
  Stats snapshot = stats();
  return snapshot.tasks_queued == 0 &&
         snapshot.tasks_submitted == snapshot.tasks_executed;
}

ThreadPool& ThreadPool::Shared() {
  // Leaked on purpose: workers may outlive static destruction order.
  // sj-lint: allow(naked-new)
  static ThreadPool* pool = new ThreadPool(
      std::max(1u, std::thread::hardware_concurrency()));
  return *pool;
}

}  // namespace exec
}  // namespace spatialjoin
