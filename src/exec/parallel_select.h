#ifndef SPATIALJOIN_EXEC_PARALLEL_SELECT_H_
#define SPATIALJOIN_EXEC_PARALLEL_SELECT_H_

#include <cstdint>

#include "core/gentree.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "exec/cancel.h"
#include "exec/thread_pool.h"

namespace spatialjoin {
namespace exec {

/// Tuning knobs for ParallelSelect.
struct ParallelSelectOptions {
  /// Frontier nodes per task; like ParallelJoinOptions::chunk_pairs, the
  /// sharding depends only on this value, so results are identical across
  /// worker counts.
  int64_t chunk_nodes = 64;
};

/// Algorithm SELECT (paper §3.2), breadth-first with the QualNodes[j]
/// frontier sharded per level: each chunk of the frontier is Θ/θ-tested on
/// some worker into chunk-local buffers (matches, counters, children), and
/// the buffers are merged in chunk order to form the next frontier. The
/// merged `matching_nodes` order equals the sequential breadth-first
/// visit order exactly, at any thread count.
///
/// The tree and operator must be safe for concurrent reads (FrozenTree,
/// or MemoryGenTree without an attached relation).
///
/// `cancel` is polled at the per-level barrier (no chunk in flight): a
/// stopped selection returns the merged prefix of completed levels with
/// the pool quiescent.
SelectResult ParallelSelect(const Value& selector,
                            const GeneralizationTree& tree,
                            const ThetaOperator& op, ThreadPool* pool,
                            const ParallelSelectOptions& options = {},
                            const CancelToken* cancel = nullptr);

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_PARALLEL_SELECT_H_
