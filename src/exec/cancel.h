#ifndef SPATIALJOIN_EXEC_CANCEL_H_
#define SPATIALJOIN_EXEC_CANCEL_H_

#include <atomic>
#include <cstdint>

#include "common/status.h"
#include "obs/timer.h"

namespace spatialjoin {
namespace exec {

/// Why a cooperative traversal stopped early (or didn't).
enum class StopReason : uint8_t {
  kNone = 0,
  kCancelled,
  kDeadline,
};

/// Cooperative cancellation + deadline token (DESIGN.md §12).
///
/// One token accompanies one query execution. The owner (the query
/// service's scheduler, a test, a bench) may arm an absolute deadline
/// and/or flip the cancel flag from any thread; the level-synchronized
/// traversal loops in core/ and exec/ poll `ShouldStop()` at their level
/// boundaries and bail out between levels — never mid-pair — so a
/// stopped query leaves the thread pool, the buffer pool, and every
/// output buffer in the same clean state a completed query would.
///
/// The observed reason is sticky: the first `ShouldStop()` that trips
/// latches kCancelled/kDeadline, and later calls (and the post-run
/// `ToStatus()` conversion) report that same reason even if, say, the
/// deadline also passes afterwards. Checking costs one relaxed load on
/// the fast path plus a clock read only while a deadline is armed.
///
/// Thread-safety: all members are atomics; any thread may Cancel() or
/// poll concurrently with the traversal.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Arms an absolute deadline `budget_ns` from now (<= 0 disarms).
  void ArmDeadline(int64_t budget_ns) {
    deadline_ns_.store(
        budget_ns > 0 ? MonotonicNowNs() + budget_ns : int64_t{0},
        std::memory_order_relaxed);
  }

  /// Requests cooperative cancellation; idempotent, callable from any
  /// thread (a session reader acting on a kCancel frame, a teardown
  /// path, a test).
  void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }

  /// True iff the traversal should stop at the next level boundary.
  /// Latches the reason on first trip.
  bool ShouldStop() const {
    StopReason latched = reason_.load(std::memory_order_relaxed);
    if (latched != StopReason::kNone) return true;
    if (cancelled_.load(std::memory_order_relaxed)) {
      Latch(StopReason::kCancelled);
      return true;
    }
    int64_t deadline = deadline_ns_.load(std::memory_order_relaxed);
    if (deadline != 0 && MonotonicNowNs() >= deadline) {
      Latch(StopReason::kDeadline);
      return true;
    }
    return false;
  }

  /// The latched reason (kNone while the query is healthy).
  StopReason reason() const {
    return reason_.load(std::memory_order_relaxed);
  }

  /// Post-run conversion for the service layer: OK for a clean finish,
  /// Cancelled/DeadlineExceeded when the traversal was stopped.
  Status ToStatus() const {
    switch (reason()) {
      case StopReason::kNone:
        return Status::Ok();
      case StopReason::kCancelled:
        return Status::Cancelled("query cancelled");
      case StopReason::kDeadline:
        return Status::DeadlineExceeded("query deadline exceeded");
    }
    return Status::Internal("unknown stop reason");
  }

 private:
  // Latching from a const poll path: the token's identity is the query's,
  // and "first observed reason" is part of its observable API.
  void Latch(StopReason reason) const {
    StopReason expected = StopReason::kNone;
    reason_.compare_exchange_strong(expected, reason,
                                    std::memory_order_relaxed);
  }

  std::atomic<bool> cancelled_{false};
  std::atomic<int64_t> deadline_ns_{0};  // 0 = disarmed
  mutable std::atomic<StopReason> reason_{StopReason::kNone};
};

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_CANCEL_H_
