#include "exec/parallel_join.h"

#include <algorithm>
#include <utility>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "core/join_detail.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {
namespace exec {

namespace {

// Output of one chunk of QualPairs entries: a chunk-local JoinResult
// (matches + counters) and the next-level pairs its entries produced.
struct ChunkOutput {
  JoinResult partial;
  std::vector<std::pair<NodeId, NodeId>> next_pairs;
};

// Folds `chunk` into `total`, preserving within-chunk order.
void MergeChunk(ChunkOutput&& chunk, JoinResult* total,
                std::vector<std::pair<NodeId, NodeId>>* next_level) {
  JoinResult& p = chunk.partial;
  total->matches.insert(total->matches.end(), p.matches.begin(),
                        p.matches.end());
  total->theta_upper_tests += p.theta_upper_tests;
  total->theta_tests += p.theta_tests;
  total->nodes_accessed += p.nodes_accessed;
  total->qual_pairs_examined += p.qual_pairs_examined;
  next_level->insert(next_level->end(), chunk.next_pairs.begin(),
                     chunk.next_pairs.end());
}

}  // namespace

JoinResult ParallelTreeJoin(const GeneralizationTree& r_tree,
                            const GeneralizationTree& s_tree,
                            const ThetaOperator& op, ThreadPool* pool,
                            const ParallelJoinOptions& options,
                            const CancelToken* cancel) {
  SJ_CHECK(pool != nullptr);
  SJ_CHECK_GE(options.chunk_pairs, 1);

  JoinResult result;
  const int max_level = std::min(r_tree.height(), s_tree.height());

  std::vector<std::pair<NodeId, NodeId>> current_level;
  current_level.emplace_back(r_tree.root(), s_tree.root());

  int64_t levels_run = 0;
  for (int j = 0; j <= max_level && !current_level.empty(); ++j) {
    // Cooperative stop point at the level barrier: every chunk of the
    // previous level has completed and been merged, so stopping here
    // leaves the pool quiescent and the result a clean level prefix.
    if (cancel != nullptr && cancel->ShouldStop()) break;
    ++levels_run;
    SJ_SPAN_CAT("parallel_join.level", "exec");
    // Heartbeat on the coordinating thread once per level; the workers
    // running the chunks beat per pool task.
    ActivityScope::BeatThisThread();
    TraceCounter("join.qual_pairs",
                 static_cast<int64_t>(current_level.size()));
    const int64_t n = static_cast<int64_t>(current_level.size());
    const int64_t chunk = options.chunk_pairs;
    const int64_t num_chunks = (n + chunk - 1) / chunk;

    // One output slot per chunk; workers never share a slot, and the
    // chunk → index-range mapping is independent of the worker count.
    std::vector<ChunkOutput> outputs(static_cast<size_t>(num_chunks));
    pool->ParallelFor(num_chunks, [&](int64_t c) {
      // On the worker's own track, nested under its pool.task span.
      SJ_SPAN_CAT("parallel_join.chunk", "exec");
      ChunkOutput& out = outputs[static_cast<size_t>(c)];
      const int64_t begin = c * chunk;
      const int64_t end = std::min(n, begin + chunk);
      for (int64_t i = begin; i < end; ++i) {
        SJ_BOUNDED_WORK;  // one chunk (chunk_pairs); the level loop polls
        const auto& [a, b] = current_level[static_cast<size_t>(i)];
        join_detail::ProcessQualPair(r_tree, s_tree, a, b, op, &out.partial,
                                     &out.next_pairs);
      }
    });

    // Level barrier: merge in chunk order, reproducing the sequential
    // worklist and match order exactly.
    std::vector<std::pair<NodeId, NodeId>> next_level;
    for (ChunkOutput& out : outputs) {
      SJ_BOUNDED_WORK;  // one level's chunk merge; the level loop polls
      MergeChunk(std::move(out), &result, &next_level);
    }
    current_level = std::move(next_level);
  }

  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("exec.parallel_join.runs")->Increment();
  registry.GetCounter("exec.parallel_join.levels")->Increment(levels_run);
  return result;
}

}  // namespace exec
}  // namespace spatialjoin
