#ifndef SPATIALJOIN_EXEC_THREAD_POOL_H_
#define SPATIALJOIN_EXEC_THREAD_POOL_H_

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spatialjoin {
namespace exec {

/// Fixed-size work-stealing thread pool — the substrate of the parallel
/// execution layer (DESIGN.md §7).
///
/// Each worker owns a deque: the owner pushes and pops at the back (LIFO,
/// cache-friendly for recursively spawned work), idle workers steal from
/// the front of a victim's deque (FIFO, so thieves take the oldest —
/// typically largest — pending task). A thread calling `Wait` or
/// `ParallelFor` participates in execution ("helping"), so a pool is never
/// deadlocked by its own caller and a 1-worker pool still makes progress
/// while the caller waits.
///
/// Determinism contract: `ParallelFor(n, body)` invokes `body(i)` exactly
/// once for every i in [0, n) and returns only after all invocations
/// completed (with a happens-before edge to the caller). *Scheduling* is
/// nondeterministic, so callers that need deterministic output write into
/// pre-sized per-index slots and merge in index order — the pattern used
/// by ParallelTreeJoin / ParallelSelect / PartitionedJoin, which makes
/// their results bit-identical across worker counts.
///
/// Tasks must not throw: the engine's failure mode is SJ_CHECK (abort),
/// and an exception escaping a task terminates the process.
class ThreadPool {
 public:
  /// Introspection snapshot, consumed by audit::AuditThreadPool and the
  /// parallel benches. `tasks_executed` counts tasks dequeued and
  /// launched (the counter is bumped before the task body runs, so it is
  /// already up to date when the task signals its TaskGroup).
  /// `tasks_stolen` counts executed tasks that were taken from another
  /// worker's deque (helping by non-worker threads counts as stealing
  /// too).
  struct Stats {
    int workers = 0;
    int64_t tasks_submitted = 0;
    int64_t tasks_executed = 0;
    int64_t tasks_stolen = 0;
    int64_t tasks_queued = 0;
  };

  /// Spawns `num_workers` (>= 1) worker threads.
  explicit ThreadPool(int num_workers);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains nothing: outstanding tasks are completed before teardown
  /// (destruction while a TaskGroup is still running is a checked error).
  ~ThreadPool();

  int num_workers() const { return static_cast<int>(workers_.size()); }

  /// Runs `body(i)` for every i in [0, n), distributing indices over the
  /// workers plus the calling thread; returns when all completed. With a
  /// single worker (or n <= 1) the body runs inline on the caller, in
  /// index order.
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& body);

  /// Fire-and-forget: enqueues `fn` with no completion handle — the
  /// caller owns its own completion signalling. This is how the query
  /// service schedules whole queries onto the pool (inter-query
  /// parallelism); the query body may itself call ParallelFor on the same
  /// pool (intra-query parallelism) — a worker waiting at that inner
  /// barrier helps run other pending tasks, including other posted
  /// queries, so the pool is never deadlocked by nesting. Like all pool
  /// tasks, `fn` must not throw. SJ_BLOCKING: posting contends on a
  /// worker deque mutex and wakes a sleeper — never call it with a
  /// caller-side Mutex held (DESIGN.md §9).
  SJ_BLOCKING void Post(std::function<void()> fn);

  /// A joinable batch of independently spawned tasks.
  class TaskGroup {
   public:
    explicit TaskGroup(ThreadPool* pool);
    TaskGroup(const TaskGroup&) = delete;
    TaskGroup& operator=(const TaskGroup&) = delete;
    /// Waits for stragglers (checked: Wait() should be called explicitly).
    ~TaskGroup();

    /// Enqueues `fn` onto the pool.
    void Spawn(std::function<void()> fn);

    /// Blocks until every spawned task completed, executing pending pool
    /// tasks while waiting.
    void Wait();

   private:
    // Shared with the spawned closures so a completing task can signal
    // safely even if the waiter returns (and the group dies) the moment
    // the count hits zero.
    struct Sync {
      Mutex mu;
      CondVar cv;
      int64_t pending SJ_GUARDED_BY(mu) = 0;
    };

    ThreadPool* pool_;
    std::shared_ptr<Sync> sync_;
  };

  /// Consistent snapshot of the pool's counters and queue occupancy.
  Stats stats() const;

  /// True iff no task is queued or in flight — the pool's steady-state
  /// invariant between queries (audited by audit::AuditThreadPool).
  bool Quiescent() const;

  /// Process-wide pool sized to the hardware's concurrency, created on
  /// first use. Callers that need an explicit width construct their own.
  static ThreadPool& Shared();

 private:
  struct Worker {
    Mutex mu;
    std::deque<std::function<void()>> tasks SJ_GUARDED_BY(mu);
  };

  // Pushes onto a deque (the calling worker's own when called from inside
  // the pool, else round-robin) and wakes one sleeper. SJ_BLOCKING for
  // the same reason as Post.
  SJ_BLOCKING void Submit(std::function<void()> fn);

  // Executes one pending task if any is available. `self` is the calling
  // worker's index, or -1 for an external helping thread. Returns false
  // when every deque was empty.
  bool RunOneTask(int self);

  void WorkerLoop(int self);

  // Process-wide pool sequence number; names the workers' trace tracks.
  const int pool_id_;

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  Mutex wake_mu_;
  CondVar wake_cv_;
  bool stop_ SJ_GUARDED_BY(wake_mu_) = false;
  // Bumped on every Submit (under wake_mu_): lets a worker that found all
  // deques empty sleep without missing a submission that raced its scan.
  uint64_t work_epoch_ SJ_GUARDED_BY(wake_mu_) = 0;

  std::atomic<uint64_t> next_queue_{0};
  std::atomic<int64_t> submitted_{0};
  std::atomic<int64_t> executed_{0};
  std::atomic<int64_t> stolen_{0};
};

}  // namespace exec
}  // namespace spatialjoin

#endif  // SPATIALJOIN_EXEC_THREAD_POOL_H_
