#include "obs/attribution.h"

namespace spatialjoin {
namespace attribution {
namespace internal {

thread_local QueryCharges* tls_charges = nullptr;

}  // namespace internal
}  // namespace attribution
}  // namespace spatialjoin
