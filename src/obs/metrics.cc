#include "obs/metrics.h"

#include <bit>
#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/json.h"

namespace spatialjoin {

// Bucket index for `value`: 0 for value <= 0, otherwise the bit width
// (so bucket b covers [2^(b-1), 2^b - 1]).
int HistogramBucketOf(int64_t value) {
  if (value <= 0) return 0;
  return static_cast<int>(std::bit_width(static_cast<uint64_t>(value)));
}

// Upper value bound of bucket `b`.
int64_t HistogramBucketUpper(int bucket) {
  if (bucket <= 0) return 0;
  if (bucket >= 63) return INT64_MAX;
  return (int64_t{1} << bucket) - 1;
}

namespace {

void AtomicMin(std::atomic<int64_t>* slot, int64_t value) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (value < cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    SJ_BOUNDED_WORK;  // CAS retry; each failure means another thread won
  }
}

void AtomicMax(std::atomic<int64_t>* slot, int64_t value) {
  int64_t cur = slot->load(std::memory_order_relaxed);
  while (value > cur &&
         !slot->compare_exchange_weak(cur, value, std::memory_order_relaxed)) {
    SJ_BOUNDED_WORK;  // CAS retry; each failure means another thread won
  }
}

}  // namespace

int Counter::ShardIndex() {
  static std::atomic<uint32_t> next_slot{0};
  thread_local int slot = static_cast<int>(
      next_slot.fetch_add(1, std::memory_order_relaxed) %
      static_cast<uint32_t>(kShards));
  return slot;
}

void Histogram::Record(int64_t value) {
  buckets_[HistogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  int64_t n = count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  if (n == 0) {
    // First observation seeds min/max; racing recorders converge via the
    // CAS loops below.
    min_.store(value, std::memory_order_relaxed);
    max_.store(value, std::memory_order_relaxed);
  } else {
    AtomicMin(&min_, value);
    AtomicMax(&max_, value);
  }
}

int64_t Histogram::min() const {
  return count() == 0 ? 0 : min_.load(std::memory_order_relaxed);
}

int64_t Histogram::max() const {
  return count() == 0 ? 0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const {
  int64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

int64_t Histogram::QuantileUpperBound(double q) const {
  SJ_CHECK(q >= 0.0 && q <= 1.0);
  int64_t n = count();
  if (n == 0) return 0;
  // Rank of the q-quantile observation, 1-based.
  auto rank = static_cast<int64_t>(q * static_cast<double>(n - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += bucket_count(b);
    if (seen >= rank) return HistogramBucketUpper(b);
  }
  return max();
}

void Histogram::Reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
  min_.store(0, std::memory_order_relaxed);
  max_.store(0, std::memory_order_relaxed);
}

WindowedHistogram::WindowedHistogram(int num_slices, int64_t slice_ns)
    : num_slices_(num_slices),
      slice_ns_(slice_ns),
      slices_(std::make_unique<Slice[]>(static_cast<size_t>(num_slices))) {
  SJ_CHECK_GE(num_slices, 1);
  SJ_CHECK_GE(slice_ns, 1);
}

void WindowedHistogram::Record(int64_t value, int64_t now_ns) {
  const int64_t epoch = now_ns / slice_ns_;
  Slice& s = slices_[static_cast<size_t>(epoch % num_slices_)];
  int64_t cur = s.epoch.load(std::memory_order_acquire);
  if (cur != epoch) {
    if (cur == kResetting) return;  // mid-recycle; drop (bounded loss)
    if (s.epoch.compare_exchange_strong(cur, kResetting,
                                        std::memory_order_acq_rel)) {
      // We won the recycle: zero the slice, then publish the new epoch.
      // Racers see kResetting until the store below and drop, so stale
      // counts from `num_slices_` epochs ago never leak into the window.
      s.count.store(0, std::memory_order_relaxed);
      s.sum.store(0, std::memory_order_relaxed);
      for (auto& b : s.buckets) {
        SJ_BOUNDED_WORK;  // fixed bucket count
        b.store(0, std::memory_order_relaxed);
      }
      s.epoch.store(epoch, std::memory_order_release);
    } else if (s.epoch.load(std::memory_order_acquire) != epoch) {
      return;  // lost the race and the slice is still not ours; drop
    }
  }
  s.buckets[HistogramBucketOf(value)].fetch_add(1, std::memory_order_relaxed);
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(value, std::memory_order_relaxed);
}

WindowedHistogram::Snapshot WindowedHistogram::Snap(int64_t now_ns) const {
  Snapshot snap;
  snap.window_ns = window_ns();
  const int64_t now_epoch = now_ns / slice_ns_;
  const int64_t oldest = now_epoch - num_slices_ + 1;
  for (int i = 0; i < num_slices_; ++i) {
    SJ_BOUNDED_WORK;  // fixed slice count
    const Slice& s = slices_[static_cast<size_t>(i)];
    const int64_t epoch = s.epoch.load(std::memory_order_acquire);
    if (epoch < oldest || epoch > now_epoch) continue;
    snap.count += s.count.load(std::memory_order_relaxed);
    snap.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      SJ_BOUNDED_WORK;  // fixed bucket count
      snap.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return snap;
}

void WindowedHistogram::Reset() {
  for (int i = 0; i < num_slices_; ++i) {
    Slice& s = slices_[static_cast<size_t>(i)];
    s.epoch.store(kNeverUsed, std::memory_order_relaxed);
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

int64_t WindowedHistogram::Snapshot::QuantileUpperBound(double q) const {
  SJ_CHECK(q >= 0.0 && q <= 1.0);
  if (count == 0) return 0;
  auto rank = static_cast<int64_t>(q * static_cast<double>(count - 1)) + 1;
  int64_t seen = 0;
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    SJ_BOUNDED_WORK;  // fixed bucket count
    seen += buckets[b];
    if (seen >= rank) return HistogramBucketUpper(b);
  }
  return HistogramBucketUpper(Histogram::kBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Global() {
  // Leaked on purpose: instruments are read from atexit handlers.
  // sj-lint: allow(naked-new)
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(mu_);
  return GetOrCreateLocked(&counters_, name);
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(mu_);
  return GetOrCreateLocked(&gauges_, name);
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(mu_);
  return GetOrCreateLocked(&histograms_, name);
}

int64_t MetricsRegistry::CounterValue(const std::string& name) const {
  MutexLock lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second->Value();
}

std::map<std::string, int64_t> MetricsRegistry::CounterSnapshot() const {
  MutexLock lock(mu_);
  std::map<std::string, int64_t> snapshot;
  for (const auto& [name, c] : counters_) snapshot[name] = c->Value();
  return snapshot;
}

void MetricsRegistry::ResetAll() {
  MutexLock lock(mu_);
  for (auto& [name, c] : counters_) c->Reset();
  for (auto& [name, g] : gauges_) g->Reset();
  for (auto& [name, h] : histograms_) h->Reset();
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  MutexLock lock(mu_);
  JsonWriter w(os);
  w.BeginObject();
  w.Key("counters");
  w.BeginObject();
  for (const auto& [name, c] : counters_) w.KV(name, c->Value());
  w.EndObject();
  w.Key("gauges");
  w.BeginObject();
  for (const auto& [name, g] : gauges_) w.KV(name, g->Value());
  w.EndObject();
  w.Key("histograms");
  w.BeginObject();
  for (const auto& [name, h] : histograms_) {
    w.Key(name);
    w.BeginObject();
    w.KV("count", h->count());
    w.KV("sum", h->sum());
    w.KV("min", h->min());
    w.KV("max", h->max());
    w.KV("mean", h->mean());
    w.KV("p50", h->QuantileUpperBound(0.5));
    w.KV("p95", h->QuantileUpperBound(0.95));
    w.KV("p99", h->QuantileUpperBound(0.99));
    w.Key("buckets");
    w.BeginArray();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      if (h->bucket_count(b) == 0) continue;
      w.BeginObject();
      w.KV("le", HistogramBucketUpper(b));
      w.KV("count", h->bucket_count(b));
      w.EndObject();
    }
    w.EndArray();
    w.EndObject();
  }
  w.EndObject();
  w.EndObject();
  os << '\n';
}

std::string MetricsRegistry::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace spatialjoin
