#ifndef SPATIALJOIN_OBS_EVENT_LOG_H_
#define SPATIALJOIN_OBS_EVENT_LOG_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace spatialjoin {

/// Structured event log (DESIGN.md §10): a fixed-capacity lock-free ring
/// of typed records, always compiled in. Library code reports noteworthy
/// moments — a query admitted or finished, a fatal Status constructed, an
/// audit violation, a buffer-pool flush failure — through SJ_EVENT
/// instead of writing ad-hoc lines to stderr, so the last few thousand
/// events are always available to the flight recorder's post-mortem dump
/// (obs/flight_recorder.h) no matter how the process dies.
///
/// Concurrency: multi-producer. A writer claims a slot with one
/// fetch_add, fills the fields, and publishes by storing the record's
/// 1-based ticket last (release). Readers (the dump pipeline) accept a
/// slot only when the ticket matches the expected sequence number and the
/// message is NUL-terminated; a slot torn by a racing wrap is skipped,
/// never blocked on. All fields are plain memory — no allocation, no
/// locks — so the ring is safe to *read* from a fatal-signal handler.

/// What happened. Keep in sync with EventTypeName().
enum class EventType : uint8_t {
  /// Generic library diagnostic (the routed ex-stderr messages).
  kMessage = 0,
  kQueryAdmitted,
  kQueryPlanned,
  kQueryFinished,
  /// Storage-layer error surfaced by the buffer pool (failed flush,
  /// refused Clear, destructor write-back failure).
  kBufferPoolFault,
  /// Non-OK Status construction (error propagation began somewhere).
  kStatusError,
  /// An invariant auditor reported violations.
  kAuditFinding,
  /// Thread-pool scheduling anomaly (park with work pending, teardown
  /// with tasks outstanding).
  kPoolAnomaly,
  /// SJ_CHECK / SJ_CHECK_OK failure; the process is about to abort.
  kCheckFailure,
  /// Watchdog: an active heartbeat went stale.
  kWatchdogStall,
  /// Watchdog: a query ran past its deadline.
  kDeadlineExceeded,
  /// A flight dump was written (and why).
  kDump,
  /// A completed query entered the service slow-query ring (worst recent
  /// by latency or by cost residual); detail names the session, request
  /// id, and the offending measurement.
  kSlowQuery,
};

/// Stable lowercase name ("query_admitted", ...), for dumps and tools.
const char* EventTypeName(EventType type);

enum class EventSeverity : uint8_t {
  kInfo = 0,
  kWarn,
  kError,
  kFatal,
};

const char* EventSeverityName(EventSeverity severity);

/// One ring slot. `ticket` is the record's 1-based global sequence
/// number, stored last with release order: a reader that sees the ticket
/// it expects for a position knows the payload stores happened-before.
struct EventRecord {
  static constexpr size_t kMessageBytes = 104;

  std::atomic<uint64_t> ticket{0};
  std::atomic<int64_t> ts_ns{0};
  std::atomic<int32_t> tid{-1};
  std::atomic<uint8_t> type{0};
  std::atomic<uint8_t> severity{0};
  /// NUL-terminated rendered message (truncated to fit). Relaxed atomic
  /// chars: a reader racing a wrapping writer is then defined behavior
  /// (the ticket check rejects the torn payload), and the copy loop uses
  /// no library calls, so it is also safe in signal context.
  std::atomic<char> message[kMessageBytes];

  /// Copies the message into `out` (capacity >= kMessageBytes), stopping
  /// at the terminator. Returns false when no terminator was found — a
  /// torn slot the caller should skip. Async-signal-safe.
  SJ_SIGNAL_SAFE bool CopyMessageTo(char* out) const {
    for (size_t i = 0; i < kMessageBytes; ++i) {
      const char c = message[i].load(std::memory_order_relaxed);
      out[i] = c;
      if (c == '\0') return true;
    }
    return false;
  }
};

/// A reader-side copy of one record (plain values, safe to keep).
struct EventView {
  uint64_t seq = 0;
  int64_t ts_ns = 0;
  int tid = -1;
  EventType type = EventType::kMessage;
  EventSeverity severity = EventSeverity::kInfo;
  std::string message;
};

class EventLog {
 public:
  static constexpr size_t kDefaultCapacity = 4096;

  /// The process-wide log every SJ_EVENT feeds. Never destroyed.
  static EventLog& Global();

  explicit EventLog(size_t capacity);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Appends one record; `message` is copied (and truncated) into the
  /// slot. Lock-free, callable from any thread.
  void Record(EventType type, EventSeverity severity, const char* message);

  /// printf-style Record. The rendered message is truncated to
  /// EventRecord::kMessageBytes - 1 characters.
  void Recordf(EventType type, EventSeverity severity, const char* fmt, ...)
      __attribute__((format(printf, 4, 5)));

  /// The last min(total, capacity, max_records) records, oldest first.
  /// Torn slots (reader racing a wrapping writer) are skipped.
  std::vector<EventView> Tail(size_t max_records) const;

  /// Total records ever written (monotonic).
  SJ_SIGNAL_SAFE uint64_t total() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Records lost to wraparound.
  SJ_SIGNAL_SAFE uint64_t dropped() const;
  SJ_SIGNAL_SAFE size_t capacity() const { return capacity_; }

  /// Raw slot for absolute record index `i` (async-signal-safe dump path;
  /// the caller applies the ticket-match discipline itself).
  SJ_SIGNAL_SAFE const EventRecord& slot(uint64_t i) const {
    return slots_[static_cast<size_t>(i % capacity_)];
  }

  /// Records at or above this severity are echoed to stderr as they are
  /// recorded, so routing a library's stderr diagnostics through the log
  /// does not hide them from an operator's console. Default: kWarn.
  void SetStderrEchoSeverity(EventSeverity min_severity);

 private:
  const size_t capacity_;
  std::vector<EventRecord> slots_;
  std::atomic<uint64_t> head_{0};
  std::atomic<uint8_t> echo_severity_{
      static_cast<uint8_t>(EventSeverity::kWarn)};
};

/// SJ_EVENT(kQueryFinished, kInfo, "join %s: %lld matches", name, n):
/// records one structured event on the global log. Always compiled; cost
/// is one clock read, one fetch_add, and one vsnprintf.
#define SJ_EVENT(type, severity, ...)                       \
  ::spatialjoin::EventLog::Global().Recordf(                \
      ::spatialjoin::EventType::type,                       \
      ::spatialjoin::EventSeverity::severity, __VA_ARGS__)

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_EVENT_LOG_H_
