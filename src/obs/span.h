#ifndef SPATIALJOIN_OBS_SPAN_H_
#define SPATIALJOIN_OBS_SPAN_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace spatialjoin {

/// Timeline tracing (DESIGN.md §8): a lock-free per-thread ring buffer of
/// trace events, cheap enough to leave compiled into every build. Each
/// thread owns exactly one ring (created on its first event and never
/// freed), so the hot path is: one relaxed load of the global enable
/// flag, one TLS load, one clock read, five relaxed stores into the
/// thread's next slot, and one release store publishing the slot. There
/// is no allocation, no lock, and no cross-thread cache-line traffic per
/// event; `tests/span_test.cc` pins the per-event cost.
///
/// The exporter (`obs/trace_export.h`) merges the rings into a Chrome
/// trace-event / Perfetto-loadable JSON timeline, one track per thread.
/// It may run while other threads are still recording: every slot field
/// is a relaxed atomic, so a reader racing a wrapping writer observes a
/// torn but well-defined event, which the exporter's balancing pass
/// discards. Exact timelines therefore require quiescence (which is when
/// benches export); concurrent snapshots are merely approximate, never
/// undefined behavior.
///
/// Event names and categories must be pointers with static storage
/// duration (string literals, or tables like JoinStrategyName's): the
/// ring stores the pointer, not the characters.

/// One slot of a ring. Fields are relaxed atomics so that the exporter
/// can read while the owning thread overwrites on wraparound (see file
/// comment); within the owning thread the slot is published by the
/// ring's release store of `head`.
struct TraceEvent {
  /// 'B' span begin, 'E' span end, 'i' instant, 'C' counter sample.
  std::atomic<char> phase{0};
  std::atomic<const char*> name{nullptr};
  std::atomic<const char*> category{nullptr};
  /// steady_clock nanoseconds (same clock as obs/timer.h, so span
  /// timestamps and wall_ns metrics are directly comparable).
  std::atomic<int64_t> ts_ns{0};
  /// Counter value for 'C' events; 0 otherwise.
  std::atomic<int64_t> value{0};
};

/// A single thread's event ring. The owning thread is the only writer;
/// when full, the next event overwrites the oldest (dropping history, not
/// blocking or corrupting — the `dropped` count says how much).
class SpanRing {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit SpanRing(int tid, size_t capacity);

  SpanRing(const SpanRing&) = delete;
  SpanRing& operator=(const SpanRing&) = delete;

  /// Appends one event. Owning thread only.
  void Record(char phase, const char* name, const char* category,
              int64_t ts_ns, int64_t value);

  /// Total events ever recorded (monotonic; the ring holds the last
  /// `min(head, capacity)` of them).
  SJ_SIGNAL_SAFE uint64_t head() const {
    return head_.load(std::memory_order_acquire);
  }
  /// Events lost to wraparound so far.
  SJ_SIGNAL_SAFE uint64_t dropped() const;

  SJ_SIGNAL_SAFE size_t capacity() const { return capacity_; }
  SJ_SIGNAL_SAFE int tid() const { return tid_; }

  /// Slot for absolute event index `i` (caller ensures `i` is within the
  /// retained window [head - min(head, capacity), head)).
  SJ_SIGNAL_SAFE const TraceEvent& slot(uint64_t i) const {
    return slots_[static_cast<size_t>(i % capacity_)];
  }

  /// Rewinds the ring to empty. Quiescence-only (like the exporter, a
  /// racing writer is safe but its events may be lost or torn).
  void Reset();

  /// Display name of the owning thread ("main", "pool0.worker2", ...);
  /// empty until set. Guarded by Tracing's registry mutex.
  const std::string& thread_name() const { return thread_name_; }
  void set_thread_name(std::string name) { thread_name_ = std::move(name); }

 private:
  const int tid_;
  const size_t capacity_;
  std::vector<TraceEvent> slots_;
  std::atomic<uint64_t> head_{0};
  std::string thread_name_;
};

/// Process-wide control plane of the tracing layer: the enable flag, the
/// registry of per-thread rings, and the TLS fast path.
class Tracing {
 public:
  /// Globally enables/disables event recording. Disabled (the default)
  /// costs one relaxed atomic load per SJ_SPAN site.
  static void Enable(bool on);
  static bool enabled() {
    return enabled_flag_.load(std::memory_order_relaxed);
  }

  /// The calling thread's ring, created (and registered) on first use.
  /// The pointer stays valid for the process lifetime.
  static SpanRing* CurrentThreadRing();

  /// The calling thread's ring tid, or -1 if the thread never recorded a
  /// span (no ring is created). Lets the event log (obs/event_log.h)
  /// stamp records with the same thread ids the timeline tracks use,
  /// without forcing a ring allocation on never-traced threads.
  static int CurrentThreadTidOrNegative();

  /// Names the calling thread's track in exported timelines. Cheap to
  /// call before any event was recorded: the name is stashed in TLS and
  /// applied when the ring is created, so un-traced threads allocate
  /// nothing.
  static void SetThreadName(std::string_view name);

  /// Stable snapshot of all registered rings (rings are never removed).
  static std::vector<SpanRing*> Rings();

  /// Rings paired with their display names, read under the registry lock
  /// (thread_name() alone is only safe to read there). The flight
  /// recorder caches this at watchdog ticks so its signal handler never
  /// touches the lock or the std::string.
  static std::vector<std::pair<SpanRing*, std::string>> RingsWithNames();

  /// Rewinds every ring to empty, so the next export covers only what
  /// follows. Call at quiescence (between queries / at the start of a
  /// bench phase): a thread recording concurrently stays well-defined but
  /// may lose its in-flight events.
  static void Reset();

  /// Capacity for rings created after this call (existing rings keep
  /// theirs). Tests use tiny rings to exercise wraparound.
  static void SetDefaultRingCapacityForTesting(size_t capacity);

 private:
  static std::atomic<bool> enabled_flag_;
};

/// Records a counter sample on the calling thread's track; exported as a
/// Perfetto counter track (one series per name).
void TraceCounter(const char* name, int64_t value);

/// Records a zero-duration instant event.
void TraceInstant(const char* name, const char* category = nullptr);

/// Explicit begin/end, for spans whose extent does not match a C++ scope
/// (e.g. per-level spans across loop iterations). Every Begin must be
/// matched by an End on the same thread; the exporter repairs (drops or
/// closes) pairs broken by ring wraparound.
void TraceBegin(const char* name, const char* category = nullptr);
void TraceEnd(const char* name, const char* category = nullptr);

namespace span_detail {
/// Unconditional record on the calling thread's ring (no enabled check);
/// the public entry points and ScopedSpan gate on Tracing::enabled().
void Record(char phase, const char* name, const char* category,
            int64_t value);
}  // namespace span_detail

/// RAII span: records 'B' on construction and 'E' on destruction, on the
/// construction thread. Arms itself only if tracing was enabled at
/// construction (a single check), so an enable/disable flip mid-scope
/// cannot unbalance the ring.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name, const char* category = nullptr)
      : name_(Tracing::enabled() ? name : nullptr), category_(category) {
    if (name_ != nullptr) span_detail::Record('B', name_, category_, 0);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  ~ScopedSpan() {
    if (name_ != nullptr) span_detail::Record('E', name_, category_, 0);
  }

 private:
  const char* name_;
  const char* category_;
};

// Span of the enclosing scope; name/category must have static storage.
#define SJ_SPAN_CAT(name, category)                            \
  ::spatialjoin::ScopedSpan SJ_SPAN_CONCAT_(sj_scoped_span_,   \
                                            __LINE__)(name, category)
#define SJ_SPAN(name) SJ_SPAN_CAT(name, nullptr)
#define SJ_SPAN_CONCAT_(a, b) SJ_SPAN_CONCAT2_(a, b)
#define SJ_SPAN_CONCAT2_(a, b) a##b

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_SPAN_H_
