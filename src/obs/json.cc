#include "obs/json.h"

#include <cmath>
#include <cstdio>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

JsonWriter::JsonWriter(std::ostream& os, int indent)
    : os_(os), indent_(indent) {}

void JsonWriter::Indent() {
  os_ << '\n';
  for (size_t i = 0; i < stack_.size() * static_cast<size_t>(indent_); ++i) {
    SJ_BOUNDED_WORK;  // nesting-depth spaces
    os_ << ' ';
  }
}

void JsonWriter::Separate() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (stack_.empty()) return;
  if (has_element_.back()) os_ << ',';
  has_element_.back() = true;
  Indent();
}

void JsonWriter::BeginObject() {
  Separate();
  os_ << '{';
  stack_.push_back(Scope::kObject);
  has_element_.push_back(false);
}

void JsonWriter::EndObject() {
  SJ_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  bool had = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had) Indent();
  os_ << '}';
}

void JsonWriter::BeginArray() {
  Separate();
  os_ << '[';
  stack_.push_back(Scope::kArray);
  has_element_.push_back(false);
}

void JsonWriter::EndArray() {
  SJ_CHECK(!stack_.empty() && stack_.back() == Scope::kArray);
  bool had = has_element_.back();
  stack_.pop_back();
  has_element_.pop_back();
  if (had) Indent();
  os_ << ']';
}

void JsonWriter::Key(std::string_view key) {
  SJ_CHECK(!stack_.empty() && stack_.back() == Scope::kObject);
  SJ_CHECK(!after_key_);
  Separate();
  os_ << '"';
  WriteEscaped(key);
  os_ << "\": ";
  after_key_ = true;
}

void JsonWriter::String(std::string_view value) {
  Separate();
  os_ << '"';
  WriteEscaped(value);
  os_ << '"';
}

void JsonWriter::Int(int64_t value) {
  Separate();
  os_ << value;
}

void JsonWriter::Double(double value) {
  Separate();
  if (!std::isfinite(value)) {
    os_ << "null";
    return;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  os_ << buf;
}

void JsonWriter::Bool(bool value) {
  Separate();
  os_ << (value ? "true" : "false");
}

void JsonWriter::Null() {
  Separate();
  os_ << "null";
}

void JsonWriter::KV(std::string_view key, std::string_view value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(std::string_view key, const char* value) {
  Key(key);
  String(value);
}

void JsonWriter::KV(std::string_view key, int64_t value) {
  Key(key);
  Int(value);
}

void JsonWriter::KV(std::string_view key, double value) {
  Key(key);
  Double(value);
}

void JsonWriter::KV(std::string_view key, bool value) {
  Key(key);
  Bool(value);
}

void JsonWriter::Raw(std::string_view raw) {
  Separate();
  os_ << raw;
}

void JsonWriter::WriteEscaped(std::string_view s) {
  os_ << JsonEscape(s);
}

std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    SJ_BOUNDED_WORK;  // one pass over the input string
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace spatialjoin
