#include "obs/span.h"

#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/timer.h"

namespace spatialjoin {

namespace {

/// Ring registry. Rings are heap-allocated once per thread and
/// intentionally never freed (like ThreadPool::Shared): a ring may be
/// referenced by the exporter after its owning thread exited, and TLS
/// destruction order across translation units is otherwise a hazard. The
/// registry object itself leaks for the same reason; everything stays
/// reachable, so leak checkers are quiet.
struct Registry {
  Mutex mu;
  // Ring *registration* is guarded; each ring's slots are lock-free and
  // read by the exporter with the torn-slot discipline (trace_export.cc).
  std::vector<std::unique_ptr<SpanRing>> rings SJ_GUARDED_BY(mu);
  size_t default_capacity SJ_GUARDED_BY(mu) = SpanRing::kDefaultCapacity;
};

Registry& GlobalRegistry() {
  // Leaked on purpose: spans may be emitted during static destruction.
  // sj-lint: allow(naked-new)
  static Registry* registry = new Registry();
  return *registry;
}

thread_local SpanRing* tls_ring = nullptr;
// Thread name requested before the thread recorded its first event
// (applied at ring creation, so naming a never-traced thread is free).
thread_local char tls_pending_name[64] = {0};

}  // namespace

SpanRing::SpanRing(int tid, size_t capacity)
    : tid_(tid), capacity_(capacity == 0 ? 1 : capacity),
      slots_(capacity_) {}

void SpanRing::Record(char phase, const char* name, const char* category,
                      int64_t ts_ns, int64_t value) {
  const uint64_t i = head_.load(std::memory_order_relaxed);
  TraceEvent& slot = slots_[static_cast<size_t>(i % capacity_)];
  slot.phase.store(phase, std::memory_order_relaxed);
  slot.name.store(name, std::memory_order_relaxed);
  slot.category.store(category, std::memory_order_relaxed);
  slot.ts_ns.store(ts_ns, std::memory_order_relaxed);
  slot.value.store(value, std::memory_order_relaxed);
  head_.store(i + 1, std::memory_order_release);
}

SJ_SIGNAL_SAFE uint64_t SpanRing::dropped() const {
  const uint64_t h = head();
  return h > capacity_ ? h - capacity_ : 0;
}

void SpanRing::Reset() {
  for (TraceEvent& slot : slots_) {
    slot.phase.store(0, std::memory_order_relaxed);
  }
  head_.store(0, std::memory_order_release);
}

std::atomic<bool> Tracing::enabled_flag_{false};

void Tracing::Enable(bool on) {
  enabled_flag_.store(on, std::memory_order_relaxed);
}

SpanRing* Tracing::CurrentThreadRing() {
  SpanRing* ring = tls_ring;
  if (ring != nullptr) return ring;
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  auto owned = std::make_unique<SpanRing>(
      static_cast<int>(registry.rings.size()), registry.default_capacity);
  ring = owned.get();
  if (tls_pending_name[0] != '\0') {
    ring->set_thread_name(tls_pending_name);
  }
  registry.rings.push_back(std::move(owned));
  tls_ring = ring;
  return ring;
}

int Tracing::CurrentThreadTidOrNegative() {
  return tls_ring != nullptr ? tls_ring->tid() : -1;
}

void Tracing::SetThreadName(std::string_view name) {
  if (tls_ring != nullptr) {
    Registry& registry = GlobalRegistry();
    MutexLock lock(registry.mu);
    tls_ring->set_thread_name(std::string(name));
    return;
  }
  const size_t n = std::min(name.size(), sizeof(tls_pending_name) - 1);
  name.copy(tls_pending_name, n);
  tls_pending_name[n] = '\0';
}

std::vector<SpanRing*> Tracing::Rings() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  std::vector<SpanRing*> rings;
  rings.reserve(registry.rings.size());
  for (const auto& ring : registry.rings) rings.push_back(ring.get());
  return rings;
}

std::vector<std::pair<SpanRing*, std::string>> Tracing::RingsWithNames() {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  std::vector<std::pair<SpanRing*, std::string>> rings;
  rings.reserve(registry.rings.size());
  for (const auto& ring : registry.rings) {
    rings.emplace_back(ring.get(), ring->thread_name());
  }
  return rings;
}

void Tracing::Reset() {
  for (SpanRing* ring : Rings()) ring->Reset();
}

void Tracing::SetDefaultRingCapacityForTesting(size_t capacity) {
  Registry& registry = GlobalRegistry();
  MutexLock lock(registry.mu);
  registry.default_capacity = capacity == 0 ? 1 : capacity;
}

namespace span_detail {

void Record(char phase, const char* name, const char* category,
            int64_t value) {
  Tracing::CurrentThreadRing()->Record(phase, name, category,
                                       MonotonicNowNs(), value);
}

}  // namespace span_detail

void TraceCounter(const char* name, int64_t value) {
  if (!Tracing::enabled()) return;
  span_detail::Record('C', name, nullptr, value);
}

void TraceInstant(const char* name, const char* category) {
  if (!Tracing::enabled()) return;
  span_detail::Record('i', name, category, 0);
}

void TraceBegin(const char* name, const char* category) {
  if (!Tracing::enabled()) return;
  span_detail::Record('B', name, category, 0);
}

void TraceEnd(const char* name, const char* category) {
  if (!Tracing::enabled()) return;
  span_detail::Record('E', name, category, 0);
}

}  // namespace spatialjoin
