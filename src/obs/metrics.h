#ifndef SPATIALJOIN_OBS_METRICS_H_
#define SPATIALJOIN_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "common/analysis_annotations.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace spatialjoin {

/// Process-wide metrics for the spatial-join engine.
///
/// The paper prices every strategy in two currencies — page accesses and
/// Θ/θ evaluations — so the engine's layers emit exactly those events
/// here, in addition to their existing per-instance stat structs
/// (`IoStats`, `BufferPoolStats`, …), which remain the per-object views.
/// The registry is the cross-cutting aggregate that benches serialize to
/// `*.metrics.json` and that `QueryTrace` samples to attribute storage
/// traffic to query levels.
///
/// Naming convention (dot-separated, lowercase):
///   storage.disk.page_reads / page_writes / pages_allocated
///   storage.buffer_pool.hits / misses / evictions
///   storage.heap_file.inserts / reads / deletes
///   query.join.count / matches, query.join.strategy.<name>
///   query.select.count / matches
///   planner.plans / sample_theta_tests, planner.chosen.<strategy>
/// Histograms: query.join.wall_ns, query.select.wall_ns.
///
/// Thread-safety: increments are relaxed atomics (lock-free); counters
/// additionally shard their cells per thread so the exec layer's workers
/// do not contend on one cache line. Name → instrument registration takes
/// a mutex once per call site (call sites cache the returned pointer,
/// which stays valid for the process lifetime — `ResetAll()` zeroes
/// values but never unregisters).

/// Monotonic event count. Increments land in a per-thread cell (threads
/// are assigned cells round-robin; each cell occupies its own cache
/// line), and `Value()` merges the cells. A merge that races with
/// increments sees some prefix of them — exact totals require quiescence,
/// which is when benches and snapshots read.
class Counter {
 public:
  /// Cells per counter; more threads than this share cells (still
  /// correct, just contended).
  static constexpr int kShards = 16;

  void Increment(int64_t delta = 1) {
    cells_[ShardIndex()].value.fetch_add(delta, std::memory_order_relaxed);
  }
  int64_t Value() const {
    int64_t total = 0;
    for (const Cell& cell : cells_) {
      SJ_BOUNDED_WORK;  // kShards cells
      total += cell.value.load(std::memory_order_relaxed);
    }
    return total;
  }
  void Reset() {
    for (Cell& cell : cells_) {
      cell.value.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct alignas(64) Cell {
    std::atomic<int64_t> value{0};
  };

  /// The calling thread's cell index (assigned once per thread,
  /// process-wide, so a thread uses the same cell in every counter).
  static int ShardIndex();

  Cell cells_[kShards];
};

/// Last-write-wins instantaneous value (e.g. a pool's resident pages).
class Gauge {
 public:
  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double Value() const { return value_.load(std::memory_order_relaxed); }
  void Reset() { value_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Log2 bucket geometry shared by Histogram and WindowedHistogram:
/// bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 holds values <= 0.
int HistogramBucketOf(int64_t value);
int64_t HistogramBucketUpper(int bucket);

/// Log-scale (power-of-two bucket) histogram for latencies and sizes.
/// Bucket b >= 1 covers [2^(b-1), 2^b - 1]; bucket 0 holds values <= 0.
/// Quantiles are estimated as the upper bound of the covering bucket, so
/// they are exact to within a factor of 2 — the right resolution for the
/// orders-of-magnitude comparisons the cost model makes.
class Histogram {
 public:
  static constexpr int kBuckets = 64;

  void Record(int64_t value);

  int64_t count() const { return count_.load(std::memory_order_relaxed); }
  int64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  int64_t min() const;
  int64_t max() const;
  double mean() const;
  int64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }

  /// Upper bound of the bucket containing the q-quantile (0 <= q <= 1);
  /// 0 when empty.
  int64_t QuantileUpperBound(double q) const;

  void Reset();

 private:
  std::atomic<int64_t> buckets_[kBuckets]{};
  std::atomic<int64_t> count_{0};
  std::atomic<int64_t> sum_{0};
  std::atomic<int64_t> min_{0};
  std::atomic<int64_t> max_{0};
};

/// Rolling time-windowed log2 histogram: the same bucket geometry as
/// Histogram, but observations age out after `num_slices * slice_ns`.
/// The service layer uses these for live p50/p99 over the last few
/// seconds — a cumulative Histogram would let the first minute of a
/// server's life dominate its quantiles forever.
///
/// Implementation: a ring of time slices, each a full bucket array plus
/// an epoch tag (`now_ns / slice_ns`). A recorder landing on a slice
/// whose epoch is stale claims it via CAS to a "resetting" sentinel,
/// zeroes it, and publishes the new epoch; racers that catch a slice
/// mid-recycle drop their observation (bounded loss: a handful of
/// observations per slice turnover, never a stale count bleeding into
/// the window). `Record` takes the timestamp explicitly so tests drive
/// the clock deterministically.
///
/// Deliberately NOT a MetricsRegistry instrument: windowed quantiles
/// are live-introspection data (STATS), and keeping them out of the
/// registry keeps bench `*.metrics.json` artifacts byte-stable.
class WindowedHistogram {
 public:
  /// Merged view of the slices still inside the window at snapshot time.
  struct Snapshot {
    int64_t count = 0;
    int64_t sum = 0;
    int64_t window_ns = 0;  ///< nominal window span (slices * slice_ns)
    int64_t buckets[Histogram::kBuckets] = {};

    /// Same estimator as Histogram::QuantileUpperBound; 0 when empty.
    int64_t QuantileUpperBound(double q) const;
    double mean() const {
      return count == 0 ? 0.0
                        : static_cast<double>(sum) / static_cast<double>(count);
    }
  };

  WindowedHistogram(int num_slices, int64_t slice_ns);

  void Record(int64_t value, int64_t now_ns);
  Snapshot Snap(int64_t now_ns) const;
  void Reset();

  int64_t window_ns() const { return num_slices_ * slice_ns_; }

 private:
  struct alignas(64) Slice {
    /// Epoch this slice's counts belong to; kNeverUsed when untouched,
    /// kResetting while a recycler is zeroing it.
    std::atomic<int64_t> epoch{-1};
    std::atomic<int64_t> count{0};
    std::atomic<int64_t> sum{0};
    std::atomic<int64_t> buckets[Histogram::kBuckets]{};
  };
  static constexpr int64_t kNeverUsed = -1;
  static constexpr int64_t kResetting = -2;

  const int num_slices_;
  const int64_t slice_ns_;
  std::unique_ptr<Slice[]> slices_;
};

/// Named instrument registry; see the file comment for the conventions.
class MetricsRegistry {
 public:
  /// The process-wide registry every engine layer emits into.
  static MetricsRegistry& Global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Get-or-create; the pointer stays valid for the registry's lifetime.
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Current value of a counter, 0 if it was never registered (reads do
  /// not create instruments).
  int64_t CounterValue(const std::string& name) const;

  /// Name → value snapshot of every registered counter (one lock for the
  /// name map, lock-free merges for the values). The flight recorder's
  /// watchdog diffs successive snapshots into the dump's `metrics.deltas`
  /// section, so a post-mortem shows what the engine was *doing* in its
  /// last few hundred milliseconds, not just cumulative totals.
  std::map<std::string, int64_t> CounterSnapshot() const;

  /// Zeroes every instrument (registrations survive; cached pointers stay
  /// valid). Tests and benches use this to start measurements clean.
  void ResetAll();

  /// Serializes all instruments as one JSON object:
  ///   {"counters": {...}, "gauges": {...}, "histograms": {...}}
  /// Instruments appear in name order (std::map), so output is
  /// deterministic for a given set of registrations.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  // Get-or-create under mu_, shared by the three public getters. The
  // returned pointer outlives the lock by design: instruments are
  // internally atomic and never unregistered (see the class comment).
  template <typename Instrument>
  Instrument* GetOrCreateLocked(
      std::map<std::string, std::unique_ptr<Instrument>>* instruments,
      const std::string& name) SJ_REQUIRES(mu_) {
    auto& slot = (*instruments)[name];
    if (!slot) slot = std::make_unique<Instrument>();
    return slot.get();
  }

  // mu_ guards the name → instrument maps (registration and iteration).
  // The instruments themselves are lock-free; values read while threads
  // are still incrementing are prefix-consistent, not exact.
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      SJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ SJ_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      SJ_GUARDED_BY(mu_);
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_METRICS_H_
