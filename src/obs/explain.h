#ifndef SPATIALJOIN_OBS_EXPLAIN_H_
#define SPATIALJOIN_OBS_EXPLAIN_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "core/planner.h"
#include "core/spatial_join.h"
#include "costmodel/distributions.h"
#include "costmodel/parameters.h"
#include "obs/trace.h"
#include "storage/buffer_pool.h"
#include "storage/io_stats.h"

namespace spatialjoin {

/// EXPLAIN ANALYZE for spatial joins: the paper's analytical cost model
/// (Yao-formula page accesses, expected Θ/θ evaluations under a matching
/// distribution) rendered side by side with what an executed query
/// actually did, per metric, with the residual ratio measured/predicted.
/// This turns the repo's "empirical engine validates the analytical
/// model" claim into an inspectable per-query artifact.

/// Measured totals of one executed join, collected by differencing the
/// storage stat structs around the execution.
struct MeasuredJoin {
  int64_t theta_tests = 0;
  int64_t theta_upper_tests = 0;
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  int64_t matches = 0;
  double wall_ns = 0.0;
};

/// Convenience assembly from the engine's existing stat views: the join's
/// own counters, the disk I/O delta, the pool delta, and the wall clock
/// (typically QueryTrace::wall_ns(), stamped by ExecuteJoin).
MeasuredJoin MeasureJoin(const JoinResult& result, const IoStats& io_delta,
                         const BufferPoolStats& pool_delta, double wall_ns);

/// One predicted-vs-measured line of the report.
struct ExplainRow {
  std::string name;
  double predicted = 0.0;
  double measured = 0.0;
  /// measured / predicted; 1.0 when both are 0, +inf when only the
  /// prediction is 0. On any workload where the model predicts nonzero
  /// cost (every real workload), the ratio is finite.
  double residual = 0.0;
};

/// The report: strategy, model instantiation, rows, and context.
struct ExplainReport {
  /// What actually ran.
  JoinStrategy executed = JoinStrategy::kNestedLoop;
  /// What the planner would pick for these statistics.
  JoinStrategy planned = JoinStrategy::kNestedLoop;
  MatchDistribution distribution = MatchDistribution::kUniform;
  ModelParameters params;
  std::vector<ExplainRow> rows;
  double wall_ns = 0.0;
  double pool_hit_rate = 0.0;
  int64_t matches = 0;
  /// The full plan ranking, for the rendered report.
  JoinPlan plan;
  /// Copied per-level trace records (empty when no trace was supplied).
  std::vector<TraceLevel> trace_levels;
  bool has_trace = false;

  /// Row by name ("theta_evaluations", "page_accesses", "total_cost");
  /// nullptr if absent.
  const ExplainRow* Find(std::string_view name) const;

  /// Human-readable rendering (fixed-width table plus the plan ranking
  /// and, when a trace was supplied, one line per traversal level).
  std::string ToString() const;

  /// JSON rendering; embeds the trace when one was supplied.
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;
};

/// Builds the report. `executed` names the strategy that actually ran
/// (it may differ from plan.strategy — the report records both).
/// `params`/`dist` instantiate the predicted side; use
/// FitModelParameters(stats) to map the observed workload onto the
/// model's balanced tree. `clustered` selects the IIb (clustered) vs IIa
/// (unclustered) page-access prediction for the tree strategies; the
/// engine's benches store relations clustered, so it defaults true.
/// `trace`, when given, is embedded in the JSON/text renderings.
ExplainReport ExplainAnalyzeJoin(JoinStrategy executed, const JoinPlan& plan,
                                 const ModelParameters& params,
                                 MatchDistribution dist,
                                 const MeasuredJoin& measured,
                                 const QueryTrace* trace = nullptr,
                                 bool clustered = true);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_EXPLAIN_H_
