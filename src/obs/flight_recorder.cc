#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <sstream>
#include <thread>
#include <utility>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "obs/process_info.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

namespace {

// ---------------------------------------------------------------------------
// Recorder configuration (written by Install, read everywhere — including
// the signal handler, so everything is an atomic or written-before-arming).
// ---------------------------------------------------------------------------

constexpr size_t kDumpPathBytes = 512;

// Written by Install() before the handlers are armed (and at static init
// from SJ_FLIGHT_DUMP); read by open() in the dump path.
char g_dump_path[kDumpPathBytes] = "sj.flightdump.json";

std::atomic<bool> g_installed{false};
std::atomic<bool> g_signals_installed{false};
std::atomic<int64_t> g_stall_budget_ns{int64_t{10} * 1000 * 1000 * 1000};
std::atomic<int64_t> g_watchdog_interval_ms{100};
std::atomic<int64_t> g_max_events{1024};
std::atomic<int64_t> g_max_spans_per_thread{2048};

std::atomic<int64_t> g_dumps_written{0};
// Left set after a fatal dump on purpose: the check-failure path aborts
// right after dumping, and the SIGABRT handler must not dump again.
std::atomic<bool> g_dump_in_progress{false};

// The global event log, cached at static init so the signal handler never
// runs the function-local-static initialization protocol.
std::atomic<EventLog*> g_event_log{nullptr};

// ---------------------------------------------------------------------------
// Pre-serialized buffers (seqlock). The structures behind ProcessInfoJson
// and MetricsRegistry::ToJson allocate and take locks, so the crash path
// cannot touch them. Instead the watchdog (and every non-signal dump)
// re-serializes them into these fixed buffers; the signal handler copies
// a buffer out only when the sequence count is stable-and-even. Bytes are
// relaxed atomics so the racing copy is defined behavior.
// ---------------------------------------------------------------------------

struct PreBuf {
  std::atomic<uint32_t> seq{0};  // odd while a writer is mid-update
  std::atomic<uint32_t> len{0};  // 0 = never written / did not fit
  std::atomic<char>* const data;
  const uint32_t cap;

  PreBuf(std::atomic<char>* d, uint32_t c) : data(d), cap(c) {}
};

constexpr uint32_t kProcessBufBytes = 4 * 1024;
constexpr uint32_t kMetricsBufBytes = 192 * 1024;
constexpr uint32_t kDeltaBufBytes = 16 * 1024;
constexpr int kDeltaSlots = 8;

std::atomic<char> g_process_bytes[kProcessBufBytes];
std::atomic<char> g_metrics_bytes[kMetricsBufBytes];
std::atomic<char> g_delta_bytes[kDeltaSlots][kDeltaBufBytes];

PreBuf g_process_buf(g_process_bytes, kProcessBufBytes);
PreBuf g_metrics_buf(g_metrics_bytes, kMetricsBufBytes);
PreBuf g_delta_bufs[kDeltaSlots] = {
    {g_delta_bytes[0], kDeltaBufBytes}, {g_delta_bytes[1], kDeltaBufBytes},
    {g_delta_bytes[2], kDeltaBufBytes}, {g_delta_bytes[3], kDeltaBufBytes},
    {g_delta_bytes[4], kDeltaBufBytes}, {g_delta_bytes[5], kDeltaBufBytes},
    {g_delta_bytes[6], kDeltaBufBytes}, {g_delta_bytes[7], kDeltaBufBytes},
};
std::atomic<uint64_t> g_delta_head{0};
std::atomic<int64_t> g_metrics_snapshot_ts_ns{0};

// Query-service snapshot (slow-query rings + totals), provided by
// server/telemetry.cc when a service is running in this process. Sized
// for kSlowRing * 2 + recent records with room to spare.
constexpr uint32_t kServiceBufBytes = 64 * 1024;
std::atomic<char> g_service_bytes[kServiceBufBytes];
PreBuf g_service_buf(g_service_bytes, kServiceBufBytes);
std::atomic<std::string (*)()> g_service_provider{nullptr};

// Serializes all pre-serialization writers (watchdog tick, Install,
// explicit dumps); the check-failure path only TryLocks it, so a crash
// while the watchdog is mid-refresh degrades to slightly stale buffers
// instead of deadlocking.
Mutex g_refresh_mu;

void StorePreBuf(PreBuf& buf, const std::string& s) {
  buf.seq.fetch_add(1, std::memory_order_acq_rel);  // now odd
  uint32_t n = 0;
  if (s.size() < buf.cap) {
    n = static_cast<uint32_t>(s.size());
    for (uint32_t i = 0; i < n; ++i) {
      buf.data[i].store(s[i], std::memory_order_relaxed);
    }
  }
  buf.len.store(n, std::memory_order_relaxed);
  buf.seq.fetch_add(1, std::memory_order_release);  // even again
}

// Copies a stable snapshot of `buf` into `out` (capacity `out_cap`).
// Returns the copied length, or 0 when the buffer is absent or a writer
// kept it unstable across the retries (caller emits null). Signal-safe.
SJ_SIGNAL_SAFE uint32_t LoadPreBuf(const PreBuf& buf, char* out,
                                   uint32_t out_cap) {
  for (int attempt = 0; attempt < 4; ++attempt) {
    const uint32_t seq_before = buf.seq.load(std::memory_order_acquire);
    if ((seq_before & 1) != 0) continue;
    const uint32_t n = buf.len.load(std::memory_order_relaxed);
    if (n == 0 || n > out_cap) return 0;
    for (uint32_t i = 0; i < n; ++i) {
      out[i] = buf.data[i].load(std::memory_order_relaxed);
    }
    if (buf.seq.load(std::memory_order_acquire) == seq_before) return n;
  }
  return 0;
}

// Scratch for splicing pre-serialized buffers into a dump. Only touched
// with g_dump_in_progress held, so one static buffer suffices.
char g_dump_scratch[kMetricsBufBytes];

// ---------------------------------------------------------------------------
// Cached span-ring directory. Tracing::Rings() takes the registry mutex
// and thread_name() is a std::string, so the crash path reads this cache
// instead: ring pointers stay valid forever (rings intentionally leak),
// and names are fixed atomic-char arrays refreshed with the seqlock pass.
// ---------------------------------------------------------------------------

constexpr int kMaxCachedRings = 256;
constexpr size_t kRingNameBytes = 48;

std::atomic<SpanRing*> g_rings[kMaxCachedRings];
std::atomic<char> g_ring_names[kMaxCachedRings][kRingNameBytes];
std::atomic<int> g_ring_count{0};

// ---------------------------------------------------------------------------
// Activity table: one slot per live ActivityScope. All atomics; `kind`
// doubles as the occupancy flag and is stored (release) only after every
// other field of a new registration, so any reader that observes a
// non-null kind observes matching fields.
// ---------------------------------------------------------------------------

constexpr int kMaxActivitySlots = 256;
constexpr size_t kDetailBytes = 48;

struct ActivitySlot {
  std::atomic<bool> claimed{false};
  std::atomic<const char*> kind{nullptr};
  std::atomic<const char*> label{nullptr};
  std::atomic<uint64_t> generation{0};
  // Generation already reported by the watchdog, so one incident produces
  // one event + dump instead of one per tick.
  std::atomic<uint64_t> flagged_generation{0};
  std::atomic<int64_t> start_ns{0};
  std::atomic<int64_t> last_beat_ns{0};
  std::atomic<int64_t> deadline_ns{0};
  std::atomic<int32_t> tid{-1};
  std::atomic<bool> idle{false};
  std::atomic<char> detail[kDetailBytes];
};

ActivitySlot g_activities[kMaxActivitySlots];

thread_local ActivityScope* tls_scope = nullptr;

// ---------------------------------------------------------------------------
// Async-signal-safe formatting: a buffered fd writer with hand-rolled
// integer and JSON-string rendering. Nothing here allocates, locks, or
// calls stdio.
// ---------------------------------------------------------------------------

SJ_SIGNAL_SAFE size_t SafeStrlen(const char* s) {
  size_t n = 0;
  while (s[n] != '\0') ++n;
  return n;
}

class FdWriter {
 public:
  SJ_SIGNAL_SAFE explicit FdWriter(int fd) : fd_(fd) {}
  SJ_SIGNAL_SAFE ~FdWriter() { Flush(); }

  SJ_SIGNAL_SAFE void Write(const char* s, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      if (used_ == sizeof(buf_)) Flush();
      buf_[used_++] = s[i];
    }
  }
  SJ_SIGNAL_SAFE void Text(const char* s) { Write(s, SafeStrlen(s)); }

  SJ_SIGNAL_SAFE void Int(int64_t v) {
    char tmp[24];
    Write(tmp, FormatInt(v, tmp));
  }
  SJ_SIGNAL_SAFE void Uint(uint64_t v) {
    char tmp[24];
    Write(tmp, FormatUint(v, tmp));
  }

  /// Writes `s` as a quoted JSON string, reading at most `max_bytes`
  /// characters (stops at NUL). nullptr renders as "".
  SJ_SIGNAL_SAFE void Quoted(const char* s, size_t max_bytes) {
    Put('"');
    if (s != nullptr) {
      for (size_t i = 0; i < max_bytes && s[i] != '\0'; ++i) Escaped(s[i]);
    }
    Put('"');
  }

  /// Quoted(), but over an atomic-char buffer (activity details, cached
  /// ring names).
  SJ_SIGNAL_SAFE void QuotedAtomic(const std::atomic<char>* s,
                                   size_t max_bytes) {
    Put('"');
    for (size_t i = 0; i < max_bytes; ++i) {
      const char c = s[i].load(std::memory_order_relaxed);
      if (c == '\0') break;
      Escaped(c);
    }
    Put('"');
  }

  SJ_SIGNAL_SAFE void Flush() {
    size_t off = 0;
    while (off < used_) {
      const ssize_t n = write(fd_, buf_ + off, used_ - off);
      if (n < 0) {
        if (errno == EINTR) continue;
        ok_ = false;
        break;
      }
      off += static_cast<size_t>(n);
    }
    used_ = 0;
  }

  bool ok() const { return ok_; }

  SJ_SIGNAL_SAFE static size_t FormatUint(uint64_t v, char* out) {
    char tmp[24];
    size_t n = 0;
    do {
      tmp[n++] = static_cast<char>('0' + v % 10);
      v /= 10;
    } while (v != 0);
    for (size_t i = 0; i < n; ++i) out[i] = tmp[n - 1 - i];
    return n;
  }

  SJ_SIGNAL_SAFE static size_t FormatInt(int64_t v, char* out) {
    if (v >= 0) return FormatUint(static_cast<uint64_t>(v), out);
    out[0] = '-';
    // Negating INT64_MIN overflows int64_t; go through uint64_t.
    return 1 + FormatUint(~static_cast<uint64_t>(v) + 1, out + 1);
  }

 private:
  SJ_SIGNAL_SAFE void Put(char c) {
    if (used_ == sizeof(buf_)) Flush();
    buf_[used_++] = c;
  }

  SJ_SIGNAL_SAFE void Escaped(char c) {
    static const char kHex[] = "0123456789abcdef";
    if (c == '"' || c == '\\') {
      Put('\\');
      Put(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      Put('\\');
      Put('u');
      Put('0');
      Put('0');
      Put(kHex[(c >> 4) & 0xF]);
      Put(kHex[c & 0xF]);
    } else {
      Put(c);
    }
  }

  int fd_;
  bool ok_ = true;
  size_t used_ = 0;
  char buf_[4096];
};

// ---------------------------------------------------------------------------
// Pre-serialization (normal context only).
// ---------------------------------------------------------------------------

void RefreshLocked() SJ_REQUIRES(g_refresh_mu) {
  StorePreBuf(g_process_buf, ProcessInfoJson());

  MetricsRegistry& registry = MetricsRegistry::Global();
  StorePreBuf(g_metrics_buf, registry.ToJson());
  const int64_t now = MonotonicNowNs();
  g_metrics_snapshot_ts_ns.store(now, std::memory_order_relaxed);

  // Counter delta since the previous refresh: the dump's "what was the
  // engine doing just before it died" section. Leaked so a watchdog tick
  // racing static destruction stays safe.
  // sj-lint: allow(naked-new)
  static auto* previous = new std::map<std::string, int64_t>();
  std::map<std::string, int64_t> current = registry.CounterSnapshot();
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.KV("ts_ns", now);
  w.Key("changed");
  w.BeginObject();
  int changed = 0;
  for (const auto& [name, value] : current) {
    auto it = previous->find(name);
    const int64_t before = it == previous->end() ? 0 : it->second;
    if (value != before) {
      w.KV(name, value - before);
      ++changed;
    }
  }
  w.EndObject();
  w.EndObject();
  *previous = std::move(current);
  if (changed > 0) {
    const uint64_t head = g_delta_head.load(std::memory_order_relaxed);
    StorePreBuf(g_delta_bufs[head % kDeltaSlots], os.str());
    g_delta_head.store(head + 1, std::memory_order_release);
  }

  // Query-service section, when a server registered a provider. Runs in
  // normal context only (the provider allocates and locks); the signal
  // path sees whatever this tick pre-serialized.
  if (auto* provider = g_service_provider.load(std::memory_order_acquire)) {
    StorePreBuf(g_service_buf, provider());
  }

  // Span-ring directory.
  const auto rings = Tracing::RingsWithNames();
  const int n = rings.size() < static_cast<size_t>(kMaxCachedRings)
                    ? static_cast<int>(rings.size())
                    : kMaxCachedRings;
  for (int i = 0; i < n; ++i) {
    g_rings[i].store(rings[i].first, std::memory_order_relaxed);
    const std::string& name = rings[i].second;
    const size_t len =
        name.size() < kRingNameBytes - 1 ? name.size() : kRingNameBytes - 1;
    for (size_t j = 0; j < len; ++j) {
      g_ring_names[i][j].store(name[j], std::memory_order_relaxed);
    }
    g_ring_names[i][len].store('\0', std::memory_order_relaxed);
  }
  g_ring_count.store(n, std::memory_order_release);
}

// Best-effort refresh for the check-failure path: never blocks, so a
// crash while another thread holds the refresh lock (e.g. mid-watchdog
// tick) dumps with the previous tick's buffers instead of hanging the
// abort.
void TryRefresh() {
  if (!g_refresh_mu.TryLock()) return;
  RefreshLocked();
  g_refresh_mu.Unlock();
}

// ---------------------------------------------------------------------------
// The dump serializer. One writer for every trigger, so there is exactly
// one schema (tools/sj_inspect validates it). Everything below is
// async-signal-safe: atomics, the seqlock copies, and FdWriter.
// ---------------------------------------------------------------------------

SJ_SIGNAL_SAFE void WritePreBufOrNull(FdWriter& w, const PreBuf& buf) {
  const uint32_t n = LoadPreBuf(buf, g_dump_scratch, sizeof(g_dump_scratch));
  if (n == 0) {
    w.Text("null");
    return;
  }
  // The buffer holds a complete JSON document (possibly with a trailing
  // newline); splice it verbatim.
  size_t end = n;
  while (end > 0 &&
         (g_dump_scratch[end - 1] == '\n' || g_dump_scratch[end - 1] == ' ')) {
    --end;
  }
  w.Write(g_dump_scratch, end);
}

SJ_SIGNAL_SAFE void WriteEventsSection(FdWriter& w) {
  w.Text("\"events\": {");
  EventLog* log = g_event_log.load(std::memory_order_acquire);
  if (log == nullptr) {
    w.Text("\"capacity\": 0, \"total\": 0, \"dropped\": 0, \"records\": []}");
    return;
  }
  const uint64_t total = log->total();
  uint64_t window = total < log->capacity() ? total : log->capacity();
  const auto max_events =
      static_cast<uint64_t>(g_max_events.load(std::memory_order_relaxed));
  if (window > max_events) window = max_events;

  w.Text("\"capacity\": ");
  w.Uint(log->capacity());
  w.Text(", \"total\": ");
  w.Uint(total);
  w.Text(", \"dropped\": ");
  w.Uint(log->dropped());
  w.Text(", \"records\": [");
  bool first = true;
  for (uint64_t i = total - window; i < total; ++i) {
    const EventRecord& slot = log->slot(i);
    const uint64_t ticket = slot.ticket.load(std::memory_order_acquire);
    if (ticket != i + 1) continue;  // torn by a racing writer — skip
    char message[EventRecord::kMessageBytes];
    if (!slot.CopyMessageTo(message)) continue;
    if (!first) w.Text(",");
    first = false;
    w.Text("\n  {\"seq\": ");
    w.Uint(ticket);
    w.Text(", \"ts_ns\": ");
    w.Int(slot.ts_ns.load(std::memory_order_relaxed));
    w.Text(", \"tid\": ");
    w.Int(slot.tid.load(std::memory_order_relaxed));
    w.Text(", \"type\": ");
    w.Quoted(EventTypeName(static_cast<EventType>(
                 slot.type.load(std::memory_order_relaxed))),
             32);
    w.Text(", \"severity\": ");
    w.Quoted(EventSeverityName(static_cast<EventSeverity>(
                 slot.severity.load(std::memory_order_relaxed))),
             16);
    w.Text(", \"message\": ");
    w.Quoted(message, sizeof(message));
    w.Text("}");
  }
  w.Text("\n]}");
}

SJ_SIGNAL_SAFE void WriteActivitiesSection(FdWriter& w, int64_t now_ns) {
  w.Text("\"activities\": [");
  bool first = true;
  for (int i = 0; i < kMaxActivitySlots; ++i) {
    const ActivitySlot& slot = g_activities[i];
    const char* kind = slot.kind.load(std::memory_order_acquire);
    if (kind == nullptr) continue;
    const char* label = slot.label.load(std::memory_order_relaxed);
    const int64_t start = slot.start_ns.load(std::memory_order_relaxed);
    if (!first) w.Text(",");
    first = false;
    w.Text("\n  {\"slot\": ");
    w.Int(i);
    w.Text(", \"kind\": ");
    w.Quoted(kind, 64);
    w.Text(", \"label\": ");
    w.Quoted(label, 64);
    w.Text(", \"detail\": ");
    w.QuotedAtomic(slot.detail, kDetailBytes);
    w.Text(", \"tid\": ");
    w.Int(slot.tid.load(std::memory_order_relaxed));
    w.Text(", \"idle\": ");
    w.Text(slot.idle.load(std::memory_order_relaxed) ? "true" : "false");
    w.Text(", \"start_ns\": ");
    w.Int(start);
    w.Text(", \"age_ns\": ");
    w.Int(now_ns - start);
    w.Text(", \"last_beat_ns\": ");
    w.Int(slot.last_beat_ns.load(std::memory_order_relaxed));
    w.Text(", \"deadline_ns\": ");
    w.Int(slot.deadline_ns.load(std::memory_order_relaxed));
    w.Text("}");
  }
  w.Text("\n]");
}

SJ_SIGNAL_SAFE void WriteSpansSection(FdWriter& w) {
  // "repaired" tells sj_inspect these are raw ring contents: Begin/End
  // pairs broken by wraparound are present, unlike trace_export's output.
  w.Text("\"spans\": {\"repaired\": false, \"threads\": [");
  const int ring_count = g_ring_count.load(std::memory_order_acquire);
  const auto max_spans = static_cast<uint64_t>(
      g_max_spans_per_thread.load(std::memory_order_relaxed));
  bool first_ring = true;
  for (int r = 0; r < ring_count; ++r) {
    const SpanRing* ring = g_rings[r].load(std::memory_order_relaxed);
    if (ring == nullptr) continue;
    if (!first_ring) w.Text(",");
    first_ring = false;
    const uint64_t head = ring->head();
    uint64_t window = head < ring->capacity() ? head : ring->capacity();
    if (window > max_spans) window = max_spans;
    w.Text("\n  {\"tid\": ");
    w.Int(ring->tid());
    w.Text(", \"name\": ");
    w.QuotedAtomic(g_ring_names[r], kRingNameBytes);
    w.Text(", \"total\": ");
    w.Uint(head);
    w.Text(", \"dropped\": ");
    w.Uint(ring->dropped());
    w.Text(", \"events\": [");
    bool first_event = true;
    for (uint64_t i = head - window; i < head; ++i) {
      const TraceEvent& e = ring->slot(i);
      const char phase = e.phase.load(std::memory_order_relaxed);
      if (phase != 'B' && phase != 'E' && phase != 'i' && phase != 'C') {
        continue;  // torn or never-written slot
      }
      const char* name = e.name.load(std::memory_order_relaxed);
      if (name == nullptr) continue;
      const char* category = e.category.load(std::memory_order_relaxed);
      if (!first_event) w.Text(",");
      first_event = false;
      const char ph[2] = {phase, '\0'};
      w.Text("\n    {\"ph\": ");
      w.Quoted(ph, 2);
      w.Text(", \"name\": ");
      w.Quoted(name, 128);
      if (category != nullptr) {
        w.Text(", \"cat\": ");
        w.Quoted(category, 64);
      }
      w.Text(", \"ts_ns\": ");
      w.Int(e.ts_ns.load(std::memory_order_relaxed));
      if (phase == 'C') {
        w.Text(", \"value\": ");
        w.Int(e.value.load(std::memory_order_relaxed));
      }
      w.Text("}");
    }
    w.Text("\n  ]}");
  }
  w.Text("\n]}");
}

SJ_SIGNAL_SAFE void WriteMetricsSection(FdWriter& w, int64_t now_ns) {
  w.Text("\"metrics\": {\"snapshot\": ");
  WritePreBufOrNull(w, g_metrics_buf);
  w.Text(",\n\"snapshot_age_ns\": ");
  w.Int(now_ns - g_metrics_snapshot_ts_ns.load(std::memory_order_relaxed));
  w.Text(",\n\"deltas\": [");
  const uint64_t head = g_delta_head.load(std::memory_order_acquire);
  const uint64_t window =
      head < static_cast<uint64_t>(kDeltaSlots) ? head : kDeltaSlots;
  bool first = true;
  for (uint64_t i = head - window; i < head; ++i) {
    const uint32_t n = LoadPreBuf(g_delta_bufs[i % kDeltaSlots],
                                  g_dump_scratch, sizeof(g_dump_scratch));
    if (n == 0) continue;
    if (!first) w.Text(",\n");
    first = false;
    w.Write(g_dump_scratch, n);
  }
  w.Text("]}");
}

std::atomic<bool> g_watchdog_running{false};
std::atomic<int64_t> g_watchdog_ticks{0};
std::atomic<int64_t> g_watchdog_stalls{0};
std::atomic<int64_t> g_watchdog_deadline_hits{0};

SJ_SIGNAL_SAFE void WriteDump(int fd, const char* kind, const char* detail,
                              bool fatal) {
  const int64_t now = MonotonicNowNs();
  FdWriter w(fd);
  w.Text("{\n\"flightdump_version\": 1,\n");
  w.Text("\"pid\": ");
  w.Int(static_cast<int64_t>(getpid()));
  w.Text(",\n\"reason\": {\"kind\": ");
  w.Quoted(kind, 64);
  w.Text(", \"detail\": ");
  w.Quoted(detail, 256);
  w.Text(", \"fatal\": ");
  w.Text(fatal ? "true" : "false");
  w.Text(", \"ts_ns\": ");
  w.Int(now);
  w.Text("},\n\"process\": ");
  WritePreBufOrNull(w, g_process_buf);
  w.Text(",\n");
  WriteEventsSection(w);
  w.Text(",\n");
  WriteActivitiesSection(w, now);
  w.Text(",\n");
  WriteSpansSection(w);
  w.Text(",\n");
  WriteMetricsSection(w, now);
  w.Text(",\n\"service\": ");
  WritePreBufOrNull(w, g_service_buf);
  w.Text(",\n\"watchdog\": {\"running\": ");
  w.Text(g_watchdog_running.load(std::memory_order_relaxed) ? "true"
                                                            : "false");
  w.Text(", \"ticks\": ");
  w.Int(g_watchdog_ticks.load(std::memory_order_relaxed));
  w.Text(", \"stalls\": ");
  w.Int(g_watchdog_stalls.load(std::memory_order_relaxed));
  w.Text(", \"deadline_hits\": ");
  w.Int(g_watchdog_deadline_hits.load(std::memory_order_relaxed));
  w.Text("}\n}\n");
  w.Flush();
}

enum class RefreshMode { kNone, kBlocking, kTry };

// Console breadcrumb from the dump path. Raw write(2): the fatal paths
// cannot use stdio, and one code path keeps the behavior uniform.
SJ_SIGNAL_SAFE void WriteStderr(const char* a, const char* b, const char* c) {
  char line[kDumpPathBytes + 96];
  size_t n = 0;
  for (const char* part : {a, b, c}) {
    for (size_t i = 0; part[i] != '\0' && n < sizeof(line) - 1; ++i) {
      line[n++] = part[i];
    }
  }
  line[n++] = '\n';
  ssize_t ignored = write(STDERR_FILENO, line, n);
  (void)ignored;
}

// Claims the one-dump-at-a-time flag. False means another dump is mid-
// flight (or a fatal dump already happened); the caller must back off.
SJ_SIGNAL_SAFE bool ClaimDumpFlag() {
  return !g_dump_in_progress.exchange(true, std::memory_order_acq_rel);
}

// The async-signal-safe dump core shared by every trigger: open the dump
// path, serialize, close, breadcrumb. No refresh, no event log, no locks
// — sj_analyze's signal-safety checker walks everything reachable from
// here, so normal-context conveniences must stay in DumpInternal below.
// The caller owns g_dump_in_progress (see ClaimDumpFlag).
SJ_SIGNAL_SAFE bool WriteDumpToPath(const char* kind, const char* detail,
                                    bool fatal) {
  int fd;
  do {
    fd = open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  } while (fd < 0 && errno == EINTR);
  const bool ok = fd >= 0;
  if (ok) {
    WriteDump(fd, kind, detail, fatal);
    close(fd);
    WriteStderr("[sj:flight] dump written: ", g_dump_path, "");
  } else {
    WriteStderr("[sj:flight] dump FAILED (cannot open): ", g_dump_path, "");
  }
  g_dumps_written.fetch_add(1, std::memory_order_relaxed);
  return ok;
}

// Normal-context dump wrapper: refresh policy + dump event + flag
// release. Fatal callers (check failure) leave the flag set on purpose —
// the process is about to abort and the SIGABRT handler must not dump
// again. The signal handler calls WriteDumpToPath directly instead: this
// function's refresh modes and event recording allocate and lock.
bool DumpInternal(const char* kind, const char* detail, bool fatal,
                  RefreshMode refresh) {
  if (!ClaimDumpFlag()) return false;
  switch (refresh) {
    case RefreshMode::kNone:
      break;
    case RefreshMode::kBlocking: {
      MutexLock lock(g_refresh_mu);
      RefreshLocked();
      break;
    }
    case RefreshMode::kTry:
      TryRefresh();
      break;
  }

  const bool ok = WriteDumpToPath(kind, detail, fatal);

  if (!fatal) {
    // Recording the dump itself is normal-context-only (vsnprintf); the
    // fatal paths are about to die anyway and the dump's "reason" section
    // already tells the story.
    EventLog::Global().Recordf(EventType::kDump, EventSeverity::kInfo,
                               "flight dump (%s: %s) -> %s", kind, detail,
                               ok ? g_dump_path : "OPEN FAILED");
    g_dump_in_progress.store(false, std::memory_order_release);
  }
  return ok;
}

// ---------------------------------------------------------------------------
// Fatal triggers: signal handler and SJ_CHECK observer.
// ---------------------------------------------------------------------------

SJ_SIGNAL_SAFE const char* SignalName(int signo) {
  switch (signo) {
    case SIGSEGV:
      return "SIGSEGV";
    case SIGBUS:
      return "SIGBUS";
    case SIGABRT:
      return "SIGABRT";
    case SIGFPE:
      return "SIGFPE";
    case SIGILL:
      return "SIGILL";
  }
  return "signal";
}

SJ_SIGNAL_SAFE void OnFatalSignal(int signo) {
  // Straight to the signal-safe core: DumpInternal's refresh modes and
  // event recording are normal-context-only. The flag stays claimed —
  // this process is dying with the re-raised signal below.
  if (ClaimDumpFlag()) {
    WriteDumpToPath("signal", SignalName(signo), /*fatal=*/true);
  }
  // Restore the default disposition and re-raise so the process still
  // dies with the original signal (wait status, core dumps, and test
  // harness expectations all stay intact).
  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = SIG_DFL;
  sigemptyset(&sa.sa_mask);
  sigaction(signo, &sa, nullptr);
  raise(signo);
}

// Handler stack: a corrupted or exhausted thread stack (the very failures
// SIGSEGV reports) must not prevent the dump.
char g_signal_stack[64 * 1024];

void InstallSignalHandlers() {
  stack_t ss;
  std::memset(&ss, 0, sizeof(ss));
  ss.ss_sp = g_signal_stack;
  ss.ss_size = sizeof(g_signal_stack);
  sigaltstack(&ss, nullptr);

  struct sigaction sa;
  std::memset(&sa, 0, sizeof(sa));
  sa.sa_handler = &OnFatalSignal;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = SA_ONSTACK;
  for (int signo : {SIGSEGV, SIGBUS, SIGABRT, SIGFPE, SIGILL}) {
    sigaction(signo, &sa, nullptr);
  }
}

void OnCheckFailure(const char* file, int line, const char* expr,
                    const char* message) {
  EventLog::Global().Recordf(
      EventType::kCheckFailure, EventSeverity::kFatal, "%s:%d: %s%s%s", file,
      line, expr, message[0] != '\0' ? " — " : "", message);
  if (!g_installed.load(std::memory_order_acquire)) return;
  char detail[192];
  std::snprintf(detail, sizeof(detail), "%s:%d: %s", file, line, expr);
  DumpInternal("check_failure", detail, /*fatal=*/true, RefreshMode::kTry);
}

// ---------------------------------------------------------------------------
// Watchdog.
// ---------------------------------------------------------------------------

struct Watchdog {
  Mutex mu;
  CondVar cv;
  bool stop SJ_GUARDED_BY(mu) = false;
  bool running SJ_GUARDED_BY(mu) = false;
  std::thread thread SJ_GUARDED_BY(mu);
};

Watchdog& GetWatchdog() {
  // Leaked: the thread object must survive a process exit that never
  // called StopWatchdog (benches with --flight-dump).
  // sj-lint: allow(naked-new)
  static Watchdog* watchdog = new Watchdog();
  return *watchdog;
}

void ScanActivities() {
  const int64_t now = MonotonicNowNs();
  const int64_t budget = g_stall_budget_ns.load(std::memory_order_relaxed);
  for (int i = 0; i < kMaxActivitySlots; ++i) {
    ActivitySlot& slot = g_activities[i];
    const char* kind = slot.kind.load(std::memory_order_acquire);
    if (kind == nullptr) continue;
    if (slot.idle.load(std::memory_order_relaxed)) continue;
    const uint64_t generation = slot.generation.load(std::memory_order_relaxed);
    if (slot.flagged_generation.load(std::memory_order_relaxed) ==
        generation) {
      continue;  // this incident was already reported
    }
    const char* label = slot.label.load(std::memory_order_relaxed);
    if (label == nullptr) label = "";
    const int64_t deadline = slot.deadline_ns.load(std::memory_order_relaxed);
    const int64_t last_beat =
        slot.last_beat_ns.load(std::memory_order_relaxed);
    const int tid = slot.tid.load(std::memory_order_relaxed);
    if (deadline > 0 && now > deadline) {
      slot.flagged_generation.store(generation, std::memory_order_relaxed);
      g_watchdog_deadline_hits.fetch_add(1, std::memory_order_relaxed);
      SJ_EVENT(kDeadlineExceeded, kError,
               "%s/%s (tid %d) ran %lld ms past its deadline", kind, label,
               tid, static_cast<long long>((now - deadline) / 1000000));
      DumpInternal("watchdog", "deadline_exceeded", /*fatal=*/false,
                   RefreshMode::kNone);  // buffers refreshed this tick
    } else if (budget > 0 && last_beat > 0 && now - last_beat > budget) {
      slot.flagged_generation.store(generation, std::memory_order_relaxed);
      g_watchdog_stalls.fetch_add(1, std::memory_order_relaxed);
      SJ_EVENT(kWatchdogStall, kError,
               "%s/%s (tid %d) heartbeat stale for %lld ms", kind, label, tid,
               static_cast<long long>((now - last_beat) / 1000000));
      DumpInternal("watchdog", "stalled_heartbeat", /*fatal=*/false,
                   RefreshMode::kNone);
    }
  }
}

void WatchdogMain() {
  Tracing::SetThreadName("flight.watchdog");
  Watchdog& w = GetWatchdog();
  for (;;) {
    const auto interval = std::chrono::milliseconds(
        g_watchdog_interval_ms.load(std::memory_order_relaxed));
    {
      MutexLock lock(w.mu);
      // A timeout is the normal tick; a notify is Stop() — both paths
      // re-test w.stop below.
      if (!w.stop) (void)w.cv.WaitFor(w.mu, interval);
      if (w.stop) break;
    }
    g_watchdog_ticks.fetch_add(1, std::memory_order_relaxed);
    {
      MutexLock lock(g_refresh_mu);
      RefreshLocked();
    }
    ScanActivities();
  }
}

// ---------------------------------------------------------------------------
// Static-init arming: the check observer is always installed (structured
// kCheckFailure events cost nothing), and SJ_FLIGHT_DUMP=<path> arms the
// full pipeline without touching the embedding program.
// ---------------------------------------------------------------------------

struct FlightInit {
  FlightInit() {
    g_event_log.store(&EventLog::Global(), std::memory_order_release);
    internal_check::SetCheckFailureObserver(&OnCheckFailure);
    const char* env = std::getenv("SJ_FLIGHT_DUMP");
    if (env != nullptr && env[0] != '\0') {
      FlightRecorderOptions options;
      options.dump_path = env;
      FlightRecorder::Install(options);
    }
  }
};
FlightInit g_flight_init;

}  // namespace

// ---------------------------------------------------------------------------
// FlightRecorder.
// ---------------------------------------------------------------------------

void FlightRecorder::Install(const FlightRecorderOptions& options) {
  g_event_log.store(&EventLog::Global(), std::memory_order_release);
  const size_t n = options.dump_path.size() < kDumpPathBytes - 1
                       ? options.dump_path.size()
                       : kDumpPathBytes - 1;
  std::memcpy(g_dump_path, options.dump_path.data(), n);
  g_dump_path[n] = '\0';
  g_stall_budget_ns.store(options.stall_budget_ns, std::memory_order_relaxed);
  g_watchdog_interval_ms.store(options.watchdog_interval_ms,
                               std::memory_order_relaxed);
  g_max_events.store(options.dump_max_events, std::memory_order_relaxed);
  g_max_spans_per_thread.store(options.dump_max_spans_per_thread,
                               std::memory_order_relaxed);
  {
    MutexLock lock(g_refresh_mu);
    RefreshLocked();
  }
  if (options.install_signal_handlers &&
      !g_signals_installed.exchange(true, std::memory_order_acq_rel)) {
    InstallSignalHandlers();
  }
  g_installed.store(true, std::memory_order_release);
  SJ_EVENT(kMessage, kInfo, "flight recorder armed: %s", g_dump_path);
  if (options.start_watchdog) StartWatchdog();
}

bool FlightRecorder::installed() {
  return g_installed.load(std::memory_order_acquire);
}

bool FlightRecorder::Dump(const char* kind, const char* detail) {
  return DumpInternal(kind == nullptr ? "explicit" : kind,
                      detail == nullptr ? "" : detail, /*fatal=*/false,
                      RefreshMode::kBlocking);
}

void FlightRecorder::RefreshPreSerialized() {
  MutexLock lock(g_refresh_mu);
  RefreshLocked();
}

void FlightRecorder::SetServiceSnapshotProvider(std::string (*provider)()) {
  g_service_provider.store(provider, std::memory_order_release);
}

void FlightRecorder::StartWatchdog() {
  Watchdog& w = GetWatchdog();
  MutexLock lock(w.mu);
  if (w.running) return;
  w.stop = false;
  w.running = true;
  g_watchdog_running.store(true, std::memory_order_release);
  w.thread = std::thread(&WatchdogMain);
}

void FlightRecorder::StopWatchdog() {
  Watchdog& w = GetWatchdog();
  std::thread joinable;
  {
    MutexLock lock(w.mu);
    if (!w.running) return;
    w.stop = true;
    w.running = false;
    joinable = std::move(w.thread);
    w.cv.NotifyAll();
  }
  g_watchdog_running.store(false, std::memory_order_release);
  if (joinable.joinable()) joinable.join();
}

bool FlightRecorder::watchdog_running() {
  return g_watchdog_running.load(std::memory_order_acquire);
}

int64_t FlightRecorder::watchdog_ticks() {
  return g_watchdog_ticks.load(std::memory_order_relaxed);
}

int64_t FlightRecorder::watchdog_stalls() {
  return g_watchdog_stalls.load(std::memory_order_relaxed);
}

int64_t FlightRecorder::watchdog_deadline_hits() {
  return g_watchdog_deadline_hits.load(std::memory_order_relaxed);
}

int64_t FlightRecorder::dumps_written() {
  return g_dumps_written.load(std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// ActivityScope.
// ---------------------------------------------------------------------------

ActivityScope::ActivityScope(const char* kind, const char* label,
                             int64_t deadline_budget_ns) {
  for (int i = 0; i < kMaxActivitySlots; ++i) {
    bool expected = false;
    if (g_activities[i].claimed.compare_exchange_strong(
            expected, true, std::memory_order_acq_rel)) {
      slot_ = i;
      break;
    }
  }
  // Registered on the TLS stack even when the table is full, so nesting
  // stays balanced; a slotless scope just makes Beat() a no-op.
  prev_ = tls_scope;
  tls_scope = this;
  if (slot_ < 0) return;
  ActivitySlot& slot = g_activities[slot_];
  const int64_t now = MonotonicNowNs();
  slot.generation.fetch_add(1, std::memory_order_relaxed);
  slot.label.store(label, std::memory_order_relaxed);
  slot.start_ns.store(now, std::memory_order_relaxed);
  slot.last_beat_ns.store(now, std::memory_order_relaxed);
  slot.deadline_ns.store(
      deadline_budget_ns > 0 ? now + deadline_budget_ns : 0,
      std::memory_order_relaxed);
  slot.tid.store(Tracing::CurrentThreadTidOrNegative(),
                 std::memory_order_relaxed);
  slot.idle.store(false, std::memory_order_relaxed);
  slot.detail[0].store('\0', std::memory_order_relaxed);
  // Publish last: a reader that sees a non-null kind sees the fields of
  // *this* registration, not the previous occupant's.
  slot.kind.store(kind, std::memory_order_release);
}

ActivityScope::~ActivityScope() {
  if (slot_ >= 0) {
    ActivitySlot& slot = g_activities[slot_];
    slot.kind.store(nullptr, std::memory_order_release);
    // Invalidate any flagged_generation match from this occupancy.
    slot.generation.fetch_add(1, std::memory_order_relaxed);
    slot.claimed.store(false, std::memory_order_release);
  }
  tls_scope = prev_;
}

void ActivityScope::Beat() {
  if (slot_ < 0) return;
  g_activities[slot_].last_beat_ns.store(MonotonicNowNs(),
                                         std::memory_order_relaxed);
}

void ActivityScope::SetIdle(bool idle) {
  if (slot_ < 0) return;
  ActivitySlot& slot = g_activities[slot_];
  if (!idle) {
    slot.last_beat_ns.store(MonotonicNowNs(), std::memory_order_relaxed);
  }
  slot.idle.store(idle, std::memory_order_relaxed);
}

void ActivityScope::SetDetail(const char* detail) {
  if (slot_ < 0 || detail == nullptr) return;
  ActivitySlot& slot = g_activities[slot_];
  size_t i = 0;
  for (; i < kDetailBytes - 1 && detail[i] != '\0'; ++i) {
    SJ_BOUNDED_WORK;  // copy capped at kDetailBytes
    slot.detail[i].store(detail[i], std::memory_order_relaxed);
  }
  slot.detail[i].store('\0', std::memory_order_relaxed);
}

void ActivityScope::BeatThisThread() {
  if (tls_scope != nullptr) tls_scope->Beat();
}

}  // namespace spatialjoin
