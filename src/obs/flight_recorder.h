#ifndef SPATIALJOIN_OBS_FLIGHT_RECORDER_H_
#define SPATIALJOIN_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <string>

namespace spatialjoin {

/// Flight recorder (DESIGN.md §10): the engine's black box. Whatever
/// kills the process — an SJ_CHECK failure, a fatal Status on a storage
/// path, a SIGSEGV — the recorder writes one self-describing JSON dump
/// (`*.flightdump.json`) holding the structured event-log tail
/// (obs/event_log.h), a drain of every thread's span ring, the metrics
/// registry plus the last few periodic snapshot deltas, process gauges,
/// and the activity table (active queries / pool workers with their
/// heartbeats). `tools/sj_inspect` validates and renders dumps offline.
///
/// Three triggers share one dump serializer:
///  * fatal paths — the SJ_CHECK observer and the SIGSEGV/SIGBUS/SIGABRT/
///    SIGFPE/SIGILL handlers. The signal path is async-signal-safe by
///    construction: it only open()/write()s pre-serialized seqlock
///    buffers (refreshed by the watchdog) and lock-free rings, with
///    hand-rolled integer/string formatting — no malloc, no stdio, no
///    locks (the §10 review checklist enforces this).
///  * the watchdog thread — detects a stalled heartbeat or an
///    over-deadline query and dumps instead of letting the hang stay
///    silent.
///  * FlightRecorder::Dump() — explicit (benches pass `--flight-dump`).
struct FlightRecorderOptions {
  /// Where the dump is written. Every trigger (re)writes this one file;
  /// the newest incident wins.
  std::string dump_path = "sj.flightdump.json";
  bool install_signal_handlers = true;
  /// Start the watchdog thread as part of Install().
  bool start_watchdog = false;
  /// Watchdog scan (and pre-serialized-buffer refresh) period.
  int64_t watchdog_interval_ms = 100;
  /// A non-idle activity whose heartbeat is older than this is stalled.
  int64_t stall_budget_ns = int64_t{10} * 1000 * 1000 * 1000;
  /// Caps on dump size: newest-first retention per section.
  int64_t dump_max_events = 1024;
  int64_t dump_max_spans_per_thread = 2048;
};

class FlightRecorder {
 public:
  /// Arms the recorder: remembers the dump path and caps, installs the
  /// fatal-signal handlers (on an alternate stack) and the SJ_CHECK dump
  /// observer, and takes the first pre-serialized snapshot. Idempotent;
  /// later calls re-point the dump path and options. Also invoked
  /// automatically at static-init time when the SJ_FLIGHT_DUMP
  /// environment variable names a dump path.
  static void Install(const FlightRecorderOptions& options);
  static bool installed();

  /// Writes a dump now (full refresh first). `kind` should be one of the
  /// reason kinds sj_inspect knows ("explicit", "watchdog"); `detail` is
  /// free-form. Returns false when the file cannot be written or another
  /// dump is already in progress.
  static bool Dump(const char* kind, const char* detail);

  /// Re-serializes the crash-path buffers (process info, metrics
  /// snapshot + delta, span-ring directory) now. Called by Install, every
  /// watchdog tick, and every non-signal dump.
  static void RefreshPreSerialized();

  /// Registers a provider for the dump's `service` section (the query
  /// service's slow-query rings and totals; server/telemetry.h registers
  /// itself on first use). The provider runs on refresh paths — watchdog
  /// tick or explicit dump, never the signal path, which only writes the
  /// pre-serialized buffer — and must return one JSON value. Null
  /// unregisters; dumps then carry `"service": null`.
  static void SetServiceSnapshotProvider(std::string (*provider)());

  /// Watchdog thread control. Start is idempotent; Stop joins the thread
  /// (tests stop it so process teardown stays deterministic).
  static void StartWatchdog();
  static void StopWatchdog();
  static bool watchdog_running();

  /// Counters for tests and the dump's own "watchdog" section.
  static int64_t watchdog_ticks();
  static int64_t watchdog_stalls();
  static int64_t watchdog_deadline_hits();
  static int64_t dumps_written();
};

/// RAII registration of one unit of work in the recorder's activity
/// table: a query execution, a pool worker, a partition phase. The dump
/// lists active scopes (that is the "what was running" section of the
/// black box), and the watchdog checks each scope's heartbeat and
/// deadline. `kind` and `label` must be string literals (or otherwise
/// static); per-instance text goes through SetDetail, which copies.
///
/// The scope registers itself in a thread-local stack, so code deep in a
/// traversal loop can stamp the innermost enclosing scope with
/// `ActivityScope::BeatThisThread()` without plumbing a pointer through
/// every layer. Heartbeat protocol (DESIGN.md §10): stamp at level
/// boundaries in SELECT/JOIN, per PBSM tile, and per pool task — often
/// enough that a healthy query is never stale, coarse enough to stay off
/// the per-node hot path.
class ActivityScope {
 public:
  /// `deadline_budget_ns` > 0 arms an absolute deadline of now + budget;
  /// the watchdog reports (and dumps) when the scope outlives it.
  ActivityScope(const char* kind, const char* label,
                int64_t deadline_budget_ns = 0);
  ~ActivityScope();

  ActivityScope(const ActivityScope&) = delete;
  ActivityScope& operator=(const ActivityScope&) = delete;

  /// Stamps the heartbeat with the current time.
  void Beat();

  /// Marks the scope idle (a parked pool worker): the watchdog skips
  /// stall checks until the next Beat()/SetIdle(false).
  void SetIdle(bool idle);

  /// Copies free-form context (worker name, operator) into the slot.
  void SetDetail(const char* detail);

  /// Beat() on the calling thread's innermost scope; no-op without one.
  static void BeatThisThread();

 private:
  int slot_ = -1;
  ActivityScope* prev_ = nullptr;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_FLIGHT_RECORDER_H_
