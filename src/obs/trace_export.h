#ifndef SPATIALJOIN_OBS_TRACE_EXPORT_H_
#define SPATIALJOIN_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spatialjoin {

/// Merges the span layer's per-thread rings (obs/span.h) into a Chrome
/// trace-event JSON document loadable in Perfetto (ui.perfetto.dev) or
/// chrome://tracing. One timeline track per recorded thread, counter
/// tracks for 'C' events, and the process gauges in the top-level
/// metadata object.
///
/// The export is *repaired*, not raw: ring wraparound can drop a span's
/// 'B' while keeping its 'E' (and quiescent rings hold spans that are
/// still open, e.g. a parked worker). CollectEvents therefore drops
/// orphan ends, synthesizes ends for still-open begins at the snapshot
/// timestamp, and clamps per-track timestamps to be monotonic — so every
/// exported track is balanced and ordered by construction, which
/// tests/span_test.cc asserts.

/// One repaired event, ready for serialization.
struct ExportedEvent {
  char phase = 0;  // 'B', 'E', 'i', or 'C'
  const char* name = nullptr;
  const char* category = nullptr;  // may be null
  int tid = 0;
  int64_t ts_ns = 0;
  int64_t value = 0;  // counter sample for 'C'
};

/// Snapshot of all rings, repaired per track (see file comment). Events
/// are grouped by tid, in timestamp order within each tid.
std::vector<ExportedEvent> CollectEvents();

/// Total events lost to ring wraparound across all threads.
int64_t TotalDroppedEvents();

/// Serializes the repaired snapshot as a Chrome trace-event document:
///   {"traceEvents": [...], "displayTimeUnit": "ms",
///    "metadata": {"process": {...}, "dropped_events": N}}
/// Timestamps are microseconds relative to the earliest event, per the
/// trace-event format.
void WriteChromeTrace(std::ostream& os);

/// Writes WriteChromeTrace output to `path`; returns false (with a
/// message on stderr) when the file cannot be opened.
bool WriteTraceArtifact(const std::string& path);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_TRACE_EXPORT_H_
