#include "obs/process_info.h"

#include <sstream>
#include <thread>

#include "obs/build_info.h"
#include "obs/json.h"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/resource.h>
#endif

namespace spatialjoin {

namespace {

int64_t PeakRssBytes() {
#if defined(__unix__) || defined(__APPLE__)
  struct rusage usage;
  if (getrusage(RUSAGE_SELF, &usage) != 0) return 0;
#if defined(__APPLE__)
  return static_cast<int64_t>(usage.ru_maxrss);  // bytes on Darwin
#else
  return static_cast<int64_t>(usage.ru_maxrss) * 1024;  // KiB on Linux
#endif
#else
  return 0;
#endif
}

}  // namespace

ProcessInfo CollectProcessInfo() {
  ProcessInfo info;
  info.peak_rss_bytes = PeakRssBytes();
  info.hardware_threads =
      static_cast<int>(std::thread::hardware_concurrency());
  info.commit = SJ_BUILD_COMMIT;
  info.build_type = SJ_BUILD_TYPE;
  info.build_flags = SJ_BUILD_CXX_FLAGS;
  return info;
}

void WriteProcessInfoJson(const ProcessInfo& info, JsonWriter& w) {
  w.BeginObject();
  w.KV("peak_rss_bytes", info.peak_rss_bytes);
  w.KV("hardware_threads", static_cast<int64_t>(info.hardware_threads));
  w.KV("commit", info.commit);
  w.KV("build_type", info.build_type);
  w.KV("build_flags", info.build_flags);
  w.EndObject();
}

std::string ProcessInfoJson() {
  std::ostringstream os;
  JsonWriter w(os);
  WriteProcessInfoJson(CollectProcessInfo(), w);
  return os.str();
}

}  // namespace spatialjoin
