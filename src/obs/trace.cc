#include "obs/trace.h"

#include <algorithm>
#include <sstream>

#include "obs/json.h"
#include "obs/metrics.h"

namespace spatialjoin {

PoolSnapshot PoolSnapshot::Take() {
  // Pointers cached once: registration takes the registry mutex, reads are
  // relaxed atomic loads — cheap enough to take per visited node.
  static Counter* hits =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
  static Counter* misses =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.misses");
  return PoolSnapshot{hits->Value(), misses->Value()};
}

QueryTrace::QueryTrace(std::string kind, std::string detail)
    : kind_(std::move(kind)), detail_(std::move(detail)) {}

TraceLevel& QueryTrace::Level(int height) {
  auto it = std::lower_bound(
      levels_.begin(), levels_.end(), height,
      [](const TraceLevel& l, int h) { return l.height < h; });
  if (it != levels_.end() && it->height == height) return *it;
  it = levels_.insert(it, TraceLevel{});
  it->height = height;
  return *it;
}

int64_t QueryTrace::TotalWorklist() const {
  int64_t total = 0;
  for (const TraceLevel& l : levels_) total += l.worklist;
  return total;
}

int64_t QueryTrace::TotalThetaUpperTests() const {
  int64_t total = 0;
  for (const TraceLevel& l : levels_) total += l.theta_upper_tests;
  return total;
}

int64_t QueryTrace::TotalThetaTests() const {
  int64_t total = 0;
  for (const TraceLevel& l : levels_) total += l.theta_tests;
  return total;
}

int64_t QueryTrace::TotalPoolHits() const {
  int64_t total = 0;
  for (const TraceLevel& l : levels_) total += l.pool_hits;
  return total;
}

int64_t QueryTrace::TotalPoolMisses() const {
  int64_t total = 0;
  for (const TraceLevel& l : levels_) total += l.pool_misses;
  return total;
}

double QueryTrace::PoolHitRate() const {
  int64_t hits = TotalPoolHits();
  int64_t total = hits + TotalPoolMisses();
  return total == 0 ? 0.0
                    : static_cast<double>(hits) / static_cast<double>(total);
}

void QueryTrace::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("kind", kind_);
  if (!detail_.empty()) w.KV("detail", detail_);
  if (!strategy_.empty()) w.KV("strategy", strategy_);
  w.KV("wall_ns", wall_ns_);
  w.KV("matches", matches_);
  w.Key("totals");
  w.BeginObject();
  w.KV("worklist", TotalWorklist());
  w.KV("theta_upper_tests", TotalThetaUpperTests());
  w.KV("theta_tests", TotalThetaTests());
  w.KV("pool_hits", TotalPoolHits());
  w.KV("pool_misses", TotalPoolMisses());
  w.KV("pool_hit_rate", PoolHitRate());
  w.EndObject();
  w.Key("levels");
  w.BeginArray();
  for (const TraceLevel& l : levels_) {
    w.BeginObject();
    w.KV("height", static_cast<int64_t>(l.height));
    w.KV("worklist", l.worklist);
    w.KV("theta_upper_tests", l.theta_upper_tests);
    w.KV("theta_tests", l.theta_tests);
    w.KV("descended", l.descended);
    w.KV("pruned", l.pruned);
    w.KV("pool_hits", l.pool_hits);
    w.KV("pool_misses", l.pool_misses);
    w.KV("wall_ns", l.wall_ns);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
  os << '\n';
}

std::string QueryTrace::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace spatialjoin
