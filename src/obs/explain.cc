#include "obs/explain.h"

#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "costmodel/join_cost.h"
#include "obs/json.h"

namespace spatialjoin {

namespace {

// Predicted cost components of one join strategy under the model,
// separated into the two currencies the engine can actually count.
struct PredictedComponents {
  /// Expected Θ/θ evaluations. The model's assumption S3 (Θ ⇔ θ) charges
  /// conservative and exact tests as one evaluation kind, so the
  /// comparable measured figure is theta_tests + theta_upper_tests.
  double theta_evaluations = 0.0;
  /// Expected page accesses (the Yao-formula terms of §4.2–4.4).
  double page_accesses = 0.0;
};

PredictedComponents Predict(JoinStrategy strategy,
                            const ModelParameters& params,
                            MatchDistribution dist, bool clustered) {
  const double n_tuples = static_cast<double>(params.N());
  const double m = static_cast<double>(params.m());
  const double pages = static_cast<double>(params.RelationPages());
  JoinCosts costs = ComputeJoinCosts(params, dist);
  PredictedComponents out;
  switch (strategy) {
    case JoinStrategy::kNestedLoop: {
      // D_I decomposed (§4.4): N² evaluations; (passes+1) relation scans.
      out.theta_evaluations = n_tuples * n_tuples;
      out.page_accesses =
          (costs.d_i - out.theta_evaluations * params.c_theta) /
          params.c_io;
      break;
    }
    case JoinStrategy::kTreeJoin: {
      double tree_cost = clustered ? costs.d_iib : costs.d_iia;
      out.theta_evaluations = costs.d_ii_compute / params.c_theta;
      out.page_accesses = (tree_cost - costs.d_ii_compute) / params.c_io;
      break;
    }
    case JoinStrategy::kIndexNestedLoop: {
      // Priced as the tree strategy plus one full scan of the probing
      // side (the planner's model, planner.cc).
      double tree_cost = clustered ? costs.d_iib : costs.d_iia;
      out.theta_evaluations = costs.d_ii_compute / params.c_theta;
      out.page_accesses =
          (tree_cost - costs.d_ii_compute) / params.c_io + pages;
      break;
    }
    case JoinStrategy::kSortMergeZOrder: {
      // One z-decomposition pass over each relation, then p·N² candidate
      // verifications (the planner's model).
      out.theta_evaluations = params.p * n_tuples * n_tuples;
      out.page_accesses = 2.0 * pages;
      break;
    }
    case JoinStrategy::kJoinIndex: {
      // D_III is pure I/O: the index was precomputed, no θ at query time.
      out.theta_evaluations = 0.0;
      out.page_accesses = costs.d_iii / params.c_io;
      break;
    }
    case JoinStrategy::kParallelTreeJoin: {
      // Same evaluations and page accesses as the sequential tree join —
      // parallelism divides wall time, not work (D_II_par's /W applies to
      // the cost units, not the event counts measured here).
      double tree_cost = clustered ? costs.d_iib : costs.d_iia;
      out.theta_evaluations = costs.d_ii_compute / params.c_theta;
      out.page_accesses = (tree_cost - costs.d_ii_compute) / params.c_io;
      break;
    }
    case JoinStrategy::kPartitionedJoin: {
      // D_PBSM decomposed: p·N² candidate verifications after one read of
      // each relation.
      out.theta_evaluations = params.p * n_tuples * n_tuples;
      out.page_accesses = 2.0 * pages;
      break;
    }
  }
  (void)m;
  return out;
}

double Residual(double measured, double predicted) {
  if (predicted > 0.0) return measured / predicted;
  if (measured == 0.0) return 1.0;
  return std::numeric_limits<double>::infinity();
}

ExplainRow MakeRow(std::string name, double predicted, double measured) {
  ExplainRow row;
  row.name = std::move(name);
  row.predicted = predicted;
  row.measured = measured;
  row.residual = Residual(measured, predicted);
  return row;
}

}  // namespace

MeasuredJoin MeasureJoin(const JoinResult& result, const IoStats& io_delta,
                         const BufferPoolStats& pool_delta, double wall_ns) {
  MeasuredJoin measured;
  measured.theta_tests = result.theta_tests;
  measured.theta_upper_tests = result.theta_upper_tests;
  measured.page_reads = io_delta.page_reads;
  measured.page_writes = io_delta.page_writes;
  measured.pool_hits = pool_delta.hits;
  measured.pool_misses = pool_delta.misses;
  measured.matches = static_cast<int64_t>(result.matches.size());
  measured.wall_ns = wall_ns;
  return measured;
}

const ExplainRow* ExplainReport::Find(std::string_view name) const {
  for (const ExplainRow& row : rows) {
    SJ_BOUNDED_WORK;  // one row per strategy (fixed enum)
    if (row.name == name) return &row;
  }
  return nullptr;
}

ExplainReport ExplainAnalyzeJoin(JoinStrategy executed, const JoinPlan& plan,
                                 const ModelParameters& params,
                                 MatchDistribution dist,
                                 const MeasuredJoin& measured,
                                 const QueryTrace* trace, bool clustered) {
  ExplainReport report;
  report.executed = executed;
  report.planned = plan.strategy;
  report.distribution = dist;
  report.params = params;
  report.plan = plan;
  report.wall_ns = measured.wall_ns;
  report.matches = measured.matches;
  int64_t pool_total = measured.pool_hits + measured.pool_misses;
  report.pool_hit_rate =
      pool_total == 0 ? 0.0
                      : static_cast<double>(measured.pool_hits) /
                            static_cast<double>(pool_total);

  PredictedComponents predicted = Predict(executed, params, dist, clustered);
  double measured_evals = static_cast<double>(measured.theta_tests +
                                              measured.theta_upper_tests);
  double measured_pages =
      static_cast<double>(measured.page_reads + measured.page_writes);
  report.rows.push_back(
      MakeRow("theta_evaluations", predicted.theta_evaluations,
              measured_evals));
  report.rows.push_back(
      MakeRow("page_accesses", predicted.page_accesses, measured_pages));
  report.rows.push_back(MakeRow(
      "total_cost",
      predicted.theta_evaluations * params.c_theta +
          predicted.page_accesses * params.c_io,
      measured_evals * params.c_theta + measured_pages * params.c_io));

  // The trace view is attached lazily at render time; copy the per-level
  // records now so the report owns its data.
  if (trace != nullptr) {
    report.trace_levels.assign(trace->levels().begin(),
                                trace->levels().end());
    report.has_trace = true;
  }
  return report;
}

std::string ExplainReport::ToString() const {
  std::ostringstream os;
  char buf[160];
  os << "EXPLAIN ANALYZE — " << JoinStrategyName(executed) << " under "
     << MatchDistributionName(distribution) << " (p=" << params.p
     << ", N=" << params.N() << ", n=" << params.n << ", k=" << params.k
     << ")\n";
  if (planned != executed) {
    os << "  note: planner would choose " << JoinStrategyName(planned)
       << "\n";
  }
  std::snprintf(buf, sizeof(buf), "  %-18s %14s %14s %10s\n", "metric",
                "predicted", "measured", "residual");
  os << buf;
  for (const ExplainRow& row : rows) {
    std::snprintf(buf, sizeof(buf), "  %-18s %14.4e %14.4e %10.4f\n",
                  row.name.c_str(), row.predicted, row.measured,
                  row.residual);
    os << buf;
  }
  std::snprintf(buf, sizeof(buf),
                "  matches=%lld  wall=%.3f ms  pool hit rate=%.1f%%\n",
                static_cast<long long>(matches), wall_ns / 1e6,
                100.0 * pool_hit_rate);
  os << buf;
  for (const TraceLevel& level : trace_levels) {
    std::snprintf(
        buf, sizeof(buf),
        "  level %2d: worklist=%lld Theta=%lld theta=%lld descended=%lld "
        "pruned=%lld pool=%lld/%lld\n",
        level.height, static_cast<long long>(level.worklist),
        static_cast<long long>(level.theta_upper_tests),
        static_cast<long long>(level.theta_tests),
        static_cast<long long>(level.descended),
        static_cast<long long>(level.pruned),
        static_cast<long long>(level.pool_hits),
        static_cast<long long>(level.pool_misses));
    os << buf;
  }
  os << plan.ToString() << "\n";
  return os.str();
}

void ExplainReport::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("executed", JoinStrategyName(executed));
  w.KV("planned", JoinStrategyName(planned));
  w.KV("distribution", MatchDistributionName(distribution));
  w.Key("model");
  w.BeginObject();
  w.KV("p", params.p);
  w.KV("n", static_cast<int64_t>(params.n));
  w.KV("k", static_cast<int64_t>(params.k));
  w.KV("N", params.N());
  w.KV("c_theta", params.c_theta);
  w.KV("c_io", params.c_io);
  w.EndObject();
  w.Key("rows");
  w.BeginArray();
  for (const ExplainRow& row : rows) {
    w.BeginObject();
    w.KV("name", row.name);
    w.KV("predicted", row.predicted);
    w.KV("measured", row.measured);
    w.KV("residual", row.residual);
    w.EndObject();
  }
  w.EndArray();
  w.KV("matches", matches);
  w.KV("wall_ns", wall_ns);
  w.KV("pool_hit_rate", pool_hit_rate);
  if (has_trace) {
    w.Key("levels");
    w.BeginArray();
    for (const TraceLevel& level : trace_levels) {
      w.BeginObject();
      w.KV("height", static_cast<int64_t>(level.height));
      w.KV("worklist", level.worklist);
      w.KV("theta_upper_tests", level.theta_upper_tests);
      w.KV("theta_tests", level.theta_tests);
      w.KV("descended", level.descended);
      w.KV("pruned", level.pruned);
      w.KV("pool_hits", level.pool_hits);
      w.KV("pool_misses", level.pool_misses);
      w.KV("wall_ns", level.wall_ns);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  os << '\n';
}

std::string ExplainReport::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  return os.str();
}

}  // namespace spatialjoin
