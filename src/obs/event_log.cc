#include "obs/event_log.h"

#include <cstdarg>
#include <cstdio>

#include "common/analysis_annotations.h"
#include "common/status.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

SJ_SIGNAL_SAFE const char* EventTypeName(EventType type) {
  switch (type) {
    case EventType::kMessage:
      return "message";
    case EventType::kQueryAdmitted:
      return "query_admitted";
    case EventType::kQueryPlanned:
      return "query_planned";
    case EventType::kQueryFinished:
      return "query_finished";
    case EventType::kBufferPoolFault:
      return "buffer_pool_fault";
    case EventType::kStatusError:
      return "status_error";
    case EventType::kAuditFinding:
      return "audit_finding";
    case EventType::kPoolAnomaly:
      return "pool_anomaly";
    case EventType::kCheckFailure:
      return "check_failure";
    case EventType::kWatchdogStall:
      return "watchdog_stall";
    case EventType::kDeadlineExceeded:
      return "deadline_exceeded";
    case EventType::kDump:
      return "dump";
    case EventType::kSlowQuery:
      return "slow_query";
  }
  return "unknown";
}

SJ_SIGNAL_SAFE const char* EventSeverityName(EventSeverity severity) {
  switch (severity) {
    case EventSeverity::kInfo:
      return "info";
    case EventSeverity::kWarn:
      return "warn";
    case EventSeverity::kError:
      return "error";
    case EventSeverity::kFatal:
      return "fatal";
  }
  return "unknown";
}

EventLog& EventLog::Global() {
  // Leaked on purpose (like the span-ring registry): events may be
  // recorded during static destruction, and the flight recorder's signal
  // handler reads the ring at arbitrary times.
  // sj-lint: allow(naked-new)
  static EventLog* log = new EventLog(kDefaultCapacity);
  return *log;
}

EventLog::EventLog(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity), slots_(capacity_) {}

void EventLog::Record(EventType type, EventSeverity severity,
                      const char* message) {
  // Render (truncate) once into a local buffer; it feeds both the slot
  // stores and the stderr echo.
  char rendered[EventRecord::kMessageBytes];
  size_t length = 0;
  if (message != nullptr) {
    while (length < EventRecord::kMessageBytes - 1 &&
           message[length] != '\0') {
      SJ_BOUNDED_WORK;  // copy capped at kMessageBytes
      rendered[length] = message[length];
      ++length;
    }
  }
  rendered[length] = '\0';

  const int64_t now_ns = MonotonicNowNs();
  const uint64_t ticket = head_.fetch_add(1, std::memory_order_relaxed) + 1;
  EventRecord& slot = slots_[static_cast<size_t>((ticket - 1) % capacity_)];

  // Invalidate first so a reader racing this overwrite rejects the slot
  // instead of pairing the old ticket with the new payload.
  slot.ticket.store(0, std::memory_order_relaxed);
  slot.ts_ns.store(now_ns, std::memory_order_relaxed);
  slot.tid.store(Tracing::CurrentThreadTidOrNegative(),
                 std::memory_order_relaxed);
  slot.type.store(static_cast<uint8_t>(type), std::memory_order_relaxed);
  slot.severity.store(static_cast<uint8_t>(severity),
                      std::memory_order_relaxed);
  for (size_t i = 0; i <= length; ++i) {
    SJ_BOUNDED_WORK;  // store capped at kMessageBytes
    slot.message[i].store(rendered[i], std::memory_order_relaxed);
  }
  slot.ticket.store(ticket, std::memory_order_release);

  if (static_cast<uint8_t>(severity) >=
      echo_severity_.load(std::memory_order_relaxed)) {
    // The one sanctioned console write: the log mirrors warn+ events so
    // routed diagnostics stay visible to an operator without a dump.
    // sj-lint: allow(stderr-in-lib)
    std::fprintf(stderr, "[sj:%s:%s] %s\n", EventSeverityName(severity),
                 EventTypeName(type), rendered);
  }
}

void EventLog::Recordf(EventType type, EventSeverity severity,
                       const char* fmt, ...) {
  char buffer[EventRecord::kMessageBytes];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buffer, sizeof(buffer), fmt, args);
  va_end(args);
  Record(type, severity, buffer);
}

std::vector<EventView> EventLog::Tail(size_t max_records) const {
  const uint64_t head = total();
  uint64_t window = head < capacity_ ? head : capacity_;
  if (window > max_records) window = max_records;

  std::vector<EventView> out;
  out.reserve(static_cast<size_t>(window));
  for (uint64_t i = head - window; i < head; ++i) {
    const EventRecord& slot = this->slot(i);
    const uint64_t ticket = slot.ticket.load(std::memory_order_acquire);
    if (ticket != i + 1) continue;  // torn or already overwritten
    char message[EventRecord::kMessageBytes];
    if (!slot.CopyMessageTo(message)) continue;
    EventView view;
    view.seq = ticket;
    view.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    view.tid = slot.tid.load(std::memory_order_relaxed);
    view.type =
        static_cast<EventType>(slot.type.load(std::memory_order_relaxed));
    view.severity = static_cast<EventSeverity>(
        slot.severity.load(std::memory_order_relaxed));
    view.message.assign(message);
    out.push_back(std::move(view));
  }
  return out;
}

SJ_SIGNAL_SAFE uint64_t EventLog::dropped() const {
  const uint64_t head = total();
  return head > capacity_ ? head - capacity_ : 0;
}

void EventLog::SetStderrEchoSeverity(EventSeverity min_severity) {
  echo_severity_.store(static_cast<uint8_t>(min_severity),
                       std::memory_order_relaxed);
}

namespace {

// Routes non-OK Status constructions into the event log. kNotFound and
// kAlreadyExists are expected control-flow answers (index probes, upsert
// paths), not failures — recording them would rotate real errors out of
// the ring.
void StatusErrorObserver(StatusCode code, const char* message) {
  if (code == StatusCode::kNotFound || code == StatusCode::kAlreadyExists) {
    return;
  }
  EventLog::Global().Recordf(EventType::kStatusError, EventSeverity::kInfo,
                             "%s: %s", StatusCodeName(code), message);
}

// Installed at static-init time so error propagation is captured from the
// first query on, with no explicit setup. A Status constructed before
// this translation unit initializes simply goes unrecorded.
struct ObserverInstaller {
  ObserverInstaller() {
    internal_status::SetStatusErrorObserver(&StatusErrorObserver);
  }
};
ObserverInstaller installer;

}  // namespace

}  // namespace spatialjoin
