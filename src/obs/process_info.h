#ifndef SPATIALJOIN_OBS_PROCESS_INFO_H_
#define SPATIALJOIN_OBS_PROCESS_INFO_H_

#include <cstdint>
#include <string>

namespace spatialjoin {

class JsonWriter;

/// Process-level gauges stamped into every artifact (`*.metrics.json`,
/// `*.trace.json`) so runs are comparable across machines and builds: a
/// flat speedup curve on a 1-core runner, or a slow run from a sanitizer
/// build, is then distinguishable from a real regression.
struct ProcessInfo {
  /// Peak resident set size (getrusage), 0 where unavailable.
  int64_t peak_rss_bytes = 0;
  int hardware_threads = 0;
  /// Git commit the binary was configured from ("unknown" outside git).
  std::string commit;
  /// CMAKE_BUILD_TYPE and CMAKE_CXX_FLAGS at configure time — enough to
  /// tell a sanitizer or Debug artifact from a RelWithDebInfo one.
  std::string build_type;
  std::string build_flags;
};

/// Samples the gauges now (peak RSS is a high-water mark, so sampling at
/// artifact-write time captures the run's maximum).
ProcessInfo CollectProcessInfo();

/// Writes the info as one JSON object value on `w` (caller positions the
/// writer — after a Key() or at an array slot).
void WriteProcessInfoJson(const ProcessInfo& info, JsonWriter& w);

/// The info as a standalone JSON document.
std::string ProcessInfoJson();

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_PROCESS_INFO_H_
