#ifndef SPATIALJOIN_OBS_JSON_H_
#define SPATIALJOIN_OBS_JSON_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace spatialjoin {

/// Minimal streaming JSON writer for the observability layer's exports
/// (`*.metrics.json` artifacts, trace dumps, explain-analyze reports).
/// No external dependency: the engine must stay self-contained (DESIGN.md
/// conventions), and emission is the only JSON direction we need.
///
/// Usage:
///   JsonWriter w(os);
///   w.BeginObject();
///   w.Key("count"); w.Int(3);
///   w.Key("levels"); w.BeginArray(); ... w.EndArray();
///   w.EndObject();
///
/// The writer inserts commas and indentation; callers are responsible for
/// pairing Begin/End calls and for writing a Key before each object
/// member. Non-finite doubles are emitted as `null` (JSON has no
/// NaN/Infinity literal), keeping every emitted document parseable.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& os, int indent = 2);

  void BeginObject();
  void EndObject();
  void BeginArray();
  void EndArray();

  void Key(std::string_view key);

  void String(std::string_view value);
  void Int(int64_t value);
  void Double(double value);
  void Bool(bool value);
  void Null();

  /// Convenience: Key + value in one call.
  void KV(std::string_view key, std::string_view value);
  void KV(std::string_view key, const char* value);
  void KV(std::string_view key, int64_t value);
  void KV(std::string_view key, double value);
  void KV(std::string_view key, bool value);

  /// Appends `raw` verbatim (for splicing a pre-serialized sub-document).
  void Raw(std::string_view raw);

 private:
  enum class Scope { kObject, kArray };

  // Writes the separating comma/newline/indent due before a new value or
  // key at the current nesting depth.
  void Separate();
  void Indent();
  void WriteEscaped(std::string_view s);

  std::ostream& os_;
  int indent_;
  std::vector<Scope> stack_;
  // True when something was already emitted at the current depth (a comma
  // is due before the next element).
  std::vector<bool> has_element_;
  // True immediately after Key(): the next value continues the member
  // instead of starting a new element.
  bool after_key_ = false;
};

/// Escapes `s` for inclusion in a JSON string literal (without the
/// surrounding quotes).
std::string JsonEscape(std::string_view s);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_JSON_H_
