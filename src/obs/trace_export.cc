#include "obs/trace_export.h"

#include <algorithm>
#include <fstream>
#include <set>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/process_info.h"
#include "obs/span.h"
#include "obs/timer.h"

namespace spatialjoin {

namespace {

// Reads one ring's retained window and repairs it into a balanced,
// monotonic track (drop torn/orphan events, close open spans at
// `snapshot_ns`). The owning thread may still be recording; every slot
// field is an atomic, so a racing read yields a torn event which the
// validity checks below discard.
void CollectRing(const SpanRing& ring, int64_t snapshot_ns,
                 std::vector<ExportedEvent>* out) {
  const uint64_t head = ring.head();
  const uint64_t window = std::min<uint64_t>(head, ring.capacity());

  int64_t prev_ts = 0;
  std::vector<size_t> open_begins;  // indices into *out*
  for (uint64_t i = head - window; i < head; ++i) {
    const TraceEvent& slot = ring.slot(i);
    ExportedEvent event;
    event.phase = slot.phase.load(std::memory_order_relaxed);
    event.name = slot.name.load(std::memory_order_relaxed);
    event.category = slot.category.load(std::memory_order_relaxed);
    event.ts_ns = slot.ts_ns.load(std::memory_order_relaxed);
    event.value = slot.value.load(std::memory_order_relaxed);
    event.tid = ring.tid();

    // Torn or empty slots (reader racing a wrapping writer, or a reset
    // ring) are dropped.
    if (event.name == nullptr || event.ts_ns <= 0) continue;
    if (event.phase != 'B' && event.phase != 'E' && event.phase != 'i' &&
        event.phase != 'C') {
      continue;
    }
    // Per-track monotonicity: a single thread records in time order, so
    // an out-of-order timestamp only arises from a torn read — clamp it.
    event.ts_ns = std::max(event.ts_ns, prev_ts);
    prev_ts = event.ts_ns;

    if (event.phase == 'B') {
      open_begins.push_back(out->size());
    } else if (event.phase == 'E') {
      if (open_begins.empty()) continue;  // begin lost to wraparound
      open_begins.pop_back();
    }
    out->push_back(event);
  }

  // Close spans still open at snapshot time (parked workers, spans cut by
  // the snapshot), innermost first so nesting stays well-formed.
  const int64_t close_ns = std::max(snapshot_ns, prev_ts);
  for (auto it = open_begins.rbegin(); it != open_begins.rend(); ++it) {
    const ExportedEvent& begin = (*out)[*it];
    ExportedEvent end;
    end.phase = 'E';
    end.name = begin.name;
    end.category = begin.category;
    end.tid = begin.tid;
    end.ts_ns = close_ns;
    out->push_back(end);
  }
}

}  // namespace

std::vector<ExportedEvent> CollectEvents() {
  const int64_t snapshot_ns = MonotonicNowNs();
  std::vector<ExportedEvent> events;
  for (const SpanRing* ring : Tracing::Rings()) {
    CollectRing(*ring, snapshot_ns, &events);
  }
  return events;
}

int64_t TotalDroppedEvents() {
  int64_t dropped = 0;
  for (const SpanRing* ring : Tracing::Rings()) {
    dropped += static_cast<int64_t>(ring->dropped());
  }
  return dropped;
}

void WriteChromeTrace(std::ostream& os) {
  const std::vector<ExportedEvent> events = CollectEvents();

  // The trace-event format wants microseconds; rebase to the earliest
  // event so timelines start near zero.
  int64_t base_ns = 0;
  std::set<int> exporting_tids;
  for (const ExportedEvent& event : events) {
    if (base_ns == 0 || event.ts_ns < base_ns) base_ns = event.ts_ns;
    exporting_tids.insert(event.tid);
  }

  JsonWriter w(os, /*indent=*/0);
  w.BeginObject();
  w.Key("traceEvents");
  w.BeginArray();

  // Track-name metadata: one process, one named track per ring.
  w.BeginObject();
  w.KV("ph", "M");
  w.KV("name", "process_name");
  w.KV("pid", int64_t{1});
  w.KV("tid", int64_t{0});
  w.Key("args");
  w.BeginObject();
  w.KV("name", "spatialjoin");
  w.EndObject();
  w.EndObject();
  for (const SpanRing* ring : Tracing::Rings()) {
    // Name only the tracks that export at least one event. A ring that is
    // empty (never-enabled tracing, or reset since its last event)
    // otherwise contributes a bare thread_name entry, which clutters the
    // timeline — and with *no* rings recording at all, the document would
    // be nothing but empty tracks. Skipping them keeps the degenerate
    // export a minimal, valid Chrome-trace JSON.
    if (exporting_tids.find(ring->tid()) == exporting_tids.end()) continue;
    std::string name = ring->thread_name();
    if (name.empty()) {
      name = ring->tid() == 0 ? "main" : "thread-" + std::to_string(
                                             ring->tid());
    }
    w.BeginObject();
    w.KV("ph", "M");
    w.KV("name", "thread_name");
    w.KV("pid", int64_t{1});
    w.KV("tid", static_cast<int64_t>(ring->tid()));
    w.Key("args");
    w.BeginObject();
    w.KV("name", name);
    w.EndObject();
    w.EndObject();
  }

  for (const ExportedEvent& event : events) {
    w.BeginObject();
    w.Key("ph");
    w.String(std::string_view(&event.phase, 1));
    w.KV("name", event.name);
    if (event.category != nullptr) w.KV("cat", event.category);
    w.KV("pid", int64_t{1});
    w.KV("tid", static_cast<int64_t>(event.tid));
    w.KV("ts", static_cast<double>(event.ts_ns - base_ns) / 1000.0);
    if (event.phase == 'C') {
      w.Key("args");
      w.BeginObject();
      w.KV("value", event.value);
      w.EndObject();
    } else if (event.phase == 'i') {
      w.KV("s", "t");  // instant scope: thread
    }
    w.EndObject();
  }
  w.EndArray();

  w.KV("displayTimeUnit", "ms");
  w.Key("metadata");
  w.BeginObject();
  w.Key("process");
  WriteProcessInfoJson(CollectProcessInfo(), w);
  w.KV("dropped_events", TotalDroppedEvents());
  w.EndObject();
  w.EndObject();
  os << "\n";
}

bool WriteTraceArtifact(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    // kWarn and above echo to stderr, so the operator still sees the
    // failure on the console; the structured record additionally lands in
    // any later flight dump.
    SJ_EVENT(kMessage, kWarn, "cannot write trace artifact %s",
             path.c_str());
    return false;
  }
  WriteChromeTrace(out);
  SJ_EVENT(kMessage, kInfo, "trace artifact: %s", path.c_str());
  return true;
}

}  // namespace spatialjoin
