#ifndef SPATIALJOIN_OBS_TIMER_H_
#define SPATIALJOIN_OBS_TIMER_H_

#include <chrono>

#include "obs/metrics.h"

namespace spatialjoin {

/// Wall-clock scope timer on std::chrono::steady_clock.
///
/// On destruction the elapsed nanoseconds are recorded into the optional
/// histogram and written to the optional out-parameter. Wall-clock is a
/// *secondary* metric in this engine — the paper's cost unit is page
/// accesses and θ-tests on a simulated disk (see DiskManager) — but it is
/// what "as fast as the hardware allows" optimizes, so queries report
/// both.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram = nullptr,
                       double* elapsed_ns_out = nullptr)
      : histogram_(histogram),
        out_(elapsed_ns_out),
        start_(std::chrono::steady_clock::now()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    double ns = ElapsedNs();
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<int64_t>(ns));
    }
    if (out_ != nullptr) *out_ = ns;
  }

  double ElapsedNs() const {
    auto now = std::chrono::steady_clock::now();
    return static_cast<double>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(now - start_)
            .count());
  }

 private:
  Histogram* histogram_;
  double* out_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_TIMER_H_
