#ifndef SPATIALJOIN_OBS_TIMER_H_
#define SPATIALJOIN_OBS_TIMER_H_

#include <chrono>
#include <cstdint>

#include "obs/metrics.h"

namespace spatialjoin {

// Every wall_ns in this engine — ScopedTimer, the span layer's event
// timestamps, the per-level trace attribution, and the bench timing
// helpers — measures std::chrono::steady_clock, so durations are immune
// to wall-clock adjustments and all timestamps share one monotonic axis.
static_assert(std::chrono::steady_clock::is_steady,
              "steady_clock must be monotonic for wall_ns measurements");

/// Current steady_clock time in integer nanoseconds since the clock's
/// epoch. The single source of "now" for wall_ns measurements; code that
/// needs a raw timestamp (span events, ad-hoc deltas) calls this instead
/// of touching std::chrono directly.
inline int64_t MonotonicNowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Wall-clock scope timer on std::chrono::steady_clock.
///
/// On destruction the elapsed nanoseconds are recorded into the optional
/// histogram and written to the optional out-parameter. Wall-clock is a
/// *secondary* metric in this engine — the paper's cost unit is page
/// accesses and θ-tests on a simulated disk (see DiskManager) — but it is
/// what "as fast as the hardware allows" optimizes, so queries report
/// both.
class ScopedTimer {
 public:
  explicit ScopedTimer(Histogram* histogram = nullptr,
                       double* elapsed_ns_out = nullptr)
      : histogram_(histogram),
        out_(elapsed_ns_out),
        start_ns_(MonotonicNowNs()) {}

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  ~ScopedTimer() {
    double ns = ElapsedNs();
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<int64_t>(ns));
    }
    if (out_ != nullptr) *out_ = ns;
  }

  double ElapsedNs() const {
    return static_cast<double>(MonotonicNowNs() - start_ns_);
  }

 private:
  Histogram* histogram_;
  double* out_;
  int64_t start_ns_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_TIMER_H_
