#ifndef SPATIALJOIN_OBS_TRACE_H_
#define SPATIALJOIN_OBS_TRACE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spatialjoin {

/// Snapshot of the global buffer-pool counters, used to attribute storage
/// traffic to a query (or to one level of it) by differencing. Valid under
/// the engine's single-threaded query discipline (see BufferPool): between
/// two snapshots taken by the running query, all pool traffic is its own.
struct PoolSnapshot {
  int64_t hits = 0;
  int64_t misses = 0;

  static PoolSnapshot Take();

  PoolSnapshot operator-(const PoolSnapshot& o) const {
    return PoolSnapshot{hits - o.hits, misses - o.misses};
  }
};

/// Per-height observation of one executed query, mirroring the paper's
/// per-level analysis: Algorithm SELECT's QualNodes[j] and Algorithm
/// JOIN's QualPairs[j] are worklists indexed by height j, and the cost
/// model prices each height separately (π_{h,i}·k^{i+1} nodes examined at
/// height i+1, etc.). `worklist` is therefore directly comparable to the
/// model's expected worklist size at this height.
struct TraceLevel {
  int height = 0;
  /// Entries that reached this height's worklist (QualNodes / QualPairs).
  int64_t worklist = 0;
  /// Conservative Θ-operator evaluations at this height. For Algorithm
  /// JOIN this includes the JOIN4 selection passes triggered while
  /// processing this height's QualPairs.
  int64_t theta_upper_tests = 0;
  /// Exact θ-operator evaluations (only Θ-qualifying entries pay one).
  int64_t theta_tests = 0;
  /// Worklist entries whose children were expanded (Θ-qualified).
  int64_t descended = 0;
  /// Worklist entries cut by the Θ test (subtree never visited).
  int64_t pruned = 0;
  /// Buffer-pool traffic attributed to this height.
  int64_t pool_hits = 0;
  int64_t pool_misses = 0;
  /// Wall-clock time spent at this height.
  double wall_ns = 0.0;
};

/// Structured record of one executed spatial query: per-level events plus
/// query-wide totals, serializable to JSON. Algorithms fill it when the
/// caller passes a trace (tracing is opt-in; a null trace costs nothing on
/// the hot path).
///
/// A trace belongs to one query on one thread; unlike MetricsRegistry it
/// is not shared state.
class QueryTrace {
 public:
  /// `kind` is "select" or "join"; `detail` is free-form context (the
  /// operator name, the workload, ...).
  explicit QueryTrace(std::string kind, std::string detail = "");

  /// Get-or-create the record for `height`; levels stay sorted by height.
  TraceLevel& Level(int height);

  void set_strategy(std::string strategy) { strategy_ = std::move(strategy); }
  void set_wall_ns(double ns) { wall_ns_ = ns; }
  void set_matches(int64_t n) { matches_ = n; }

  const std::string& kind() const { return kind_; }
  const std::string& detail() const { return detail_; }
  const std::string& strategy() const { return strategy_; }
  double wall_ns() const { return wall_ns_; }
  int64_t matches() const { return matches_; }
  const std::vector<TraceLevel>& levels() const { return levels_; }

  /// Sums over all levels.
  int64_t TotalWorklist() const;
  int64_t TotalThetaUpperTests() const;
  int64_t TotalThetaTests() const;
  int64_t TotalPoolHits() const;
  int64_t TotalPoolMisses() const;
  /// hits / (hits + misses); 0 when no pool traffic was attributed.
  double PoolHitRate() const;

  /// Serializes the trace:
  ///   {"kind": ..., "strategy": ..., "wall_ns": ..., "totals": {...},
  ///    "levels": [{"height": 0, "worklist": 1, ...}, ...]}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  std::string kind_;
  std::string detail_;
  std::string strategy_;
  double wall_ns_ = 0.0;
  int64_t matches_ = 0;
  std::vector<TraceLevel> levels_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_TRACE_H_
