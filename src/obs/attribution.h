#ifndef SPATIALJOIN_OBS_ATTRIBUTION_H_
#define SPATIALJOIN_OBS_ATTRIBUTION_H_

#include <atomic>
#include <cstdint>

namespace spatialjoin {
namespace attribution {

/// Per-query resource attribution (DESIGN.md §13).
///
/// The engine's layers already emit page accesses and pair counts into
/// the process-wide MetricsRegistry; those aggregates answer "what is the
/// engine doing" but not "which query is doing it". Attribution closes
/// that gap: the owner of a query installs a `QueryCharges` sink for the
/// duration of the query body (QueryChargeScope), and every charge hook
/// hit by any thread working *for that query* lands in the sink.
///
/// Propagation across the work-stealing pool is the load-bearing part:
/// ThreadPool::Submit captures the submitting thread's current sink and
/// re-installs it around the task body, so a ParallelTreeJoin chunk that
/// gets stolen by another worker — or helped along by a waiting caller —
/// still charges the query that spawned it, at any thread count. The
/// pool wrapper also measures the task's queue wait (submit → run) and
/// charges it to the same sink.
///
/// Hot-path discipline: a hook is one thread-local load, a null check,
/// and one relaxed fetch_add — no allocation, no locks, no branches the
/// predictor cannot fold, so the hooks are legal inside SJ_HOT code and
/// cost nothing when no query scope is installed (the thread-local is
/// null outside query execution).
///
/// Exactness contract (pinned by tests/attribution_test.cc): charges are
/// neither lost nor double-counted — the per-query sums over any set of
/// concurrent queries equal the deltas of the corresponding global
/// registry counters, provided every charging call site runs inside some
/// query's scope.

/// Plain-value snapshot of one query's accumulated charges.
struct Charges {
  int64_t pages_read = 0;     ///< buffer-pool misses (disk page reads)
  int64_t pages_hit = 0;      ///< buffer-pool hits
  int64_t pairs_examined = 0; ///< Θ-filter pairs (theta_upper_tests)
  int64_t qual_pairs = 0;     ///< QualPairs worklist entries examined
  int64_t queue_wait_ns = 0;  ///< summed pool-task submit→run waits
  int64_t pool_tasks = 0;     ///< pool tasks that ran under this sink
};

/// Lock-free accumulator shared by every thread charging one query.
/// Writers use relaxed atomics; Snapshot() taken after the query body
/// joined (quiescence) is exact.
class QueryCharges {
 public:
  void AddPagesRead(int64_t n) {
    pages_read_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddPagesHit(int64_t n) {
    pages_hit_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddPairsExamined(int64_t n) {
    pairs_examined_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddQualPairs(int64_t n) {
    qual_pairs_.fetch_add(n, std::memory_order_relaxed);
  }
  void AddQueueWait(int64_t ns) {
    queue_wait_ns_.fetch_add(ns, std::memory_order_relaxed);
  }
  void AddPoolTask() { pool_tasks_.fetch_add(1, std::memory_order_relaxed); }

  Charges Snapshot() const {
    Charges c;
    c.pages_read = pages_read_.load(std::memory_order_relaxed);
    c.pages_hit = pages_hit_.load(std::memory_order_relaxed);
    c.pairs_examined = pairs_examined_.load(std::memory_order_relaxed);
    c.qual_pairs = qual_pairs_.load(std::memory_order_relaxed);
    c.queue_wait_ns = queue_wait_ns_.load(std::memory_order_relaxed);
    c.pool_tasks = pool_tasks_.load(std::memory_order_relaxed);
    return c;
  }

 private:
  std::atomic<int64_t> pages_read_{0};
  std::atomic<int64_t> pages_hit_{0};
  std::atomic<int64_t> pairs_examined_{0};
  std::atomic<int64_t> qual_pairs_{0};
  std::atomic<int64_t> queue_wait_ns_{0};
  std::atomic<int64_t> pool_tasks_{0};
};

namespace internal {
/// The calling thread's active sink; null outside any query scope. Only
/// QueryChargeScope writes it (hooks read it), so install/restore pairs
/// are strictly nested per thread.
extern thread_local QueryCharges* tls_charges;
}  // namespace internal

/// RAII installation of `charges` as the calling thread's sink. Restores
/// the previous sink on destruction, so scopes nest (an embedded query
/// executed inside another query's task charges the inner sink only).
/// Null `charges` is legal and suspends attribution inside the scope.
class QueryChargeScope {
 public:
  explicit QueryChargeScope(QueryCharges* charges)
      : prev_(internal::tls_charges) {
    internal::tls_charges = charges;
  }
  ~QueryChargeScope() { internal::tls_charges = prev_; }

  QueryChargeScope(const QueryChargeScope&) = delete;
  QueryChargeScope& operator=(const QueryChargeScope&) = delete;

 private:
  QueryCharges* const prev_;
};

/// The calling thread's active sink (null outside query scopes). The
/// thread pool uses this to propagate the sink onto spawned tasks.
inline QueryCharges* CurrentCharges() { return internal::tls_charges; }

// --- Charge hooks (hot-path safe; no-ops without an installed sink) ----

inline void ChargePagesRead(int64_t n = 1) {
  if (QueryCharges* c = internal::tls_charges) c->AddPagesRead(n);
}
inline void ChargePagesHit(int64_t n = 1) {
  if (QueryCharges* c = internal::tls_charges) c->AddPagesHit(n);
}
inline void ChargePairsExamined(int64_t n) {
  if (QueryCharges* c = internal::tls_charges) c->AddPairsExamined(n);
}
inline void ChargeQualPairs(int64_t n) {
  if (QueryCharges* c = internal::tls_charges) c->AddQualPairs(n);
}

}  // namespace attribution
}  // namespace spatialjoin

#endif  // SPATIALJOIN_OBS_ATTRIBUTION_H_
