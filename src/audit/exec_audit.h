#ifndef SPATIALJOIN_AUDIT_EXEC_AUDIT_H_
#define SPATIALJOIN_AUDIT_EXEC_AUDIT_H_

#include "audit/audit_report.h"
#include "exec/thread_pool.h"

namespace spatialjoin {
namespace audit {

/// Validator for the exec layer's thread pool (DESIGN.md §7). Meant to
/// run between queries, when the pool should be quiescent — a pool with
/// work in flight legitimately fails the conservation checks, so call
/// sites audit after ParallelFor/TaskGroup::Wait returned.
///
/// Checks:
///  * the pool has at least one worker;
///  * task conservation: submitted == executed + queued (every submitted
///    task is either done or still waiting — none lost, none duplicated);
///  * a quiescent pool has nothing queued;
///  * stolen tasks are a subset of executed tasks.
AuditReport AuditThreadPool(const exec::ThreadPool& pool);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_EXEC_AUDIT_H_
