#ifndef SPATIALJOIN_AUDIT_HEAP_AUDIT_H_
#define SPATIALJOIN_AUDIT_HEAP_AUDIT_H_

#include "audit/audit_report.h"
#include "storage/heap_file.h"
#include "storage/page.h"

namespace spatialjoin {
namespace audit {

/// Validates one slotted page image (layout documented in
/// slotted_page.h). Checks:
///  * the slot directory fits on the page and does not cross free_end;
///  * free_end is within the page;
///  * every live slot's record [offset, offset + length) lies between
///    free_end and the page end (no overlap with the directory or the
///    free region);
///  * live records do not overlap each other.
/// Violation paths are "slot[i]" relative to the page.
AuditReport AuditSlottedPage(const Page& page);

/// Validates a heap file: every page passes AuditSlottedPage, page ids
/// are unique and within the backing disk, and the live-record total
/// matches num_records() (free-space accounting is per page). Violation
/// paths are "page[i]/slot[j]" with i the position in the file's page
/// directory.
AuditReport AuditHeapFile(const HeapFile& file);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_HEAP_AUDIT_H_
