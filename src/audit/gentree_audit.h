#ifndef SPATIALJOIN_AUDIT_GENTREE_AUDIT_H_
#define SPATIALJOIN_AUDIT_GENTREE_AUDIT_H_

#include "audit/audit_report.h"
#include "core/gentree.h"

namespace spatialjoin {
namespace audit {

/// Validator for any GeneralizationTree implementation — the R-tree
/// adapter, the quadtree, or an application hierarchy (Fig. 3). This is
/// the PART-OF invariant of §3.1 stated on the abstract interface: except
/// for the root, every node's region is completely contained in its
/// parent's region, which is what makes Algorithm SELECT/JOIN pruning
/// sound for every conservative Θ-operator of Table 1.
///
/// Checks, per node reached from the root:
///  * MbrOf(child) contained in MbrOf(parent) — the PART-OF invariant;
///  * HeightOf increases by exactly 1 per edge (paper convention: root at
///    height 0, heights grow downward);
///  * application nodes carry a valid tuple id and technical nodes do not;
///  * no node reached twice (the structure is a tree, not a DAG);
///  * totals: nodes reached == num_nodes(), deepest leaf == height().
AuditReport AuditGenTree(const GeneralizationTree& tree);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_GENTREE_AUDIT_H_
