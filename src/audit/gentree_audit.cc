#include "audit/gentree_audit.h"

#include <string>
#include <unordered_set>

#include "relational/tuple.h"

namespace spatialjoin {
namespace audit {

namespace {

struct GenTreeWalk {
  const GeneralizationTree* tree = nullptr;
  AuditReport* report = nullptr;
  std::unordered_set<NodeId> visited;
  int64_t nodes_reached = 0;
  int deepest = 0;

  void Visit(NodeId node, int expected_height, const std::string& path) {
    report->CountCheck();
    if (!visited.insert(node).second) {
      report->AddError(path, "node " + std::to_string(node) +
                                 " reached twice (not a tree)");
      return;
    }
    ++nodes_reached;
    if (expected_height > deepest) deepest = expected_height;

    report->CountCheck();
    if (tree->HeightOf(node) != expected_height) {
      report->AddError(path, "HeightOf = " +
                                 std::to_string(tree->HeightOf(node)) +
                                 ", expected " +
                                 std::to_string(expected_height));
    }
    report->CountCheck();
    bool has_tuple = tree->TupleOf(node) != kInvalidTupleId;
    if (tree->IsApplicationNode(node) != has_tuple) {
      report->AddError(path, has_tuple
                                 ? "technical node carries a tuple id"
                                 : "application node without a tuple id");
    }

    Rectangle mbr = tree->MbrOf(node);
    std::vector<NodeId> children = tree->Children(node);
    for (size_t i = 0; i < children.size(); ++i) {
      std::string child_path = path + "/child[" + std::to_string(i) + "]";
      Rectangle child_mbr = tree->MbrOf(children[i]);
      report->CountCheck();
      if (!mbr.Contains(child_mbr)) {
        report->AddError(child_path,
                         "PART-OF violation: child region " +
                             child_mbr.ToString() +
                             " not contained in parent region " +
                             mbr.ToString());
      }
      Visit(children[i], expected_height + 1, child_path);
    }
  }
};

}  // namespace

AuditReport AuditGenTree(const GeneralizationTree& tree) {
  AuditReport report("gentree");
  GenTreeWalk walk;
  walk.tree = &tree;
  walk.report = &report;
  walk.Visit(tree.root(), 0, "root");

  report.CountCheck();
  if (walk.nodes_reached != tree.num_nodes()) {
    report.AddError("root", "reached " + std::to_string(walk.nodes_reached) +
                                " nodes, tree reports " +
                                std::to_string(tree.num_nodes()));
  }
  // A childless root leaves height() implementation-defined (an empty
  // R-tree adapter reports its page height), so only check with children.
  report.CountCheck();
  if (walk.nodes_reached > 1 && walk.deepest != tree.height()) {
    report.AddError("root", "deepest leaf at height " +
                                std::to_string(walk.deepest) +
                                ", tree reports height " +
                                std::to_string(tree.height()));
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
