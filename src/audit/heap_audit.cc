#include "audit/heap_audit.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "storage/slotted_page.h"

namespace spatialjoin {
namespace audit {

namespace {

// Mirrors the on-page layout documented in slotted_page.h; the auditor
// deliberately re-parses the raw bytes instead of trusting the accessors
// it is meant to validate.
constexpr size_t kHeaderSize = 4;
constexpr size_t kSlotSize = 4;

uint16_t LoadU16(const Page& page, size_t pos) {
  uint16_t v;
  std::memcpy(&v, page.bytes() + pos, sizeof(v));
  return v;
}

}  // namespace

AuditReport AuditSlottedPage(const Page& page) {
  AuditReport report("slotted_page");
  if (page.size() < kHeaderSize) {
    report.CountCheck();
    report.AddError("header", "page of " + std::to_string(page.size()) +
                                  " bytes cannot hold a slotted header");
    return report.Finish();
  }
  uint16_t num_slots = LoadU16(page, 0);
  uint16_t free_end = LoadU16(page, 2);
  size_t slots_end = kHeaderSize + kSlotSize * num_slots;

  report.CountCheck();
  if (slots_end > page.size()) {
    report.AddError("header", "slot directory of " +
                                  std::to_string(num_slots) +
                                  " slots overruns the page");
    return report.Finish();
  }
  report.CountCheck();
  if (free_end > page.size()) {
    report.AddError("header", "free_end " + std::to_string(free_end) +
                                  " beyond page size " +
                                  std::to_string(page.size()));
  }
  report.CountCheck();
  if (free_end < slots_end) {
    report.AddError("header", "free_end " + std::to_string(free_end) +
                                  " inside the slot directory (ends at " +
                                  std::to_string(slots_end) + ")");
  }

  // Live records must sit in [free_end, page size) and not overlap.
  std::vector<std::pair<uint32_t, uint32_t>> extents;  // (offset, end)
  for (uint16_t s = 0; s < num_slots; ++s) {
    std::string path = "slot[" + std::to_string(s) + "]";
    uint16_t offset = LoadU16(page, kHeaderSize + kSlotSize * s);
    uint16_t length = LoadU16(page, kHeaderSize + kSlotSize * s + 2);
    if (offset == 0) {
      report.CountCheck();
      if (length != 0) {
        report.AddError(path, "deleted slot with non-zero length " +
                                  std::to_string(length));
      }
      continue;
    }
    uint32_t end = static_cast<uint32_t>(offset) + length;
    report.CountCheck();
    if (end > page.size()) {
      report.AddError(path, "record [" + std::to_string(offset) + ", " +
                                std::to_string(end) + ") overruns the page");
      continue;
    }
    report.CountCheck();
    if (offset < free_end) {
      report.AddError(path, "record offset " + std::to_string(offset) +
                                " inside the free region (free_end " +
                                std::to_string(free_end) + ")");
    }
    extents.emplace_back(offset, end);
  }

  std::sort(extents.begin(), extents.end());
  for (size_t i = 1; i < extents.size(); ++i) {
    report.CountCheck();
    if (extents[i].first < extents[i - 1].second) {
      report.AddError("slots",
                      "live records overlap: [" +
                          std::to_string(extents[i - 1].first) + ", " +
                          std::to_string(extents[i - 1].second) + ") and [" +
                          std::to_string(extents[i].first) + ", " +
                          std::to_string(extents[i].second) + ")");
    }
  }
  return report.Finish();
}

AuditReport AuditHeapFile(const HeapFile& file) {
  AuditReport report("heap_file");
  BufferPool* pool = file.pool();
  int64_t disk_pages = pool->disk()->num_pages();
  std::unordered_set<PageId> seen;
  int64_t live_records = 0;

  const std::vector<PageId>& pages = file.pages();
  for (size_t i = 0; i < pages.size(); ++i) {
    std::string path = "page[" + std::to_string(i) + "]";
    PageId pid = pages[i];
    report.CountCheck();
    if (pid < 0 || pid >= disk_pages) {
      report.AddError(path, "page id " + std::to_string(pid) +
                                " outside disk of " +
                                std::to_string(disk_pages) + " pages");
      continue;
    }
    report.CountCheck();
    if (!seen.insert(pid).second) {
      report.AddError(path, "page " + std::to_string(pid) +
                                " appears twice in the directory");
      continue;
    }
    const Page* page = pool->GetPage(pid);
    report.Merge(AuditSlottedPage(*page), path + "/");
    for (uint16_t s = 0; s < slotted::NumSlots(*page); ++s) {
      if (slotted::Read(*page, s).has_value()) ++live_records;
    }
  }

  report.CountCheck();
  if (live_records != file.num_records()) {
    report.AddError("directory",
                    "live records " + std::to_string(live_records) +
                        " disagree with num_records() " +
                        std::to_string(file.num_records()));
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
