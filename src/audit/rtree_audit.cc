#include "audit/rtree_audit.h"

#include <cstdint>
#include <string>
#include <unordered_set>

#include "geometry/rectangle.h"
#include "storage/disk_manager.h"

namespace spatialjoin {
namespace audit {

namespace {

struct RTreeWalk {
  const RTree* tree = nullptr;
  AuditReport* report = nullptr;
  int64_t disk_pages = 0;
  std::unordered_set<PageId> visited;
  int64_t entries_reached = 0;
  int64_t nodes_reached = 0;

  // Walks the node on `pid`; `expected_mbr` is the parent's entry for this
  // node (empty for the root, which has no enclosing entry).
  void Visit(PageId pid, int expected_level, const Rectangle& expected_mbr,
             const std::string& path) {
    report->CountCheck();
    if (pid < 0 || pid >= disk_pages) {
      report->AddError(path, "child page id " + std::to_string(pid) +
                                 " outside disk of " +
                                 std::to_string(disk_pages) + " pages");
      return;
    }
    report->CountCheck();
    if (!visited.insert(pid).second) {
      report->AddError(path, "page " + std::to_string(pid) +
                                 " reached twice (aliased entry)");
      return;
    }
    ++nodes_reached;

    RTree::NodeView node = tree->ReadNode(pid);
    report->CountCheck();
    if (node.level != expected_level) {
      report->AddError(path, "level " + std::to_string(node.level) +
                                 ", expected " +
                                 std::to_string(expected_level) +
                                 " (non-uniform leaf depth)");
    }
    report->CountCheck();
    if (node.is_leaf != (node.level == 0)) {
      report->AddError(path, std::string("is_leaf flag disagrees with ") +
                                 "level " + std::to_string(node.level));
    }
    int count = static_cast<int>(node.mbrs.size());
    report->CountCheck();
    if (count > tree->max_entries()) {
      report->AddError(path, "fan-out " + std::to_string(count) +
                                 " exceeds max_entries " +
                                 std::to_string(tree->max_entries()));
    }
    bool is_root = path == "root";
    report->CountCheck();
    if (is_root) {
      if (!node.is_leaf && count < 2) {
        report->AddError(path, "non-leaf root with fan-out " +
                                   std::to_string(count));
      }
    } else if (count < tree->min_entries()) {
      report->AddError(path, "fan-out " + std::to_string(count) +
                                 " below min_entries " +
                                 std::to_string(tree->min_entries()));
    }

    // PART-OF: every entry of this node lies inside the parent's entry.
    Rectangle tight;
    for (size_t i = 0; i < node.mbrs.size(); ++i) {
      const Rectangle& entry = node.mbrs[i];
      std::string entry_path = path + "/entry[" + std::to_string(i) + "]";
      report->CountCheck();
      if (entry.is_empty()) {
        report->AddError(entry_path, "empty entry MBR");
        continue;
      }
      tight.Extend(entry);
      if (!expected_mbr.is_empty()) {
        report->CountCheck();
        if (!expected_mbr.Contains(entry)) {
          report->AddError(entry_path,
                           "PART-OF violation: entry " + entry.ToString() +
                               " not contained in parent entry " +
                               expected_mbr.ToString());
        }
      }
    }
    // Tightness: the parent's entry must be exactly the bounding box of
    // this node, or searches pay for dead space the tree never shrinks.
    if (!expected_mbr.is_empty() && count > 0) {
      report->CountCheck();
      if (expected_mbr.Contains(tight) && expected_mbr != tight) {
        report->AddWarning(path, "untight parent entry " +
                                     expected_mbr.ToString() +
                                     " for node box " + tight.ToString());
      }
    }

    if (node.is_leaf) {
      entries_reached += count;
      return;
    }
    for (size_t i = 0; i < node.payloads.size(); ++i) {
      Visit(node.payloads[i], expected_level - 1, node.mbrs[i],
            path + "/child[" + std::to_string(i) + "]");
    }
  }
};

}  // namespace

AuditReport AuditRTree(const RTree& tree) {
  AuditReport report("rtree");
  RTreeWalk walk;
  walk.tree = &tree;
  walk.report = &report;
  walk.disk_pages = tree.pool()->disk()->num_pages();
  walk.Visit(tree.root_page(), tree.height() - 1, Rectangle::Empty(), "root");

  report.CountCheck();
  if (walk.entries_reached != tree.num_entries()) {
    report.AddError("root", "reached " +
                                std::to_string(walk.entries_reached) +
                                " data entries, tree reports " +
                                std::to_string(tree.num_entries()));
  }
  report.CountCheck();
  if (walk.nodes_reached != tree.num_nodes()) {
    report.AddError("root", "reached " + std::to_string(walk.nodes_reached) +
                                " nodes, tree reports " +
                                std::to_string(tree.num_nodes()));
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
