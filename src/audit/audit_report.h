#ifndef SPATIALJOIN_AUDIT_AUDIT_REPORT_H_
#define SPATIALJOIN_AUDIT_AUDIT_REPORT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace spatialjoin {
namespace audit {

/// Gravity of one invariant violation. Errors are structural corruption
/// that makes SELECT/JOIN answers unreliable (a broken PART-OF containment,
/// an out-of-bounds slot); warnings are degradations that stay correct but
/// betray a maintenance bug (an untight parent MBR, an underfull leaf).
enum class Severity {
  kWarning,
  kError,
};

const char* SeverityName(Severity severity);

/// One violated invariant, located by a path from the structure's root
/// ("root/child[2]/entry[0]", "page[7]/slot[3]") so the offending node can
/// be found without re-running the audit.
struct Violation {
  Severity severity = Severity::kError;
  std::string path;
  std::string message;
};

/// Machine-readable result of one auditor pass over one structure.
///
/// Every auditor in this subsystem walks its structure exhaustively and
/// returns an AuditReport instead of aborting on the first problem, so a
/// single pass over a corrupted index yields the full damage picture.
/// `Finish()` publishes the pass into the MetricsRegistry counter family
/// `audit.runs` / `audit.violations` (plus per-subject
/// `audit.<subject>.runs` / `.violations`).
class AuditReport {
 public:
  explicit AuditReport(std::string subject);

  const std::string& subject() const { return subject_; }
  int64_t checks_run() const { return checks_run_; }
  const std::vector<Violation>& violations() const { return violations_; }

  bool ok() const { return violations_.empty(); }
  int64_t error_count() const;
  int64_t warning_count() const;

  /// Counts one executed invariant check (auditors call this per check so
  /// "0 violations" is distinguishable from "audited nothing").
  void CountCheck(int64_t n = 1) { checks_run_ += n; }

  void Add(Severity severity, std::string path, std::string message);
  void AddError(std::string path, std::string message);
  void AddWarning(std::string path, std::string message);

  /// Folds `other` into this report, prefixing its paths with
  /// `path_prefix` ("page[3]/" + "slot[1]" → "page[3]/slot[1]").
  void Merge(const AuditReport& other, const std::string& path_prefix = "");

  /// Publishes the pass to the metrics registry. Call exactly once, after
  /// the walk completes; returns *this for `return report.Finish();`.
  AuditReport& Finish();

  /// Human-readable summary: one header line plus one line per violation.
  std::string ToString() const;

  /// {"subject": ..., "checks_run": N, "violations": [{...}]}
  void WriteJson(std::ostream& os) const;
  std::string ToJson() const;

 private:
  std::string subject_;
  int64_t checks_run_ = 0;
  std::vector<Violation> violations_;
};

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_AUDIT_REPORT_H_
