#include "audit/exec_audit.h"

#include <sstream>

namespace spatialjoin {
namespace audit {

AuditReport AuditThreadPool(const exec::ThreadPool& pool) {
  AuditReport report("thread_pool");
  const exec::ThreadPool::Stats stats = pool.stats();
  const bool quiescent = pool.Quiescent();

  report.CountCheck();
  if (stats.workers < 1) {
    report.AddError("pool", "pool has no workers");
  }

  if (quiescent) {
    report.CountCheck();
    if (stats.tasks_submitted != stats.tasks_executed) {
      std::ostringstream os;
      os << "task conservation violated: submitted=" << stats.tasks_submitted
         << " executed=" << stats.tasks_executed
         << " (quiescent pool — none may be pending)";
      report.AddError("pool", os.str());
    }

    report.CountCheck();
    if (stats.tasks_queued != 0) {
      std::ostringstream os;
      os << "quiescent pool still has " << stats.tasks_queued
         << " queued tasks";
      report.AddError("pool", os.str());
    }
  } else {
    // With work in flight the counters form an inequality, not an
    // equation: executed + queued never exceeds submitted.
    report.CountCheck();
    if (stats.tasks_executed + stats.tasks_queued > stats.tasks_submitted) {
      std::ostringstream os;
      os << "task conservation violated: submitted=" << stats.tasks_submitted
         << " executed=" << stats.tasks_executed
         << " queued=" << stats.tasks_queued;
      report.AddError("pool", os.str());
    }
    report.AddWarning("pool", "audited while tasks were in flight");
  }

  report.CountCheck();
  if (stats.tasks_stolen > stats.tasks_executed) {
    std::ostringstream os;
    os << "stolen=" << stats.tasks_stolen << " exceeds executed="
       << stats.tasks_executed;
    report.AddError("pool", os.str());
  }

  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
