#ifndef SPATIALJOIN_AUDIT_BUFFERPOOL_AUDIT_H_
#define SPATIALJOIN_AUDIT_BUFFERPOOL_AUDIT_H_

#include "audit/audit_report.h"
#include "storage/buffer_pool.h"

namespace spatialjoin {
namespace audit {

/// Validates a buffer pool's frame accounting against its DiskManager:
///  * resident frames never exceed capacity_pages();
///  * every resident frame caches a page the disk has actually allocated
///    (no frame for a page id outside [0, disk->num_pages()));
///  * no page is cached in two frames (the frame list and the page index
///    would disagree on which copy is authoritative);
///  * stats invariants: hits, misses, evictions are non-negative, and
///    evictions never exceed misses + new-page faults (every evicted
///    frame was once faulted in).
AuditReport AuditBufferPool(const BufferPool& pool);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_BUFFERPOOL_AUDIT_H_
