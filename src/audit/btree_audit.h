#ifndef SPATIALJOIN_AUDIT_BTREE_AUDIT_H_
#define SPATIALJOIN_AUDIT_BTREE_AUDIT_H_

#include "audit/audit_report.h"
#include "btree/bplus_tree.h"

namespace spatialjoin {
namespace audit {

/// Structural validator for the B⁺-tree backing join indices (modeling
/// assumption S4). Checks, per node reached from the root:
///  * keys non-decreasing within the node (duplicates are legal);
///  * every key within the inclusive separator bounds inherited from the
///    ancestors — inclusive on both sides because a leaf split may cut a
///    run of equal keys, leaving keys equal to the separator in both
///    subtrees;
///  * fan-out at most max_leaf_entries / max_internal_entries; an empty
///    non-root node is an error, a less-than-half-full one only a warning
///    (deletion is lazy by design, see bplus_tree.h);
///  * uniform leaf depth;
///  * node page ids within the backing disk, no page reached twice;
///  * the leaf chain visits exactly the tree's leaves, left to right, with
///    keys non-decreasing across links and a null `next` on the last leaf;
///  * totals: entries reached == num_entries(), pages reached ==
///    num_pages().
AuditReport AuditBPlusTree(const BPlusTree& tree);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_BTREE_AUDIT_H_
