#include "audit/audit_report.h"

#include <sstream>
#include <utility>

#include "obs/event_log.h"
#include "obs/json.h"
#include "obs/metrics.h"

namespace spatialjoin {
namespace audit {

const char* SeverityName(Severity severity) {
  switch (severity) {
    case Severity::kWarning:
      return "warning";
    case Severity::kError:
      return "error";
  }
  return "unknown";
}

AuditReport::AuditReport(std::string subject) : subject_(std::move(subject)) {}

int64_t AuditReport::error_count() const {
  int64_t n = 0;
  for (const Violation& v : violations_) {
    if (v.severity == Severity::kError) ++n;
  }
  return n;
}

int64_t AuditReport::warning_count() const {
  return static_cast<int64_t>(violations_.size()) - error_count();
}

void AuditReport::Add(Severity severity, std::string path,
                      std::string message) {
  violations_.push_back(
      Violation{severity, std::move(path), std::move(message)});
}

void AuditReport::AddError(std::string path, std::string message) {
  Add(Severity::kError, std::move(path), std::move(message));
}

void AuditReport::AddWarning(std::string path, std::string message) {
  Add(Severity::kWarning, std::move(path), std::move(message));
}

void AuditReport::Merge(const AuditReport& other,
                        const std::string& path_prefix) {
  checks_run_ += other.checks_run_;
  for (const Violation& v : other.violations_) {
    violations_.push_back(
        Violation{v.severity, path_prefix + v.path, v.message});
  }
}

AuditReport& AuditReport::Finish() {
  MetricsRegistry& registry = MetricsRegistry::Global();
  registry.GetCounter("audit.runs")->Increment();
  registry.GetCounter("audit.violations")
      ->Increment(static_cast<int64_t>(violations_.size()));
  registry.GetCounter("audit." + subject_ + ".runs")->Increment();
  registry.GetCounter("audit." + subject_ + ".violations")
      ->Increment(static_cast<int64_t>(violations_.size()));
  if (!violations_.empty()) {
    // First violation inline: the event-log tail of a flight dump should
    // name the corruption, not just count it. Errors echo (kError ≥ the
    // default stderr threshold); warning-only reports stay quiet.
    EventLog::Global().Recordf(
        EventType::kAuditFinding,
        error_count() > 0 ? EventSeverity::kError : EventSeverity::kWarn,
        "audit[%s]: %lld errors, %lld warnings; first: %s: %s",
        subject_.c_str(), static_cast<long long>(error_count()),
        static_cast<long long>(warning_count()),
        violations_.front().path.c_str(),
        violations_.front().message.c_str());
  }
  return *this;
}

std::string AuditReport::ToString() const {
  std::ostringstream os;
  os << "audit[" << subject_ << "]: " << checks_run_ << " checks, "
     << error_count() << " errors, " << warning_count() << " warnings";
  for (const Violation& v : violations_) {
    os << "\n  " << SeverityName(v.severity) << " at " << v.path << ": "
       << v.message;
  }
  return os.str();
}

void AuditReport::WriteJson(std::ostream& os) const {
  JsonWriter w(os);
  w.BeginObject();
  w.KV("subject", subject_);
  w.KV("checks_run", checks_run_);
  w.KV("errors", error_count());
  w.KV("warnings", warning_count());
  w.Key("violations");
  w.BeginArray();
  for (const Violation& v : violations_) {
    w.BeginObject();
    w.KV("severity", SeverityName(v.severity));
    w.KV("path", v.path);
    w.KV("message", v.message);
    w.EndObject();
  }
  w.EndArray();
  w.EndObject();
}

std::string AuditReport::ToJson() const {
  std::ostringstream os;
  WriteJson(os);
  os << "\n";
  return os.str();
}

}  // namespace audit
}  // namespace spatialjoin
