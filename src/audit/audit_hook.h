#ifndef SPATIALJOIN_AUDIT_AUDIT_HOOK_H_
#define SPATIALJOIN_AUDIT_AUDIT_HOOK_H_

#include "audit/audit_report.h"
#include "btree/bplus_tree.h"
#include "core/gentree.h"
#include "exec/thread_pool.h"
#include "rtree/rtree.h"
#include "storage/buffer_pool.h"
#include "storage/heap_file.h"

namespace spatialjoin {
namespace audit {

/// How aggressively the post-operation audit hooks run. Controlled by the
/// SJ_AUDIT_LEVEL environment variable ("0"/"off", "1"/"basic",
/// "2"/"paranoid"; unset means off), overridable in-process via
/// SetAuditLevel.
///
///  * kOff      — hooks are no-ops; production setting.
///  * kBasic    — checkpoint audits run (hooks registered with
///                min_level = kBasic, e.g. end-of-test validation).
///  * kParanoid — every hook runs, including the after-every-mutation
///                hooks in the randomized property harness. O(structure)
///                per mutation; debug/test setting only.
enum class AuditLevel {
  kOff = 0,
  kBasic = 1,
  kParanoid = 2,
};

/// The active level: the last SetAuditLevel value, else SJ_AUDIT_LEVEL
/// from the environment (parsed once), else kOff.
AuditLevel CurrentAuditLevel();

/// Overrides the environment for this process (tests set kParanoid to
/// force the per-op hooks on regardless of the invoking shell).
void SetAuditLevel(AuditLevel level);

/// True iff the active level is at least `at_least`.
bool AuditEnabled(AuditLevel at_least);

/// Aborts via SJ_CHECK with the full report text if the report contains
/// errors. Warnings do not abort: untight MBRs and underfull lazy-delete
/// leaves are legal states the auditors still surface.
void Enforce(const AuditReport& report);

/// Post-operation hooks: if the active level is >= `min_level`, audit the
/// structure and abort on errors; otherwise do nothing. Call sites in
/// tests wire these after mutating operations.
void MaybeAudit(const RTree& tree,
                AuditLevel min_level = AuditLevel::kParanoid);
void MaybeAudit(const BPlusTree& tree,
                AuditLevel min_level = AuditLevel::kParanoid);
void MaybeAudit(const HeapFile& file,
                AuditLevel min_level = AuditLevel::kParanoid);
void MaybeAudit(const BufferPool& pool,
                AuditLevel min_level = AuditLevel::kParanoid);
void MaybeAudit(const GeneralizationTree& tree,
                AuditLevel min_level = AuditLevel::kParanoid);
void MaybeAudit(const exec::ThreadPool& pool,
                AuditLevel min_level = AuditLevel::kParanoid);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_AUDIT_HOOK_H_
