#ifndef SPATIALJOIN_AUDIT_RTREE_AUDIT_H_
#define SPATIALJOIN_AUDIT_RTREE_AUDIT_H_

#include "audit/audit_report.h"
#include "rtree/rtree.h"

namespace spatialjoin {
namespace audit {

/// Structural validator for the R-tree as a generalization tree
/// (paper §3.1). The PART-OF invariant — every child region completely
/// contained in its parent — is what licenses the conservative Θ-operator
/// of Table 1 to prune subtrees; a violation here means SELECT/JOIN can
/// silently drop true θ-matches, so containment breaks are errors.
///
/// Checks, per node reached from the root:
///  * parent entry MBR contains every MBR of the child node (PART-OF);
///  * parent entry MBR is the *tight* bounding box of the child
///    (untight-but-containing is a warning: correct answers, wasted I/O);
///  * fan-out within [min_entries, max_entries] (root exempt from the
///    lower bound; a non-leaf root must have >= 2 entries);
///  * level decreases by exactly 1 per edge and leaves sit at level 0, so
///    all leaves have uniform depth;
///  * `is_leaf` agrees with `level == 0`;
///  * child page ids are within the backing disk and no page is reached
///    twice (no dangling or aliased entries);
///  * no entry MBR is the empty rectangle;
///  * totals: entries reached == num_entries(), nodes reached ==
///    num_nodes(), root level == height() - 1.
AuditReport AuditRTree(const RTree& tree);

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_RTREE_AUDIT_H_
