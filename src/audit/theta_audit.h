#ifndef SPATIALJOIN_AUDIT_THETA_AUDIT_H_
#define SPATIALJOIN_AUDIT_THETA_AUDIT_H_

#include <cstdint>

#include "audit/audit_report.h"
#include "core/theta_ops.h"
#include "geometry/rectangle.h"

namespace spatialjoin {
namespace audit {

/// Options for the randomized Θ-soundness check.
struct ThetaSoundnessOptions {
  /// Randomized geometry pairs tested per operator.
  int64_t pairs = 100000;
  /// Seed for the common Rng; the witness report names the failing pair's
  /// index so a failure reproduces from (seed, index).
  uint64_t seed = 42;
  /// Region the random geometries are drawn from.
  Rectangle world = Rectangle(0.0, 0.0, 1000.0, 1000.0);
};

/// Exhaustively samples the defining property of a θ/Θ pair (paper §3.1):
///
///     θ(a, b)  ⇒  Θ(mbr(a), mbr(b))
///
/// over randomized points, rectangles and polygons. Half the pairs are
/// drawn on a coarse coordinate grid so boundary cases (touching edges,
/// shared corners — the AdjacentOp regime of Fig. 1) occur with real
/// probability instead of measure zero.
///
/// Also checked per pair:
///  * window soundness: when ProbeWindow yields a window W(b), Θ(a', b')
///    must imply a' overlaps W(b') — otherwise window-probe access
///    methods (grid file, native R-tree search) drop true matches;
///  * symmetry: operators declaring is_symmetric() must have symmetric θ
///    and Θ.
///
/// Every violation reports the witness pair. A Θ that never fires over
/// the whole sample is a warning (the sample exercised nothing).
AuditReport AuditThetaSoundness(const ThetaOperator& op,
                                const ThetaSoundnessOptions& options = {});

/// Runs AuditThetaSoundness over every Table 1 operator (within_distance,
/// overlaps, includes, contained_in, northwest_of, adjacent,
/// reachable_within) and merges the reports.
AuditReport AuditTable1Operators(const ThetaSoundnessOptions& options = {});

}  // namespace audit
}  // namespace spatialjoin

#endif  // SPATIALJOIN_AUDIT_THETA_AUDIT_H_
