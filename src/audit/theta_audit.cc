#include "audit/theta_audit.h"

#include <cmath>
#include <string>

#include "common/random.h"
#include "geometry/point.h"
#include "geometry/polygon.h"
#include "relational/value.h"

namespace spatialjoin {
namespace audit {

namespace {

// Cap on reported witnesses per operator: a broken Θ typically fails on
// a large fraction of the sample, and one witness already reproduces it.
constexpr int64_t kMaxWitnesses = 10;

double DrawCoord(Rng* rng, double lo, double hi, bool snapped) {
  double v = rng->NextDouble(lo, hi);
  if (!snapped) return v;
  // Coarse grid: makes exactly-touching edges and shared corners likely.
  double step = (hi - lo) / 40.0;
  return lo + std::floor((v - lo) / step) * step;
}

Value DrawValue(Rng* rng, const Rectangle& world, bool snapped) {
  double max_extent = (world.max_x() - world.min_x()) / 10.0;
  double cx = DrawCoord(rng, world.min_x(), world.max_x(), snapped);
  double cy = DrawCoord(rng, world.min_y(), world.max_y(), snapped);
  switch (rng->NextUint64(4)) {
    case 0:
      return Value(Point{cx, cy});
    case 1: {
      // Regular polygon; vertices land off-grid, covering the smooth case.
      double radius = rng->NextDouble(1.0, max_extent / 2.0);
      int vertices = static_cast<int>(rng->NextInt(3, 8));
      return Value(Polygon::RegularNGon(Point{cx, cy}, radius, vertices));
    }
    case 2: {
      // Rectangle-shaped polygon: grid-aligned boundary, so adjacency and
      // containment fire on polygon code paths too.
      double w = DrawCoord(rng, 0.0, max_extent, snapped);
      double h = DrawCoord(rng, 0.0, max_extent, snapped);
      return Value(Polygon::FromRectangle(Rectangle(cx, cy, cx + w, cy + h)));
    }
    default: {
      double w = DrawCoord(rng, 0.0, max_extent, snapped);
      double h = DrawCoord(rng, 0.0, max_extent, snapped);
      return Value(Rectangle(cx, cy, cx + w, cy + h));
    }
  }
}

std::string WitnessLabel(int64_t pair_index, const Value& a, const Value& b) {
  return "pair " + std::to_string(pair_index) + ": a=" + a.ToString() +
         " b=" + b.ToString();
}

}  // namespace

AuditReport AuditThetaSoundness(const ThetaOperator& op,
                                const ThetaSoundnessOptions& options) {
  AuditReport report("theta_soundness");
  const std::string path = "op[" + op.name() + "]";
  Rng rng(options.seed);
  int64_t theta_hits = 0;
  int64_t upper_hits = 0;
  int64_t witnesses = 0;

  for (int64_t i = 0; i < options.pairs; ++i) {
    bool snapped = (i % 2) == 0;
    Value a = DrawValue(&rng, options.world, snapped);
    Value b = DrawValue(&rng, options.world, snapped);
    Rectangle mbr_a = a.Mbr();
    Rectangle mbr_b = b.Mbr();

    bool theta = op.Theta(a, b);
    bool upper = op.ThetaUpper(mbr_a, mbr_b);
    if (theta) ++theta_hits;
    if (upper) ++upper_hits;

    // The defining conservativeness property (Table 1): Θ never prunes a
    // true θ-match.
    report.CountCheck();
    if (theta && !upper) {
      if (++witnesses <= kMaxWitnesses) {
        report.AddError(path, "θ holds but Θ prunes — " +
                                  WitnessLabel(i, a, b));
      }
    }

    // Window soundness: Θ(a', b') must imply a' overlaps W(b').
    if (auto window = op.ProbeWindow(mbr_b, options.world)) {
      report.CountCheck();
      if (upper && !mbr_a.Overlaps(*window)) {
        if (++witnesses <= kMaxWitnesses) {
          report.AddError(path, "Θ holds but probe window " +
                                    window->ToString() + " misses — " +
                                    WitnessLabel(i, a, b));
        }
      }
    }

    if (op.is_symmetric()) {
      report.CountCheck();
      if (theta != op.Theta(b, a) ||
          upper != op.ThetaUpper(mbr_b, mbr_a)) {
        if (++witnesses <= kMaxWitnesses) {
          report.AddError(path, "declared symmetric but asymmetric on " +
                                    WitnessLabel(i, a, b));
        }
      }
    }
  }

  if (witnesses > kMaxWitnesses) {
    report.AddError(path, std::to_string(witnesses - kMaxWitnesses) +
                              " further witnesses suppressed");
  }
  report.CountCheck();
  if (theta_hits == 0 || upper_hits == 0) {
    report.AddWarning(path, "sample of " + std::to_string(options.pairs) +
                                " pairs never fired (θ " +
                                std::to_string(theta_hits) + ", Θ " +
                                std::to_string(upper_hits) +
                                "); soundness untested");
  }
  return report.Finish();
}

AuditReport AuditTable1Operators(const ThetaSoundnessOptions& options) {
  // One representative instantiation per Table 1 row; distances are sized
  // to the default world so both outcomes of every predicate occur.
  double scale = (options.world.max_x() - options.world.min_x()) / 20.0;
  WithinDistanceOp within(scale);
  OverlapsOp overlaps;
  IncludesOp includes;
  ContainedInOp contained_in;
  NorthwestOfOp northwest;
  AdjacentOp adjacent;
  ReachableWithinOp reachable(10.0, scale / 10.0);
  const ThetaOperator* ops[] = {&within,    &overlaps, &includes,
                                &contained_in, &northwest, &adjacent,
                                &reachable};

  AuditReport report("theta_table1");
  for (const ThetaOperator* op : ops) {
    report.Merge(AuditThetaSoundness(*op, options));
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
