#include "audit/btree_audit.h"

#include <cstdint>
#include <string>
#include <unordered_set>
#include <vector>

#include "storage/disk_manager.h"

namespace spatialjoin {
namespace audit {

namespace {

struct BTreeWalk {
  const BPlusTree* tree = nullptr;
  AuditReport* report = nullptr;
  int64_t disk_pages = 0;
  std::unordered_set<PageId> visited;
  std::vector<PageId> leaves_in_order;
  int64_t entries_reached = 0;
  int64_t pages_reached = 0;

  // Walks the node on `pid` whose keys must lie in [lo, hi] (inclusive:
  // duplicate runs may straddle a separator on either side).
  void Visit(PageId pid, int depth, uint64_t lo, uint64_t hi,
             const std::string& path) {
    report->CountCheck();
    if (pid < 0 || pid >= disk_pages) {
      report->AddError(path, "page id " + std::to_string(pid) +
                                 " outside disk of " +
                                 std::to_string(disk_pages) + " pages");
      return;
    }
    report->CountCheck();
    if (!visited.insert(pid).second) {
      report->AddError(path, "page " + std::to_string(pid) +
                                 " reached twice (aliased child)");
      return;
    }
    ++pages_reached;

    BPlusTree::NodeView node = tree->ReadNode(pid);
    int count = static_cast<int>(node.keys.size());
    bool is_root = path == "root";
    int max_count =
        node.is_leaf ? tree->max_leaf_entries() : tree->max_internal_entries();
    report->CountCheck();
    if (count > max_count) {
      report->AddError(path, "key count " + std::to_string(count) +
                                 " exceeds capacity " +
                                 std::to_string(max_count));
    }
    if (!is_root) {
      report->CountCheck();
      if (count == 0) {
        // Lazy deletion never rebalances, so a drained leaf is a legal
        // state; an internal node, whose keys only move during splits,
        // can never legally become empty.
        if (node.is_leaf) {
          report->AddWarning(path, "empty leaf (lazy deletion)");
        } else {
          report->AddError(path, "empty non-root internal node");
        }
      } else if (count < max_count / 2) {
        // Legal under lazy deletion, but worth surfacing: the page is
        // charged at full I/O cost while holding little data.
        report->AddWarning(path, "occupancy " + std::to_string(count) + "/" +
                                     std::to_string(max_count) +
                                     " below half capacity");
      }
    }

    report->CountCheck();
    if (node.is_leaf != (depth == tree->height() - 1)) {
      report->AddError(path, "leaf at depth " + std::to_string(depth) +
                                 " in a tree of height " +
                                 std::to_string(tree->height()) +
                                 " (non-uniform leaf depth)");
    }

    for (size_t i = 0; i < node.keys.size(); ++i) {
      std::string key_path = path + "/key[" + std::to_string(i) + "]";
      report->CountCheck();
      if (i > 0 && node.keys[i] < node.keys[i - 1]) {
        report->AddError(key_path,
                         "key " + std::to_string(node.keys[i]) +
                             " out of order after " +
                             std::to_string(node.keys[i - 1]));
      }
      report->CountCheck();
      if (node.keys[i] < lo || node.keys[i] > hi) {
        report->AddError(key_path, "key " + std::to_string(node.keys[i]) +
                                       " outside separator bounds [" +
                                       std::to_string(lo) + ", " +
                                       std::to_string(hi) + "]");
      }
    }

    if (node.is_leaf) {
      entries_reached += count;
      leaves_in_order.push_back(pid);
      return;
    }
    for (size_t i = 0; i < node.children.size(); ++i) {
      uint64_t child_lo = i == 0 ? lo : node.keys[i - 1];
      uint64_t child_hi = i == node.keys.size() ? hi : node.keys[i];
      Visit(node.children[i], depth + 1, child_lo, child_hi,
            path + "/child[" + std::to_string(i) + "]");
    }
  }
};

}  // namespace

AuditReport AuditBPlusTree(const BPlusTree& tree) {
  AuditReport report("bplus_tree");
  BTreeWalk walk;
  walk.tree = &tree;
  walk.report = &report;
  walk.disk_pages = tree.pool()->disk()->num_pages();
  walk.Visit(tree.root_page(), 0, 0, ~uint64_t{0}, "root");

  report.CountCheck();
  if (walk.entries_reached != tree.num_entries()) {
    report.AddError("root", "reached " +
                                std::to_string(walk.entries_reached) +
                                " entries, tree reports " +
                                std::to_string(tree.num_entries()));
  }
  report.CountCheck();
  if (walk.pages_reached != tree.num_pages()) {
    report.AddError("root", "reached " + std::to_string(walk.pages_reached) +
                                " pages, tree reports " +
                                std::to_string(tree.num_pages()));
  }

  // Leaf chain: starting from the leftmost leaf, `next` links must visit
  // exactly the tree's leaves in tree order and terminate.
  if (!walk.leaves_in_order.empty()) {
    uint64_t prev_last = 0;
    bool have_prev = false;
    for (size_t i = 0; i < walk.leaves_in_order.size(); ++i) {
      PageId pid = walk.leaves_in_order[i];
      BPlusTree::NodeView leaf = tree.ReadNode(pid);
      std::string path = "leaf_chain[" + std::to_string(i) + "]";
      report.CountCheck();
      PageId expected_next = i + 1 < walk.leaves_in_order.size()
                                 ? walk.leaves_in_order[i + 1]
                                 : kInvalidPageId;
      if (leaf.next != expected_next) {
        report.AddError(path, "leaf page " + std::to_string(pid) +
                                  " links to " + std::to_string(leaf.next) +
                                  ", tree order expects " +
                                  std::to_string(expected_next));
      }
      if (!leaf.keys.empty()) {
        report.CountCheck();
        if (have_prev && leaf.keys.front() < prev_last) {
          report.AddError(path, "chain key order broken: " +
                                    std::to_string(leaf.keys.front()) +
                                    " follows " + std::to_string(prev_last));
        }
        prev_last = leaf.keys.back();
        have_prev = true;
      }
    }
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
