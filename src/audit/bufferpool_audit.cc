#include "audit/bufferpool_audit.h"

#include <string>
#include <unordered_set>

#include "storage/disk_manager.h"

namespace spatialjoin {
namespace audit {

AuditReport AuditBufferPool(const BufferPool& pool) {
  AuditReport report("buffer_pool");
  int64_t disk_pages = pool.disk()->num_pages();

  std::vector<BufferPool::FrameInfo> frames = pool.ResidentFrames();
  report.CountCheck();
  if (static_cast<int64_t>(frames.size()) > pool.capacity_pages()) {
    report.AddError("frames", std::to_string(frames.size()) +
                                  " resident frames exceed capacity " +
                                  std::to_string(pool.capacity_pages()));
  }
  std::unordered_set<PageId> seen;
  for (size_t i = 0; i < frames.size(); ++i) {
    std::string path = "frame[" + std::to_string(i) + "]";
    report.CountCheck();
    if (frames[i].id < 0 || frames[i].id >= disk_pages) {
      report.AddError(path, "caches page " + std::to_string(frames[i].id) +
                                " which the disk (of " +
                                std::to_string(disk_pages) +
                                " pages) never allocated");
    }
    report.CountCheck();
    if (!seen.insert(frames[i].id).second) {
      report.AddError(path, "page " + std::to_string(frames[i].id) +
                                " cached in two frames");
    }
  }

  const BufferPoolStats& stats = pool.stats();
  report.CountCheck();
  if (stats.hits < 0 || stats.misses < 0 || stats.evictions < 0) {
    report.AddError("stats", "negative counter: " + stats.ToString());
  }
  report.CountCheck();
  // Every eviction dropped a frame that was faulted (a counted miss) or
  // freshly allocated; allocations are bounded by the disk's page count.
  if (stats.evictions > stats.misses + disk_pages) {
    report.AddError("stats", "evictions outrun faults: " + stats.ToString() +
                                 " with " + std::to_string(disk_pages) +
                                 " disk pages");
  }
  return report.Finish();
}

}  // namespace audit
}  // namespace spatialjoin
