#include "audit/audit_hook.h"

#include <atomic>
#include <cstdlib>
#include <string>

#include "audit/btree_audit.h"
#include "audit/bufferpool_audit.h"
#include "audit/exec_audit.h"
#include "audit/gentree_audit.h"
#include "audit/heap_audit.h"
#include "audit/rtree_audit.h"
#include "common/check.h"

namespace spatialjoin {
namespace audit {

namespace {

AuditLevel ParseLevel(const char* text) {
  if (text == nullptr) return AuditLevel::kOff;
  std::string s(text);
  if (s == "1" || s == "basic") return AuditLevel::kBasic;
  if (s == "2" || s == "paranoid") return AuditLevel::kParanoid;
  return AuditLevel::kOff;
}

// Atomic so a SetAuditLevel on the main thread cannot race hook reads on
// pool workers (e.g. the exec auditor consulted from parallel suites).
// getenv is read once, before any worker exists.
std::atomic<AuditLevel>& ActiveLevel() {
  // (Trivially destructible, so the usual static-teardown hazard that
  // makes other singletons leak on purpose does not apply here.)
  static std::atomic<AuditLevel> level(
      // NOLINTNEXTLINE(concurrency-mt-unsafe) — single read pre-threads.
      ParseLevel(std::getenv("SJ_AUDIT_LEVEL")));
  return level;
}

}  // namespace

AuditLevel CurrentAuditLevel() {
  return ActiveLevel().load(std::memory_order_relaxed);
}

void SetAuditLevel(AuditLevel level) {
  ActiveLevel().store(level, std::memory_order_relaxed);
}

bool AuditEnabled(AuditLevel at_least) {
  return static_cast<int>(CurrentAuditLevel()) >= static_cast<int>(at_least);
}

void Enforce(const AuditReport& report) {
  SJ_CHECK_MSG(report.error_count() == 0, report.ToString());
}

void MaybeAudit(const RTree& tree, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditRTree(tree));
}

void MaybeAudit(const BPlusTree& tree, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditBPlusTree(tree));
}

void MaybeAudit(const HeapFile& file, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditHeapFile(file));
}

void MaybeAudit(const BufferPool& pool, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditBufferPool(pool));
}

void MaybeAudit(const GeneralizationTree& tree, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditGenTree(tree));
}

void MaybeAudit(const exec::ThreadPool& pool, AuditLevel min_level) {
  if (AuditEnabled(min_level)) Enforce(AuditThreadPool(pool));
}

}  // namespace audit
}  // namespace spatialjoin
