#ifndef SPATIALJOIN_QUADTREE_QUADTREE_H_
#define SPATIALJOIN_QUADTREE_QUADTREE_H_

#include <array>
#include <cstdint>
#include <vector>

#include "core/gentree.h"
#include "geometry/rectangle.h"
#include "relational/relation.h"

namespace spatialjoin {

/// An MX-CIF-style quadtree over rectangles: every cell is a square
/// region; each object lives at the *smallest* cell that fully contains
/// its MBR; cells split lazily into four quadrants up to `max_depth`.
///
/// Like the R-tree, the quadtree is a generalization tree (paper §3.1):
/// cells are technical objects nested by containment, the stored objects
/// hang below the cell containing them, and dead space abounds — so the
/// paper's SELECT and JOIN run on it unchanged through the
/// GeneralizationTree interface this class implements directly. Unlike
/// the R-tree, cell boundaries are fixed by space (not data), so large
/// objects straddling quadrant seams stay high in the tree — the classic
/// MX-CIF trade-off, observable in the join benches.
///
/// The structure is memory-resident; attaching a Relation makes
/// `Geometry()` fetch object tuples from storage (counting I/O), the
/// same discipline as MemoryGenTree.
class QuadTree : public GeneralizationTree {
 public:
  /// `world` must be non-degenerate; objects must lie inside it.
  explicit QuadTree(const Rectangle& world, int max_depth = 12);

  QuadTree(const QuadTree&) = delete;
  QuadTree& operator=(const QuadTree&) = delete;

  /// Backs object geometry by `relation` (see class comment).
  void AttachRelation(const Relation* relation, size_t column);

  /// Inserts an object; returns its node id.
  NodeId Insert(const Rectangle& mbr, TupleId tid);

  /// Removes one object with exactly this (mbr, tid); false if absent.
  bool Remove(const Rectangle& mbr, TupleId tid);

  /// All objects whose MBR overlaps `window` (native window search).
  std::vector<TupleId> SearchTids(const Rectangle& window) const;

  int64_t num_objects() const { return num_objects_; }
  int64_t num_cells() const { return num_cells_; }
  int max_depth() const { return max_depth_; }

  /// Structural invariants (objects inside their cells, cells nested,
  /// object at the smallest containing cell). Aborts on violation.
  void CheckInvariants() const;

  // GeneralizationTree interface.
  NodeId root() const override { return 0; }
  int height() const override { return height_; }
  int HeightOf(NodeId node) const override;
  std::vector<NodeId> Children(NodeId node) const override;
  Value Geometry(NodeId node) const override;
  Rectangle MbrOf(NodeId node) const override;
  bool IsApplicationNode(NodeId node) const override;
  TupleId TupleOf(NodeId node) const override;
  int64_t num_nodes() const override {
    return static_cast<int64_t>(nodes_.size());
  }

 private:
  struct Node {
    bool is_object = false;
    Rectangle rect;  // cell region, or the object's MBR
    TupleId tid = kInvalidTupleId;
    NodeId parent = kInvalidNodeId;
    int depth = 0;  // cells: quadtree depth; objects: cell depth + 1
    std::array<NodeId, 4> quadrants{kInvalidNodeId, kInvalidNodeId,
                                    kInvalidNodeId, kInvalidNodeId};
    std::vector<NodeId> objects;  // object nodes resident at this cell
  };

  const Node& NodeAt(NodeId id) const;
  Node& MutableNodeAt(NodeId id);

  // Quadrant q (0..3, z-order) of cell `rect`.
  static Rectangle QuadrantRect(const Rectangle& rect, int q);

  // Index of the quadrant of `cell` that fully contains `mbr`, or -1.
  int FittingQuadrant(NodeId cell, const Rectangle& mbr) const;

  std::vector<Node> nodes_;
  int max_depth_;
  int height_ = 0;
  int64_t num_objects_ = 0;
  int64_t num_cells_ = 0;
  const Relation* relation_ = nullptr;
  size_t column_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_QUADTREE_QUADTREE_H_
