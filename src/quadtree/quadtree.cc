#include "quadtree/quadtree.h"

#include <algorithm>

#include "common/check.h"

namespace spatialjoin {

QuadTree::QuadTree(const Rectangle& world, int max_depth)
    : max_depth_(max_depth) {
  SJ_CHECK(!world.is_empty());
  SJ_CHECK(world.width() > 0 && world.height() > 0);
  SJ_CHECK_GE(max_depth, 1);
  Node root;
  root.rect = world;
  nodes_.push_back(root);
  num_cells_ = 1;
}

void QuadTree::AttachRelation(const Relation* relation, size_t column) {
  SJ_CHECK(relation != nullptr);
  SJ_CHECK_LT(column, relation->schema().num_columns());
  SJ_CHECK(relation->schema().IsSpatial(column));
  relation_ = relation;
  column_ = column;
}

const QuadTree::Node& QuadTree::NodeAt(NodeId id) const {
  SJ_CHECK_GE(id, 0);
  SJ_CHECK_LT(id, num_nodes());
  return nodes_[static_cast<size_t>(id)];
}

QuadTree::Node& QuadTree::MutableNodeAt(NodeId id) {
  return const_cast<Node&>(NodeAt(id));
}

Rectangle QuadTree::QuadrantRect(const Rectangle& rect, int q) {
  double mid_x = (rect.min_x() + rect.max_x()) / 2.0;
  double mid_y = (rect.min_y() + rect.max_y()) / 2.0;
  switch (q) {
    case 0:
      return Rectangle(rect.min_x(), rect.min_y(), mid_x, mid_y);
    case 1:
      return Rectangle(mid_x, rect.min_y(), rect.max_x(), mid_y);
    case 2:
      return Rectangle(rect.min_x(), mid_y, mid_x, rect.max_y());
    default:
      return Rectangle(mid_x, mid_y, rect.max_x(), rect.max_y());
  }
}

int QuadTree::FittingQuadrant(NodeId cell, const Rectangle& mbr) const {
  const Node& node = NodeAt(cell);
  for (int q = 0; q < 4; ++q) {
    if (QuadrantRect(node.rect, q).Contains(mbr)) return q;
  }
  return -1;
}

NodeId QuadTree::Insert(const Rectangle& mbr, TupleId tid) {
  SJ_CHECK(!mbr.is_empty());
  SJ_CHECK_MSG(NodeAt(root()).rect.Contains(mbr),
               "object " << mbr.ToString() << " outside the world "
                         << NodeAt(root()).rect.ToString());
  NodeId cell = root();
  while (NodeAt(cell).depth < max_depth_) {
    int q = FittingQuadrant(cell, mbr);
    if (q < 0) break;
    NodeId child = NodeAt(cell).quadrants[static_cast<size_t>(q)];
    if (child == kInvalidNodeId) {
      Node fresh;
      fresh.rect = QuadrantRect(NodeAt(cell).rect, q);
      fresh.parent = cell;
      fresh.depth = NodeAt(cell).depth + 1;
      child = num_nodes();
      nodes_.push_back(fresh);
      MutableNodeAt(cell).quadrants[static_cast<size_t>(q)] = child;
      ++num_cells_;
      height_ = std::max(height_, fresh.depth);
    }
    cell = child;
  }
  Node object;
  object.is_object = true;
  object.rect = mbr;
  object.tid = tid;
  object.parent = cell;
  object.depth = NodeAt(cell).depth + 1;
  NodeId id = num_nodes();
  nodes_.push_back(object);
  MutableNodeAt(cell).objects.push_back(id);
  ++num_objects_;
  height_ = std::max(height_, object.depth);
  return id;
}

bool QuadTree::Remove(const Rectangle& mbr, TupleId tid) {
  // Descend exactly as Insert would to find the owning cell.
  NodeId cell = root();
  for (;;) {
    Node& node = MutableNodeAt(cell);
    auto& objs = node.objects;
    for (size_t i = 0; i < objs.size(); ++i) {
      const Node& obj = NodeAt(objs[i]);
      if (obj.tid == tid && obj.rect == mbr) {
        // Unlink; the object node stays in the arena as a tombstone
        // (ids are stable), invisible to traversals.
        objs.erase(objs.begin() + static_cast<long>(i));
        --num_objects_;
        return true;
      }
    }
    if (node.depth >= max_depth_) return false;
    int q = FittingQuadrant(cell, mbr);
    if (q < 0) return false;
    NodeId child = node.quadrants[static_cast<size_t>(q)];
    if (child == kInvalidNodeId) return false;
    cell = child;
  }
}

std::vector<TupleId> QuadTree::SearchTids(const Rectangle& window) const {
  std::vector<TupleId> out;
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const Node& node = NodeAt(id);
    if (!node.rect.Overlaps(window)) continue;
    for (NodeId obj : node.objects) {
      if (NodeAt(obj).rect.Overlaps(window)) {
        out.push_back(NodeAt(obj).tid);
      }
    }
    for (NodeId q : node.quadrants) {
      if (q != kInvalidNodeId) stack.push_back(q);
    }
  }
  return out;
}

int QuadTree::HeightOf(NodeId node) const { return NodeAt(node).depth; }

std::vector<NodeId> QuadTree::Children(NodeId node) const {
  const Node& n = NodeAt(node);
  std::vector<NodeId> children;
  if (n.is_object) return children;
  for (NodeId q : n.quadrants) {
    if (q != kInvalidNodeId) children.push_back(q);
  }
  children.insert(children.end(), n.objects.begin(), n.objects.end());
  return children;
}

Value QuadTree::Geometry(NodeId node) const {
  const Node& n = NodeAt(node);
  if (n.is_object && relation_ != nullptr && n.tid != kInvalidTupleId) {
    return relation_->Read(n.tid).value(column_);
  }
  return Value(n.rect);
}

Rectangle QuadTree::MbrOf(NodeId node) const { return NodeAt(node).rect; }

bool QuadTree::IsApplicationNode(NodeId node) const {
  return NodeAt(node).is_object;
}

TupleId QuadTree::TupleOf(NodeId node) const {
  const Node& n = NodeAt(node);
  return n.is_object ? n.tid : kInvalidTupleId;
}

void QuadTree::CheckInvariants() const {
  int64_t objects_seen = 0;
  std::vector<NodeId> stack{root()};
  while (!stack.empty()) {
    NodeId id = stack.back();
    stack.pop_back();
    const Node& node = NodeAt(id);
    SJ_CHECK(!node.is_object);
    if (node.parent != kInvalidNodeId) {
      SJ_CHECK(NodeAt(node.parent).rect.Contains(node.rect));
      SJ_CHECK_EQ(node.depth, NodeAt(node.parent).depth + 1);
    }
    for (NodeId obj_id : node.objects) {
      const Node& obj = NodeAt(obj_id);
      SJ_CHECK(obj.is_object);
      SJ_CHECK(node.rect.Contains(obj.rect));
      SJ_CHECK_EQ(obj.parent, id);
      // Smallest-cell property: below the depth cap, no quadrant may
      // fully contain a resident object.
      if (node.depth < max_depth_) {
        SJ_CHECK_EQ(FittingQuadrant(id, obj.rect), -1);
      }
      ++objects_seen;
    }
    for (NodeId q : node.quadrants) {
      if (q != kInvalidNodeId) stack.push_back(q);
    }
  }
  SJ_CHECK_EQ(objects_seen, num_objects_);
}

}  // namespace spatialjoin
