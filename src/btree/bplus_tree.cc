#include "btree/bplus_tree.h"

#include <algorithm>
#include <cstring>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {

// On-page layout:
//   [is_leaf:u8][count:u16][next:i64]                      (header, 11 B)
//   leaf:      count × [key:u64][value:u64]
//   internal:  [child0:i64] + count × [key:u64][child:i64]
// An internal node with `count` keys has count+1 children; keys[i]
// separates children[i] (keys < keys[i]) from children[i+1] (keys >=
// keys[i]).
struct BPlusTree::Node {
  bool is_leaf = true;
  PageId next = kInvalidPageId;  // leaf chain
  std::vector<uint64_t> keys;
  std::vector<uint64_t> values;   // leaf payloads
  std::vector<PageId> children;   // internal pointers (keys.size() + 1)
};

namespace {

constexpr size_t kHeaderSize = 1 + 2 + 8;
constexpr size_t kLeafEntrySize = 16;
constexpr size_t kInternalEntrySize = 16;  // key + child
constexpr size_t kInternalBaseSize = kHeaderSize + 8;  // + child0

template <typename T>
void StorePod(Page* page, size_t* pos, const T& v) {
  SJ_CHECK_LE(*pos + sizeof(T), page->size());
  std::memcpy(page->bytes() + *pos, &v, sizeof(T));
  *pos += sizeof(T);
}

template <typename T>
T LoadPod(const Page& page, size_t* pos) {
  SJ_CHECK_LE(*pos + sizeof(T), page.size());
  T v;
  std::memcpy(&v, page.bytes() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

}  // namespace

BPlusTree::BPlusTree(BufferPool* pool, int max_leaf_entries,
                     int max_internal_entries)
    : pool_(pool) {
  SJ_CHECK(pool != nullptr);
  size_t page_size = pool->disk()->page_size();
  int leaf_fit =
      static_cast<int>((page_size - kHeaderSize) / kLeafEntrySize);
  int internal_fit =
      static_cast<int>((page_size - kInternalBaseSize) / kInternalEntrySize);
  max_leaf_entries_ =
      max_leaf_entries > 0 ? std::min(max_leaf_entries, leaf_fit) : leaf_fit;
  max_internal_entries_ = max_internal_entries > 0
                              ? std::min(max_internal_entries, internal_fit)
                              : internal_fit;
  SJ_CHECK_GE(max_leaf_entries_, 2);
  SJ_CHECK_GE(max_internal_entries_, 2);
  root_ = NewNodePage();
  StoreNode(root_, Node{});
}

PageId BPlusTree::NewNodePage() {
  ++num_pages_;
  return pool_->NewPage();
}

BPlusTree::Node BPlusTree::LoadNode(PageId pid) const {
  const Page* page = pool_->GetPage(pid);
  Node node;
  size_t pos = 0;
  node.is_leaf = LoadPod<uint8_t>(*page, &pos) != 0;
  uint16_t count = LoadPod<uint16_t>(*page, &pos);
  node.next = LoadPod<PageId>(*page, &pos);
  if (node.is_leaf) {
    node.keys.reserve(count);
    node.values.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      SJ_BOUNDED_WORK;  // one page's entries; count <= page fanout
      node.keys.push_back(LoadPod<uint64_t>(*page, &pos));
      node.values.push_back(LoadPod<uint64_t>(*page, &pos));
    }
  } else {
    node.children.reserve(count + 1);
    node.children.push_back(LoadPod<PageId>(*page, &pos));
    node.keys.reserve(count);
    for (uint16_t i = 0; i < count; ++i) {
      SJ_BOUNDED_WORK;  // one page's entries; count <= page fanout
      node.keys.push_back(LoadPod<uint64_t>(*page, &pos));
      node.children.push_back(LoadPod<PageId>(*page, &pos));
    }
  }
  return node;
}

void BPlusTree::StoreNode(PageId pid, const Node& node) {
  Page* page = pool_->GetMutablePage(pid);
  std::fill(page->data.begin(), page->data.end(), 0);
  size_t pos = 0;
  StorePod(page, &pos, static_cast<uint8_t>(node.is_leaf ? 1 : 0));
  StorePod(page, &pos, static_cast<uint16_t>(node.keys.size()));
  StorePod(page, &pos, node.next);
  if (node.is_leaf) {
    SJ_CHECK_EQ(node.keys.size(), node.values.size());
    for (size_t i = 0; i < node.keys.size(); ++i) {
      StorePod(page, &pos, node.keys[i]);
      StorePod(page, &pos, node.values[i]);
    }
  } else {
    SJ_CHECK_EQ(node.children.size(), node.keys.size() + 1);
    StorePod(page, &pos, node.children[0]);
    for (size_t i = 0; i < node.keys.size(); ++i) {
      StorePod(page, &pos, node.keys[i]);
      StorePod(page, &pos, node.children[i + 1]);
    }
  }
}

std::optional<std::pair<uint64_t, PageId>> BPlusTree::InsertInto(
    PageId pid, uint64_t key, uint64_t value) {
  Node node = LoadNode(pid);
  if (node.is_leaf) {
    auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key);
    size_t idx = static_cast<size_t>(it - node.keys.begin());
    node.keys.insert(it, key);
    node.values.insert(node.values.begin() + static_cast<long>(idx), value);
    if (static_cast<int>(node.keys.size()) <= max_leaf_entries_) {
      StoreNode(pid, node);
      return std::nullopt;
    }
    // Split the leaf: right half moves to a fresh page.
    size_t mid = node.keys.size() / 2;
    Node right;
    right.is_leaf = true;
    right.keys.assign(node.keys.begin() + static_cast<long>(mid),
                      node.keys.end());
    right.values.assign(node.values.begin() + static_cast<long>(mid),
                        node.values.end());
    node.keys.resize(mid);
    node.values.resize(mid);
    PageId right_pid = NewNodePage();
    right.next = node.next;
    node.next = right_pid;
    StoreNode(right_pid, right);
    StoreNode(pid, node);
    return std::make_pair(right.keys.front(), right_pid);
  }

  // Internal node: descend into the child whose range covers `key`.
  auto it = std::upper_bound(node.keys.begin(), node.keys.end(), key);
  size_t child_idx = static_cast<size_t>(it - node.keys.begin());
  auto split = InsertInto(node.children[child_idx], key, value);
  if (!split.has_value()) return std::nullopt;
  node.keys.insert(node.keys.begin() + static_cast<long>(child_idx),
                   split->first);
  node.children.insert(
      node.children.begin() + static_cast<long>(child_idx) + 1,
      split->second);
  if (static_cast<int>(node.keys.size()) <= max_internal_entries_) {
    StoreNode(pid, node);
    return std::nullopt;
  }
  // Split the internal node; the middle key moves up.
  size_t mid = node.keys.size() / 2;
  uint64_t up_key = node.keys[mid];
  Node right;
  right.is_leaf = false;
  right.keys.assign(node.keys.begin() + static_cast<long>(mid) + 1,
                    node.keys.end());
  right.children.assign(node.children.begin() + static_cast<long>(mid) + 1,
                        node.children.end());
  node.keys.resize(mid);
  node.children.resize(mid + 1);
  PageId right_pid = NewNodePage();
  StoreNode(right_pid, right);
  StoreNode(pid, node);
  return std::make_pair(up_key, right_pid);
}

void BPlusTree::Insert(uint64_t key, uint64_t value) {
  auto split = InsertInto(root_, key, value);
  if (split.has_value()) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.keys = {split->first};
    new_root.children = {root_, split->second};
    PageId new_root_pid = NewNodePage();
    StoreNode(new_root_pid, new_root);
    root_ = new_root_pid;
    ++height_;
  }
  ++num_entries_;
}

bool BPlusTree::Delete(uint64_t key, uint64_t value) {
  // Duplicates of `key` may span several leaves (a split can cut a run of
  // equal keys), so descend with lower_bound — like ScanRange — to reach
  // the leftmost leaf that can hold `key`, then walk the chain.
  PageId pid = root_;
  for (;;) {
    Node node = LoadNode(pid);
    if (node.is_leaf) break;
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), key);
    pid = node.children[static_cast<size_t>(it - node.keys.begin())];
  }
  while (pid != kInvalidPageId) {
    Node node = LoadNode(pid);
    bool past_key = false;
    for (size_t i = 0; i < node.keys.size(); ++i) {
      if (node.keys[i] > key) {
        past_key = true;
        break;
      }
      if (node.keys[i] == key && node.values[i] == value) {
        node.keys.erase(node.keys.begin() + static_cast<long>(i));
        node.values.erase(node.values.begin() + static_cast<long>(i));
        StoreNode(pid, node);
        --num_entries_;
        return true;
      }
    }
    if (past_key) return false;
    pid = node.next;
  }
  return false;
}

void BPlusTree::ScanRange(
    uint64_t lo, uint64_t hi,
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  if (lo > hi) return;
  // Find the leaf that may contain `lo`. A leaf reached via upper_bound
  // holds keys >= all separators on the path; keys equal to lo may start
  // in this leaf.
  PageId pid = root_;
  for (;;) {
    SJ_BOUNDED_WORK;  // root-to-leaf descent; tree-height-bounded
    Node node = LoadNode(pid);
    if (node.is_leaf) break;
    auto it = std::lower_bound(node.keys.begin(), node.keys.end(), lo);
    // lower_bound: first separator >= lo; descend left of it so we do not
    // skip duplicates equal to lo that sit at the start of the right node.
    pid = node.children[static_cast<size_t>(it - node.keys.begin())];
  }
  while (pid != kInvalidPageId) {
    SJ_BOUNDED_WORK;  // leaf chain of [lo, hi]; exits past the first key > hi
    Node node = LoadNode(pid);
    for (size_t i = 0; i < node.keys.size(); ++i) {
      SJ_BOUNDED_WORK;  // one leaf page's keys (<= page fanout)
      if (node.keys[i] < lo) continue;
      if (node.keys[i] > hi) return;
      fn(node.keys[i], node.values[i]);
    }
    pid = node.next;
  }
}

std::vector<uint64_t> BPlusTree::Lookup(uint64_t key) const {
  std::vector<uint64_t> out;
  ScanRange(key, key, [&](uint64_t, uint64_t v) { out.push_back(v); });
  return out;
}

void BPlusTree::ScanAll(
    const std::function<void(uint64_t, uint64_t)>& fn) const {
  ScanRange(0, ~uint64_t{0}, fn);
}

BPlusTree::NodeView BPlusTree::ReadNode(PageId pid) const {
  Node node = LoadNode(pid);
  NodeView view;
  view.is_leaf = node.is_leaf;
  view.next = node.next;
  view.keys = std::move(node.keys);
  view.values = std::move(node.values);
  view.children = std::move(node.children);
  return view;
}

void BPlusTree::CorruptKeyForTest(PageId pid, size_t idx, uint64_t key) {
  Node node = LoadNode(pid);
  SJ_CHECK_LT(idx, node.keys.size());
  node.keys[idx] = key;
  StoreNode(pid, node);
}

int64_t BPlusTree::num_leaf_pages() const {
  // Walk down the leftmost spine, then along the leaf chain.
  PageId pid = root_;
  for (;;) {
    Node node = LoadNode(pid);
    if (node.is_leaf) break;
    pid = node.children.front();
  }
  int64_t count = 0;
  while (pid != kInvalidPageId) {
    ++count;
    pid = LoadNode(pid).next;
  }
  return count;
}

}  // namespace spatialjoin
