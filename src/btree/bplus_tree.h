#ifndef SPATIALJOIN_BTREE_BPLUS_TREE_H_
#define SPATIALJOIN_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <optional>
#include <utility>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// A disk-resident B⁺-tree with uint64 keys and uint64 values, supporting
/// duplicate keys. This is the index structure the paper assumes for join
/// indices (modeling assumption S4: "join indices are implemented using
/// B⁺-trees"); the cost model's parameter z (index entries per page,
/// Table 3: z = 100) corresponds to `max_leaf_entries`.
///
/// Leaves are chained for range scans. Deletion is by lazy removal from
/// the leaf (no rebalancing): join indices in this workload shrink rarely,
/// and the paper charges updates through insert costs only.
class BPlusTree {
 public:
  /// Creates an empty tree. `max_leaf_entries` / `max_internal_entries`
  /// cap fan-out (0 = as many as fit on a page).
  BPlusTree(BufferPool* pool, int max_leaf_entries = 0,
            int max_internal_entries = 0);

  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts (key, value); duplicates of both key and (key,value) allowed.
  void Insert(uint64_t key, uint64_t value);

  /// Removes one occurrence of (key, value); false if not present.
  bool Delete(uint64_t key, uint64_t value);

  /// Calls `fn(key, value)` for all entries with key in [lo, hi],
  /// in key order.
  void ScanRange(uint64_t lo, uint64_t hi,
                 const std::function<void(uint64_t, uint64_t)>& fn) const;

  /// All values stored under `key`.
  std::vector<uint64_t> Lookup(uint64_t key) const;

  /// Calls `fn(key, value)` over the whole tree in key order.
  void ScanAll(const std::function<void(uint64_t, uint64_t)>& fn) const;

  int64_t num_entries() const { return num_entries_; }
  /// Height in levels (1 = root is a leaf). Matches the paper's join-index
  /// B⁺-tree height d (Table 3: d = 4 at N ≈ 10^6, z = 100).
  int height() const { return height_; }
  /// Number of pages occupied by the tree (leaves + internals).
  int64_t num_pages() const { return num_pages_; }
  /// Number of leaf pages only.
  int64_t num_leaf_pages() const;

  int max_leaf_entries() const { return max_leaf_entries_; }
  int max_internal_entries() const { return max_internal_entries_; }
  PageId root_page() const { return root_; }
  BufferPool* pool() const { return pool_; }

  /// Decoded view of one node, for structural auditors and tests. A leaf
  /// has keys/values and a `next` chain link; an internal node has keys
  /// and keys+1 children.
  struct NodeView {
    bool is_leaf = true;
    PageId next = kInvalidPageId;
    std::vector<uint64_t> keys;
    std::vector<uint64_t> values;
    std::vector<PageId> children;
  };

  /// Reads node `pid` through the buffer pool (counts I/O).
  NodeView ReadNode(PageId pid) const;

  /// Test-only hook: overwrites key `idx` of the node on `pid` with
  /// `key`, bypassing all ordering maintenance. Exists so auditor tests
  /// can manufacture separator violations; never call it elsewhere.
  void CorruptKeyForTest(PageId pid, size_t idx, uint64_t key);

 private:
  struct Node;  // defined in the .cc

  // Returns the decoded node stored on `pid`.
  Node LoadNode(PageId pid) const;
  void StoreNode(PageId pid, const Node& node);
  PageId NewNodePage();

  // Recursive insert; returns (separator_key, new_right_page) on split.
  std::optional<std::pair<uint64_t, PageId>> InsertInto(PageId pid,
                                                        uint64_t key,
                                                        uint64_t value);

  BufferPool* pool_;
  int max_leaf_entries_;
  int max_internal_entries_;
  PageId root_;
  int height_ = 1;
  int64_t num_entries_ = 0;
  int64_t num_pages_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_BTREE_BPLUS_TREE_H_
