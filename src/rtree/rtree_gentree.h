#ifndef SPATIALJOIN_RTREE_RTREE_GENTREE_H_
#define SPATIALJOIN_RTREE_RTREE_GENTREE_H_

#include <vector>

#include "core/gentree.h"
#include "relational/relation.h"
#include "rtree/rtree.h"

namespace spatialjoin {

/// Presents a (paged) R-tree as a GeneralizationTree so that the paper's
/// algorithms SELECT and JOIN run on it unchanged. This realizes the
/// paper's primary use case: the R-tree as an abstract generalization
/// tree whose interior nodes are technical bounding rectangles and whose
/// leaf entries are the application objects (§3.1, Fig. 2).
///
/// Node identity: the adapter's nodes are the *entries* of R-tree pages
/// (plus a synthetic root standing for the root page). Resolving a node's
/// MBR or children reads the R-tree pages through the buffer pool, so
/// index I/O is counted exactly where a real execution pays it. θ-level
/// geometry of a leaf entry is fetched from the backing relation (one
/// more access — the tuple fetch).
class RTreeGenTree : public GeneralizationTree {
 public:
  /// `relation`/`column` back the leaf entries' exact geometry; pass
  /// nullptr to fall back to the stored MBR (then θ tests degrade to MBR
  /// tests — acceptable when the indexed objects are rectangles).
  RTreeGenTree(const RTree* rtree, const Relation* relation, size_t column);

  NodeId root() const override { return kRootId; }
  int height() const override;
  int HeightOf(NodeId node) const override;
  std::vector<NodeId> Children(NodeId node) const override;
  Value Geometry(NodeId node) const override;
  Rectangle MbrOf(NodeId node) const override;
  bool IsApplicationNode(NodeId node) const override;
  TupleId TupleOf(NodeId node) const override;
  int64_t num_nodes() const override;

 private:
  static constexpr NodeId kRootId = 0;
  static constexpr int64_t kMaxSlots = 256;

  struct Entry {
    PageId page = kInvalidPageId;  // page holding the entry
    int slot = 0;
  };

  static NodeId Encode(PageId page, int slot) {
    return page * kMaxSlots + slot + 1;
  }
  static Entry Decode(NodeId id);

  const RTree* rtree_;
  const Relation* relation_;
  size_t column_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RTREE_RTREE_GENTREE_H_
