#include "rtree/rtree_gentree.h"

#include "common/check.h"

namespace spatialjoin {

RTreeGenTree::RTreeGenTree(const RTree* rtree, const Relation* relation,
                           size_t column)
    : rtree_(rtree), relation_(relation), column_(column) {
  SJ_CHECK(rtree != nullptr);
  SJ_CHECK_MSG(rtree->max_entries() <= kMaxSlots,
               "node fan-out exceeds the adapter's slot encoding");
  if (relation_ != nullptr) {
    SJ_CHECK_LT(column, relation_->schema().num_columns());
    SJ_CHECK(relation_->schema().IsSpatial(column));
  }
}

RTreeGenTree::Entry RTreeGenTree::Decode(NodeId id) {
  SJ_CHECK_GT(id, 0);
  int64_t v = id - 1;
  Entry entry;
  entry.page = v / kMaxSlots;
  entry.slot = static_cast<int>(v % kMaxSlots);
  return entry;
}

int RTreeGenTree::height() const {
  // R-tree node levels run root=height-1 … leaf=0; data entries hang one
  // below the leaves, so the generalization tree is one level deeper.
  return rtree_->height();
}

int RTreeGenTree::HeightOf(NodeId node) const {
  if (node == kRootId) return 0;
  Entry e = Decode(node);
  RTree::NodeView view = rtree_->ReadNode(e.page);
  // An entry of a node at R-tree level L sits at depth root_level - L + 1.
  return (rtree_->height() - 1) - view.level + 1;
}

std::vector<NodeId> RTreeGenTree::Children(NodeId node) const {
  PageId page_to_expand;
  if (node == kRootId) {
    page_to_expand = rtree_->root_page();
  } else {
    Entry e = Decode(node);
    RTree::NodeView view = rtree_->ReadNode(e.page);
    SJ_CHECK_LT(static_cast<size_t>(e.slot), view.payloads.size());
    if (view.is_leaf) return {};  // data entries are the leaves
    page_to_expand = view.payloads[static_cast<size_t>(e.slot)];
  }
  RTree::NodeView child_view = rtree_->ReadNode(page_to_expand);
  std::vector<NodeId> children;
  children.reserve(child_view.payloads.size());
  for (size_t i = 0; i < child_view.payloads.size(); ++i) {
    children.push_back(Encode(page_to_expand, static_cast<int>(i)));
  }
  return children;
}

Value RTreeGenTree::Geometry(NodeId node) const {
  if (node == kRootId) return Value(rtree_->RootMbr());
  Entry e = Decode(node);
  RTree::NodeView view = rtree_->ReadNode(e.page);
  SJ_CHECK_LT(static_cast<size_t>(e.slot), view.payloads.size());
  if (view.is_leaf && relation_ != nullptr) {
    Tuple t =
        relation_->Read(view.payloads[static_cast<size_t>(e.slot)]);
    return t.value(column_);
  }
  return Value(view.mbrs[static_cast<size_t>(e.slot)]);
}

Rectangle RTreeGenTree::MbrOf(NodeId node) const {
  if (node == kRootId) return rtree_->RootMbr();
  Entry e = Decode(node);
  RTree::NodeView view = rtree_->ReadNode(e.page);
  SJ_CHECK_LT(static_cast<size_t>(e.slot), view.mbrs.size());
  return view.mbrs[static_cast<size_t>(e.slot)];
}

bool RTreeGenTree::IsApplicationNode(NodeId node) const {
  if (node == kRootId) return false;
  Entry e = Decode(node);
  RTree::NodeView view = rtree_->ReadNode(e.page);
  return view.is_leaf;
}

TupleId RTreeGenTree::TupleOf(NodeId node) const {
  if (node == kRootId) return kInvalidTupleId;
  Entry e = Decode(node);
  RTree::NodeView view = rtree_->ReadNode(e.page);
  if (!view.is_leaf) return kInvalidTupleId;
  SJ_CHECK_LT(static_cast<size_t>(e.slot), view.payloads.size());
  return view.payloads[static_cast<size_t>(e.slot)];
}

int64_t RTreeGenTree::num_nodes() const {
  // Synthetic root + one node per entry ≈ data entries + interior entries.
  return 1 + rtree_->num_entries() + (rtree_->num_nodes() - 1);
}

}  // namespace spatialjoin
