#ifndef SPATIALJOIN_RTREE_RTREE_H_
#define SPATIALJOIN_RTREE_RTREE_H_

#include <cstdint>
#include <functional>
#include <utility>
#include <vector>

#include "geometry/rectangle.h"
#include "relational/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// Node-splitting heuristic: Guttman's linear-cost and quadratic-cost
/// algorithms [Gutt84 §3.5], plus the R*-tree topological split
/// (Beckmann et al. 1990: choose the split axis by minimum margin sum,
/// then the distribution by minimum overlap). Quadratic and R* produce
/// tighter nodes at higher insertion cost; the ablation bench quantifies
/// the differences.
enum class RTreeSplit {
  kLinear,
  kQuadratic,
  kRStar,
};

/// A disk-resident R-tree (Guttman 1984) over rectangles, indexing tuples
/// of one relation by the MBR of a spatial column. This is the paper's
/// prototypical *abstract* generalization tree (Fig. 2): interior nodes
/// are "technical entities of no interest to the user", nested by
/// containment.
///
/// Pages hold up to `max_entries` entries of 40 bytes (MBR + payload);
/// underflowing nodes (< min_entries) are dissolved on deletion and their
/// entries reinserted, per Guttman's CondenseTree.
class RTree {
 public:
  /// `max_entries` of 0 derives fan-out from the page size.
  RTree(BufferPool* pool, RTreeSplit split = RTreeSplit::kQuadratic,
        int max_entries = 0);

  RTree(const RTree&) = delete;
  RTree& operator=(const RTree&) = delete;

  /// Inserts a data entry (leaf rectangle + tuple id).
  void Insert(const Rectangle& mbr, TupleId tid);

  /// Bulk-loads the tree bottom-up with Sort-Tile-Recursive packing
  /// (Leutenegger et al.): entries are tiled into near-square slabs and
  /// packed `fill_factor`-full, giving tighter nodes and fewer pages
  /// than repeated insertion. Requires an empty tree. The entry order
  /// produced (x-slabs, y within a slab) is also a natural clustering
  /// order for the underlying relation.
  void BulkLoadStr(std::vector<std::pair<Rectangle, TupleId>> entries,
                   double fill_factor = 1.0);

  /// Removes the entry with exactly this (mbr, tid); false if absent.
  bool Delete(const Rectangle& mbr, TupleId tid);

  /// Calls `fn(mbr, tid)` for every data entry whose MBR overlaps
  /// `window` (Guttman's Search).
  void Search(const Rectangle& window,
              const std::function<void(const Rectangle&, TupleId)>& fn) const;

  /// All data entries intersecting `window`.
  std::vector<TupleId> SearchTids(const Rectangle& window) const;

  /// MBR of the whole tree (empty for an empty tree).
  Rectangle RootMbr() const;

  int64_t num_entries() const { return num_entries_; }
  /// Levels of nodes (1 = root is a leaf). Data entries sit below level-0
  /// leaves conceptually.
  int height() const { return height_; }
  int64_t num_nodes() const { return num_nodes_; }
  int max_entries() const { return max_entries_; }
  int min_entries() const { return min_entries_; }
  PageId root_page() const { return root_; }
  BufferPool* pool() const { return pool_; }

  /// Decoded view of one node, for the GeneralizationTree adapter and
  /// for structural tests. Entry i: child page (interior) or tuple id
  /// (leaf) with its MBR.
  struct NodeView {
    bool is_leaf = true;
    int level = 0;  // 0 = leaf; root has the highest level
    std::vector<Rectangle> mbrs;
    std::vector<int64_t> payloads;  // PageId (interior) or TupleId (leaf)
  };

  /// Reads node `pid` through the buffer pool (counts I/O).
  NodeView ReadNode(PageId pid) const;

  /// Verifies R-tree invariants (containment, fan-out bounds, level
  /// consistency); aborts via SJ_CHECK on violation. For tests. The
  /// audit subsystem's AuditRTree is the non-aborting superset that
  /// returns a machine-readable report instead.
  void CheckInvariants() const;

  /// Test-only hook: overwrites entry `entry_idx` of the node on `pid`
  /// with `mbr`, bypassing all invariant maintenance. Exists so auditor
  /// tests can manufacture PART-OF violations; never call it elsewhere.
  void CorruptEntryMbrForTest(PageId pid, size_t entry_idx,
                              const Rectangle& mbr);

 private:
  struct Node;  // mutable in-core form, defined in the .cc

  Node LoadNode(PageId pid) const;
  void StoreNode(PageId pid, const Node& node);
  PageId NewNodePage();

  // Guttman I3/CT3-style descent: picks the child needing least
  // enlargement (ties by smaller area).
  int ChooseSubtree(const Node& node, const Rectangle& mbr) const;

  // Inserts `entry_mbr`/`payload` at level `target_level` below `pid`.
  // Returns the new sibling page on split.
  struct SplitOutcome {
    bool split = false;
    Rectangle left_mbr;
    Rectangle right_mbr;
    PageId right_page = kInvalidPageId;
  };
  SplitOutcome InsertAt(PageId pid, int node_level,
                        const Rectangle& entry_mbr, int64_t payload,
                        int target_level);

  // Splits an overflowing in-core node; returns entry partition.
  void SplitNode(const std::vector<Rectangle>& mbrs,
                 const std::vector<int64_t>& payloads,
                 std::vector<int>* left_idx, std::vector<int>* right_idx)
      const;

  Rectangle NodeMbr(const Node& node) const;

  BufferPool* pool_;
  RTreeSplit split_;
  int max_entries_;
  int min_entries_;
  PageId root_;
  int height_ = 1;
  int64_t num_entries_ = 0;
  int64_t num_nodes_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_RTREE_RTREE_H_
