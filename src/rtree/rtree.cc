#include "rtree/rtree.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/check.h"
#include "common/math_util.h"

namespace spatialjoin {

// On-page layout:
//   [is_leaf:u8][level:u8][count:u16]
//   count × [min_x:f64][min_y:f64][max_x:f64][max_y:f64][payload:i64]
struct RTree::Node {
  bool is_leaf = true;
  int level = 0;
  std::vector<Rectangle> mbrs;
  std::vector<int64_t> payloads;

  size_t size() const { return mbrs.size(); }
};

namespace {

constexpr size_t kNodeHeaderSize = 4;
constexpr size_t kEntrySize = 40;

template <typename T>
void StorePod(Page* page, size_t* pos, const T& v) {
  SJ_CHECK_LE(*pos + sizeof(T), page->size());
  std::memcpy(page->bytes() + *pos, &v, sizeof(T));
  *pos += sizeof(T);
}

template <typename T>
T LoadPod(const Page& page, size_t* pos) {
  SJ_CHECK_LE(*pos + sizeof(T), page.size());
  T v;
  std::memcpy(&v, page.bytes() + *pos, sizeof(T));
  *pos += sizeof(T);
  return v;
}

}  // namespace

RTree::RTree(BufferPool* pool, RTreeSplit split, int max_entries)
    : pool_(pool), split_(split) {
  SJ_CHECK(pool != nullptr);
  int fit = static_cast<int>((pool->disk()->page_size() - kNodeHeaderSize) /
                             kEntrySize);
  max_entries_ = max_entries > 0 ? std::min(max_entries, fit) : fit;
  SJ_CHECK_GE(max_entries_, 4);
  min_entries_ = std::max(2, max_entries_ / 2);
  root_ = NewNodePage();
  Node root;
  root.is_leaf = true;
  root.level = 0;
  StoreNode(root_, root);
}

PageId RTree::NewNodePage() {
  ++num_nodes_;
  return pool_->NewPage();
}

RTree::Node RTree::LoadNode(PageId pid) const {
  const Page* page = pool_->GetPage(pid);
  Node node;
  size_t pos = 0;
  node.is_leaf = LoadPod<uint8_t>(*page, &pos) != 0;
  node.level = LoadPod<uint8_t>(*page, &pos);
  uint16_t count = LoadPod<uint16_t>(*page, &pos);
  node.mbrs.reserve(count);
  node.payloads.reserve(count);
  for (uint16_t i = 0; i < count; ++i) {
    double min_x = LoadPod<double>(*page, &pos);
    double min_y = LoadPod<double>(*page, &pos);
    double max_x = LoadPod<double>(*page, &pos);
    double max_y = LoadPod<double>(*page, &pos);
    node.mbrs.emplace_back(min_x, min_y, max_x, max_y);
    node.payloads.push_back(LoadPod<int64_t>(*page, &pos));
  }
  return node;
}

RTree::NodeView RTree::ReadNode(PageId pid) const {
  Node node = LoadNode(pid);
  NodeView view;
  view.is_leaf = node.is_leaf;
  view.level = node.level;
  view.mbrs = std::move(node.mbrs);
  view.payloads = std::move(node.payloads);
  return view;
}

void RTree::StoreNode(PageId pid, const Node& node) {
  SJ_CHECK_EQ(node.mbrs.size(), node.payloads.size());
  SJ_CHECK_LE(static_cast<int>(node.size()), max_entries_);
  Page* page = pool_->GetMutablePage(pid);
  std::fill(page->data.begin(), page->data.end(), 0);
  size_t pos = 0;
  StorePod(page, &pos, static_cast<uint8_t>(node.is_leaf ? 1 : 0));
  StorePod(page, &pos, static_cast<uint8_t>(node.level));
  StorePod(page, &pos, static_cast<uint16_t>(node.size()));
  for (size_t i = 0; i < node.size(); ++i) {
    StorePod(page, &pos, node.mbrs[i].min_x());
    StorePod(page, &pos, node.mbrs[i].min_y());
    StorePod(page, &pos, node.mbrs[i].max_x());
    StorePod(page, &pos, node.mbrs[i].max_y());
    StorePod(page, &pos, node.payloads[i]);
  }
}

Rectangle RTree::NodeMbr(const Node& node) const {
  Rectangle mbr;
  for (const Rectangle& r : node.mbrs) mbr.Extend(r);
  return mbr;
}

int RTree::ChooseSubtree(const Node& node, const Rectangle& mbr) const {
  SJ_CHECK(!node.mbrs.empty());
  int best = 0;
  double best_enlargement = std::numeric_limits<double>::infinity();
  double best_area = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < node.size(); ++i) {
    double enlargement = node.mbrs[i].Enlargement(mbr);
    double area = node.mbrs[i].Area();
    if (enlargement < best_enlargement ||
        (enlargement == best_enlargement && area < best_area)) {
      best = static_cast<int>(i);
      best_enlargement = enlargement;
      best_area = area;
    }
  }
  return best;
}

namespace {

// Bounding box of mbrs[indices[from..to)].
Rectangle BoxOf(const std::vector<Rectangle>& mbrs,
                const std::vector<int>& indices, size_t from, size_t to) {
  Rectangle box;
  for (size_t i = from; i < to; ++i) {
    box.Extend(mbrs[static_cast<size_t>(indices[i])]);
  }
  return box;
}

}  // namespace

void RTree::SplitNode(const std::vector<Rectangle>& mbrs,
                      const std::vector<int64_t>& payloads,
                      std::vector<int>* left_idx,
                      std::vector<int>* right_idx) const {
  (void)payloads;
  int n = static_cast<int>(mbrs.size());
  SJ_CHECK_GE(n, 2);
  left_idx->clear();
  right_idx->clear();

  if (split_ == RTreeSplit::kRStar) {
    // R* topological split. For each axis, entries sorted by lower then
    // by upper coordinate; candidate distributions put the first
    // min_entries + j entries left. The axis with the smallest margin
    // sum over all candidates wins; within it, the candidate with the
    // least overlap (ties: least total area) is used.
    struct Candidate {
      std::vector<int> order;
      size_t split_at = 0;
    };
    double best_margin_sum = std::numeric_limits<double>::infinity();
    Candidate best_axis_first;  // retained best candidate per axis loop
    bool have_axis = false;
    for (int axis = 0; axis < 2; ++axis) {
      for (int by_upper = 0; by_upper < 2; ++by_upper) {
        std::vector<int> order(static_cast<size_t>(n));
        for (int i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
        std::sort(order.begin(), order.end(), [&](int a, int b) {
          const Rectangle& ra = mbrs[static_cast<size_t>(a)];
          const Rectangle& rb = mbrs[static_cast<size_t>(b)];
          double ka = axis == 0 ? (by_upper ? ra.max_x() : ra.min_x())
                                : (by_upper ? ra.max_y() : ra.min_y());
          double kb = axis == 0 ? (by_upper ? rb.max_x() : rb.min_x())
                                : (by_upper ? rb.max_y() : rb.min_y());
          return ka < kb;
        });
        double margin_sum = 0.0;
        double best_overlap = std::numeric_limits<double>::infinity();
        double best_area = std::numeric_limits<double>::infinity();
        size_t best_split = 0;
        size_t lo = static_cast<size_t>(min_entries_);
        size_t hi = static_cast<size_t>(n - min_entries_);
        if (lo > hi) {  // tiny nodes: any 1/rest split
          lo = 1;
          hi = static_cast<size_t>(n - 1);
        }
        for (size_t split_at = lo; split_at <= hi; ++split_at) {
          Rectangle left = BoxOf(mbrs, order, 0, split_at);
          Rectangle right =
              BoxOf(mbrs, order, split_at, static_cast<size_t>(n));
          margin_sum += left.Margin() + right.Margin();
          double overlap = left.Intersection(right).Area();
          double area = left.Area() + right.Area();
          if (overlap < best_overlap ||
              (overlap == best_overlap && area < best_area)) {
            best_overlap = overlap;
            best_area = area;
            best_split = split_at;
          }
        }
        if (margin_sum < best_margin_sum) {
          best_margin_sum = margin_sum;
          best_axis_first.order = std::move(order);
          best_axis_first.split_at = best_split;
          have_axis = true;
        }
      }
    }
    SJ_CHECK(have_axis);
    for (size_t i = 0; i < best_axis_first.order.size(); ++i) {
      (i < best_axis_first.split_at ? left_idx : right_idx)
          ->push_back(best_axis_first.order[i]);
    }
    return;
  }

  int seed_a = 0;
  int seed_b = 1;
  if (split_ == RTreeSplit::kQuadratic) {
    // PickSeeds (quadratic): the pair wasting the most area together.
    double worst = -std::numeric_limits<double>::infinity();
    for (int i = 0; i < n; ++i) {
      for (int j = i + 1; j < n; ++j) {
        double waste =
            mbrs[i].Union(mbrs[j]).Area() - mbrs[i].Area() - mbrs[j].Area();
        if (waste > worst) {
          worst = waste;
          seed_a = i;
          seed_b = j;
        }
      }
    }
  } else {
    // PickSeeds (linear): per dimension, the entries with the highest low
    // side and the lowest high side; the dimension with the greatest
    // normalized separation wins.
    auto separation = [&](auto lo_of, auto hi_of, int* a, int* b) {
      int highest_low = 0;
      int lowest_high = 0;
      double min_lo = std::numeric_limits<double>::infinity();
      double max_hi = -std::numeric_limits<double>::infinity();
      for (int i = 0; i < n; ++i) {
        if (lo_of(mbrs[i]) > lo_of(mbrs[highest_low])) highest_low = i;
        if (hi_of(mbrs[i]) < hi_of(mbrs[lowest_high])) lowest_high = i;
        min_lo = std::min(min_lo, lo_of(mbrs[i]));
        max_hi = std::max(max_hi, hi_of(mbrs[i]));
      }
      double width = max_hi - min_lo;
      *a = highest_low;
      *b = lowest_high;
      if (width <= 0) return 0.0;
      return (lo_of(mbrs[highest_low]) - hi_of(mbrs[lowest_high])) / width;
    };
    int ax, bx, ay, by;
    double sx = separation([](const Rectangle& r) { return r.min_x(); },
                           [](const Rectangle& r) { return r.max_x(); }, &ax,
                           &bx);
    double sy = separation([](const Rectangle& r) { return r.min_y(); },
                           [](const Rectangle& r) { return r.max_y(); }, &ay,
                           &by);
    if (sx >= sy) {
      seed_a = ax;
      seed_b = bx;
    } else {
      seed_a = ay;
      seed_b = by;
    }
    if (seed_a == seed_b) seed_b = (seed_a + 1) % n;
  }

  left_idx->push_back(seed_a);
  right_idx->push_back(seed_b);
  Rectangle left_mbr = mbrs[static_cast<size_t>(seed_a)];
  Rectangle right_mbr = mbrs[static_cast<size_t>(seed_b)];

  std::vector<int> remaining;
  for (int i = 0; i < n; ++i) {
    if (i != seed_a && i != seed_b) remaining.push_back(i);
  }

  while (!remaining.empty()) {
    // If one group must take all remaining entries to reach min_entries,
    // assign them without further tests (Guttman QS2).
    int need_left = min_entries_ - static_cast<int>(left_idx->size());
    int need_right = min_entries_ - static_cast<int>(right_idx->size());
    if (need_left >= static_cast<int>(remaining.size())) {
      for (int i : remaining) left_idx->push_back(i);
      break;
    }
    if (need_right >= static_cast<int>(remaining.size())) {
      for (int i : remaining) right_idx->push_back(i);
      break;
    }

    size_t pick = 0;
    if (split_ == RTreeSplit::kQuadratic) {
      // PickNext: the entry with the strongest group preference.
      double best_diff = -1.0;
      for (size_t r = 0; r < remaining.size(); ++r) {
        const Rectangle& e = mbrs[static_cast<size_t>(remaining[r])];
        double d1 = left_mbr.Enlargement(e);
        double d2 = right_mbr.Enlargement(e);
        double diff = std::fabs(d1 - d2);
        if (diff > best_diff) {
          best_diff = diff;
          pick = r;
        }
      }
    }
    int idx = remaining[pick];
    remaining.erase(remaining.begin() + static_cast<long>(pick));
    const Rectangle& e = mbrs[static_cast<size_t>(idx)];
    double d1 = left_mbr.Enlargement(e);
    double d2 = right_mbr.Enlargement(e);
    bool to_left;
    if (d1 != d2) {
      to_left = d1 < d2;
    } else if (left_mbr.Area() != right_mbr.Area()) {
      to_left = left_mbr.Area() < right_mbr.Area();
    } else {
      to_left = left_idx->size() <= right_idx->size();
    }
    if (to_left) {
      left_idx->push_back(idx);
      left_mbr.Extend(e);
    } else {
      right_idx->push_back(idx);
      right_mbr.Extend(e);
    }
  }
  SJ_CHECK_GE(static_cast<int>(left_idx->size()), 1);
  SJ_CHECK_GE(static_cast<int>(right_idx->size()), 1);
}

RTree::SplitOutcome RTree::InsertAt(PageId pid, int node_level,
                                    const Rectangle& entry_mbr,
                                    int64_t payload, int target_level) {
  Node node = LoadNode(pid);
  SJ_CHECK_EQ(node.level, node_level);

  if (node_level == target_level) {
    node.mbrs.push_back(entry_mbr);
    node.payloads.push_back(payload);
  } else {
    int child = ChooseSubtree(node, entry_mbr);
    SplitOutcome sub =
        InsertAt(node.payloads[static_cast<size_t>(child)], node_level - 1,
                 entry_mbr, payload, target_level);
    node.mbrs[static_cast<size_t>(child)] = sub.left_mbr;
    if (sub.split) {
      node.mbrs.push_back(sub.right_mbr);
      node.payloads.push_back(sub.right_page);
    }
  }

  SplitOutcome outcome;
  if (static_cast<int>(node.size()) <= max_entries_) {
    StoreNode(pid, node);
    outcome.left_mbr = NodeMbr(node);
    return outcome;
  }

  // Overflow: split into this node and a new sibling.
  std::vector<int> left_idx;
  std::vector<int> right_idx;
  SplitNode(node.mbrs, node.payloads, &left_idx, &right_idx);
  Node left;
  left.is_leaf = node.is_leaf;
  left.level = node.level;
  Node right = left;
  for (int i : left_idx) {
    left.mbrs.push_back(node.mbrs[static_cast<size_t>(i)]);
    left.payloads.push_back(node.payloads[static_cast<size_t>(i)]);
  }
  for (int i : right_idx) {
    right.mbrs.push_back(node.mbrs[static_cast<size_t>(i)]);
    right.payloads.push_back(node.payloads[static_cast<size_t>(i)]);
  }
  PageId right_pid = NewNodePage();
  StoreNode(pid, left);
  StoreNode(right_pid, right);
  outcome.split = true;
  outcome.left_mbr = NodeMbr(left);
  outcome.right_mbr = NodeMbr(right);
  outcome.right_page = right_pid;
  return outcome;
}

void RTree::Insert(const Rectangle& mbr, TupleId tid) {
  SJ_CHECK(!mbr.is_empty());
  SplitOutcome outcome = InsertAt(root_, height_ - 1, mbr, tid, 0);
  if (outcome.split) {
    Node new_root;
    new_root.is_leaf = false;
    new_root.level = height_;
    new_root.mbrs = {outcome.left_mbr, outcome.right_mbr};
    new_root.payloads = {root_, outcome.right_page};
    PageId new_root_pid = NewNodePage();
    StoreNode(new_root_pid, new_root);
    root_ = new_root_pid;
    ++height_;
  }
  ++num_entries_;
}

void RTree::BulkLoadStr(std::vector<std::pair<Rectangle, TupleId>> entries,
                        double fill_factor) {
  SJ_CHECK_MSG(num_entries_ == 0, "BulkLoadStr requires an empty tree");
  SJ_CHECK_MSG(fill_factor > 0.0 && fill_factor <= 1.0,
               "fill_factor must be in (0,1]");
  if (entries.empty()) return;
  num_entries_ = static_cast<int64_t>(entries.size());
  // Clamp the target fill so every packed node satisfies the fan-out
  // invariants ([min_entries, max_entries], root exempt).
  int capacity = std::max(
      min_entries_,
      static_cast<int>(fill_factor * static_cast<double>(max_entries_)));
  capacity = std::min(capacity, max_entries_);

  // Current level's entries: (mbr, payload). Payloads start as tuple
  // ids, become child page ids for upper levels.
  std::vector<std::pair<Rectangle, int64_t>> level_entries;
  level_entries.reserve(entries.size());
  for (auto& [mbr, tid] : entries) level_entries.emplace_back(mbr, tid);

  int level = 0;
  for (;;) {
    // Sort-Tile-Recursive: sort by center x, slice into ⌈√P⌉ vertical
    // slabs, sort each slab by center y, pack runs of `capacity`.
    int64_t n = static_cast<int64_t>(level_entries.size());
    int64_t node_count = CeilDiv(n, capacity);
    int64_t slabs = static_cast<int64_t>(
        std::ceil(std::sqrt(static_cast<double>(node_count))));
    int64_t slab_size = CeilDiv(n, slabs);
    std::sort(level_entries.begin(), level_entries.end(),
              [](const auto& a, const auto& b) {
                return a.first.Center().x < b.first.Center().x;
              });
    for (int64_t s = 0; s < slabs; ++s) {
      auto begin = level_entries.begin() +
                   std::min<int64_t>(s * slab_size, n);
      auto end = level_entries.begin() +
                 std::min<int64_t>((s + 1) * slab_size, n);
      std::sort(begin, end, [](const auto& a, const auto& b) {
        return a.first.Center().y < b.first.Center().y;
      });
    }

    // Run sizes: `capacity` each, with the tail redistributed so no
    // non-root node falls under min_entries (an underfull remainder is
    // merged into the last full run, or the two are rebalanced when the
    // merge would overflow; max >= 2*min makes the split always legal).
    std::vector<int64_t> run_sizes;
    int64_t full_runs = n / capacity;
    int64_t remainder = n % capacity;
    run_sizes.assign(static_cast<size_t>(full_runs), capacity);
    if (remainder > 0) {
      if (remainder >= min_entries_ || full_runs == 0) {
        run_sizes.push_back(remainder);
      } else {
        int64_t total = capacity + remainder;
        if (total <= max_entries_) {
          run_sizes.back() = total;
        } else {
          run_sizes.back() = CeilDiv(total, 2);
          run_sizes.push_back(total - CeilDiv(total, 2));
        }
      }
    }

    std::vector<std::pair<Rectangle, int64_t>> parent_entries;
    int64_t start = 0;
    for (int64_t size : run_sizes) {
      Node node;
      node.is_leaf = level == 0;
      node.level = level;
      for (int64_t i = start; i < start + size; ++i) {
        node.mbrs.push_back(level_entries[static_cast<size_t>(i)].first);
        node.payloads.push_back(
            level_entries[static_cast<size_t>(i)].second);
      }
      start += size;
      PageId pid = NewNodePage();
      StoreNode(pid, node);
      parent_entries.emplace_back(NodeMbr(node), pid);
    }
    if (parent_entries.size() == 1) {
      // Drop the placeholder empty root; the packed root replaces it.
      --num_nodes_;
      root_ = parent_entries[0].second;
      height_ = level + 1;
      return;
    }
    level_entries = std::move(parent_entries);
    ++level;
  }
}

namespace {

// An entry orphaned by CondenseTree, to be reinserted at `level`.
struct Orphan {
  int level;
  Rectangle mbr;
  int64_t payload;
};

}  // namespace

bool RTree::Delete(const Rectangle& mbr, TupleId tid) {
  struct Frame {
    bool found = false;
    bool underflow = false;
  };
  std::vector<Orphan> orphans;

  // Recursive lambda: deletes from the subtree at pid; reports whether the
  // node now underflows so the parent can dissolve it.
  std::function<Frame(PageId)> descend = [&](PageId pid) -> Frame {
    Node node = LoadNode(pid);
    if (node.is_leaf) {
      for (size_t i = 0; i < node.size(); ++i) {
        if (node.payloads[i] == tid && node.mbrs[i] == mbr) {
          node.mbrs.erase(node.mbrs.begin() + static_cast<long>(i));
          node.payloads.erase(node.payloads.begin() + static_cast<long>(i));
          StoreNode(pid, node);
          return Frame{true,
                       static_cast<int>(node.size()) < min_entries_};
        }
      }
      return Frame{};
    }
    for (size_t i = 0; i < node.size(); ++i) {
      if (!node.mbrs[i].Contains(mbr)) continue;
      PageId child_pid = node.payloads[i];
      Frame sub = descend(child_pid);
      if (!sub.found) continue;
      if (sub.underflow) {
        // Dissolve the child: orphan its entries, drop it from this node.
        Node child = LoadNode(child_pid);
        for (size_t j = 0; j < child.size(); ++j) {
          orphans.push_back(Orphan{child.level, child.mbrs[j],
                                   child.payloads[j]});
        }
        --num_nodes_;
        node.mbrs.erase(node.mbrs.begin() + static_cast<long>(i));
        node.payloads.erase(node.payloads.begin() + static_cast<long>(i));
      } else {
        node.mbrs[i] = NodeMbr(LoadNode(child_pid));
      }
      StoreNode(pid, node);
      return Frame{true, static_cast<int>(node.size()) < min_entries_};
    }
    return Frame{};
  };

  Frame top = descend(root_);
  if (!top.found) return false;
  --num_entries_;

  // Reinsert orphaned entries at their original levels (CondenseTree CT6).
  for (const Orphan& orphan : orphans) {
    // The tree may have the same height; orphan levels are below the root.
    SplitOutcome outcome =
        InsertAt(root_, height_ - 1, orphan.mbr, orphan.payload, orphan.level);
    if (outcome.split) {
      Node new_root;
      new_root.is_leaf = false;
      new_root.level = height_;
      new_root.mbrs = {outcome.left_mbr, outcome.right_mbr};
      new_root.payloads = {root_, outcome.right_page};
      PageId new_root_pid = NewNodePage();
      StoreNode(new_root_pid, new_root);
      root_ = new_root_pid;
      ++height_;
    }
  }

  // Shrink the root while it is a lone-child interior node (CT6 final
  // step / D4).
  for (;;) {
    Node root = LoadNode(root_);
    if (root.is_leaf || root.size() != 1) break;
    root_ = root.payloads[0];
    --height_;
    --num_nodes_;
  }
  return true;
}

void RTree::Search(
    const Rectangle& window,
    const std::function<void(const Rectangle&, TupleId)>& fn) const {
  std::function<void(PageId)> descend = [&](PageId pid) {
    Node node = LoadNode(pid);
    for (size_t i = 0; i < node.size(); ++i) {
      if (!node.mbrs[i].Overlaps(window)) continue;
      if (node.is_leaf) {
        fn(node.mbrs[i], node.payloads[i]);
      } else {
        descend(node.payloads[i]);
      }
    }
  };
  descend(root_);
}

std::vector<TupleId> RTree::SearchTids(const Rectangle& window) const {
  std::vector<TupleId> out;
  Search(window, [&](const Rectangle&, TupleId tid) { out.push_back(tid); });
  return out;
}

Rectangle RTree::RootMbr() const { return NodeMbr(LoadNode(root_)); }

void RTree::CorruptEntryMbrForTest(PageId pid, size_t entry_idx,
                                   const Rectangle& mbr) {
  Node node = LoadNode(pid);
  SJ_CHECK_LT(entry_idx, node.mbrs.size());
  node.mbrs[entry_idx] = mbr;
  StoreNode(pid, node);
}

void RTree::CheckInvariants() const {
  std::function<int64_t(PageId, int, bool)> descend =
      [&](PageId pid, int expected_level, bool is_root) -> int64_t {
    Node node = LoadNode(pid);
    SJ_CHECK_EQ(node.level, expected_level);
    SJ_CHECK_EQ(node.is_leaf, node.level == 0);
    if (!is_root) {
      SJ_CHECK_GE(static_cast<int>(node.size()), min_entries_);
    }
    SJ_CHECK_LE(static_cast<int>(node.size()), max_entries_);
    int64_t entries = 0;
    if (node.is_leaf) {
      entries = static_cast<int64_t>(node.size());
    } else {
      for (size_t i = 0; i < node.size(); ++i) {
        PageId child_pid = node.payloads[i];
        Node child = LoadNode(child_pid);
        Rectangle child_mbr = NodeMbr(child);
        SJ_CHECK_MSG(node.mbrs[i] == child_mbr,
                     "stale parent entry MBR " << node.mbrs[i].ToString()
                                               << " vs child "
                                               << child_mbr.ToString());
        entries += descend(child_pid, expected_level - 1, false);
      }
    }
    return entries;
  };
  int64_t total = descend(root_, height_ - 1, true);
  SJ_CHECK_EQ(total, num_entries_);
}

}  // namespace spatialjoin
