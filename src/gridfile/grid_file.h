#ifndef SPATIALJOIN_GRIDFILE_GRID_FILE_H_
#define SPATIALJOIN_GRIDFILE_GRID_FILE_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "geometry/point.h"
#include "geometry/rectangle.h"
#include "relational/tuple.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// A grid file [Niev84] over point data — the address-computation spatial
/// access method whose join potential Rotem demonstrated (paper §2.2).
/// Included as the non-hierarchical baseline to the generalization-tree
/// strategies.
///
/// Linear scales partition each axis; the directory maps grid cells to
/// bucket pages, several cells may share a bucket ("buddy" regions). An
/// overflowing bucket shared by multiple cells is split by dividing its
/// cell region; an overflowing single-cell bucket refines the finer axis
/// scale (adding one boundary, i.e. one directory row/column). The
/// two-disk-access principle holds: an exact-match query reads one
/// directory entry (in memory here) and one bucket page.
class GridFile {
 public:
  /// `world` bounds the indexed space; `bucket_capacity` of 0 derives the
  /// per-page record capacity from the page size (24-byte records).
  GridFile(BufferPool* pool, const Rectangle& world, int bucket_capacity = 0);

  GridFile(const GridFile&) = delete;
  GridFile& operator=(const GridFile&) = delete;

  /// Inserts a point record. The point must lie inside the world.
  void Insert(const Point& p, TupleId tid);

  /// Removes one record with exactly this point and tid; false if absent.
  bool Delete(const Point& p, TupleId tid);

  /// Calls `fn(point, tid)` for every record inside `window`.
  void Search(const Rectangle& window,
              const std::function<void(const Point&, TupleId)>& fn) const;

  /// All tuple ids inside `window`.
  std::vector<TupleId> SearchTids(const Rectangle& window) const;

  int64_t num_records() const { return num_records_; }
  int64_t num_buckets() const { return num_buckets_; }
  /// The indexed space.
  const Rectangle& world() const { return world_; }
  /// Directory extent (cells per axis).
  int64_t directory_cells_x() const {
    return static_cast<int64_t>(x_scale_.size()) + 1;
  }
  int64_t directory_cells_y() const {
    return static_cast<int64_t>(y_scale_.size()) + 1;
  }

  /// Verifies directory/bucket consistency (every record in the bucket of
  /// its cell, capacities respected). For tests.
  void CheckInvariants() const;

 private:
  struct BucketRecord {
    Point point;
    TupleId tid = kInvalidTupleId;
  };

  // Directory accessors (row-major: x index + y index * cells_x).
  PageId& DirAt(int64_t xi, int64_t yi);
  PageId DirAt(int64_t xi, int64_t yi) const;

  int64_t XIndexOf(double x) const;
  int64_t YIndexOf(double y) const;

  std::vector<BucketRecord> LoadBucket(PageId pid) const;
  void StoreBucket(PageId pid, const std::vector<BucketRecord>& records);

  // Splits the overflowing bucket holding cell (xi, yi); may refine a
  // scale. Returns true if a split happened (insert retries after).
  void SplitBucket(int64_t xi, int64_t yi);

  // The set of directory cells currently sharing bucket `pid`.
  std::vector<std::pair<int64_t, int64_t>> CellsOfBucket(PageId pid) const;

  BufferPool* pool_;
  Rectangle world_;
  int bucket_capacity_;
  // Interior boundaries per axis, sorted; cells are the gaps between
  // -inf/world edges and boundaries.
  std::vector<double> x_scale_;
  std::vector<double> y_scale_;
  std::vector<PageId> directory_;  // (x_scale+1) × (y_scale+1)
  int64_t num_records_ = 0;
  int64_t num_buckets_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GRIDFILE_GRID_FILE_H_
