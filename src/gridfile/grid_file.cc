#include "gridfile/grid_file.h"

#include <algorithm>
#include <cstring>

#include "common/check.h"

namespace spatialjoin {

namespace {

constexpr size_t kRecordSize = 24;  // x, y, tid
constexpr size_t kBucketHeaderSize = 2;

}  // namespace

GridFile::GridFile(BufferPool* pool, const Rectangle& world,
                   int bucket_capacity)
    : pool_(pool), world_(world) {
  SJ_CHECK(pool != nullptr);
  SJ_CHECK(!world.is_empty());
  int fit = static_cast<int>(
      (pool->disk()->page_size() - kBucketHeaderSize) / kRecordSize);
  bucket_capacity_ =
      bucket_capacity > 0 ? std::min(bucket_capacity, fit) : fit;
  SJ_CHECK_GE(bucket_capacity_, 2);
  PageId first = pool_->NewPage();
  StoreBucket(first, {});
  ++num_buckets_;
  directory_ = {first};  // 1×1 directory
}

PageId& GridFile::DirAt(int64_t xi, int64_t yi) {
  SJ_CHECK_GE(xi, 0);
  SJ_CHECK_LT(xi, directory_cells_x());
  SJ_CHECK_GE(yi, 0);
  SJ_CHECK_LT(yi, directory_cells_y());
  return directory_[static_cast<size_t>(yi * directory_cells_x() + xi)];
}

PageId GridFile::DirAt(int64_t xi, int64_t yi) const {
  return const_cast<GridFile*>(this)->DirAt(xi, yi);
}

int64_t GridFile::XIndexOf(double x) const {
  return std::upper_bound(x_scale_.begin(), x_scale_.end(), x) -
         x_scale_.begin();
}

int64_t GridFile::YIndexOf(double y) const {
  return std::upper_bound(y_scale_.begin(), y_scale_.end(), y) -
         y_scale_.begin();
}

std::vector<GridFile::BucketRecord> GridFile::LoadBucket(PageId pid) const {
  const Page* page = pool_->GetPage(pid);
  uint16_t count;
  std::memcpy(&count, page->bytes(), sizeof(count));
  std::vector<BucketRecord> records(count);
  size_t pos = kBucketHeaderSize;
  for (uint16_t i = 0; i < count; ++i) {
    std::memcpy(&records[i].point.x, page->bytes() + pos, 8);
    std::memcpy(&records[i].point.y, page->bytes() + pos + 8, 8);
    std::memcpy(&records[i].tid, page->bytes() + pos + 16, 8);
    pos += kRecordSize;
  }
  return records;
}

void GridFile::StoreBucket(PageId pid,
                           const std::vector<BucketRecord>& records) {
  SJ_CHECK_LE(static_cast<int>(records.size()), bucket_capacity_);
  Page* page = pool_->GetMutablePage(pid);
  std::fill(page->data.begin(), page->data.end(), 0);
  uint16_t count = static_cast<uint16_t>(records.size());
  std::memcpy(page->bytes(), &count, sizeof(count));
  size_t pos = kBucketHeaderSize;
  for (const BucketRecord& r : records) {
    std::memcpy(page->bytes() + pos, &r.point.x, 8);
    std::memcpy(page->bytes() + pos + 8, &r.point.y, 8);
    std::memcpy(page->bytes() + pos + 16, &r.tid, 8);
    pos += kRecordSize;
  }
}

std::vector<std::pair<int64_t, int64_t>> GridFile::CellsOfBucket(
    PageId pid) const {
  std::vector<std::pair<int64_t, int64_t>> cells;
  for (int64_t yi = 0; yi < directory_cells_y(); ++yi) {
    for (int64_t xi = 0; xi < directory_cells_x(); ++xi) {
      if (DirAt(xi, yi) == pid) cells.emplace_back(xi, yi);
    }
  }
  return cells;
}

void GridFile::SplitBucket(int64_t xi, int64_t yi) {
  PageId pid = DirAt(xi, yi);
  std::vector<std::pair<int64_t, int64_t>> cells = CellsOfBucket(pid);
  SJ_CHECK(!cells.empty());

  if (cells.size() > 1) {
    // Bucket region spans several directory cells: give half the cells a
    // fresh bucket (split along the axis where the region is wider).
    int64_t min_x = cells[0].first, max_x = cells[0].first;
    int64_t min_y = cells[0].second, max_y = cells[0].second;
    for (const auto& [cx, cy] : cells) {
      min_x = std::min(min_x, cx);
      max_x = std::max(max_x, cx);
      min_y = std::min(min_y, cy);
      max_y = std::max(max_y, cy);
    }
    bool split_x = (max_x - min_x) >= (max_y - min_y);
    int64_t mid = split_x ? (min_x + max_x + 1) / 2 : (min_y + max_y + 1) / 2;
    PageId fresh = pool_->NewPage();
    ++num_buckets_;
    for (const auto& [cx, cy] : cells) {
      int64_t coord = split_x ? cx : cy;
      if (coord >= mid) DirAt(cx, cy) = fresh;
    }
    // Redistribute records between the two buckets by cell membership.
    std::vector<BucketRecord> records = LoadBucket(pid);
    std::vector<BucketRecord> keep;
    std::vector<BucketRecord> moved;
    for (const BucketRecord& r : records) {
      int64_t coord = split_x ? XIndexOf(r.point.x) : YIndexOf(r.point.y);
      (coord >= mid ? moved : keep).push_back(r);
    }
    StoreBucket(pid, keep);
    StoreBucket(fresh, moved);
    return;
  }

  // Single-cell bucket: refine a scale. Split the cell's wider side at
  // its midpoint; the new directory row/column initially shares the old
  // buckets except for the split cell.
  double x_lo = xi == 0 ? world_.min_x() : x_scale_[static_cast<size_t>(xi - 1)];
  double x_hi = xi == static_cast<int64_t>(x_scale_.size())
                    ? world_.max_x()
                    : x_scale_[static_cast<size_t>(xi)];
  double y_lo = yi == 0 ? world_.min_y() : y_scale_[static_cast<size_t>(yi - 1)];
  double y_hi = yi == static_cast<int64_t>(y_scale_.size())
                    ? world_.max_y()
                    : y_scale_[static_cast<size_t>(yi)];
  bool split_x = (x_hi - x_lo) >= (y_hi - y_lo);

  int64_t old_cells_x = directory_cells_x();
  int64_t old_cells_y = directory_cells_y();
  std::vector<PageId> old_directory = directory_;

  if (split_x) {
    double boundary = (x_lo + x_hi) / 2.0;
    x_scale_.insert(x_scale_.begin() + xi, boundary);
    directory_.assign(
        static_cast<size_t>((old_cells_x + 1) * old_cells_y),
        kInvalidPageId);
    for (int64_t y = 0; y < old_cells_y; ++y) {
      for (int64_t x = 0; x < old_cells_x + 1; ++x) {
        int64_t src_x = x <= xi ? x : x - 1;
        DirAt(x, y) =
            old_directory[static_cast<size_t>(y * old_cells_x + src_x)];
      }
    }
  } else {
    double boundary = (y_lo + y_hi) / 2.0;
    y_scale_.insert(y_scale_.begin() + yi, boundary);
    directory_.assign(
        static_cast<size_t>(old_cells_x * (old_cells_y + 1)),
        kInvalidPageId);
    for (int64_t y = 0; y < old_cells_y + 1; ++y) {
      int64_t src_y = y <= yi ? y : y - 1;
      for (int64_t x = 0; x < old_cells_x; ++x) {
        DirAt(x, y) =
            old_directory[static_cast<size_t>(src_y * old_cells_x + x)];
      }
    }
  }

  // The overflowing cell now spans two directory cells; split the bucket
  // region between them.
  SplitBucket(xi, yi);
}

void GridFile::Insert(const Point& p, TupleId tid) {
  SJ_CHECK_MSG(world_.ContainsPoint(p),
               "point " << ToString(p) << " outside the grid world");
  for (int attempt = 0; attempt < 64; ++attempt) {
    int64_t xi = XIndexOf(p.x);
    int64_t yi = YIndexOf(p.y);
    PageId pid = DirAt(xi, yi);
    std::vector<BucketRecord> records = LoadBucket(pid);
    if (static_cast<int>(records.size()) < bucket_capacity_) {
      records.push_back(BucketRecord{p, tid});
      StoreBucket(pid, records);
      ++num_records_;
      return;
    }
    SplitBucket(xi, yi);
  }
  SJ_CHECK_MSG(false, "grid-file split did not converge (duplicate-heavy "
                      "data beyond bucket capacity?)");
}

bool GridFile::Delete(const Point& p, TupleId tid) {
  int64_t xi = XIndexOf(p.x);
  int64_t yi = YIndexOf(p.y);
  PageId pid = DirAt(xi, yi);
  std::vector<BucketRecord> records = LoadBucket(pid);
  for (size_t i = 0; i < records.size(); ++i) {
    if (records[i].tid == tid && records[i].point == p) {
      records.erase(records.begin() + static_cast<long>(i));
      StoreBucket(pid, records);
      --num_records_;
      return true;
    }
  }
  return false;
}

void GridFile::Search(
    const Rectangle& window,
    const std::function<void(const Point&, TupleId)>& fn) const {
  if (window.is_empty()) return;
  int64_t x_lo = XIndexOf(window.min_x());
  int64_t x_hi = XIndexOf(window.max_x());
  int64_t y_lo = YIndexOf(window.min_y());
  int64_t y_hi = YIndexOf(window.max_y());
  x_lo = std::clamp<int64_t>(x_lo, 0, directory_cells_x() - 1);
  x_hi = std::clamp<int64_t>(x_hi, 0, directory_cells_x() - 1);
  y_lo = std::clamp<int64_t>(y_lo, 0, directory_cells_y() - 1);
  y_hi = std::clamp<int64_t>(y_hi, 0, directory_cells_y() - 1);
  std::vector<PageId> visited;
  for (int64_t yi = y_lo; yi <= y_hi; ++yi) {
    for (int64_t xi = x_lo; xi <= x_hi; ++xi) {
      PageId pid = DirAt(xi, yi);
      if (std::find(visited.begin(), visited.end(), pid) != visited.end()) {
        continue;
      }
      visited.push_back(pid);
      for (const BucketRecord& r : LoadBucket(pid)) {
        if (window.ContainsPoint(r.point)) fn(r.point, r.tid);
      }
    }
  }
}

std::vector<TupleId> GridFile::SearchTids(const Rectangle& window) const {
  std::vector<TupleId> out;
  Search(window, [&](const Point&, TupleId tid) { out.push_back(tid); });
  return out;
}

void GridFile::CheckInvariants() const {
  int64_t total = 0;
  std::vector<PageId> seen;
  for (int64_t yi = 0; yi < directory_cells_y(); ++yi) {
    for (int64_t xi = 0; xi < directory_cells_x(); ++xi) {
      PageId pid = DirAt(xi, yi);
      SJ_CHECK_NE(pid, kInvalidPageId);
      if (std::find(seen.begin(), seen.end(), pid) != seen.end()) continue;
      seen.push_back(pid);
      std::vector<BucketRecord> records = LoadBucket(pid);
      SJ_CHECK_LE(static_cast<int>(records.size()), bucket_capacity_);
      total += static_cast<int64_t>(records.size());
      for (const BucketRecord& r : records) {
        SJ_CHECK_EQ(DirAt(XIndexOf(r.point.x), YIndexOf(r.point.y)), pid);
      }
    }
  }
  SJ_CHECK_EQ(total, num_records_);
  SJ_CHECK_EQ(static_cast<int64_t>(seen.size()), num_buckets_);
}

}  // namespace spatialjoin
