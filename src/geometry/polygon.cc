#include "geometry/polygon.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "geometry/distance.h"
#include "geometry/predicates.h"

namespace spatialjoin {

Polygon::Polygon(std::vector<Point> ring) : ring_(std::move(ring)) {
  SJ_CHECK_MSG(ring_.size() >= 3, "polygon needs at least 3 vertices, got "
                                      << ring_.size());
  for (const Point& p : ring_) {
    SJ_BOUNDED_WORK;  // one pass over this polygon's ring
    bbox_.ExtendPoint(p);
  }
}

Polygon Polygon::FromRectangle(const Rectangle& r) {
  SJ_CHECK(!r.is_empty());
  return Polygon({{r.min_x(), r.min_y()},
                  {r.max_x(), r.min_y()},
                  {r.max_x(), r.max_y()},
                  {r.min_x(), r.max_y()}});
}

Polygon Polygon::RegularNGon(const Point& center, double radius,
                             int num_vertices) {
  SJ_CHECK_GE(num_vertices, 3);
  SJ_CHECK_GT(radius, 0.0);
  std::vector<Point> ring;
  ring.reserve(static_cast<size_t>(num_vertices));
  for (int i = 0; i < num_vertices; ++i) {
    double angle = 2.0 * M_PI * static_cast<double>(i) /
                   static_cast<double>(num_vertices);
    ring.emplace_back(center.x + radius * std::cos(angle),
                      center.y + radius * std::sin(angle));
  }
  return Polygon(std::move(ring));
}

double Polygon::SignedArea() const {
  double twice_area = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    twice_area += a.Cross(b);
  }
  return twice_area / 2.0;
}

double Polygon::Area() const { return std::fabs(SignedArea()); }

Point Polygon::Centroid() const {
  SJ_CHECK(!ring_.empty());
  double twice_area = 0.0;
  double cx = 0.0;
  double cy = 0.0;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    double cross = a.Cross(b);
    twice_area += cross;
    cx += (a.x + b.x) * cross;
    cy += (a.y + b.y) * cross;
  }
  if (std::fabs(twice_area) < 1e-12) {
    // Degenerate ring: fall back to the vertex average.
    Point sum(0, 0);
    for (const Point& p : ring_) sum = sum + p;
    return sum * (1.0 / static_cast<double>(ring_.size()));
  }
  double scale = 1.0 / (3.0 * twice_area);
  return Point(cx * scale, cy * scale);
}

bool Polygon::ContainsPoint(const Point& p) const {
  if (ring_.empty() || !bbox_.ContainsPoint(p)) return false;
  // Boundary counts as inside.
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    if (PointOnSegment(p, a, b)) return true;
  }
  // Ray casting towards +x, with the usual half-open edge rule to count
  // vertex crossings exactly once.
  bool inside = false;
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    double x_at_y = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
    if (x_at_y > p.x) inside = !inside;
  }
  return inside;
}

bool Polygon::Intersects(const Polygon& o) const {
  if (ring_.empty() || o.ring_.empty()) return false;
  if (!bbox_.Overlaps(o.bbox_)) return false;
  // Any pair of boundary edges crossing?
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a1 = ring_[i];
    const Point& a2 = ring_[(i + 1) % ring_.size()];
    for (size_t j = 0; j < o.ring_.size(); ++j) {
      const Point& b1 = o.ring_[j];
      const Point& b2 = o.ring_[(j + 1) % o.ring_.size()];
      if (SegmentsIntersect(a1, a2, b1, b2)) return true;
    }
  }
  // Otherwise one polygon may contain the other entirely.
  return ContainsPoint(o.ring_[0]) || o.ContainsPoint(ring_[0]);
}

bool Polygon::ContainsPolygon(const Polygon& o) const {
  if (ring_.empty() || o.ring_.empty()) return false;
  if (!bbox_.Contains(o.bbox_)) return false;
  // All vertices of o inside, and no boundary crossing that would take a
  // part of o outside.
  for (const Point& p : o.ring_) {
    if (!ContainsPoint(p)) return false;
  }
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a1 = ring_[i];
    const Point& a2 = ring_[(i + 1) % ring_.size()];
    for (size_t j = 0; j < o.ring_.size(); ++j) {
      const Point& b1 = o.ring_[j];
      const Point& b2 = o.ring_[(j + 1) % o.ring_.size()];
      // Touching is permitted (closed containment); proper crossings are not.
      int o1 = Orientation(a1, a2, b1);
      int o2 = Orientation(a1, a2, b2);
      int o3 = Orientation(b1, b2, a1);
      int o4 = Orientation(b1, b2, a2);
      if (o1 != o2 && o3 != o4 && o1 != 0 && o2 != 0 && o3 != 0 && o4 != 0) {
        return false;
      }
    }
  }
  return true;
}

double Polygon::DistanceToPoint(const Point& p) const {
  SJ_CHECK(!ring_.empty());
  if (ContainsPoint(p)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a = ring_[i];
    const Point& b = ring_[(i + 1) % ring_.size()];
    best = std::min(best, DistancePointSegment(p, a, b));
  }
  return best;
}

double Polygon::DistanceToPolygon(const Polygon& o) const {
  SJ_CHECK(!ring_.empty());
  SJ_CHECK(!o.ring_.empty());
  if (Intersects(o)) return 0.0;
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < ring_.size(); ++i) {
    const Point& a1 = ring_[i];
    const Point& a2 = ring_[(i + 1) % ring_.size()];
    for (size_t j = 0; j < o.ring_.size(); ++j) {
      const Point& b1 = o.ring_[j];
      const Point& b2 = o.ring_[(j + 1) % o.ring_.size()];
      best = std::min(best, DistanceSegmentSegment(a1, a2, b1, b2));
    }
  }
  return best;
}

void Polygon::Reverse() { std::reverse(ring_.begin(), ring_.end()); }

std::string Polygon::ToString() const {
  std::ostringstream os;
  os << "Polygon[";
  for (size_t i = 0; i < ring_.size(); ++i) {
    if (i > 0) os << ", ";
    os << spatialjoin::ToString(ring_[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace spatialjoin
