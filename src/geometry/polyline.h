#ifndef SPATIALJOIN_GEOMETRY_POLYLINE_H_
#define SPATIALJOIN_GEOMETRY_POLYLINE_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// An open polygonal chain (e.g. a road or river in the cartographic
/// scenarios). The paper's spatial data types include "lines … and curves";
/// polylines are our piecewise-linear curve representation.
class Polyline {
 public:
  Polyline() = default;

  /// Builds a polyline from at least two vertices.
  explicit Polyline(std::vector<Point> vertices);

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  bool is_empty() const { return vertices_.empty(); }

  /// Total arc length.
  double Length() const;

  /// Minimum bounding rectangle.
  const Rectangle& BoundingBox() const { return bbox_; }

  /// Arc-length midpoint — the "centerpoint" for curve objects.
  Point Midpoint() const;

  /// Minimum distance to a point.
  double DistanceToPoint(const Point& p) const;

  /// Minimum distance to another polyline (0 when they cross).
  double DistanceToPolyline(const Polyline& o) const;

  /// True iff any segments of the two polylines intersect.
  bool Intersects(const Polyline& o) const;

  /// Renders the vertex list.
  std::string ToString() const;

 private:
  std::vector<Point> vertices_;
  Rectangle bbox_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_POLYLINE_H_
