#ifndef SPATIALJOIN_GEOMETRY_PREDICATES_H_
#define SPATIALJOIN_GEOMETRY_PREDICATES_H_

#include "geometry/point.h"

namespace spatialjoin {

/// Sign of the orientation of the ordered triple (a, b, c):
/// +1 counter-clockwise, -1 clockwise, 0 collinear (within `eps`).
int Orientation(const Point& a, const Point& b, const Point& c,
                double eps = 1e-12);

/// True iff point `p` lies on the closed segment [a, b].
bool PointOnSegment(const Point& p, const Point& a, const Point& b,
                    double eps = 1e-12);

/// True iff the closed segments [a1,a2] and [b1,b2] share at least one
/// point (proper or improper intersection).
bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2);

/// Compass-quadrant predicate used by the paper's example operator
/// "o1 to the Northwest of o2" (measured between centerpoints, §3.1 /
/// Fig. 5): true iff `a` is strictly to the left of and strictly above `b`.
bool NorthwestOf(const Point& a, const Point& b);

/// The Θ-counterpart construction from Fig. 5: true iff rectangle-corner
/// test "a overlaps the NW quadrant formed by the right vertical and the
/// lower horizontal tangent on b" holds, expressed on raw coordinates:
/// the quadrant is { (x,y) : x <= quad_x, y >= quad_y }.
bool PointInNwQuadrant(const Point& p, double quad_x, double quad_y);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_PREDICATES_H_
