#include "geometry/predicates.h"

#include <algorithm>
#include <cmath>

namespace spatialjoin {

int Orientation(const Point& a, const Point& b, const Point& c, double eps) {
  double cross = (b - a).Cross(c - a);
  if (cross > eps) return 1;
  if (cross < -eps) return -1;
  return 0;
}

bool PointOnSegment(const Point& p, const Point& a, const Point& b,
                    double eps) {
  if (Orientation(a, b, p, eps) != 0) return false;
  return p.x >= std::min(a.x, b.x) - eps && p.x <= std::max(a.x, b.x) + eps &&
         p.y >= std::min(a.y, b.y) - eps && p.y <= std::max(a.y, b.y) + eps;
}

bool SegmentsIntersect(const Point& a1, const Point& a2, const Point& b1,
                       const Point& b2) {
  int o1 = Orientation(a1, a2, b1);
  int o2 = Orientation(a1, a2, b2);
  int o3 = Orientation(b1, b2, a1);
  int o4 = Orientation(b1, b2, a2);

  if (o1 != o2 && o3 != o4) return true;  // proper intersection

  // Collinear / touching cases.
  if (o1 == 0 && PointOnSegment(b1, a1, a2)) return true;
  if (o2 == 0 && PointOnSegment(b2, a1, a2)) return true;
  if (o3 == 0 && PointOnSegment(a1, b1, b2)) return true;
  if (o4 == 0 && PointOnSegment(a2, b1, b2)) return true;
  return false;
}

bool NorthwestOf(const Point& a, const Point& b) {
  return a.x < b.x && a.y > b.y;
}

bool PointInNwQuadrant(const Point& p, double quad_x, double quad_y) {
  return p.x <= quad_x && p.y >= quad_y;
}

}  // namespace spatialjoin
