#ifndef SPATIALJOIN_GEOMETRY_RECTANGLE_H_
#define SPATIALJOIN_GEOMETRY_RECTANGLE_H_

#include <string>

#include "geometry/point.h"

namespace spatialjoin {

/// An axis-aligned rectangle, used both as a first-class spatial object and
/// as the minimum bounding rectangle (MBR) of other objects. MBRs are the
/// abstract objects stored in R-tree nodes (paper Fig. 2): each interior
/// node's rectangle completely contains the rectangles of its children,
/// which is exactly the generalization-tree containment property (§3.1).
class Rectangle {
 public:
  /// Constructs the empty rectangle (contains nothing, overlaps nothing).
  Rectangle();

  /// Constructs from corner coordinates. Requires min <= max per axis.
  Rectangle(double min_x, double min_y, double max_x, double max_y);

  /// Constructs from two corner points.
  Rectangle(const Point& min_corner, const Point& max_corner);

  /// Degenerate rectangle covering exactly one point.
  static Rectangle FromPoint(const Point& p);

  /// The empty rectangle: identity for Extend/Union, absorbing for overlap.
  static Rectangle Empty();

  bool is_empty() const { return empty_; }
  double min_x() const { return min_.x; }
  double min_y() const { return min_.y; }
  double max_x() const { return max_.x; }
  double max_y() const { return max_.y; }
  const Point& min_corner() const { return min_; }
  const Point& max_corner() const { return max_; }

  double width() const { return empty_ ? 0.0 : max_.x - min_.x; }
  double height() const { return empty_ ? 0.0 : max_.y - min_.y; }
  double Area() const { return width() * height(); }
  /// Half-perimeter (the R*-style "margin"), used by split heuristics.
  double Margin() const { return width() + height(); }
  /// Geometric center; the paper's "centerpoint" for rectangles.
  Point Center() const;

  /// True iff this rectangle and `o` share at least one point (closed
  /// rectangles: touching edges count as overlap, as in Guttman's R-tree).
  bool Overlaps(const Rectangle& o) const;

  /// True iff `o` lies entirely inside (or on the boundary of) this.
  bool Contains(const Rectangle& o) const;

  /// True iff the point lies inside or on the boundary.
  bool ContainsPoint(const Point& p) const;

  /// Smallest rectangle containing both this and `o`.
  Rectangle Union(const Rectangle& o) const;

  /// The common region of this and `o`; empty when they do not overlap.
  Rectangle Intersection(const Rectangle& o) const;

  /// Grows the rectangle to include `o` in place.
  void Extend(const Rectangle& o);

  /// Grows the rectangle to include point `p` in place.
  void ExtendPoint(const Point& p);

  /// Rectangle expanded by `d` on all sides (the paper's distance buffer
  /// for MBRs). Requires d >= 0 or |d| smaller than half the extent.
  Rectangle Expanded(double d) const;

  /// The increase in area caused by extending this to include `o`
  /// (Guttman's insertion heuristic).
  double Enlargement(const Rectangle& o) const;

  /// Minimum Euclidean distance between this and `o` (0 when overlapping).
  double MinDistance(const Rectangle& o) const;

  /// Minimum Euclidean distance to a point (0 when inside).
  double MinDistanceToPoint(const Point& p) const;

  /// Maximum Euclidean distance between any two points of this and `o`.
  double MaxDistance(const Rectangle& o) const;

  friend bool operator==(const Rectangle& a, const Rectangle& b);
  friend bool operator!=(const Rectangle& a, const Rectangle& b) {
    return !(a == b);
  }

  /// Renders "[min_x,min_y — max_x,max_y]" or "[empty]".
  std::string ToString() const;

 private:
  Point min_;
  Point max_;
  bool empty_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_RECTANGLE_H_
