#include "geometry/point.h"

#include <sstream>

namespace spatialjoin {

double Distance(const Point& a, const Point& b) {
  return std::sqrt(Distance2(a, b));
}

std::string ToString(const Point& p) {
  std::ostringstream os;
  os << "(" << p.x << ", " << p.y << ")";
  return os.str();
}

}  // namespace spatialjoin
