#ifndef SPATIALJOIN_GEOMETRY_POINT_H_
#define SPATIALJOIN_GEOMETRY_POINT_H_

#include <cmath>
#include <string>

namespace spatialjoin {

/// A point in the Euclidean plane. Passive value type (paper §2.2: spatial
/// data types include points; the `house.hlocation` attribute is a point).
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const {
    return Point(x + o.x, y + o.y);
  }
  constexpr Point operator-(const Point& o) const {
    return Point(x - o.x, y - o.y);
  }
  constexpr Point operator*(double s) const { return Point(x * s, y * s); }

  friend constexpr bool operator==(const Point& a, const Point& b) {
    return a.x == b.x && a.y == b.y;
  }
  friend constexpr bool operator!=(const Point& a, const Point& b) {
    return !(a == b);
  }

  /// Dot product with `o`.
  constexpr double Dot(const Point& o) const { return x * o.x + y * o.y; }

  /// 2D cross product (z-component of the 3D cross product).
  constexpr double Cross(const Point& o) const { return x * o.y - y * o.x; }

  /// Squared Euclidean norm.
  constexpr double Norm2() const { return x * x + y * y; }

  /// Euclidean norm.
  double Norm() const { return std::sqrt(Norm2()); }
};

/// Euclidean distance between two points.
double Distance(const Point& a, const Point& b);

/// Squared Euclidean distance (avoids the sqrt for comparisons).
constexpr double Distance2(const Point& a, const Point& b) {
  return (a - b).Norm2();
}

/// Renders "(x, y)".
std::string ToString(const Point& p);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_POINT_H_
