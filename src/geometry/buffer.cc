#include "geometry/buffer.h"

namespace spatialjoin {

bool WithinBufferOfPolygon(const Point& p, const Polygon& poly, double d) {
  return poly.DistanceToPoint(p) <= d;
}

bool WithinBufferOfRectangle(const Point& p, const Rectangle& r, double d) {
  return r.MinDistanceToPoint(p) <= d;
}

bool PolygonsWithinDistance(const Polygon& a, const Polygon& b, double d) {
  return a.DistanceToPolygon(b) <= d;
}

bool RectanglesWithinDistance(const Rectangle& a, const Rectangle& b,
                              double d) {
  return a.MinDistance(b) <= d;
}

Rectangle BufferMbr(const Rectangle& r, double d) { return r.Expanded(d); }

}  // namespace spatialjoin
