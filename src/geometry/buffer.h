#ifndef SPATIALJOIN_GEOMETRY_BUFFER_H_
#define SPATIALJOIN_GEOMETRY_BUFFER_H_

#include "geometry/point.h"
#include "geometry/polygon.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// Distance-buffer predicates. The paper's flagship query, "find all houses
/// within 10 kilometers from a lake" (§1, §2.2), is a point-in-buffer test:
/// house.hlocation within the d-buffer of lake.larea. We implement buffers
/// as distance predicates rather than materializing offset polygons — the
/// two are equivalent for the membership tests the join algorithms need,
/// and the predicate form is exact (no arc discretization error).

/// True iff point `p` lies within distance `d` of polygon `poly`
/// (inside counts as distance 0).
bool WithinBufferOfPolygon(const Point& p, const Polygon& poly, double d);

/// True iff point `p` lies within distance `d` of rectangle `r`.
bool WithinBufferOfRectangle(const Point& p, const Rectangle& r, double d);

/// True iff the two polygons come within distance `d` of each other.
bool PolygonsWithinDistance(const Polygon& a, const Polygon& b, double d);

/// True iff the two rectangles come within distance `d` of each other —
/// the Θ-level test for "within distance d" on MBRs (Table 1: distance
/// measured between *closest* points of the enclosing objects).
bool RectanglesWithinDistance(const Rectangle& a, const Rectangle& b,
                              double d);

/// Conservative buffer of a rectangle: the MBR of the true d-buffer.
/// Useful for index-level pruning ("overlaps the x-minute buffer of o2").
Rectangle BufferMbr(const Rectangle& r, double d);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_BUFFER_H_
