#include "geometry/polyline.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "geometry/distance.h"
#include "geometry/predicates.h"

namespace spatialjoin {

Polyline::Polyline(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  SJ_CHECK_MSG(vertices_.size() >= 2, "polyline needs at least 2 vertices");
  for (const Point& p : vertices_) {
    SJ_BOUNDED_WORK;  // one pass over this polyline's vertices
    bbox_.ExtendPoint(p);
  }
}

double Polyline::Length() const {
  double total = 0.0;
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    total += Distance(vertices_[i], vertices_[i + 1]);
  }
  return total;
}

Point Polyline::Midpoint() const {
  SJ_CHECK(!vertices_.empty());
  double half = Length() / 2.0;
  double walked = 0.0;
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    double seg = Distance(vertices_[i], vertices_[i + 1]);
    if (walked + seg >= half && seg > 0.0) {
      double t = (half - walked) / seg;
      return vertices_[i] + (vertices_[i + 1] - vertices_[i]) * t;
    }
    walked += seg;
  }
  return vertices_.back();
}

double Polyline::DistanceToPoint(const Point& p) const {
  SJ_CHECK_GE(vertices_.size(), 2u);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    best = std::min(best, DistancePointSegment(p, vertices_[i],
                                               vertices_[i + 1]));
  }
  return best;
}

double Polyline::DistanceToPolyline(const Polyline& o) const {
  SJ_CHECK_GE(vertices_.size(), 2u);
  SJ_CHECK_GE(o.vertices_.size(), 2u);
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    for (size_t j = 0; j + 1 < o.vertices_.size(); ++j) {
      best = std::min(best,
                      DistanceSegmentSegment(vertices_[i], vertices_[i + 1],
                                             o.vertices_[j],
                                             o.vertices_[j + 1]));
      if (best == 0.0) return 0.0;
    }
  }
  return best;
}

bool Polyline::Intersects(const Polyline& o) const {
  if (!bbox_.Overlaps(o.bbox_)) return false;
  for (size_t i = 0; i + 1 < vertices_.size(); ++i) {
    for (size_t j = 0; j + 1 < o.vertices_.size(); ++j) {
      if (SegmentsIntersect(vertices_[i], vertices_[i + 1], o.vertices_[j],
                            o.vertices_[j + 1])) {
        return true;
      }
    }
  }
  return false;
}

std::string Polyline::ToString() const {
  std::ostringstream os;
  os << "Polyline[";
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (i > 0) os << ", ";
    os << spatialjoin::ToString(vertices_[i]);
  }
  os << "]";
  return os.str();
}

}  // namespace spatialjoin
