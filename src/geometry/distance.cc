#include "geometry/distance.h"

#include <algorithm>
#include <cmath>

#include "geometry/predicates.h"

namespace spatialjoin {

double DistancePointSegment(const Point& p, const Point& a, const Point& b) {
  Point ab = b - a;
  double len2 = ab.Norm2();
  if (len2 == 0.0) return Distance(p, a);
  double t = (p - a).Dot(ab) / len2;
  t = std::clamp(t, 0.0, 1.0);
  Point closest = a + ab * t;
  return Distance(p, closest);
}

double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2) {
  if (SegmentsIntersect(a1, a2, b1, b2)) return 0.0;
  return std::min({DistancePointSegment(a1, b1, b2),
                   DistancePointSegment(a2, b1, b2),
                   DistancePointSegment(b1, a1, a2),
                   DistancePointSegment(b2, a1, a2)});
}

}  // namespace spatialjoin
