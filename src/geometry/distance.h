#ifndef SPATIALJOIN_GEOMETRY_DISTANCE_H_
#define SPATIALJOIN_GEOMETRY_DISTANCE_H_

#include "geometry/point.h"

namespace spatialjoin {

/// Minimum distance from point `p` to the closed segment [a, b].
double DistancePointSegment(const Point& p, const Point& a, const Point& b);

/// Minimum distance between closed segments [a1,a2] and [b1,b2]
/// (0 when they intersect).
double DistanceSegmentSegment(const Point& a1, const Point& a2,
                              const Point& b1, const Point& b2);

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_DISTANCE_H_
