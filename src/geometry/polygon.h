#ifndef SPATIALJOIN_GEOMETRY_POLYGON_H_
#define SPATIALJOIN_GEOMETRY_POLYGON_H_

#include <string>
#include <vector>

#include "geometry/point.h"
#include "geometry/rectangle.h"

namespace spatialjoin {

/// A simple polygon given by its boundary ring (no self-intersections; the
/// closing edge last→first is implicit). Polygons model the paper's
/// application objects (lake areas, countries and regions in the
/// cartographic hierarchy of Fig. 3).
class Polygon {
 public:
  Polygon() = default;

  /// Builds a polygon from at least three vertices.
  explicit Polygon(std::vector<Point> ring);

  /// Convenience constructor for an axis-aligned rectangle as a polygon.
  static Polygon FromRectangle(const Rectangle& r);

  /// Regular n-gon approximation of a circle, counter-clockwise.
  static Polygon RegularNGon(const Point& center, double radius,
                             int num_vertices);

  const std::vector<Point>& ring() const { return ring_; }
  size_t size() const { return ring_.size(); }
  bool is_empty() const { return ring_.empty(); }

  /// Signed area (positive for counter-clockwise rings).
  double SignedArea() const;

  /// Absolute area.
  double Area() const;

  /// Center of gravity of the enclosed region — the paper's default
  /// "centerpoint" of a spatial object (§3.1). Falls back to the vertex
  /// average for degenerate (zero-area) rings.
  Point Centroid() const;

  /// Minimum bounding rectangle.
  const Rectangle& BoundingBox() const { return bbox_; }

  /// Point-in-polygon by ray casting; boundary points count as inside.
  bool ContainsPoint(const Point& p) const;

  /// True iff the boundaries of the two polygons cross or one polygon lies
  /// inside the other (shared-region test on simple polygons).
  bool Intersects(const Polygon& o) const;

  /// True iff every point of `o` lies inside this polygon.
  bool ContainsPolygon(const Polygon& o) const;

  /// Minimum distance from `p` to the boundary, 0 if `p` is inside.
  double DistanceToPoint(const Point& p) const;

  /// Minimum distance between the two polygons (0 when they intersect).
  double DistanceToPolygon(const Polygon& o) const;

  /// True iff the polygon ring is counter-clockwise.
  bool IsCounterClockwise() const { return SignedArea() > 0.0; }

  /// Reverses the ring orientation in place.
  void Reverse();

  /// Renders the vertex list.
  std::string ToString() const;

 private:
  std::vector<Point> ring_;
  Rectangle bbox_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_GEOMETRY_POLYGON_H_
