#include "geometry/rectangle.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/check.h"

namespace spatialjoin {

Rectangle::Rectangle() : min_(0, 0), max_(0, 0), empty_(true) {}

Rectangle::Rectangle(double min_x, double min_y, double max_x, double max_y)
    : min_(min_x, min_y), max_(max_x, max_y), empty_(false) {
  SJ_CHECK_MSG(min_x <= max_x && min_y <= max_y,
               "invalid rectangle corners: (" << min_x << "," << min_y
                                              << ")-(" << max_x << "," << max_y
                                              << ")");
}

Rectangle::Rectangle(const Point& min_corner, const Point& max_corner)
    : Rectangle(min_corner.x, min_corner.y, max_corner.x, max_corner.y) {}

Rectangle Rectangle::FromPoint(const Point& p) {
  return Rectangle(p.x, p.y, p.x, p.y);
}

Rectangle Rectangle::Empty() { return Rectangle(); }

Point Rectangle::Center() const {
  return Point((min_.x + max_.x) / 2.0, (min_.y + max_.y) / 2.0);
}

bool Rectangle::Overlaps(const Rectangle& o) const {
  if (empty_ || o.empty_) return false;
  return min_.x <= o.max_.x && o.min_.x <= max_.x && min_.y <= o.max_.y &&
         o.min_.y <= max_.y;
}

bool Rectangle::Contains(const Rectangle& o) const {
  if (o.empty_) return true;  // the empty set is contained everywhere
  if (empty_) return false;
  return min_.x <= o.min_.x && o.max_.x <= max_.x && min_.y <= o.min_.y &&
         o.max_.y <= max_.y;
}

bool Rectangle::ContainsPoint(const Point& p) const {
  if (empty_) return false;
  return min_.x <= p.x && p.x <= max_.x && min_.y <= p.y && p.y <= max_.y;
}

Rectangle Rectangle::Union(const Rectangle& o) const {
  Rectangle result = *this;
  result.Extend(o);
  return result;
}

Rectangle Rectangle::Intersection(const Rectangle& o) const {
  if (!Overlaps(o)) return Rectangle::Empty();
  return Rectangle(std::max(min_.x, o.min_.x), std::max(min_.y, o.min_.y),
                   std::min(max_.x, o.max_.x), std::min(max_.y, o.max_.y));
}

void Rectangle::Extend(const Rectangle& o) {
  if (o.empty_) return;
  if (empty_) {
    *this = o;
    return;
  }
  min_.x = std::min(min_.x, o.min_.x);
  min_.y = std::min(min_.y, o.min_.y);
  max_.x = std::max(max_.x, o.max_.x);
  max_.y = std::max(max_.y, o.max_.y);
}

void Rectangle::ExtendPoint(const Point& p) {
  Extend(Rectangle::FromPoint(p));
}

Rectangle Rectangle::Expanded(double d) const {
  if (empty_) return *this;
  SJ_CHECK_MSG(2.0 * d + width() >= 0 && 2.0 * d + height() >= 0,
               "Expanded(" << d << ") would invert the rectangle");
  return Rectangle(min_.x - d, min_.y - d, max_.x + d, max_.y + d);
}

double Rectangle::Enlargement(const Rectangle& o) const {
  return Union(o).Area() - Area();
}

double Rectangle::MinDistance(const Rectangle& o) const {
  if (empty_ || o.empty_) return std::numeric_limits<double>::infinity();
  double dx = std::max({0.0, o.min_.x - max_.x, min_.x - o.max_.x});
  double dy = std::max({0.0, o.min_.y - max_.y, min_.y - o.max_.y});
  return std::sqrt(dx * dx + dy * dy);
}

double Rectangle::MinDistanceToPoint(const Point& p) const {
  return MinDistance(Rectangle::FromPoint(p));
}

double Rectangle::MaxDistance(const Rectangle& o) const {
  if (empty_ || o.empty_) return 0.0;
  double dx = std::max(max_.x, o.max_.x) - std::min(min_.x, o.min_.x);
  double dy = std::max(max_.y, o.max_.y) - std::min(min_.y, o.min_.y);
  return std::sqrt(dx * dx + dy * dy);
}

bool operator==(const Rectangle& a, const Rectangle& b) {
  if (a.empty_ && b.empty_) return true;
  if (a.empty_ != b.empty_) return false;
  return a.min_ == b.min_ && a.max_ == b.max_;
}

std::string Rectangle::ToString() const {
  if (empty_) return "[empty]";
  std::ostringstream os;
  os << "[" << min_.x << "," << min_.y << " — " << max_.x << "," << max_.y
     << "]";
  return os.str();
}

}  // namespace spatialjoin
