#ifndef SPATIALJOIN_STORAGE_HEAP_FILE_H_
#define SPATIALJOIN_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// An unordered record file over slotted pages. This is the physical
/// representation of an *unclustered* relation (the paper's strategy IIa
/// setting: "no clustering at all … participating nodes are randomly
/// distributed in the file containing the relation", §4.2).
///
/// The page directory is kept in memory (not on meta-pages); directory
/// traffic is excluded from I/O counts just as the paper's model excludes
/// catalog access.
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record, returns its id. Records larger than a page are a
  /// checked error.
  RecordId Insert(std::string_view record);

  /// Copies the record into `out`; false if the record was deleted.
  bool Read(const RecordId& rid, std::string* out);

  /// Deletes a record; false if already gone.
  bool Delete(const RecordId& rid);

  /// Calls `fn(rid, bytes)` for every live record in file order.
  void Scan(const std::function<void(const RecordId&,
                                     std::string_view)>& fn);

  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  int64_t num_records() const { return num_records_; }
  const std::vector<PageId>& pages() const { return pages_; }
  BufferPool* pool() const { return pool_; }

 private:
  BufferPool* pool_;
  std::vector<PageId> pages_;
  int64_t num_records_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_HEAP_FILE_H_
