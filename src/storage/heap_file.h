#ifndef SPATIALJOIN_STORAGE_HEAP_FILE_H_
#define SPATIALJOIN_STORAGE_HEAP_FILE_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// An unordered record file over slotted pages. This is the physical
/// representation of an *unclustered* relation (the paper's strategy IIa
/// setting: "no clustering at all … participating nodes are randomly
/// distributed in the file containing the relation", §4.2).
///
/// The page directory is kept in memory (not on meta-pages); directory
/// traffic is excluded from I/O counts just as the paper's model excludes
/// catalog access.
///
/// Thread-safety: the in-memory directory (page list, record count) is
/// guarded by `mu_`, so directory reads never observe a torn Insert.
/// Record *data* safety follows the BufferPool pointer contract (see
/// buffer_pool.h): concurrent mutation of the same pool invalidates
/// returned page views, so concurrent readers use snapshots or their own
/// pools. Lock order: HeapFile::mu_ → BufferPool::mu_ → DiskManager::mu_.
class HeapFile {
 public:
  explicit HeapFile(BufferPool* pool);

  HeapFile(const HeapFile&) = delete;
  HeapFile& operator=(const HeapFile&) = delete;

  /// Appends a record, returns its id. Records larger than a page are a
  /// checked error.
  RecordId Insert(std::string_view record) SJ_EXCLUDES(mu_);

  /// Copies the record into `out`; false if the record was deleted.
  bool Read(const RecordId& rid, std::string* out);

  /// Deletes a record; false if already gone.
  bool Delete(const RecordId& rid) SJ_EXCLUDES(mu_);

  /// Calls `fn(rid, bytes)` for every live record in file order. Iterates
  /// a snapshot of the page directory taken up front, so `fn` may touch
  /// this file (and its pool) without self-deadlocking; records inserted
  /// after the snapshot are not visited.
  void Scan(const std::function<void(const RecordId&,
                                     std::string_view)>& fn)
      SJ_EXCLUDES(mu_);

  int64_t num_pages() const SJ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return static_cast<int64_t>(pages_.size());
  }
  int64_t num_records() const SJ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return num_records_;
  }
  /// Snapshot of the page directory (by value: the live list is guarded).
  std::vector<PageId> pages() const SJ_EXCLUDES(mu_) {
    MutexLock lock(mu_);
    return pages_;
  }
  BufferPool* pool() const { return pool_; }

 private:
  BufferPool* const pool_;
  mutable Mutex mu_;
  std::vector<PageId> pages_ SJ_GUARDED_BY(mu_);
  int64_t num_records_ SJ_GUARDED_BY(mu_) = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_HEAP_FILE_H_
