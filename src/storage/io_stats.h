#ifndef SPATIALJOIN_STORAGE_IO_STATS_H_
#define SPATIALJOIN_STORAGE_IO_STATS_H_

#include <cstdint>
#include <string>

namespace spatialjoin {

/// Counters for simulated disk traffic. The paper's cost unit charges
/// C_IO = 1000·C_θ per page access (Table 3); benches combine these
/// counters with comparison counts to produce paper-comparable costs.
struct IoStats {
  int64_t page_reads = 0;
  int64_t page_writes = 0;
  int64_t pages_allocated = 0;

  int64_t total_io() const { return page_reads + page_writes; }

  IoStats operator-(const IoStats& o) const {
    return IoStats{page_reads - o.page_reads, page_writes - o.page_writes,
                   pages_allocated - o.pages_allocated};
  }

  std::string ToString() const {
    return "reads=" + std::to_string(page_reads) +
           " writes=" + std::to_string(page_writes) +
           " allocated=" + std::to_string(pages_allocated);
  }
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_IO_STATS_H_
