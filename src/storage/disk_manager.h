#ifndef SPATIALJOIN_STORAGE_DISK_MANAGER_H_
#define SPATIALJOIN_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/io_stats.h"
#include "storage/page.h"

namespace spatialjoin {

/// Simulated disk: an array of fixed-size pages held in memory, with every
/// read and write counted. Substitutes for the 1993 testbed's physical disk
/// (see DESIGN.md substitutions): the paper's model charges a constant
/// C_IO per page access, so page-access *counts* are the faithful metric
/// and wall-clock timing of a modern SSD would not be.
///
/// Thread-safety: internally synchronized. `mu_` guards the page array and
/// the counters, so concurrent readers/writers (e.g. two buffer pools on
/// different threads sharing one disk) keep the image and the I/O counts
/// consistent. Lock order: BufferPool::mu_ → DiskManager::mu_ (the pool
/// calls the disk under its own lock; the disk never calls back up).
///
/// Error discipline: page I/O and snapshot I/O return [[nodiscard]] Status
/// instead of aborting or returning bool — out-of-range ids, size
/// mismatches, and (injected) device failures are reportable conditions a
/// caller must consume (DESIGN.md §9).
class DiskManager {
 public:
  /// Creates a disk with the given page size in bytes.
  explicit DiskManager(size_t page_size = 2000);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }
  int64_t num_pages() const SJ_EXCLUDES(mu_);

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage() SJ_EXCLUDES(mu_);

  /// Copies page `id` into `out` (resized to the page size). Counts one
  /// read. Fails with kOutOfRange for an id this disk never allocated.
  Status ReadPage(PageId id, Page* out) SJ_EXCLUDES(mu_);

  /// Overwrites page `id` from `in`. Counts one write. Fails with
  /// kOutOfRange for an unallocated id, kInvalidArgument when `in` is not
  /// exactly one page, and kInternal for an injected device failure (the
  /// page is left untouched in every failure case).
  Status WritePage(PageId id, const Page& in) SJ_EXCLUDES(mu_);

  /// Arms fault injection: the next `n` WritePage calls fail with
  /// kInternal without applying the write. Tests use this to prove the
  /// flush/eviction paths surface — rather than swallow — device errors.
  void FailNextWrites(int n) SJ_EXCLUDES(mu_);

  /// Snapshot of the I/O counters (by value: the live struct is guarded).
  IoStats stats() const SJ_EXCLUDES(mu_);
  void ResetStats() SJ_EXCLUDES(mu_);

  /// Persists the whole disk image (page size + all pages) to a file.
  /// Page-level persistence only: in-memory directories (heap-file page
  /// lists, index root ids) are the owning structures' to re-derive or
  /// re-store — the same division of labor as the paper's model, which
  /// excludes catalog traffic.
  Status SaveSnapshot(const std::string& path) const SJ_EXCLUDES(mu_);

  /// Replaces this disk's content with a snapshot previously written by
  /// SaveSnapshot. The page size must match (kFailedPrecondition
  /// otherwise; kNotFound / kInvalidArgument for a missing or malformed
  /// file). Counters are reset on success.
  Status LoadSnapshot(const std::string& path) SJ_EXCLUDES(mu_);

 private:
  const size_t page_size_;
  mutable Mutex mu_;
  std::vector<Page> pages_ SJ_GUARDED_BY(mu_);
  IoStats stats_ SJ_GUARDED_BY(mu_);
  int fail_next_writes_ SJ_GUARDED_BY(mu_) = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_DISK_MANAGER_H_
