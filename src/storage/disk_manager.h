#ifndef SPATIALJOIN_STORAGE_DISK_MANAGER_H_
#define SPATIALJOIN_STORAGE_DISK_MANAGER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "storage/io_stats.h"
#include "storage/page.h"

namespace spatialjoin {

/// Simulated disk: an array of fixed-size pages held in memory, with every
/// read and write counted. Substitutes for the 1993 testbed's physical disk
/// (see DESIGN.md substitutions): the paper's model charges a constant
/// C_IO per page access, so page-access *counts* are the faithful metric
/// and wall-clock timing of a modern SSD would not be.
class DiskManager {
 public:
  /// Creates a disk with the given page size in bytes.
  explicit DiskManager(size_t page_size = 2000);

  DiskManager(const DiskManager&) = delete;
  DiskManager& operator=(const DiskManager&) = delete;

  size_t page_size() const { return page_size_; }
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }

  /// Allocates a zeroed page and returns its id.
  PageId AllocatePage();

  /// Copies page `id` into `out` (resized to the page size). Counts one read.
  void ReadPage(PageId id, Page* out);

  /// Overwrites page `id` from `in`. Counts one write.
  void WritePage(PageId id, const Page& in);

  const IoStats& stats() const { return stats_; }
  void ResetStats() { stats_ = IoStats{}; }

  /// Persists the whole disk image (page size + all pages) to a file.
  /// Page-level persistence only: in-memory directories (heap-file page
  /// lists, index root ids) are the owning structures' to re-derive or
  /// re-store — the same division of labor as the paper's model, which
  /// excludes catalog traffic. Returns false on I/O failure.
  bool SaveSnapshot(const std::string& path) const;

  /// Replaces this disk's content with a snapshot previously written by
  /// SaveSnapshot. The page size must match. Counters are reset.
  /// Returns false on I/O failure or format mismatch.
  bool LoadSnapshot(const std::string& path);

 private:
  size_t page_size_;
  std::vector<Page> pages_;
  IoStats stats_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_DISK_MANAGER_H_
