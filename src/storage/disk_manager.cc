#include "storage/disk_manager.h"

#include <cstdint>
#include <cstring>
#include <fstream>
#include <string>

#include "common/check.h"
#include "obs/metrics.h"

namespace spatialjoin {

namespace {

constexpr char kSnapshotMagic[8] = {'S', 'J', 'D', 'I', 'S', 'K', '0',
                                    '1'};

// Process-wide counters mirroring IoStats (the per-disk view stays in
// `stats_`; the registry aggregates across all disks and feeds the
// *.metrics.json exports). Pointers are registered once and cached.
Counter* PageReadsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.page_reads");
  return c;
}

Counter* PageWritesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.page_writes");
  return c;
}

Counter* PagesAllocatedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.pages_allocated");
  return c;
}

}  // namespace

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {
  SJ_CHECK_GE(page_size, 64u);
}

int64_t DiskManager::num_pages() const {
  MutexLock lock(mu_);
  return static_cast<int64_t>(pages_.size());
}

PageId DiskManager::AllocatePage() {
  MutexLock lock(mu_);
  pages_.emplace_back(page_size_);
  ++stats_.pages_allocated;
  PagesAllocatedCounter()->Increment();
  return static_cast<PageId>(pages_.size()) - 1;
}

Status DiskManager::ReadPage(PageId id, Page* out) {
  MutexLock lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) {
    return Status::OutOfRange("ReadPage: page " + std::to_string(id) +
                              " of " + std::to_string(pages_.size()));
  }
  *out = pages_[static_cast<size_t>(id)];
  ++stats_.page_reads;
  PageReadsCounter()->Increment();
  return Status::Ok();
}

Status DiskManager::WritePage(PageId id, const Page& in) {
  MutexLock lock(mu_);
  if (id < 0 || static_cast<size_t>(id) >= pages_.size()) {
    return Status::OutOfRange("WritePage: page " + std::to_string(id) +
                              " of " + std::to_string(pages_.size()));
  }
  if (in.size() != page_size_) {
    return Status::InvalidArgument(
        "WritePage: buffer of " + std::to_string(in.size()) +
        " bytes, page size is " + std::to_string(page_size_));
  }
  if (fail_next_writes_ > 0) {
    --fail_next_writes_;
    return Status::Internal("WritePage: injected device failure on page " +
                            std::to_string(id));
  }
  pages_[static_cast<size_t>(id)] = in;
  ++stats_.page_writes;
  PageWritesCounter()->Increment();
  return Status::Ok();
}

void DiskManager::FailNextWrites(int n) {
  MutexLock lock(mu_);
  fail_next_writes_ = n;
}

IoStats DiskManager::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void DiskManager::ResetStats() {
  MutexLock lock(mu_);
  stats_ = IoStats{};
}

Status DiskManager::SaveSnapshot(const std::string& path) const {
  MutexLock lock(mu_);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::NotFound("SaveSnapshot: cannot open " + path);
  }
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  uint64_t page_size = page_size_;
  uint64_t page_count = pages_.size();
  out.write(reinterpret_cast<const char*>(&page_size), sizeof(page_size));
  out.write(reinterpret_cast<const char*>(&page_count),
            sizeof(page_count));
  for (const Page& page : pages_) {
    out.write(reinterpret_cast<const char*>(page.bytes()),
              static_cast<std::streamsize>(page.size()));
  }
  if (!out) {
    return Status::Internal("SaveSnapshot: short write to " + path);
  }
  return Status::Ok();
}

Status DiskManager::LoadSnapshot(const std::string& path) {
  MutexLock lock(mu_);
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("LoadSnapshot: cannot open " + path);
  }
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return Status::InvalidArgument("LoadSnapshot: bad magic in " + path);
  }
  uint64_t page_size = 0;
  uint64_t page_count = 0;
  in.read(reinterpret_cast<char*>(&page_size), sizeof(page_size));
  in.read(reinterpret_cast<char*>(&page_count), sizeof(page_count));
  if (!in) {
    return Status::InvalidArgument("LoadSnapshot: truncated header in " +
                                   path);
  }
  if (page_size != page_size_) {
    return Status::FailedPrecondition(
        "LoadSnapshot: snapshot page size " + std::to_string(page_size) +
        " != disk page size " + std::to_string(page_size_));
  }
  std::vector<Page> pages;
  pages.reserve(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    Page page(page_size_);
    in.read(reinterpret_cast<char*>(page.bytes()),
            static_cast<std::streamsize>(page_size_));
    if (!in) {
      return Status::InvalidArgument("LoadSnapshot: truncated page " +
                                     std::to_string(i) + " in " + path);
    }
    pages.push_back(std::move(page));
  }
  pages_ = std::move(pages);
  stats_ = IoStats{};
  return Status::Ok();
}

}  // namespace spatialjoin
