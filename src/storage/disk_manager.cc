#include "storage/disk_manager.h"

#include <cstdint>
#include <cstring>
#include <fstream>

#include "common/check.h"
#include "obs/metrics.h"

namespace spatialjoin {

namespace {

constexpr char kSnapshotMagic[8] = {'S', 'J', 'D', 'I', 'S', 'K', '0',
                                    '1'};

// Process-wide counters mirroring IoStats (the per-disk view stays in
// `stats_`; the registry aggregates across all disks and feeds the
// *.metrics.json exports). Pointers are registered once and cached.
Counter* PageReadsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.page_reads");
  return c;
}

Counter* PageWritesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.page_writes");
  return c;
}

Counter* PagesAllocatedCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.disk.pages_allocated");
  return c;
}

}  // namespace

DiskManager::DiskManager(size_t page_size) : page_size_(page_size) {
  SJ_CHECK_GE(page_size, 64u);
}

PageId DiskManager::AllocatePage() {
  pages_.emplace_back(page_size_);
  ++stats_.pages_allocated;
  PagesAllocatedCounter()->Increment();
  return static_cast<PageId>(pages_.size()) - 1;
}

void DiskManager::ReadPage(PageId id, Page* out) {
  SJ_CHECK_GE(id, 0);
  SJ_CHECK_LT(id, num_pages());
  *out = pages_[static_cast<size_t>(id)];
  ++stats_.page_reads;
  PageReadsCounter()->Increment();
}

void DiskManager::WritePage(PageId id, const Page& in) {
  SJ_CHECK_GE(id, 0);
  SJ_CHECK_LT(id, num_pages());
  SJ_CHECK_EQ(in.size(), page_size_);
  pages_[static_cast<size_t>(id)] = in;
  ++stats_.page_writes;
  PageWritesCounter()->Increment();
}

bool DiskManager::SaveSnapshot(const std::string& path) const {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  out.write(kSnapshotMagic, sizeof(kSnapshotMagic));
  uint64_t page_size = page_size_;
  uint64_t page_count = pages_.size();
  out.write(reinterpret_cast<const char*>(&page_size), sizeof(page_size));
  out.write(reinterpret_cast<const char*>(&page_count),
            sizeof(page_count));
  for (const Page& page : pages_) {
    out.write(reinterpret_cast<const char*>(page.bytes()),
              static_cast<std::streamsize>(page.size()));
  }
  return static_cast<bool>(out);
}

bool DiskManager::LoadSnapshot(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  char magic[sizeof(kSnapshotMagic)];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kSnapshotMagic, sizeof(magic)) != 0) {
    return false;
  }
  uint64_t page_size = 0;
  uint64_t page_count = 0;
  in.read(reinterpret_cast<char*>(&page_size), sizeof(page_size));
  in.read(reinterpret_cast<char*>(&page_count), sizeof(page_count));
  if (!in || page_size != page_size_) return false;
  std::vector<Page> pages;
  pages.reserve(page_count);
  for (uint64_t i = 0; i < page_count; ++i) {
    Page page(page_size_);
    in.read(reinterpret_cast<char*>(page.bytes()),
            static_cast<std::streamsize>(page_size_));
    if (!in) return false;
    pages.push_back(std::move(page));
  }
  pages_ = std::move(pages);
  stats_ = IoStats{};
  return true;
}

}  // namespace spatialjoin
