#ifndef SPATIALJOIN_STORAGE_CLUSTERED_FILE_H_
#define SPATIALJOIN_STORAGE_CLUSTERED_FILE_H_

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/page.h"

namespace spatialjoin {

/// A bulk-loaded record file that preserves the load order on disk:
/// records appended consecutively share pages. This is the physical
/// representation of a *clustered* relation (strategy IIb: "tuples are
/// clustered on their relevant spatial attribute in breadth-first order
/// with respect to the corresponding generalization tree", §4.1).
///
/// An optional fill factor models the paper's average space utilization
/// parameter l (Table 3: l = 0.75): each page is closed once it is
/// `fill_factor` full.
class ClusteredFile {
 public:
  /// `fill_factor` in (0, 1]: fraction of the page usable before a new
  /// page is started.
  ClusteredFile(BufferPool* pool, double fill_factor = 1.0);

  ClusteredFile(const ClusteredFile&) = delete;
  ClusteredFile& operator=(const ClusteredFile&) = delete;

  /// Appends the next record in clustering order; returns its ordinal.
  int64_t Append(std::string_view record);

  /// Copies record `ordinal` (0-based load order) into `out`.
  void Read(int64_t ordinal, std::string* out);

  /// Record id (page + slot) of an ordinal, for I/O locality analysis.
  RecordId RidOf(int64_t ordinal) const;

  /// Calls `fn(ordinal, bytes)` over all records in clustering order.
  void Scan(const std::function<void(int64_t, std::string_view)>& fn);

  int64_t num_records() const { return static_cast<int64_t>(rids_.size()); }
  int64_t num_pages() const { return static_cast<int64_t>(pages_.size()); }
  const std::vector<PageId>& pages() const { return pages_; }

 private:
  BufferPool* pool_;
  double fill_factor_;
  std::vector<PageId> pages_;
  std::vector<RecordId> rids_;  // ordinal → location
  size_t used_on_last_page_ = 0;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_CLUSTERED_FILE_H_
