#include "storage/buffer_pool.h"

#include "common/check.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {

namespace {

// Registry mirrors of BufferPoolStats (aggregated across all pools);
// QueryTrace::PoolSnapshot differences these to attribute traffic to
// query levels.
Counter* HitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
  return c;
}

Counter* MissesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.misses");
  return c;
}

Counter* EvictionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.evictions");
  return c;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, int64_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  SJ_CHECK(disk != nullptr);
  SJ_CHECK_GE(capacity_pages, 1);
}

BufferPool::~BufferPool() { FlushAll(); }

BufferPool::Frame& BufferPool::Touch(std::list<Frame>::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
  index_[frames_.front().id] = frames_.begin();
  return frames_.front();
}

void BufferPool::EvictIfFull() {
  while (static_cast<int64_t>(frames_.size()) >= capacity_) {
    Frame& victim = frames_.back();
    if (victim.dirty) disk_->WritePage(victim.id, victim.page);
    index_.erase(victim.id);
    frames_.pop_back();
    ++stats_.evictions;
    EvictionsCounter()->Increment();
  }
}

BufferPool::Frame& BufferPool::Fault(PageId id) {
  // Miss stall: the query is blocked on the (simulated) disk — eviction
  // write-back plus the page read. Timeline views show these as the gaps
  // the cost model's C_IO term prices.
  SJ_SPAN_CAT("pool.miss_stall", "storage");
  EvictIfFull();
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  disk_->ReadPage(id, &frame.page);
  index_[id] = frames_.begin();
  return frame;
}

const Page* BufferPool::GetPage(PageId id) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    HitsCounter()->Increment();
    return &Touch(it->second).page;
  }
  ++stats_.misses;
  MissesCounter()->Increment();
  return &Fault(id).page;
}

Page* BufferPool::GetMutablePage(PageId id) {
  auto it = index_.find(id);
  Frame* frame;
  if (it != index_.end()) {
    ++stats_.hits;
    HitsCounter()->Increment();
    frame = &Touch(it->second);
  } else {
    ++stats_.misses;
    MissesCounter()->Increment();
    frame = &Fault(id);
  }
  frame->dirty = true;
  return &frame->page;
}

PageId BufferPool::NewPage() {
  PageId id = disk_->AllocatePage();
  EvictIfFull();
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  frame.page = Page(disk_->page_size());
  frame.dirty = true;
  index_[id] = frames_.begin();
  return id;
}

void BufferPool::FlushAll() {
  for (Frame& frame : frames_) {
    if (frame.dirty) {
      disk_->WritePage(frame.id, frame.page);
      frame.dirty = false;
    }
  }
}

std::vector<BufferPool::FrameInfo> BufferPool::ResidentFrames() const {
  std::vector<FrameInfo> out;
  out.reserve(frames_.size());
  for (const Frame& frame : frames_) {
    out.push_back(FrameInfo{frame.id, frame.dirty});
  }
  return out;
}

void BufferPool::Clear() {
  FlushAll();
  frames_.clear();
  index_.clear();
}

}  // namespace spatialjoin
