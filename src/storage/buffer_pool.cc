#include "storage/buffer_pool.h"

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/attribution.h"
#include "obs/event_log.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {

namespace {

// Registry mirrors of BufferPoolStats (aggregated across all pools);
// QueryTrace::PoolSnapshot differences these to attribute traffic to
// query levels.
Counter* HitsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.hits");
  return c;
}

Counter* MissesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.misses");
  return c;
}

Counter* EvictionsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.buffer_pool.evictions");
  return c;
}

}  // namespace

BufferPool::BufferPool(DiskManager* disk, int64_t capacity_pages)
    : disk_(disk), capacity_(capacity_pages) {
  SJ_CHECK(disk != nullptr);
  SJ_CHECK_GE(capacity_pages, 1);
}

BufferPool::~BufferPool() {
  Status status = FlushAll();
  if (!status.ok()) {
    // Destructors have no error channel. The data for the failed pages is
    // lost with the pool, which is exactly what a caller opted into by
    // not calling FlushAll() itself — but it must never be *silent*: the
    // event echoes to stderr (kError >= the echo threshold) and survives
    // into any flight dump.
    SJ_EVENT(kBufferPoolFault, kError,
             "flush on destruction failed: %s", status.ToString().c_str());
  }
}

BufferPool::Frame& BufferPool::TouchLocked(std::list<Frame>::iterator it) {
  frames_.splice(frames_.begin(), frames_, it);
  index_[frames_.front().id] = frames_.begin();
  return frames_.front();
}

void BufferPool::EvictIfFullLocked() {
  while (static_cast<int64_t>(frames_.size()) >= capacity_) {
    SJ_BOUNDED_WORK;  // evicts down to capacity; pool-size-bounded
    Frame& victim = frames_.back();
    if (victim.dirty) {
      // A lost write here would silently corrupt the on-disk image (the
      // only remaining copy of the frame dies below), so eviction demands
      // success. FlushAll/Clear are the recoverable paths.
      SJ_CHECK_OK(disk_->WritePage(victim.id, victim.page));
    }
    index_.erase(victim.id);
    frames_.pop_back();
    ++stats_.evictions;
    EvictionsCounter()->Increment();
  }
}

BufferPool::Frame& BufferPool::FaultLocked(PageId id) {
  // Miss stall: the query is blocked on the (simulated) disk — eviction
  // write-back plus the page read. Timeline views show these as the gaps
  // the cost model's C_IO term prices.
  SJ_SPAN_CAT("pool.miss_stall", "storage");
  EvictIfFullLocked();
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  // Faulting an id the disk never allocated is a programmer error, not a
  // recoverable condition (ids only come from AllocatePage/NewPage).
  SJ_CHECK_OK(disk_->ReadPage(id, &frame.page));
  index_[id] = frames_.begin();
  return frame;
}

const Page* BufferPool::GetPage(PageId id) {
  MutexLock lock(mu_);
  auto it = index_.find(id);
  if (it != index_.end()) {
    ++stats_.hits;
    HitsCounter()->Increment();
    attribution::ChargePagesHit();
    return &TouchLocked(it->second).page;
  }
  ++stats_.misses;
  MissesCounter()->Increment();
  attribution::ChargePagesRead();
  return &FaultLocked(id).page;
}

Page* BufferPool::GetMutablePage(PageId id) {
  MutexLock lock(mu_);
  auto it = index_.find(id);
  Frame* frame;
  if (it != index_.end()) {
    ++stats_.hits;
    HitsCounter()->Increment();
    attribution::ChargePagesHit();
    frame = &TouchLocked(it->second);
  } else {
    ++stats_.misses;
    MissesCounter()->Increment();
    attribution::ChargePagesRead();
    frame = &FaultLocked(id);
  }
  frame->dirty = true;
  return &frame->page;
}

PageId BufferPool::NewPage() {
  MutexLock lock(mu_);
  PageId id = disk_->AllocatePage();
  EvictIfFullLocked();
  frames_.emplace_front();
  Frame& frame = frames_.front();
  frame.id = id;
  frame.page = Page(disk_->page_size());
  frame.dirty = true;
  index_[id] = frames_.begin();
  return id;
}

Status BufferPool::FlushAllLocked() {
  Status first_error;
  for (Frame& frame : frames_) {
    if (!frame.dirty) continue;
    Status status = disk_->WritePage(frame.id, frame.page);
    if (status.ok()) {
      frame.dirty = false;
    } else if (first_error.ok()) {
      first_error = std::move(status);
    }
  }
  return first_error;
}

Status BufferPool::FlushAll() {
  MutexLock lock(mu_);
  return FlushAllLocked();
}

std::vector<BufferPool::FrameInfo> BufferPool::ResidentFrames() const {
  MutexLock lock(mu_);
  std::vector<FrameInfo> out;
  out.reserve(frames_.size());
  for (const Frame& frame : frames_) {
    out.push_back(FrameInfo{frame.id, frame.dirty});
  }
  return out;
}

BufferPoolStats BufferPool::stats() const {
  MutexLock lock(mu_);
  return stats_;
}

void BufferPool::ResetStats() {
  MutexLock lock(mu_);
  stats_ = BufferPoolStats{};
}

Status BufferPool::Clear() {
  MutexLock lock(mu_);
  Status status = FlushAllLocked();
  // Keep everything resident on failure: the unflushed frames hold the
  // only copy of their pages.
  if (!status.ok()) return status;
  frames_.clear();
  index_.clear();
  return Status::Ok();
}

}  // namespace spatialjoin
