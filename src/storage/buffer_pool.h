#ifndef SPATIALJOIN_STORAGE_BUFFER_POOL_H_
#define SPATIALJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/disk_manager.h"
#include "storage/page.h"

namespace spatialjoin {

/// Hit/miss counters for a BufferPool.
///
/// `evictions` counts *capacity-pressure* evictions only: frames dropped
/// by `Clear()` are not evictions (see Clear()), so a bench that calls
/// `Clear()` + `ResetStats()` between runs starts each measurement from a
/// genuinely cold, zero-pressure state. Pinned by
/// BufferPoolTest.ClearDoesNotCountEvictions.
struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  double hit_rate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const {
    return "hits=" + std::to_string(hits) +
           " misses=" + std::to_string(misses) +
           " evictions=" + std::to_string(evictions);
  }
};

/// LRU buffer pool over a DiskManager. Capacity is measured in pages,
/// matching the paper's main-memory parameter M (Table 3: M = 4000 pages);
/// the blocked nested-loop and JOIN strategies reserve M−10 pages for one
/// operand (§4.4).
///
/// Access pattern: GetPage pins nothing — callers receive a pointer valid
/// until the next BufferPool call. This single-threaded discipline keeps
/// the engine simple; algorithms copy what they need to retain.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, int64_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  ~BufferPool();

  /// Returns a read-only view of page `id`, faulting it in on a miss.
  const Page* GetPage(PageId id);

  /// Returns a writable view of page `id` and marks it dirty.
  Page* GetMutablePage(PageId id);

  /// Allocates a fresh page on the backing disk and caches it dirty.
  PageId NewPage();

  /// Writes back all dirty pages.
  void FlushAll();

  /// Drops everything (writing dirty pages back). Subsequent accesses
  /// re-read from disk; benches use this to start measurements cold.
  ///
  /// Chosen semantics (pinned by BufferPoolTest.ClearDoesNotCountEvictions):
  /// dropping frames here does NOT increment `stats().evictions` — that
  /// counter measures capacity pressure during a workload, and a bulk
  /// reset is not pressure. Consequently `Clear()` and `ResetStats()`
  /// commute: either order yields all-zero stats before a cold run.
  void Clear();

  int64_t capacity_pages() const { return capacity_; }
  const BufferPoolStats& stats() const { return stats_; }
  /// Zeroes this pool's stats view. The global MetricsRegistry counters
  /// ("storage.buffer_pool.*") are cumulative and unaffected; reset those
  /// via MetricsRegistry::ResetAll().
  void ResetStats() { stats_ = BufferPoolStats{}; }

  DiskManager* disk() { return disk_; }
  const DiskManager* disk() const { return disk_; }

  /// Snapshot of one resident frame, for auditors and diagnostics.
  struct FrameInfo {
    PageId id = kInvalidPageId;
    bool dirty = false;
  };

  /// The resident frames in recency order (MRU first). O(capacity);
  /// does not touch stats or recency.
  std::vector<FrameInfo> ResidentFrames() const;

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    bool dirty = false;
  };

  // Moves `it` to the MRU position and returns its frame.
  Frame& Touch(std::list<Frame>::iterator it);
  Frame& Fault(PageId id);
  void EvictIfFull();

  DiskManager* disk_;
  int64_t capacity_;
  // MRU at front, LRU at back.
  std::list<Frame> frames_;
  std::unordered_map<PageId, std::list<Frame>::iterator> index_;
  BufferPoolStats stats_;
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_BUFFER_POOL_H_
