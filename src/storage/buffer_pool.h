#ifndef SPATIALJOIN_STORAGE_BUFFER_POOL_H_
#define SPATIALJOIN_STORAGE_BUFFER_POOL_H_

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/disk_manager.h"
#include "storage/page.h"

namespace spatialjoin {

/// Hit/miss counters for a BufferPool.
///
/// `evictions` counts *capacity-pressure* evictions only: frames dropped
/// by `Clear()` are not evictions (see Clear()), so a bench that calls
/// `Clear()` + `ResetStats()` between runs starts each measurement from a
/// genuinely cold, zero-pressure state. Pinned by
/// BufferPoolTest.ClearDoesNotCountEvictions.
struct BufferPoolStats {
  int64_t hits = 0;
  int64_t misses = 0;
  int64_t evictions = 0;

  double hit_rate() const {
    int64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) /
                                  static_cast<double>(total);
  }

  std::string ToString() const {
    return "hits=" + std::to_string(hits) +
           " misses=" + std::to_string(misses) +
           " evictions=" + std::to_string(evictions);
  }
};

/// LRU buffer pool over a DiskManager. Capacity is measured in pages,
/// matching the paper's main-memory parameter M (Table 3: M = 4000 pages);
/// the blocked nested-loop and JOIN strategies reserve M−10 pages for one
/// operand (§4.4).
///
/// Thread-safety: the frame table, LRU list, and stats are guarded by
/// `mu_` (every public entry point takes it; the private `*Locked()`
/// helpers require it — enforced by clang -Wthread-safety). What the lock
/// can NOT protect is the `Page*` a Get call returns: it points into a
/// frame that the *next* fault on any thread may evict. The pointer
/// contract is therefore unchanged from the single-threaded design — a
/// returned pointer is valid only until the same pool is touched again,
/// so concurrent query execution snapshots what it needs (FrozenTree) or
/// gives each worker its own pool. Lock order: BufferPool::mu_ →
/// DiskManager::mu_.
class BufferPool {
 public:
  BufferPool(DiskManager* disk, int64_t capacity_pages);

  BufferPool(const BufferPool&) = delete;
  BufferPool& operator=(const BufferPool&) = delete;

  /// Best-effort flush (see FlushAll); a dirty page that fails to write
  /// back during destruction is dropped after the failure is recorded as
  /// a kBufferPoolFault event (echoed to stderr, captured in flight
  /// dumps). Callers that must not lose data call FlushAll() first and
  /// act on its Status.
  ~BufferPool();

  /// Returns a read-only view of page `id`, faulting it in on a miss.
  /// Valid until the next call on this pool (see class comment).
  const Page* GetPage(PageId id) SJ_EXCLUDES(mu_);

  /// Returns a writable view of page `id` and marks it dirty.
  Page* GetMutablePage(PageId id) SJ_EXCLUDES(mu_);

  /// Allocates a fresh page on the backing disk and caches it dirty.
  PageId NewPage() SJ_EXCLUDES(mu_);

  /// Writes back all dirty pages. On a write failure the sweep continues
  /// (so one bad page does not pin every other dirty page) and the first
  /// error is returned; failed pages stay dirty and resident.
  Status FlushAll() SJ_EXCLUDES(mu_);

  /// Drops everything (writing dirty pages back). Subsequent accesses
  /// re-read from disk; benches use this to start measurements cold.
  /// On a write-back failure nothing is dropped (the error is returned
  /// and the pool is unchanged): clearing would destroy the only copy of
  /// the unwritten pages.
  ///
  /// Chosen semantics (pinned by BufferPoolTest.ClearDoesNotCountEvictions):
  /// dropping frames here does NOT increment `stats().evictions` — that
  /// counter measures capacity pressure during a workload, and a bulk
  /// reset is not pressure. Consequently `Clear()` and `ResetStats()`
  /// commute: either order yields all-zero stats before a cold run.
  Status Clear() SJ_EXCLUDES(mu_);

  int64_t capacity_pages() const { return capacity_; }
  /// Snapshot of the hit/miss counters (by value: the live struct is
  /// guarded by mu_).
  BufferPoolStats stats() const SJ_EXCLUDES(mu_);
  /// Zeroes this pool's stats view. The global MetricsRegistry counters
  /// ("storage.buffer_pool.*") are cumulative and unaffected; reset those
  /// via MetricsRegistry::ResetAll().
  void ResetStats() SJ_EXCLUDES(mu_);

  DiskManager* disk() { return disk_; }
  const DiskManager* disk() const { return disk_; }

  /// Snapshot of one resident frame, for auditors and diagnostics.
  struct FrameInfo {
    PageId id = kInvalidPageId;
    bool dirty = false;
  };

  /// The resident frames in recency order (MRU first). O(capacity);
  /// does not touch stats or recency.
  std::vector<FrameInfo> ResidentFrames() const SJ_EXCLUDES(mu_);

 private:
  struct Frame {
    PageId id = kInvalidPageId;
    Page page;
    bool dirty = false;
  };

  // Moves `it` to the MRU position and returns its frame.
  Frame& TouchLocked(std::list<Frame>::iterator it) SJ_REQUIRES(mu_);
  // Faults `id` in (evicting if at capacity) and returns its frame.
  // Read/write-back failures on the simulated disk are fatal here: the
  // pointer-returning Get API has no error channel, and losing a dirty
  // victim would corrupt the database silently.
  Frame& FaultLocked(PageId id) SJ_REQUIRES(mu_);
  void EvictIfFullLocked() SJ_REQUIRES(mu_);
  // Shared flush sweep; returns the first write error, keeps sweeping.
  Status FlushAllLocked() SJ_REQUIRES(mu_);

  DiskManager* const disk_;
  const int64_t capacity_;
  mutable Mutex mu_;
  // MRU at front, LRU at back.
  std::list<Frame> frames_ SJ_GUARDED_BY(mu_);
  std::unordered_map<PageId, std::list<Frame>::iterator> index_
      SJ_GUARDED_BY(mu_);
  BufferPoolStats stats_ SJ_GUARDED_BY(mu_);
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_BUFFER_POOL_H_
