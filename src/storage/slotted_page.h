#ifndef SPATIALJOIN_STORAGE_SLOTTED_PAGE_H_
#define SPATIALJOIN_STORAGE_SLOTTED_PAGE_H_

#include <cstdint>
#include <optional>
#include <string_view>

#include "common/thread_annotations.h"
#include "storage/page.h"

namespace spatialjoin {

/// Classic slotted-page layout over a raw Page:
///
///   [num_slots:u16][free_end:u16][slot 0][slot 1]…        records grow ←
///   each slot: [offset:u16][length:u16]; a deleted slot has offset 0.
///
/// Records are byte strings up to page_size − 8 bytes. All functions are
/// free functions so the same code path serves buffer-pool frames and
/// privately held pages.
namespace slotted {

/// Formats an empty slotted page in place.
void Init(Page* page);

/// Number of slots ever allocated on the page (including deleted ones).
/// The readers (NumSlots/FreeSpace/Read) are SJ_HOT: scans call them per
/// record with the page pinned, so they must never allocate or lock.
SJ_HOT uint16_t NumSlots(const Page& page);

/// Bytes still available for one more record (slot entry included).
SJ_HOT size_t FreeSpace(const Page& page);

/// Appends a record; returns its slot, or nullopt if it does not fit.
std::optional<uint16_t> Insert(Page* page, std::string_view record);

/// Returns the record bytes in `slot`, or nullopt if the slot is deleted
/// or out of range. The view points into `page` and is invalidated by any
/// mutation of the page.
SJ_HOT std::optional<std::string_view> Read(const Page& page,
                                            uint16_t slot);

/// Marks `slot` deleted. Space is not reclaimed (records in this engine
/// are bulk-loaded and rarely deleted); returns false if already deleted
/// or out of range.
bool Delete(Page* page, uint16_t slot);

}  // namespace slotted

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_SLOTTED_PAGE_H_
