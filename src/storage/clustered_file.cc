#include "storage/clustered_file.h"

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "storage/slotted_page.h"

namespace spatialjoin {

ClusteredFile::ClusteredFile(BufferPool* pool, double fill_factor)
    : pool_(pool), fill_factor_(fill_factor) {
  SJ_CHECK(pool != nullptr);
  SJ_CHECK_MSG(fill_factor > 0.0 && fill_factor <= 1.0,
               "fill_factor must be in (0,1], got " << fill_factor);
}

int64_t ClusteredFile::Append(std::string_view record) {
  SJ_CHECK_MSG(record.size() + 8 <= pool_->disk()->page_size(),
               "record of " << record.size()
                            << " bytes does not fit on a page");
  size_t budget = static_cast<size_t>(
      fill_factor_ * static_cast<double>(pool_->disk()->page_size()));
  bool need_new_page =
      pages_.empty() || used_on_last_page_ + record.size() + 8 > budget;
  if (!need_new_page) {
    Page* page = pool_->GetMutablePage(pages_.back());
    auto slot = slotted::Insert(page, record);
    if (slot.has_value()) {
      used_on_last_page_ += record.size() + 8;
      rids_.push_back(RecordId{pages_.back(), *slot});
      return num_records() - 1;
    }
    // Fill-factor budget not yet reached but the physical page is full.
  }
  PageId fresh = pool_->NewPage();
  Page* page = pool_->GetMutablePage(fresh);
  slotted::Init(page);
  auto slot = slotted::Insert(page, record);
  SJ_CHECK(slot.has_value());
  pages_.push_back(fresh);
  used_on_last_page_ = record.size() + 8;
  rids_.push_back(RecordId{fresh, *slot});
  return num_records() - 1;
}

void ClusteredFile::Read(int64_t ordinal, std::string* out) {
  SJ_CHECK_GE(ordinal, 0);
  SJ_CHECK_LT(ordinal, num_records());
  const RecordId& rid = rids_[static_cast<size_t>(ordinal)];
  const Page* page = pool_->GetPage(rid.page_id);
  auto bytes = slotted::Read(*page, rid.slot);
  SJ_CHECK(bytes.has_value());
  out->assign(bytes->data(), bytes->size());
}

RecordId ClusteredFile::RidOf(int64_t ordinal) const {
  SJ_CHECK_GE(ordinal, 0);
  SJ_CHECK_LT(ordinal, num_records());
  return rids_[static_cast<size_t>(ordinal)];
}

void ClusteredFile::Scan(
    const std::function<void(int64_t, std::string_view)>& fn) {
  for (int64_t i = 0; i < num_records(); ++i) {
    SJ_BOUNDED_WORK;  // full-file scan; callers' visit loops poll
    const RecordId& rid = rids_[static_cast<size_t>(i)];
    const Page* page = pool_->GetPage(rid.page_id);
    auto bytes = slotted::Read(*page, rid.slot);
    SJ_CHECK(bytes.has_value());
    fn(i, *bytes);
  }
}

}  // namespace spatialjoin
