#ifndef SPATIALJOIN_STORAGE_PAGE_H_
#define SPATIALJOIN_STORAGE_PAGE_H_

#include <cstdint>
#include <vector>

namespace spatialjoin {

/// Identifier of a disk page. Pages are numbered densely from 0 within one
/// DiskManager.
using PageId = int64_t;

/// Sentinel for "no page".
inline constexpr PageId kInvalidPageId = -1;

/// Raw page image. The default size follows the paper's Table 3 (s = 2000
/// bytes); DiskManager instances may choose another size.
struct Page {
  std::vector<uint8_t> data;

  explicit Page(size_t size) : data(size, 0) {}
  Page() = default;

  size_t size() const { return data.size(); }
  uint8_t* bytes() { return data.data(); }
  const uint8_t* bytes() const { return data.data(); }
};

/// Location of a record inside a paged file: page + slot index.
struct RecordId {
  PageId page_id = kInvalidPageId;
  uint16_t slot = 0;

  bool is_valid() const { return page_id != kInvalidPageId; }

  friend bool operator==(const RecordId& a, const RecordId& b) {
    return a.page_id == b.page_id && a.slot == b.slot;
  }
  friend bool operator!=(const RecordId& a, const RecordId& b) {
    return !(a == b);
  }
  friend bool operator<(const RecordId& a, const RecordId& b) {
    if (a.page_id != b.page_id) return a.page_id < b.page_id;
    return a.slot < b.slot;
  }
};

}  // namespace spatialjoin

#endif  // SPATIALJOIN_STORAGE_PAGE_H_
