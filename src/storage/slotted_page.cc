#include "storage/slotted_page.h"

#include <cstring>

#include "common/check.h"
#include "common/thread_annotations.h"

namespace spatialjoin {
namespace slotted {

namespace {

constexpr size_t kHeaderSize = 4;   // num_slots + free_end
constexpr size_t kSlotSize = 4;     // offset + length

uint16_t LoadU16(const Page& page, size_t pos) {
  uint16_t v;
  std::memcpy(&v, page.bytes() + pos, sizeof(v));
  return v;
}

void StoreU16(Page* page, size_t pos, uint16_t v) {
  std::memcpy(page->bytes() + pos, &v, sizeof(v));
}

size_t SlotPos(uint16_t slot) { return kHeaderSize + kSlotSize * slot; }

}  // namespace

void Init(Page* page) {
  SJ_CHECK(page != nullptr);
  SJ_CHECK_GE(page->size(), 64u);
  SJ_CHECK_LE(page->size(), 65535u);
  StoreU16(page, 0, 0);                                   // num_slots
  StoreU16(page, 2, static_cast<uint16_t>(page->size())); // free_end
}

SJ_HOT uint16_t NumSlots(const Page& page) { return LoadU16(page, 0); }

SJ_HOT size_t FreeSpace(const Page& page) {
  uint16_t num_slots = NumSlots(page);
  uint16_t free_end = LoadU16(page, 2);
  size_t slots_end = SlotPos(num_slots);
  if (free_end < slots_end + kSlotSize) return 0;
  return free_end - slots_end - kSlotSize;
}

std::optional<uint16_t> Insert(Page* page, std::string_view record) {
  SJ_CHECK(page != nullptr);
  if (record.size() > 65535u) return std::nullopt;
  if (FreeSpace(*page) < record.size()) return std::nullopt;
  uint16_t num_slots = NumSlots(*page);
  uint16_t free_end = LoadU16(*page, 2);
  uint16_t offset = static_cast<uint16_t>(free_end - record.size());
  std::memcpy(page->bytes() + offset, record.data(), record.size());
  StoreU16(page, SlotPos(num_slots), offset);
  StoreU16(page, SlotPos(num_slots) + 2,
           static_cast<uint16_t>(record.size()));
  StoreU16(page, 0, static_cast<uint16_t>(num_slots + 1));
  StoreU16(page, 2, offset);
  return num_slots;
}

SJ_HOT std::optional<std::string_view> Read(const Page& page,
                                            uint16_t slot) {
  if (slot >= NumSlots(page)) return std::nullopt;
  uint16_t offset = LoadU16(page, SlotPos(slot));
  uint16_t length = LoadU16(page, SlotPos(slot) + 2);
  if (offset == 0) return std::nullopt;  // deleted
  return std::string_view(
      reinterpret_cast<const char*>(page.bytes()) + offset, length);
}

bool Delete(Page* page, uint16_t slot) {
  SJ_CHECK(page != nullptr);
  if (slot >= NumSlots(*page)) return false;
  if (LoadU16(*page, SlotPos(slot)) == 0) return false;
  StoreU16(page, SlotPos(slot), 0);
  StoreU16(page, SlotPos(slot) + 2, 0);
  return true;
}

}  // namespace slotted
}  // namespace spatialjoin
