#include "storage/heap_file.h"

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/metrics.h"
#include "storage/slotted_page.h"

namespace spatialjoin {

namespace {

// Record-level traffic counters for the registry; page-level traffic is
// counted by DiskManager/BufferPool, so these add the record/page ratio
// the cost model's m = ⌊s·l/v⌋ parameter predicts.
Counter* InsertsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.heap_file.inserts");
  return c;
}

Counter* ReadsCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.heap_file.reads");
  return c;
}

Counter* DeletesCounter() {
  static Counter* c =
      MetricsRegistry::Global().GetCounter("storage.heap_file.deletes");
  return c;
}

}  // namespace

HeapFile::HeapFile(BufferPool* pool) : pool_(pool) {
  SJ_CHECK(pool != nullptr);
}

RecordId HeapFile::Insert(std::string_view record) {
  SJ_CHECK_MSG(record.size() + 8 <= pool_->disk()->page_size(),
               "record of " << record.size()
                            << " bytes does not fit on a page");
  MutexLock lock(mu_);
  if (!pages_.empty()) {
    PageId last = pages_.back();
    Page* page = pool_->GetMutablePage(last);
    if (auto slot = slotted::Insert(page, record)) {
      ++num_records_;
      InsertsCounter()->Increment();
      return RecordId{last, *slot};
    }
  }
  PageId fresh = pool_->NewPage();
  Page* page = pool_->GetMutablePage(fresh);
  slotted::Init(page);
  auto slot = slotted::Insert(page, record);
  SJ_CHECK(slot.has_value());
  pages_.push_back(fresh);
  ++num_records_;
  InsertsCounter()->Increment();
  return RecordId{fresh, *slot};
}

bool HeapFile::Read(const RecordId& rid, std::string* out) {
  // Debug-only: runs once per record on scan-heavy paths, and an invalid
  // page id is still caught (fatally) by the pool's disk read.
  SJ_DCHECK(rid.is_valid());
  ReadsCounter()->Increment();
  const Page* page = pool_->GetPage(rid.page_id);
  auto bytes = slotted::Read(*page, rid.slot);
  if (!bytes.has_value()) return false;
  out->assign(bytes->data(), bytes->size());
  return true;
}

bool HeapFile::Delete(const RecordId& rid) {
  SJ_DCHECK(rid.is_valid());  // as in Read: re-checked by the disk layer
  MutexLock lock(mu_);
  Page* page = pool_->GetMutablePage(rid.page_id);
  if (!slotted::Delete(page, rid.slot)) return false;
  --num_records_;
  DeletesCounter()->Increment();
  return true;
}

void HeapFile::Scan(
    const std::function<void(const RecordId&, std::string_view)>& fn) {
  // Snapshot the directory so `fn` can call back into this file (or its
  // pool) without holding mu_ — see the header contract.
  for (PageId pid : pages()) {
    SJ_BOUNDED_WORK;  // full-file scan; callers' visit loops poll
    const Page* page = pool_->GetPage(pid);
    uint16_t slots = slotted::NumSlots(*page);
    for (uint16_t s = 0; s < slots; ++s) {
      SJ_BOUNDED_WORK;  // one page's slots
      auto bytes = slotted::Read(*page, s);
      if (bytes.has_value()) fn(RecordId{pid, s}, *bytes);
      // Re-fetch in case `fn` touched the pool and invalidated the frame.
      page = pool_->GetPage(pid);
    }
  }
}

}  // namespace spatialjoin
