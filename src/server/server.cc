#include "server/server.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <utility>

#include "common/check.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/metrics.h"
#include "obs/span.h"

namespace spatialjoin {
namespace server {

namespace {

// Distinguishes sockets of multiple servers in one process (tests run
// several side by side).
std::atomic<int> socket_sequence{0};

}  // namespace

std::string Server::DefaultSocketPath() {
  char path[96];
  std::snprintf(path, sizeof(path), "/tmp/sj_server_%d_%d.sock",
                static_cast<int>(::getpid()),
                socket_sequence.fetch_add(1, std::memory_order_relaxed));
  return path;
}

Server::Server(exec::ThreadPool* pool, const Options& options)
    : pool_(pool),
      options_(options),
      scheduler_(pool, {.max_inflight = options.max_inflight}) {
  SJ_CHECK(pool != nullptr);
  if (options_.socket_path.empty()) {
    options_.socket_path = DefaultSocketPath();
  }
}

Server::~Server() { Stop(); }

uint32_t Server::RegisterDataset(exec::FrozenTree r_tree,
                                 exec::FrozenTree s_tree) {
  SJ_CHECK_MSG(!started_,
               "datasets must be registered before Server::Start");
  return registry_.Add(std::move(r_tree), std::move(s_tree));
}

Status Server::Start() {
  SJ_CHECK_MSG(!started_, "Server::Start called twice");

  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path exceeds AF_UNIX limit");
  }
  ::memcpy(addr.sun_path, options_.socket_path.c_str(),
           options_.socket_path.size() + 1);

  listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal("socket() failed");
  }
  // A previous run that died uncleanly may have left the file; bind
  // would then fail spuriously. Paths are per-pid-per-sequence, so the
  // unlink can only ever hit such a leftover.
  ::unlink(options_.socket_path.c_str());
  if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0 ||
      ::listen(listen_fd_, options_.listen_backlog) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("cannot bind/listen on ") +
                            options_.socket_path);
  }

  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  SJ_EVENT(kQueryAdmitted, kInfo, "server listening on %s (max_inflight %d)",
           options_.socket_path.c_str(), scheduler_.max_inflight());
  return Status::Ok();
}

void Server::AcceptLoop() {
  Tracing::SetThreadName("server.accept");
  ActivityScope activity("server.accept", "accept");
  while (true) {
    // Blocking in accept() is the steady state, not a stall; Beat() below
    // re-activates the scope for the brief handling window.
    activity.SetIdle(true);
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      // Stop() shuts the listening socket down; accept then fails with
      // EINVAL and the loop ends.
      return;
    }
    activity.Beat();
    Session::Context context;
    context.registry = &registry_;
    context.scheduler = &scheduler_;
    context.pool = pool_;
    context.default_deadline_ns = options_.default_deadline_ns;
    auto session =
        std::make_shared<Session>(fd, next_session_id_++, context);
    sessions_.push_back(session);
    reader_threads_.emplace_back(
        [session = std::move(session)] { session->ServeLoop(); });
  }
}

void Server::Stop() {
  if (!started_) return;
  started_ = false;

  // Order matters: (1) no new connections, (2) unblock every reader —
  // disconnect cancels their in-flight queries, (3) wait for the
  // (now-cancelled) queries to leave the pool, (4) release the sessions.
  ::shutdown(listen_fd_, SHUT_RDWR);
  accept_thread_.join();
  for (auto& session : sessions_) session->Shutdown();
  for (auto& thread : reader_threads_) thread.join();
  scheduler_.Drain();
  sessions_.clear();  // last refs (barring client-held ones) close the fds
  reader_threads_.clear();

  ::close(listen_fd_);
  listen_fd_ = -1;
  ::unlink(options_.socket_path.c_str());
  SJ_EVENT(kQueryFinished, kInfo, "server on %s stopped",
           options_.socket_path.c_str());
}

}  // namespace server
}  // namespace spatialjoin
