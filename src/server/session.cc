#include "server/session.h"

#include <errno.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <sstream>
#include <utility>
#include <vector>

#include "common/check.h"
#include "core/spatial_join.h"
#include "obs/attribution.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/span.h"
#include "obs/timer.h"
#include "relational/tuple.h"
#include "relational/value.h"

namespace spatialjoin {
namespace server {

namespace {

/// The wire exposes only the strategies that are safe to run many-at-once
/// over FrozenTree snapshots. The others need live relations, a join
/// index, or the (single-threaded) storage layer, none of which the
/// service holds.
bool WireSupportsSelect(SelectStrategy s) {
  return s == SelectStrategy::kTree || s == SelectStrategy::kParallelTree;
}

bool WireSupportsJoin(JoinStrategy s) {
  return s == JoinStrategy::kTreeJoin ||
         s == JoinStrategy::kParallelTreeJoin;
}

}  // namespace

Session::Session(int fd, int id, const Context& context)
    : fd_(fd), id_(id), context_(context) {
  SJ_CHECK_GE(fd, 0);
  SJ_CHECK(context.registry != nullptr && context.scheduler != nullptr &&
           context.pool != nullptr);
}

Session::~Session() {
  // The last owner (reader thread or final query closure) closes the fd,
  // so the descriptor can never be recycled under an in-flight reply.
  ::close(fd_);
}

void Session::ServeLoop() {
  char label[32];
  std::snprintf(label, sizeof(label), "server.sess%d", id_);
  Tracing::SetThreadName(label);
  ActivityScope activity("server.session", "reader");
  activity.SetDetail(label);
  ServiceTelemetry::Global().OnSessionOpened();
  SJ_EVENT(kQueryAdmitted, kInfo, "session%d opened", id_);

  FrameDecoder decoder;
  char buf[1 << 16];
  while (true) {
    // A session blocked in recv() is idle, not stalled — the watchdog
    // only minds the handling window between Beat() and the next recv.
    activity.SetIdle(true);
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) break;  // EOF (client closed or Shutdown())
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    activity.Beat();
    // Feed's return and poisoned() agree; frames already complete in the
    // buffer ahead of any later corruption still drain below.
    decoder.Feed(std::string_view(buf, static_cast<size_t>(n)))
        .IgnoreError();  // surfaced via poisoned() after the drain
    Frame frame;
    while (decoder.Next(&frame)) HandleFrame(frame);
    if (decoder.poisoned()) {
      // The stream is garbage, so no request id is attributable; id 0 by
      // convention marks a connection-level protocol error.
      SendFrame(EncodeErrorReply(0, decoder.error()));
      ServiceTelemetry::Global().OnProtocolError();
      SJ_EVENT(kQueryFinished, kWarn, "session%d dropped: %s", id_,
               decoder.error().message().c_str());
      break;
    }
  }

  // Disconnection cancels this session's outstanding queries: their
  // results are undeliverable, so finishing the traversals is pure waste.
  std::vector<std::shared_ptr<exec::CancelToken>> orphans;
  {
    MutexLock lock(mu_);
    orphans.reserve(inflight_.size());
    for (auto& [rid, pending] : inflight_) {
      SJ_BOUNDED_WORK;  // in-flight set capped by admission control
      orphans.push_back(pending.token);
    }
  }
  for (auto& token : orphans) {
    SJ_BOUNDED_WORK;  // in-flight set capped by admission control
    token->Cancel();
  }
  // Tell the peer the conversation is over (EOF on its recv). The fd
  // itself stays open until the last in-flight reply closure releases its
  // shared_ptr — shutdown is safe to race with those sends: they fail
  // with EPIPE and mark write_failed_.
  ::shutdown(fd_, SHUT_RDWR);
  ServiceTelemetry::Global().OnSessionClosed();
  SJ_EVENT(kQueryFinished, kInfo, "session%d closed (%zu queries orphaned)",
           id_, orphans.size());
}

void Session::Shutdown() {
  // SHUT_RDWR, not close: the fd stays valid (and owned) until the last
  // shared_ptr drops, while the reader's recv unblocks with 0.
  ::shutdown(fd_, SHUT_RDWR);
}

void Session::HandleFrame(const Frame& frame) {
  if (!IsRequestType(frame.type)) {
    SendFrame(EncodeErrorReply(
        frame.request_id,
        Status::InvalidArgument("unexpected message type from client")));
    return;
  }
  switch (static_cast<MessageType>(frame.type)) {
    case MessageType::kPing:
      SendFrame(EncodePong(frame.request_id));
      return;
    case MessageType::kSelect:
      HandleSelect(frame.request_id, frame.payload);
      return;
    case MessageType::kJoin:
      HandleJoin(frame.request_id, frame.payload);
      return;
    case MessageType::kCancel:
      HandleCancel(frame.request_id, frame.payload);
      return;
    case MessageType::kStats:
      if (!frame.payload.empty()) {
        SendFrame(EncodeErrorReply(
            frame.request_id,
            Status::InvalidArgument("STATS carries a payload")));
        return;
      }
      HandleStats(frame.request_id);
      return;
    default:
      return;  // unreachable: IsRequestType filtered above
  }
}

void Session::HandleSelect(uint64_t request_id, std::string_view payload) {
  Result<SelectRequest> decoded = DecodeSelectRequest(payload);
  if (!decoded.ok()) {
    SendFrame(EncodeErrorReply(request_id, decoded.status()));
    return;
  }
  const SelectRequest req = decoded.value();
  if (!WireSupportsSelect(req.strategy)) {
    SendFrame(EncodeErrorReply(
        request_id,
        Status::InvalidArgument("select strategy not served over the wire")));
    return;
  }
  const Dataset* dataset = context_.registry->Find(req.dataset_id);
  if (dataset == nullptr) {
    SendFrame(
        EncodeErrorReply(request_id, Status::NotFound("unknown dataset id")));
    return;
  }
  Result<std::unique_ptr<ThetaOperator>> op =
      MakeWireOperator(req.op_code, req.op_param);
  if (!op.ok()) {
    SendFrame(EncodeErrorReply(request_id, op.status()));
    return;
  }

  const int64_t deadline_ns = req.deadline_ns > 0
                                  ? req.deadline_ns
                                  : context_.default_deadline_ns;
  auto token = std::make_shared<exec::CancelToken>();
  const QueryInfo info{req.dataset_id, /*is_join=*/false,
                       SelectStrategyName(req.strategy)};
  AdmitQuery(request_id, info, token, deadline_ns,
             [this, req, dataset, token, deadline_ns,
              op = std::shared_ptr<ThetaOperator>(std::move(op).value())] {
               SpatialJoinContext ctx;
               ctx.s_tree = &dataset->s_tree;
               ctx.exec_pool = context_.pool;
               ctx.cancel = token.get();
               ctx.deadline_budget_ns = deadline_ns;
               return ExecuteSelect(req.strategy, ctx, Value(req.selector),
                                    kInvalidTupleId, *op);
             });
}

void Session::HandleJoin(uint64_t request_id, std::string_view payload) {
  Result<JoinRequest> decoded = DecodeJoinRequest(payload);
  if (!decoded.ok()) {
    SendFrame(EncodeErrorReply(request_id, decoded.status()));
    return;
  }
  const JoinRequest req = decoded.value();
  if (!WireSupportsJoin(req.strategy)) {
    SendFrame(EncodeErrorReply(
        request_id,
        Status::InvalidArgument("join strategy not served over the wire")));
    return;
  }
  const Dataset* dataset = context_.registry->Find(req.dataset_id);
  if (dataset == nullptr) {
    SendFrame(
        EncodeErrorReply(request_id, Status::NotFound("unknown dataset id")));
    return;
  }
  Result<std::unique_ptr<ThetaOperator>> op =
      MakeWireOperator(req.op_code, req.op_param);
  if (!op.ok()) {
    SendFrame(EncodeErrorReply(request_id, op.status()));
    return;
  }

  const int64_t deadline_ns = req.deadline_ns > 0
                                  ? req.deadline_ns
                                  : context_.default_deadline_ns;
  auto token = std::make_shared<exec::CancelToken>();
  const QueryInfo info{req.dataset_id, /*is_join=*/true,
                       JoinStrategyName(req.strategy)};
  AdmitQuery(request_id, info, token, deadline_ns,
             [this, req, dataset, token, deadline_ns,
              op = std::shared_ptr<ThetaOperator>(std::move(op).value())] {
               SpatialJoinContext ctx;
               ctx.r_tree = &dataset->r_tree;
               ctx.s_tree = &dataset->s_tree;
               ctx.exec_pool = context_.pool;
               ctx.cancel = token.get();
               ctx.deadline_budget_ns = deadline_ns;
               return ExecuteJoin(req.strategy, ctx, *op);
             });
}

void Session::HandleCancel(uint64_t request_id, std::string_view payload) {
  Result<CancelRequest> decoded = DecodeCancelRequest(payload);
  if (!decoded.ok()) {
    SendFrame(EncodeErrorReply(request_id, decoded.status()));
    return;
  }
  std::shared_ptr<exec::CancelToken> token;
  {
    MutexLock lock(mu_);
    auto it = inflight_.find(decoded.value().target_request_id);
    if (it != inflight_.end()) token = it->second.token;
  }
  // Cancelling an unknown/already-finished id is a no-op by design — the
  // cancel raced the completion, and the client sees the (valid) result
  // it already got. The ack is unconditional either way.
  if (token != nullptr) {
    token->Cancel();
    ServiceTelemetry::Global().OnCancelRequested();
  }
  SendFrame(EncodePong(request_id));
}

void Session::HandleStats(uint64_t request_id) {
  // Answered inline on the reader thread, bypassing admission: STATS is
  // an operator's window into the server, and it must keep working when
  // the scheduler is saturated and rejecting queries.
  std::ostringstream os;
  ServiceTelemetry::Global().WriteStatsJson(
      os, context_.scheduler->stats(), context_.scheduler->max_inflight(),
      context_.pool->stats());
  SendFrame(EncodeStatsReply(request_id, os.str()));
}

void Session::AdmitQuery(uint64_t request_id, const QueryInfo& info,
                         std::shared_ptr<exec::CancelToken> token,
                         int64_t deadline_ns,
                         std::function<JoinResult()> run) {
  bool inserted;
  {
    MutexLock lock(mu_);
    // Request ids identify in-flight queries (kCancel targets them), so a
    // duplicate must be refused before it can alias an existing token.
    inserted = inflight_.emplace(request_id, PendingQuery{token}).second;
  }
  // mu_ is released before SendFrame: mu_ and write_mu_ are never nested.
  if (!inserted) {
    SendFrame(EncodeErrorReply(
        request_id,
        Status::InvalidArgument("duplicate in-flight request id")));
    return;
  }

  const int64_t admit_ns = MonotonicNowNs();
  Status admitted = context_.scheduler->Submit(
      [self = shared_from_this(), request_id, info, token, deadline_ns,
       admit_ns, run = std::move(run)] {
        // Each query is a watchdog-visible activity: the deadline the
        // token enforces cooperatively is also armed here, so a query
        // that *fails* to stop shows up as a deadline_exceeded event
        // with a flight dump — the enforcement mechanism and its
        // auditor are independent.
        ActivityScope activity("server.query", "query", deadline_ns);
        char detail[48];
        std::snprintf(detail, sizeof(detail), "sess%d req%llu", self->id_,
                      static_cast<unsigned long long>(request_id));
        activity.SetDetail(detail);
        ScopedSpan span("server.query", "server");
        // Counter track in the timeline: which request this worker is
        // serving, so a --trace capture is attributable query-by-query.
        TraceCounter("server.request_id", static_cast<int64_t>(request_id));

        // Attribution scope around the body: any thread that ends up
        // working for this query — this worker, thieves, helping waiters
        // — charges this sink (obs/attribution.h).
        attribution::QueryCharges charges;
        const int64_t start_ns = MonotonicNowNs();
        JoinResult result;
        {
          attribution::QueryChargeScope scope(&charges);
          result = run();
        }
        const int64_t end_ns = MonotonicNowNs();
        // Pair counts come from the result at completion: exact by
        // construction, and free on the per-pair hot path.
        charges.AddPairsExamined(result.theta_upper_tests);
        charges.AddQualPairs(result.qual_pairs_examined);
        const Status status = token->ToStatus();
        self->ForgetQuery(request_id);

        QueryRecord record;
        record.request_id = request_id;
        record.session_id = self->id_;
        record.dataset_id = info.dataset_id;
        record.is_join = info.is_join;
        record.strategy = info.strategy;
        record.end_ts_ns = end_ns;
        record.wall_ns = end_ns - admit_ns;
        record.charges = charges.Snapshot();
        // Admission wait (admit → body start) plus the waits of every
        // pool task the query fanned out.
        record.queue_wait_ns =
            (start_ns - admit_ns) + record.charges.queue_wait_ns;
        record.theta_tests = result.theta_tests;
        record.nodes_accessed = result.nodes_accessed;
        record.matches = static_cast<int64_t>(result.matches.size());
        record.residual =
            (result.theta_tests == 0 && result.theta_upper_tests == 0)
                ? 1.0
                : static_cast<double>(result.theta_tests) /
                      static_cast<double>(
                          std::max<int64_t>(1, result.theta_upper_tests));

        ServiceTelemetry& telemetry = ServiceTelemetry::Global();
        if (!status.ok()) {
          record.outcome = status.code() == StatusCode::kCancelled
                               ? QueryOutcome::kCancelled
                               : QueryOutcome::kDeadline;
          telemetry.RecordQuery(record);
          self->SendFrame(EncodeErrorReply(request_id, status));
          return;
        }
        if (result.matches.size() > kMaxResultPairs) {
          record.outcome = QueryOutcome::kOversized;
          telemetry.RecordQuery(record);
          self->SendFrame(EncodeErrorReply(
              request_id, Status::ResourceExhausted(
                              "result exceeds the frame's pair capacity")));
          return;
        }
        record.outcome = QueryOutcome::kOk;
        telemetry.RecordQuery(record);
        self->SendFrame(EncodeResultReply(request_id, result));
      });
  if (!admitted.ok()) {
    // Backpressure: undo the registration and tell the client now —
    // nothing was posted, so this rejection costs one reply frame.
    ForgetQuery(request_id);
    SendFrame(EncodeErrorReply(request_id, admitted));
  }
}

void Session::SendFrame(const std::string& frame) {
  {
    MutexLock lock(write_mu_);
    if (write_failed_) return;
    pending_writes_.push_back(frame);
    if (writer_active_) return;  // the active drainer picks it up
    writer_active_ = true;
  }
  DrainWrites();
}

void Session::DrainWrites() {
  std::string frame;
  while (true) {
    SJ_BOUNDED_WORK;  // drains the pending queue (one frame per admitted
                      // reply) and exits when it is empty
    {
      MutexLock lock(write_mu_);
      if (write_failed_ || pending_writes_.empty()) {
        writer_active_ = false;
        return;
      }
      frame = std::move(pending_writes_.front());
      pending_writes_.pop_front();
    }
    // The send itself runs unlocked: the peer drains its socket at its
    // own pace, and a slow client must not hold up the completion paths
    // queueing behind write_mu_.
    size_t sent = 0;
    while (sent < frame.size()) {
      SJ_BOUNDED_WORK;  // one frame's bytes (<= header + kMaxPayloadBytes)
      // MSG_NOSIGNAL: a vanished client must surface as EPIPE here, not
      // as a process-wide SIGPIPE (the engine installs no handler for
      // it).
      const ssize_t n = ::send(fd_, frame.data() + sent,
                               frame.size() - sent, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        {
          MutexLock lock(write_mu_);
          write_failed_ = true;
          writer_active_ = false;
          pending_writes_.clear();  // nobody will ever send these
        }
        ServiceTelemetry::Global().OnWriteFailure();
        return;
      }
      sent += static_cast<size_t>(n);
    }
  }
}

void Session::ForgetQuery(uint64_t request_id) {
  MutexLock lock(mu_);
  inflight_.erase(request_id);
}

}  // namespace server
}  // namespace spatialjoin
