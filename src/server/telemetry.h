#ifndef SPATIALJOIN_SERVER_TELEMETRY_H_
#define SPATIALJOIN_SERVER_TELEMETRY_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"
#include "obs/attribution.h"
#include "obs/json.h"
#include "obs/metrics.h"
#include "server/scheduler.h"

namespace spatialjoin {
namespace server {

/// Service telemetry (DESIGN.md §13).
///
/// The process-wide sink for everything the query service knows about
/// itself: per-query records (plan, charges, measured-vs-predicted
/// residual, outcome), rolling windowed latency quantiles, per-session
/// and per-dataset aggregates, and the slow-query rings. Three consumers
/// read it:
///   * the STATS protocol message (WriteStatsJson) — live introspection
///     for sj_top and scripts;
///   * the flight recorder (ServiceSectionJson) — the same slow-query
///     evidence embedded in post-mortem dumps;
///   * the metrics registry — scalar totals mirrored into the ordinary
///     counters/gauges so bench artifacts carry them with no protocol.
///
/// This is also the *only* file under src/server/ allowed to touch the
/// MetricsRegistry (enforced by sj_lint's `metrics-in-server` rule):
/// request paths report through the On*/RecordQuery methods here or
/// charge through the attribution scope, never by poking counters
/// directly — one choke point keeps naming and double-count discipline.

/// How a query left the server.
enum class QueryOutcome : uint8_t {
  kOk = 0,
  kCancelled,
  kDeadline,
  kOversized,  // ran fine, result exceeded the frame's pair capacity
};
const char* QueryOutcomeName(QueryOutcome outcome);

/// Everything retained about one completed query.
struct QueryRecord {
  uint64_t request_id = 0;
  int session_id = -1;
  uint32_t dataset_id = 0;
  bool is_join = false;
  const char* strategy = "";  // static storage (JoinStrategyName/...)
  QueryOutcome outcome = QueryOutcome::kOk;
  int64_t end_ts_ns = 0;       ///< MonotonicNowNs at completion
  int64_t wall_ns = 0;         ///< admit → completion
  int64_t queue_wait_ns = 0;   ///< admission wait + summed pool-task waits
  attribution::Charges charges;
  int64_t theta_tests = 0;     ///< exact-geometry tests actually run
  int64_t nodes_accessed = 0;
  int64_t matches = 0;
  /// Measured / predicted exact-test work: theta_tests over the Θ-filter
  /// upper bound, the live analogue of the explain layer's cost residual
  /// (1.0 when both are 0). Far from 1.0 means the filter stage's
  /// prediction of this query's cost was wrong — the paper's Θ/θ
  /// two-stage claim, checked per query on a running server.
  double residual = 1.0;
};

class ServiceTelemetry {
 public:
  /// Ring capacities; small enough that a full STATS snapshot stays a
  /// few tens of KB, far under the frame payload cap.
  static constexpr int kRecentRing = 32;
  static constexpr int kSlowRing = 16;
  /// Slow-ring entries older than this age out (the rings hold the worst
  /// *recent* queries, not the worst ever).
  static constexpr int64_t kSlowRetentionNs = 60LL * 1000 * 1000 * 1000;

  static ServiceTelemetry& Global();

  ServiceTelemetry(const ServiceTelemetry&) = delete;
  ServiceTelemetry& operator=(const ServiceTelemetry&) = delete;

  // --- Session / protocol accounting ------------------------------------
  void OnSessionOpened();
  void OnSessionClosed();
  void OnProtocolError();
  void OnWriteFailure();
  void OnCancelRequested();

  // --- Scheduler accounting (mirrors QueryScheduler::Stats into the
  // registry so bench artifacts and flight dumps carry admission and
  // rejection counts without the STATS protocol path) -------------------
  void OnQueryAdmitted();
  void OnQueryRejected();
  void OnQueryCompleted(int64_t inflight_now, int64_t peak_inflight);

  /// Retains `record`, updates aggregates/windows/rings, mirrors the
  /// outcome counters, and emits a kSlowQuery event if the record enters
  /// the slow-by-latency ring above the event threshold.
  void RecordQuery(const QueryRecord& record);

  /// The STATS reply document. Scheduler/pool snapshots are passed in by
  /// the caller (the session holds both pointers; telemetry deliberately
  /// does not).
  void WriteStatsJson(std::ostream& os, const QueryScheduler::Stats& scheduler,
                      int max_inflight,
                      const exec::ThreadPool::Stats& pool) const;

  /// The flight-dump `service` section: query totals + slow rings.
  /// Called by the flight recorder's refresh path (registered lazily by
  /// Global()); must not dump or refresh re-entrantly.
  std::string ServiceSectionJson() const;

  /// Minimum wall time before a slow-ring entry also logs a kSlowQuery
  /// event (default 10ms; tests set 0 to pin the emission path).
  void SetSlowEventThresholdNs(int64_t ns);

  /// Zeroes rings, aggregates, and windows (registry instruments are the
  /// caller's to reset). Tests and benches start measurements clean here.
  void Reset();

 private:
  ServiceTelemetry();

  struct Aggregate {
    int64_t queries = 0;
    int64_t ok = 0;
    int64_t cancelled = 0;
    int64_t deadline = 0;
    int64_t oversized = 0;
    int64_t wall_ns = 0;
    int64_t pages_read = 0;
    int64_t pages_hit = 0;
    int64_t pairs_examined = 0;
    int64_t matches = 0;
  };

  /// Copy of everything mu_ guards, taken in one short critical section.
  /// Serialization happens on the copy, outside the lock — a STATS poll
  /// must never stall RecordQuery on the query-completion path for the
  /// duration of a JSON render (recent is reordered oldest-first here).
  struct Retained {
    std::vector<QueryRecord> recent;
    std::vector<QueryRecord> slow_by_latency;
    std::vector<QueryRecord> slow_by_residual;
    std::map<int64_t, Aggregate> per_session;
    std::map<int64_t, Aggregate> per_dataset;
  };
  Retained SnapshotRetained() const;

  void WriteRecordJson(JsonWriter* w, const QueryRecord& r) const;
  void WriteAggregatesJson(JsonWriter* w, const Retained& snap) const;
  void WriteSlowRingsJson(JsonWriter* w, const Retained& snap,
                          int64_t now_ns) const;

  // Registry mirrors, resolved once (pointers are process-lifetime).
  Counter* const sessions_opened_;
  Counter* const sessions_closed_;
  Counter* const protocol_errors_;
  Counter* const write_failures_;
  Counter* const cancel_requested_;
  Counter* const sched_admitted_;
  Counter* const sched_rejected_;
  Counter* const sched_completed_;
  Gauge* const sched_inflight_;
  Gauge* const sched_peak_inflight_;
  Counter* const query_ok_;
  Counter* const query_stopped_;
  Counter* const query_oversized_;
  Histogram* const query_wall_ns_;

  // Live windows: last ~4s of completed-query latency and queue wait.
  WindowedHistogram latency_window_;
  WindowedHistogram queue_wait_window_;

  mutable Mutex mu_;
  int64_t slow_event_threshold_ns_ SJ_GUARDED_BY(mu_);
  std::vector<QueryRecord> recent_ SJ_GUARDED_BY(mu_);   // ring, newest last
  size_t recent_next_ SJ_GUARDED_BY(mu_) = 0;
  std::vector<QueryRecord> slow_by_latency_ SJ_GUARDED_BY(mu_);
  std::vector<QueryRecord> slow_by_residual_ SJ_GUARDED_BY(mu_);
  // Bounded aggregate maps; once kMaxAggregates distinct keys exist, new
  // keys fold into the overflow key (-1) so a long-lived server cannot
  // grow telemetry without bound.
  static constexpr size_t kMaxAggregates = 64;
  std::map<int64_t, Aggregate> per_session_ SJ_GUARDED_BY(mu_);
  std::map<int64_t, Aggregate> per_dataset_ SJ_GUARDED_BY(mu_);
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_TELEMETRY_H_
