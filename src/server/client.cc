#include "server/client.h"

#include <errno.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <chrono>
#include <thread>
#include <utility>

#include "common/analysis_annotations.h"
#include "common/check.h"
#include "obs/timer.h"

namespace spatialjoin {
namespace server {

ServiceClient::ServiceClient(int fd) : fd_(fd) {}

ServiceClient::~ServiceClient() { ::close(fd_); }

Result<std::unique_ptr<ServiceClient>> ServiceClient::Connect(
    const std::string& socket_path, int timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path exceeds AF_UNIX limit");
  }
  ::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size() + 1);

  const int64_t give_up_ns =
      MonotonicNowNs() + static_cast<int64_t>(timeout_ms) * 1'000'000;
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return Status::Internal("socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof(addr)) == 0) {
      // Private constructor (fd ownership transfer), so make_unique
      // cannot reach it.  // sj-lint: allow(naked-new)
      return std::unique_ptr<ServiceClient>(new ServiceClient(fd));
    }
    ::close(fd);
    // ENOENT/ECONNREFUSED: the server has not bound (or not listened)
    // yet — the retry loop is the documented way to race server startup.
    if (MonotonicNowNs() >= give_up_ns) {
      return Status::NotFound(std::string("cannot connect to ") +
                              socket_path);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

Status ServiceClient::Ping() {
  const uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodePing(id));
  if (!sent.ok()) return sent;
  Result<Reply> reply = WaitReply(id);
  if (!reply.ok()) return reply.status();
  if (reply.value().type != MessageType::kPong) {
    return Status::Internal("ping answered with a non-pong reply");
  }
  return Status::Ok();
}

Result<std::string> ServiceClient::Stats() {
  const uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodeStatsRequest(id));
  if (!sent.ok()) return sent;
  Result<Reply> reply = WaitReply(id);
  if (!reply.ok()) return reply.status();
  if (reply.value().type != MessageType::kStatsReply) {
    return Status::Internal("STATS answered with a non-stats reply");
  }
  return std::move(reply).value().stats_json;
}

Result<uint64_t> ServiceClient::SendSelect(const SelectRequest& request) {
  const uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodeSelectRequest(id, request));
  if (!sent.ok()) return sent;
  return id;
}

Result<uint64_t> ServiceClient::SendJoin(const JoinRequest& request) {
  const uint64_t id = next_request_id_++;
  Status sent = SendFrame(EncodeJoinRequest(id, request));
  if (!sent.ok()) return sent;
  return id;
}

Status ServiceClient::Cancel(uint64_t target_request_id) {
  const uint64_t id = next_request_id_++;
  Status sent =
      SendFrame(EncodeCancelRequest(id, CancelRequest{target_request_id}));
  if (!sent.ok()) return sent;
  Result<Reply> ack = WaitReply(id);
  if (!ack.ok()) return ack.status();
  if (ack.value().type != MessageType::kPong) {
    return Status::Internal("cancel answered with a non-pong reply");
  }
  return Status::Ok();
}

Result<Reply> ServiceClient::WaitReply(uint64_t request_id) {
  while (true) {
    SJ_BOUNDED_WORK;  // client-side; exits when the awaited id arrives or
                      // the stream breaks (every request gets one reply)
    auto it = stashed_.find(request_id);
    if (it != stashed_.end()) {
      Reply reply = std::move(it->second);
      stashed_.erase(it);
      return reply;
    }
    Result<Reply> next = ReadReply();
    if (!next.ok()) return next.status();
    // Replies arrive in completion order, not send order; everything
    // that is not the awaited id is stashed for a later WaitReply.
    stashed_[next.value().request_id] = std::move(next).value();
  }
}

Result<Reply> ServiceClient::Select(const SelectRequest& request) {
  Result<uint64_t> id = SendSelect(request);
  if (!id.ok()) return id.status();
  return WaitReply(id.value());
}

Result<Reply> ServiceClient::Join(const JoinRequest& request) {
  Result<uint64_t> id = SendJoin(request);
  if (!id.ok()) return id.status();
  return WaitReply(id.value());
}

void ServiceClient::CloseSend() { ::shutdown(fd_, SHUT_WR); }

Status ServiceClient::SendFrame(const std::string& frame) {
  if (!broken_.ok()) return broken_;
  size_t sent = 0;
  while (sent < frame.size()) {
    SJ_BOUNDED_WORK;  // client-side; one frame's bytes
    const ssize_t n = ::send(fd_, frame.data() + sent, frame.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = Status::Internal("send to server failed");
      return broken_;
    }
    sent += static_cast<size_t>(n);
  }
  return Status::Ok();
}

Result<Reply> ServiceClient::ReadReply() {
  if (!broken_.ok()) return broken_;
  char buf[1 << 16];
  while (true) {
    SJ_BOUNDED_WORK;  // client-side; exits on a frame, poison, or EOF
    Frame frame;
    if (decoder_.Next(&frame)) {
      const auto type = static_cast<MessageType>(frame.type);
      if (IsRequestType(frame.type)) {
        broken_ = Status::Internal("server sent a request-type frame");
        return broken_;
      }
      Result<Reply> reply = DecodeReply(type, frame.request_id,
                                        frame.payload);
      if (!reply.ok()) broken_ = reply.status();
      return reply;
    }
    if (decoder_.poisoned()) {
      broken_ = decoder_.error();
      return broken_;
    }
    const ssize_t n = ::recv(fd_, buf, sizeof(buf), 0);
    if (n == 0) {
      broken_ = Status::Internal("server closed the connection");
      return broken_;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      broken_ = Status::Internal("recv from server failed");
      return broken_;
    }
    Status fed = decoder_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    if (!fed.ok()) {
      broken_ = fed;
      return broken_;
    }
  }
}

}  // namespace server
}  // namespace spatialjoin
