#ifndef SPATIALJOIN_SERVER_CLIENT_H_
#define SPATIALJOIN_SERVER_CLIENT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "server/protocol.h"

namespace spatialjoin {
namespace server {

/// Blocking client for the query service, used by the tests and the load
/// bench. Deliberately single-threaded (one connection per thread is the
/// load-generation pattern), but fully *pipelined*: Send* enqueues a
/// request and returns its id immediately, WaitReply blocks until that
/// id's reply arrives — stashing any other replies that pass by, since
/// the server completes queries out of order.
class ServiceClient {
 public:
  /// Connects to the server's Unix socket, retrying (the server may still
  /// be binding) until `timeout_ms` elapses.
  static Result<std::unique_ptr<ServiceClient>> Connect(
      const std::string& socket_path, int timeout_ms = 5000);

  ~ServiceClient();

  ServiceClient(const ServiceClient&) = delete;
  ServiceClient& operator=(const ServiceClient&) = delete;

  /// Synchronous round trip; proves the connection is live.
  Status Ping();

  /// Synchronous STATS round trip: the server's live telemetry snapshot
  /// as raw JSON (sj_top polls this).
  Result<std::string> Stats();

  /// Pipelined sends; the returned id is what WaitReply takes. Ids are
  /// assigned by the client, monotonically, starting at 1.
  Result<uint64_t> SendSelect(const SelectRequest& request);
  Result<uint64_t> SendJoin(const JoinRequest& request);
  /// Requests cancellation of an in-flight query. The ack is consumed
  /// internally; the cancelled query's own reply still arrives under its
  /// own id (kError/CANCELLED if the cancel won the race, kResult if it
  /// lost).
  Status Cancel(uint64_t target_request_id);

  /// Blocks until the reply for `request_id` arrives. A transport error
  /// (server gone, malformed reply) is returned as a Status and poisons
  /// the connection.
  Result<Reply> WaitReply(uint64_t request_id);

  /// Convenience: send + wait.
  Result<Reply> Select(const SelectRequest& request);
  Result<Reply> Join(const JoinRequest& request);

  /// Half-closes the write side, telling the server this client is done
  /// (its reader sees EOF and cancels whatever is still in flight).
  void CloseSend();

 private:
  explicit ServiceClient(int fd);

  Status SendFrame(const std::string& frame);
  /// Reads until at least one frame is decodable; returns a decoded
  /// reply (any id).
  Result<Reply> ReadReply();

  int fd_;
  uint64_t next_request_id_ = 1;
  FrameDecoder decoder_;
  std::unordered_map<uint64_t, Reply> stashed_;
  Status broken_;  // sticky transport error
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_CLIENT_H_
