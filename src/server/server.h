#ifndef SPATIALJOIN_SERVER_SERVER_H_
#define SPATIALJOIN_SERVER_SERVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "exec/frozen_tree.h"
#include "exec/thread_pool.h"
#include "server/dataset_registry.h"
#include "server/scheduler.h"
#include "server/session.h"

namespace spatialjoin {
namespace server {

/// The query service front-end (DESIGN.md §12): a Unix-domain stream
/// socket accepting the length-prefixed protocol of server/protocol.h.
///
/// Lifecycle: construct → RegisterDataset (repeat) → Start → serve →
/// Stop (idempotent; also run by the destructor). Registration is only
/// legal before Start — the registry is lock-free because it is immutable
/// while serving.
///
/// Threads: one accept thread, one reader thread per connection, and the
/// caller-supplied work-stealing pool shared by *all* query execution
/// (inter- and intra-query parallelism alike). The scheduler's admission
/// bound is what keeps that sharing fair: at most `max_inflight` queries
/// occupy the pool, everything beyond is rejected with a backpressure
/// reply the moment it is decoded.
class Server {
 public:
  struct Options {
    /// Filesystem path of the Unix socket. Empty = a fresh
    /// "/tmp/sj_server_<pid>_<seq>.sock" (see DefaultSocketPath).
    std::string socket_path;
    /// Admission bound; <= 0 = pool worker count (QueryScheduler).
    int max_inflight = 0;
    /// Deadline applied to requests that do not carry one (0 = none).
    int64_t default_deadline_ns = 0;
    /// Listen backlog for bursts of connecting clients.
    int listen_backlog = 128;
  };

  /// Fresh unique socket path under /tmp (AF_UNIX paths are limited to
  /// ~107 bytes, so /tmp rather than a deep build directory).
  static std::string DefaultSocketPath();

  Server(exec::ThreadPool* pool, const Options& options);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Stops if still running.
  ~Server();

  /// Pre-Start only: snapshots are moved in, and the returned id is what
  /// clients put in SelectRequest/JoinRequest::dataset_id.
  uint32_t RegisterDataset(exec::FrozenTree r_tree, exec::FrozenTree s_tree);

  /// Binds, listens, and spawns the accept thread. Fails (and leaves the
  /// server stopped) if the socket path cannot be bound.
  Status Start();

  /// Graceful shutdown: stop accepting, half-close every session (their
  /// readers exit; disconnect cancels the sessions' in-flight queries),
  /// join all threads, drain the scheduler, remove the socket file.
  void Stop();

  const std::string& socket_path() const { return options_.socket_path; }
  bool running() const { return accept_thread_.joinable(); }
  QueryScheduler::Stats scheduler_stats() const {
    return scheduler_.stats();
  }
  int max_inflight() const { return scheduler_.max_inflight(); }

 private:
  void AcceptLoop();

  exec::ThreadPool* const pool_;
  Options options_;
  DatasetRegistry registry_;
  QueryScheduler scheduler_;

  int listen_fd_ = -1;
  bool started_ = false;
  std::thread accept_thread_;
  // Written by the accept thread only; read by Stop() after joining it
  // (the join is the synchronization edge), so no lock is needed.
  std::vector<std::shared_ptr<Session>> sessions_;
  std::vector<std::thread> reader_threads_;
  int next_session_id_ = 0;
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_SERVER_H_
