#ifndef SPATIALJOIN_SERVER_SESSION_H_
#define SPATIALJOIN_SERVER_SESSION_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "exec/cancel.h"
#include "exec/thread_pool.h"
#include "server/dataset_registry.h"
#include "server/protocol.h"
#include "server/scheduler.h"
#include "server/telemetry.h"

namespace spatialjoin {
namespace server {

/// One client connection (DESIGN.md §12).
///
/// A dedicated reader thread (ServeLoop, spawned by the server's accept
/// loop) parses frames off the socket and handles them inline: pings and
/// cancels are answered immediately, queries are decoded, admitted
/// through the QueryScheduler, and executed as fire-and-forget pool
/// tasks. Replies may therefore interleave in completion order — clients
/// match them by request id.
///
/// Threading & lifetime: the session is shared between its reader thread
/// and every in-flight query closure (each holds a shared_ptr), so the
/// object — and the socket fd it owns — outlives whichever finishes
/// last. Two mutexes, never held together and never nested with the
/// scheduler's or the pool's (lock order, DESIGN.md §12): `mu_` guards
/// the in-flight request map, `write_mu_` serializes reply frames onto
/// the socket so concurrent query completions cannot interleave bytes.
class Session : public std::enable_shared_from_this<Session> {
 public:
  struct Context {
    const DatasetRegistry* registry = nullptr;
    QueryScheduler* scheduler = nullptr;
    exec::ThreadPool* pool = nullptr;
    /// Applied when a request carries deadline_ns == 0 (0 = no deadline).
    int64_t default_deadline_ns = 0;
  };

  /// Takes ownership of `fd` (closed on destruction). `id` names the
  /// session in events and trace tracks.
  Session(int fd, int id, const Context& context);
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  /// Reader loop: runs until EOF, a socket error, or a poisoned frame
  /// stream. On exit, cancels every query the session still has in
  /// flight (their completions still run and send into the dead socket,
  /// which fails benignly).
  void ServeLoop();

  /// Half-closes the socket from another thread (server shutdown): the
  /// reader's blocking recv returns 0 and ServeLoop exits.
  void Shutdown();

  int id() const { return id_; }

 private:
  struct PendingQuery {
    std::shared_ptr<exec::CancelToken> token;
  };

  /// What the completion path needs to label a QueryRecord; filled by
  /// the decode handlers (strategy names are static storage).
  struct QueryInfo {
    uint32_t dataset_id = 0;
    bool is_join = false;
    const char* strategy = "";
  };

  void HandleFrame(const Frame& frame);
  void HandleSelect(uint64_t request_id, std::string_view payload);
  void HandleJoin(uint64_t request_id, std::string_view payload);
  void HandleCancel(uint64_t request_id, std::string_view payload);
  void HandleStats(uint64_t request_id);

  /// Registers a pending query and admits it; on any failure the error
  /// reply has already been sent. `run` is the strategy-specific body;
  /// it returns the query's result so the completion path is shared —
  /// which is also where attribution charges are collected and the
  /// query's QueryRecord is retained by ServiceTelemetry.
  void AdmitQuery(uint64_t request_id, const QueryInfo& info,
                  std::shared_ptr<exec::CancelToken> token,
                  int64_t deadline_ns, std::function<JoinResult()> run);

  /// Serialized, complete write of one reply frame; on the first failure
  /// the session goes write-dead and later replies are dropped (the
  /// client is gone — queries still finish for their side effects).
  ///
  /// write_mu_ is never held across ::send (the client controls how
  /// long a send blocks, and a query completion stuck behind it would
  /// invert the scheduler's deadline priorities): the frame is queued
  /// under the lock and exactly one caller at a time drains the queue
  /// with the lock dropped around each send.
  void SendFrame(const std::string& frame);

  /// Drains pending_writes_ until empty or the socket fails. Called
  /// only by the SendFrame invocation that installed itself as the
  /// active writer (writer_active_).
  void DrainWrites();

  /// Removes a finished/failed query from the in-flight map.
  void ForgetQuery(uint64_t request_id);

  const int fd_;
  const int id_;
  const Context context_;

  Mutex mu_;
  std::unordered_map<uint64_t, PendingQuery> inflight_ SJ_GUARDED_BY(mu_);

  Mutex write_mu_;
  bool write_failed_ SJ_GUARDED_BY(write_mu_) = false;
  /// Reply frames waiting for the socket, in completion order.
  std::deque<std::string> pending_writes_ SJ_GUARDED_BY(write_mu_);
  /// True while some SendFrame call is draining the queue; at most one
  /// drainer exists, so whole frames never interleave on the wire.
  bool writer_active_ SJ_GUARDED_BY(write_mu_) = false;
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_SESSION_H_
