#include "server/scheduler.h"

#include <utility>

#include "common/check.h"
#include "obs/event_log.h"
#include "server/telemetry.h"

namespace spatialjoin {
namespace server {

QueryScheduler::QueryScheduler(exec::ThreadPool* pool, const Options& options)
    : pool_(pool),
      max_inflight_(options.max_inflight > 0 ? options.max_inflight
                                             : pool->num_workers()) {
  SJ_CHECK(pool != nullptr);
}

QueryScheduler::~QueryScheduler() {
  Drain();
  MutexLock lock(mu_);
  SJ_CHECK_MSG(inflight_ == 0,
               "QueryScheduler destroyed with queries in flight");
}

Status QueryScheduler::Submit(std::function<void()> query) {
  {
    MutexLock lock(mu_);
    if (draining_ || inflight_ >= max_inflight_) {
      ++rejected_;
      ServiceTelemetry::Global().OnQueryRejected();
      // The message is static on purpose: under a load burst this Status
      // is constructed thousands of times per second, and the event-log
      // observer copies the message into the ring each time.
      return Status::ResourceExhausted("server overloaded, retry later");
    }
    ++admitted_;
    ++inflight_;
    if (inflight_ > peak_inflight_) peak_inflight_ = inflight_;
    ServiceTelemetry::Global().OnQueryAdmitted();
  }
  // Post outside the critical section: the pool takes its own locks, and
  // the server's lock order keeps scheduler/session/pool mutexes strictly
  // non-nested (DESIGN.md §12).
  pool_->Post([this, query = std::move(query)] {
    query();
    int64_t inflight_now, peak;
    {
      MutexLock lock(mu_);
      --inflight_;
      ++completed_;
      inflight_now = inflight_;
      peak = peak_inflight_;
      if (inflight_ == 0) idle_cv_.NotifyAll();
    }
    // Outside mu_: telemetry takes its own lock and the server's lock
    // order keeps scheduler/session/telemetry mutexes non-nested.
    ServiceTelemetry::Global().OnQueryCompleted(inflight_now, peak);
  });
  return Status::Ok();
}

void QueryScheduler::Drain() {
  MutexLock lock(mu_);
  draining_ = true;
  while (inflight_ != 0) idle_cv_.Wait(mu_);
  // Drain is a barrier, not a terminal state: the server drains between
  // "stop accepting connections" and "join sessions", and tests drain
  // between phases.
  draining_ = false;
}

QueryScheduler::Stats QueryScheduler::stats() const {
  MutexLock lock(mu_);
  Stats s;
  s.admitted = admitted_;
  s.rejected = rejected_;
  s.completed = completed_;
  s.inflight = inflight_;
  s.peak_inflight = peak_inflight_;
  return s;
}

}  // namespace server
}  // namespace spatialjoin
