#ifndef SPATIALJOIN_SERVER_SCHEDULER_H_
#define SPATIALJOIN_SERVER_SCHEDULER_H_

#include <cstdint>
#include <functional>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "exec/thread_pool.h"

namespace spatialjoin {
namespace server {

/// Admission-controlled query scheduler (DESIGN.md §12).
///
/// Queries run as fire-and-forget tasks on the shared work-stealing pool
/// (inter-query parallelism; a parallel strategy inside a query fans out
/// on the same pool, and the pool's helping waiters make that nesting
/// deadlock-free). The scheduler's job is the part the pool deliberately
/// does not do: bounding how many queries are in flight at once. A
/// submission over the bound is rejected *immediately* with
/// RESOURCE_EXHAUSTED — the session layer turns that into a backpressure
/// error reply, keeping the server's memory and queue depth bounded by
/// `max_inflight × per-query cost` no matter how many clients pile on.
/// Rejected work is the client's to retry; nothing is ever queued behind
/// the bound, so a rejection is also the *cheapest* possible outcome of
/// an overloaded server (decode + one small reply frame).
class QueryScheduler {
 public:
  struct Options {
    /// Most queries running (or posted) at once; <= 0 means "pool worker
    /// count" — one compute-bound query per core, with bursts absorbed
    /// by rejection rather than queueing.
    int max_inflight = 0;
  };

  struct Stats {
    int64_t admitted = 0;
    int64_t rejected = 0;
    int64_t completed = 0;
    int64_t inflight = 0;
    int64_t peak_inflight = 0;
  };

  QueryScheduler(exec::ThreadPool* pool, const Options& options);

  QueryScheduler(const QueryScheduler&) = delete;
  QueryScheduler& operator=(const QueryScheduler&) = delete;

  /// Drains (checked: the owner must Drain() before teardown so no query
  /// can outlive the scheduler it signals completion to).
  ~QueryScheduler();

  /// Admits `query` and posts it to the pool, or rejects it with
  /// RESOURCE_EXHAUSTED without posting anything. The query body runs on
  /// some pool worker; the scheduler appends its own completion
  /// accounting after it.
  Status Submit(std::function<void()> query);

  /// Blocks until every admitted query has completed. New submissions
  /// during the drain are rejected.
  void Drain();

  Stats stats() const;
  int max_inflight() const { return max_inflight_; }

 private:
  exec::ThreadPool* const pool_;
  const int max_inflight_;

  mutable Mutex mu_;
  CondVar idle_cv_;
  int64_t inflight_ SJ_GUARDED_BY(mu_) = 0;
  int64_t peak_inflight_ SJ_GUARDED_BY(mu_) = 0;
  int64_t admitted_ SJ_GUARDED_BY(mu_) = 0;
  int64_t rejected_ SJ_GUARDED_BY(mu_) = 0;
  int64_t completed_ SJ_GUARDED_BY(mu_) = 0;
  bool draining_ SJ_GUARDED_BY(mu_) = false;
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_SCHEDULER_H_
