#include "server/protocol.h"

#include <bit>
#include <cmath>
#include <cstring>
#include <memory>

#include "common/analysis_annotations.h"
#include "common/check.h"

namespace spatialjoin {
namespace server {

namespace {

// --- Little-endian primitives ------------------------------------------
// Byte-shift encoding pins the wire byte order independent of the host;
// the compiler reduces it to a plain store/load on little-endian targets.

void AppendU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void AppendU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void AppendI64(std::string* out, int64_t v) {
  AppendU64(out, static_cast<uint64_t>(v));
}

void AppendF64(std::string* out, double v) {
  AppendU64(out, std::bit_cast<uint64_t>(v));
}

SJ_UNTRUSTED uint32_t LoadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

SJ_UNTRUSTED uint64_t LoadU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

/// Bounds-checked sequential reader over a request/reply payload. Every
/// accessor reports underrun instead of reading past the view — wire
/// lengths are attacker-controlled and never trusted. The integer
/// accessors are SJ_UNTRUSTED taint sources: a value they produce may
/// not size an allocation, index a container, or bound a loop until an
/// SJ_VALIDATES sanitizer has range-checked it.
class WireReader {
 public:
  explicit WireReader(std::string_view data) : data_(data) {}

  SJ_UNTRUSTED bool ReadU8(uint8_t* v) {
    if (remaining() < 1) return false;
    *v = static_cast<unsigned char>(data_[pos_]);
    pos_ += 1;
    return true;
  }
  SJ_UNTRUSTED bool ReadU16(uint16_t* v) {
    if (remaining() < 2) return false;
    *v = static_cast<uint16_t>(
        static_cast<unsigned char>(data_[pos_]) |
        (static_cast<unsigned char>(data_[pos_ + 1]) << 8));
    pos_ += 2;
    return true;
  }
  SJ_UNTRUSTED bool ReadU32(uint32_t* v) {
    if (remaining() < 4) return false;
    *v = LoadU32(data_.data() + pos_);
    pos_ += 4;
    return true;
  }
  SJ_UNTRUSTED bool ReadU64(uint64_t* v) {
    if (remaining() < 8) return false;
    *v = LoadU64(data_.data() + pos_);
    pos_ += 8;
    return true;
  }
  SJ_UNTRUSTED bool ReadI64(int64_t* v) {
    uint64_t raw;
    if (!ReadU64(&raw)) return false;
    *v = static_cast<int64_t>(raw);
    return true;
  }
  SJ_UNTRUSTED bool ReadF64(double* v) {
    uint64_t raw;
    if (!ReadU64(&raw)) return false;
    *v = std::bit_cast<double>(raw);
    return true;
  }
  /// Validating by construction: `n` is range-checked against the bytes
  /// actually buffered before any slice is taken, so a caller may pass a
  /// wire-derived length directly.
  SJ_VALIDATES bool ReadBytes(size_t n, std::string_view* v) {
    if (remaining() < n) return false;
    *v = data_.substr(pos_, n);
    pos_ += n;
    return true;
  }

  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

std::string EncodeFrame(MessageType type, uint64_t request_id,
                        std::string_view payload) {
  SJ_CHECK_LE(payload.size(), static_cast<size_t>(kMaxPayloadBytes));
  std::string out;
  out.reserve(kFrameHeaderBytes + payload.size());
  AppendU32(&out, static_cast<uint32_t>(payload.size()));
  out.push_back(static_cast<char>(kFrameMagic));
  out.push_back(static_cast<char>(type));
  AppendU16(&out, 0);  // reserved
  AppendU64(&out, request_id);
  out.append(payload);
  return out;
}

bool ValidStatusCode(uint8_t code) {
  return code <= static_cast<uint8_t>(StatusCode::kCancelled);
}

/// Validates the 16-byte frame header at `h` (magic, reserved bits,
/// payload length against kMaxPayloadBytes). On OK the stored
/// `*payload_len` is a trusted allocation bound — this is the single
/// sanitizer between FrameDecoder's wire bytes and every buffer the
/// decoder sizes, shared by Feed's eager check and Next's recheck so
/// the two can never drift.
SJ_VALIDATES Status ValidateHeader(const char* h, uint32_t* payload_len) {
  const uint32_t len = LoadU32(h);
  const uint8_t magic = static_cast<unsigned char>(h[4]);
  const uint16_t reserved = static_cast<uint16_t>(
      static_cast<unsigned char>(h[6]) |
      (static_cast<unsigned char>(h[7]) << 8));
  if (magic != kFrameMagic) {
    return Status::InvalidArgument("bad frame magic");
  }
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved header bits");
  }
  if (len > kMaxPayloadBytes) {
    return Status::InvalidArgument("frame payload exceeds limit");
  }
  *payload_len = len;
  return Status::Ok();
}

/// True iff the unread pair section is exactly `count` 16-byte pairs —
/// the cross-check that makes a wire-derived RESULT count safe to
/// reserve and iterate (the bytes to back every pair already arrived).
SJ_VALIDATES bool PairCountMatchesBytes(size_t remaining, uint32_t count) {
  return remaining == static_cast<size_t>(count) * 16;
}

}  // namespace

bool IsRequestType(uint8_t type) {
  switch (static_cast<MessageType>(type)) {
    case MessageType::kPing:
    case MessageType::kSelect:
    case MessageType::kJoin:
    case MessageType::kCancel:
    case MessageType::kStats:
      return true;
    default:
      return false;
  }
}

Result<std::unique_ptr<ThetaOperator>> MakeWireOperator(uint8_t op_code,
                                                        double param) {
  if (!std::isfinite(param)) {
    return Status::InvalidArgument("non-finite operator parameter");
  }
  switch (static_cast<WireOp>(op_code)) {
    case WireOp::kOverlaps:
      return std::unique_ptr<ThetaOperator>(std::make_unique<OverlapsOp>());
    case WireOp::kWithinDistance:
      if (param < 0.0) {
        return Status::InvalidArgument("negative within_distance");
      }
      return std::unique_ptr<ThetaOperator>(
          std::make_unique<WithinDistanceOp>(param));
    case WireOp::kIncludes:
      return std::unique_ptr<ThetaOperator>(std::make_unique<IncludesOp>());
    case WireOp::kContainedIn:
      return std::unique_ptr<ThetaOperator>(
          std::make_unique<ContainedInOp>());
    case WireOp::kNorthwestOf:
      return std::unique_ptr<ThetaOperator>(
          std::make_unique<NorthwestOfOp>());
    case WireOp::kAdjacent:
      return std::unique_ptr<ThetaOperator>(std::make_unique<AdjacentOp>());
  }
  return Status::InvalidArgument("unknown wire operator code");
}

// --- Encoding ----------------------------------------------------------

std::string EncodePing(uint64_t request_id) {
  return EncodeFrame(MessageType::kPing, request_id, {});
}

std::string EncodePong(uint64_t request_id) {
  return EncodeFrame(MessageType::kPong, request_id, {});
}

std::string EncodeSelectRequest(uint64_t request_id, const SelectRequest& r) {
  std::string payload;
  payload.reserve(56);
  AppendU32(&payload, r.dataset_id);
  payload.push_back(static_cast<char>(r.strategy));
  payload.push_back(static_cast<char>(r.op_code));
  AppendU16(&payload, 0);  // reserved
  AppendF64(&payload, r.op_param);
  AppendF64(&payload, r.selector.min_x());
  AppendF64(&payload, r.selector.min_y());
  AppendF64(&payload, r.selector.max_x());
  AppendF64(&payload, r.selector.max_y());
  AppendI64(&payload, r.deadline_ns);
  return EncodeFrame(MessageType::kSelect, request_id, payload);
}

std::string EncodeJoinRequest(uint64_t request_id, const JoinRequest& r) {
  std::string payload;
  payload.reserve(24);
  AppendU32(&payload, r.dataset_id);
  payload.push_back(static_cast<char>(r.strategy));
  payload.push_back(static_cast<char>(r.op_code));
  AppendU16(&payload, 0);  // reserved
  AppendF64(&payload, r.op_param);
  AppendI64(&payload, r.deadline_ns);
  return EncodeFrame(MessageType::kJoin, request_id, payload);
}

std::string EncodeCancelRequest(uint64_t request_id, const CancelRequest& r) {
  std::string payload;
  payload.reserve(8);
  AppendU64(&payload, r.target_request_id);
  return EncodeFrame(MessageType::kCancel, request_id, payload);
}

std::string EncodeStatsRequest(uint64_t request_id) {
  return EncodeFrame(MessageType::kStats, request_id, {});
}

std::string EncodeStatsReply(uint64_t request_id, std::string_view json) {
  SJ_CHECK(!json.empty());
  return EncodeFrame(MessageType::kStatsReply, request_id, json);
}

std::string EncodeResultReply(uint64_t request_id, const JoinResult& result) {
  SJ_CHECK_LE(result.matches.size(), kMaxResultPairs);
  std::string payload;
  payload.reserve(40 + 16 * result.matches.size());
  AppendI64(&payload, result.theta_upper_tests);
  AppendI64(&payload, result.theta_tests);
  AppendI64(&payload, result.nodes_accessed);
  AppendI64(&payload, result.qual_pairs_examined);
  AppendU32(&payload, static_cast<uint32_t>(result.matches.size()));
  AppendU32(&payload, 0);  // reserved
  for (const auto& [r_tid, s_tid] : result.matches) {
    SJ_BOUNDED_WORK;  // result capped at kMaxResultPairs by the session
    AppendI64(&payload, r_tid);
    AppendI64(&payload, s_tid);
  }
  return EncodeFrame(MessageType::kResult, request_id, payload);
}

std::string EncodeErrorReply(uint64_t request_id, const Status& status) {
  std::string payload;
  // Clamp the message so a pathological Status cannot overflow a frame.
  constexpr size_t kMaxErrorMessage = 1024;
  std::string_view msg = status.message();
  if (msg.size() > kMaxErrorMessage) msg = msg.substr(0, kMaxErrorMessage);
  payload.reserve(4 + msg.size());
  payload.push_back(static_cast<char>(status.code()));
  payload.push_back(0);  // pad
  AppendU16(&payload, static_cast<uint16_t>(msg.size()));
  payload.append(msg);
  return EncodeFrame(MessageType::kError, request_id, payload);
}

// --- Decoding ----------------------------------------------------------

Result<SelectRequest> DecodeSelectRequest(std::string_view payload) {
  if (payload.size() != 56) {
    return Status::InvalidArgument("SELECT request must be 56 bytes");
  }
  WireReader r(payload);
  SelectRequest req;
  uint8_t strategy = 0;
  uint16_t reserved = 0;
  double min_x, min_y, max_x, max_y;
  bool ok = r.ReadU32(&req.dataset_id) && r.ReadU8(&strategy) &&
            r.ReadU8(&req.op_code) && r.ReadU16(&reserved) &&
            r.ReadF64(&req.op_param) && r.ReadF64(&min_x) &&
            r.ReadF64(&min_y) && r.ReadF64(&max_x) && r.ReadF64(&max_y) &&
            r.ReadI64(&req.deadline_ns);
  SJ_CHECK(ok);  // size was pinned above; underrun is impossible
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved bits in SELECT");
  }
  if (strategy > static_cast<uint8_t>(SelectStrategy::kParallelTree)) {
    return Status::InvalidArgument("unknown select strategy");
  }
  req.strategy = static_cast<SelectStrategy>(strategy);
  if (!std::isfinite(min_x) || !std::isfinite(min_y) ||
      !std::isfinite(max_x) || !std::isfinite(max_y) || min_x > max_x ||
      min_y > max_y) {
    return Status::InvalidArgument("malformed selector rectangle");
  }
  req.selector = Rectangle(min_x, min_y, max_x, max_y);
  if (req.deadline_ns < 0) {
    return Status::InvalidArgument("negative deadline");
  }
  return req;
}

Result<JoinRequest> DecodeJoinRequest(std::string_view payload) {
  if (payload.size() != 24) {
    return Status::InvalidArgument("JOIN request must be 24 bytes");
  }
  WireReader r(payload);
  JoinRequest req;
  uint8_t strategy = 0;
  uint16_t reserved = 0;
  bool ok = r.ReadU32(&req.dataset_id) && r.ReadU8(&strategy) &&
            r.ReadU8(&req.op_code) && r.ReadU16(&reserved) &&
            r.ReadF64(&req.op_param) && r.ReadI64(&req.deadline_ns);
  SJ_CHECK(ok);
  if (reserved != 0) {
    return Status::InvalidArgument("nonzero reserved bits in JOIN");
  }
  if (strategy > static_cast<uint8_t>(JoinStrategy::kPartitionedJoin)) {
    return Status::InvalidArgument("unknown join strategy");
  }
  req.strategy = static_cast<JoinStrategy>(strategy);
  if (req.deadline_ns < 0) {
    return Status::InvalidArgument("negative deadline");
  }
  return req;
}

Result<CancelRequest> DecodeCancelRequest(std::string_view payload) {
  if (payload.size() != 8) {
    return Status::InvalidArgument("CANCEL request must be 8 bytes");
  }
  WireReader r(payload);
  CancelRequest req;
  SJ_CHECK(r.ReadU64(&req.target_request_id));
  return req;
}

Result<Reply> DecodeReply(MessageType type, uint64_t request_id,
                          std::string_view payload) {
  Reply reply;
  reply.request_id = request_id;
  reply.type = type;
  switch (type) {
    case MessageType::kPong: {
      if (!payload.empty()) {
        return Status::InvalidArgument("PONG carries a payload");
      }
      return reply;
    }
    case MessageType::kResult: {
      WireReader r(payload);
      uint32_t count = 0;
      uint32_t reserved = 0;
      if (!r.ReadI64(&reply.result.theta_upper_tests) ||
          !r.ReadI64(&reply.result.theta_tests) ||
          !r.ReadI64(&reply.result.nodes_accessed) ||
          !r.ReadI64(&reply.result.qual_pairs_examined) ||
          !r.ReadU32(&count) || !r.ReadU32(&reserved)) {
        return Status::InvalidArgument("truncated RESULT header");
      }
      if (reserved != 0) {
        return Status::InvalidArgument("nonzero reserved bits in RESULT");
      }
      // Length cross-check before the allocation, not after: `count` is
      // wire data and must match the bytes that actually arrived.
      if (!PairCountMatchesBytes(r.remaining(), count)) {
        return Status::InvalidArgument("RESULT pair section length mismatch");
      }
      reply.result.matches.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        SJ_BOUNDED_WORK;  // count cross-checked against payload bytes above
        int64_t r_tid, s_tid;
        SJ_CHECK(r.ReadI64(&r_tid) && r.ReadI64(&s_tid));
        reply.result.matches.emplace_back(r_tid, s_tid);
      }
      return reply;
    }
    case MessageType::kStatsReply: {
      // The JSON itself is opaque here; an empty snapshot is the one
      // shape the server can never legitimately produce (the encoder
      // rejects it), so it marks a corrupt or truncated stream.
      if (payload.empty()) {
        return Status::InvalidArgument("empty STATS reply");
      }
      reply.stats_json.assign(payload);
      return reply;
    }
    case MessageType::kError: {
      WireReader r(payload);
      uint8_t code = 0, pad = 0;
      uint16_t msg_len = 0;
      if (!r.ReadU8(&code) || !r.ReadU8(&pad) || !r.ReadU16(&msg_len)) {
        return Status::InvalidArgument("truncated ERROR header");
      }
      if (pad != 0 || !ValidStatusCode(code) ||
          code == static_cast<uint8_t>(StatusCode::kOk)) {
        return Status::InvalidArgument("malformed ERROR reply");
      }
      std::string_view msg;
      if (!r.ReadBytes(msg_len, &msg) || r.remaining() != 0) {
        return Status::InvalidArgument("ERROR message length mismatch");
      }
      reply.error_code = static_cast<StatusCode>(code);
      reply.error_message.assign(msg);
      return reply;
    }
    default:
      return Status::InvalidArgument("unexpected reply type");
  }
}

// --- FrameDecoder ------------------------------------------------------

Status FrameDecoder::Feed(std::string_view data) {
  if (poisoned()) return error_;
  // Compact before appending so buffered_bytes(), not buffer_.size(),
  // bounds memory: consumed prefixes never accumulate across frames.
  if (consumed_ > 0) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(data);
  // Validate the header eagerly — garbage is detected as soon as its
  // first 16 bytes arrive, not when the (possibly huge) payload would
  // complete.
  if (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    uint32_t payload_len = 0;
    error_ = ValidateHeader(buffer_.data() + consumed_, &payload_len);
  }
  return error_;
}

bool FrameDecoder::Next(Frame* out) {
  if (poisoned()) return false;
  const size_t available = buffer_.size() - consumed_;
  if (available < kFrameHeaderBytes) return false;
  const char* h = buffer_.data() + consumed_;
  // Feed() validated magic/reserved/length the moment the header was
  // complete, so a well-formed header is an invariant here; revalidating
  // (rather than trusting the invariant) is what makes `payload_len` a
  // sanitized allocation bound at this use site too.
  uint32_t payload_len = 0;
  SJ_CHECK(ValidateHeader(h, &payload_len).ok());
  if (available < kFrameHeaderBytes + payload_len) return false;
  out->type = static_cast<unsigned char>(h[5]);
  out->request_id = LoadU64(h + 8);
  out->payload.assign(buffer_, consumed_ + kFrameHeaderBytes, payload_len);
  consumed_ += kFrameHeaderBytes + payload_len;
  // Re-run header validation for the *next* frame already in the buffer,
  // mirroring Feed()'s eager check.
  if (buffer_.size() - consumed_ >= kFrameHeaderBytes) {
    uint32_t next_len = 0;
    error_ = ValidateHeader(buffer_.data() + consumed_, &next_len);
  }
  return true;
}

}  // namespace server
}  // namespace spatialjoin
