#ifndef SPATIALJOIN_SERVER_DATASET_REGISTRY_H_
#define SPATIALJOIN_SERVER_DATASET_REGISTRY_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/analysis_annotations.h"
#include "exec/frozen_tree.h"

namespace spatialjoin {
namespace server {

/// One servable dataset: a pair of generalization-tree snapshots. The
/// server executes only over FrozenTree snapshots because the storage
/// layer is single-threaded by design (DESIGN.md §7) while the service
/// runs many queries concurrently — materialization happens once, at
/// registration, on the registering thread, which pays all page I/O up
/// front; after that every query is a pure read.
struct Dataset {
  exec::FrozenTree r_tree;
  exec::FrozenTree s_tree;
};

/// Id → dataset map for the query service. Registration is a setup-phase
/// activity: all datasets are added before Server::Start and the registry
/// is immutable afterwards, so lookups from session readers and pool
/// workers need no lock (the Start call provides the publication edge).
class DatasetRegistry {
 public:
  /// Adds a dataset and returns its wire id (dense, starting at 0).
  /// Datasets are held by unique_ptr so the addresses handed to running
  /// queries stay stable regardless of later additions.
  uint32_t Add(exec::FrozenTree r_tree, exec::FrozenTree s_tree) {
    datasets_.push_back(std::make_unique<Dataset>(
        Dataset{std::move(r_tree), std::move(s_tree)}));
    return static_cast<uint32_t>(datasets_.size() - 1);
  }

  /// The dataset for a wire id, or null for an unknown id.
  /// SJ_VALIDATES: `id` arrives straight off the wire; the range check
  /// against datasets_.size() is the sanitizer that makes the lookup
  /// (and any later use of the id) safe.
  SJ_VALIDATES const Dataset* Find(uint32_t id) const {
    if (id >= datasets_.size()) return nullptr;
    return datasets_[id].get();
  }

  size_t size() const { return datasets_.size(); }

 private:
  std::vector<std::unique_ptr<Dataset>> datasets_;
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_DATASET_REGISTRY_H_
