#ifndef SPATIALJOIN_SERVER_PROTOCOL_H_
#define SPATIALJOIN_SERVER_PROTOCOL_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/analysis_annotations.h"
#include "common/status.h"
#include "core/join.h"
#include "core/spatial_join.h"
#include "geometry/rectangle.h"

namespace spatialjoin {
namespace server {

/// Wire protocol of the query service (DESIGN.md §12) — length-prefixed
/// binary frames over a local stream socket, little-endian fixed-width
/// fields throughout (the service is local-machine by design, and every
/// supported target is little-endian; the byte order is nevertheless
/// pinned by the encoder so the protocol is well-defined).
///
/// Frame layout (16-byte header, then `payload_len` payload bytes):
///
///   offset  size  field
///        0     4  payload_len  (u32; excludes the header itself)
///        4     1  magic        (0xA7 — cheap desync/garbage detector)
///        5     1  type         (MessageType)
///        6     2  reserved     (must be 0)
///        8     8  request_id   (u64; echoed verbatim in the reply)
///
/// Requests carry a client-chosen request_id; every request gets exactly
/// one reply frame with the same id. Replies to pipelined requests may
/// arrive in any order (queries finish out of order), so clients match
/// replies by id, never by position.

inline constexpr uint8_t kFrameMagic = 0xA7;
inline constexpr size_t kFrameHeaderBytes = 16;

/// Upper bound on a frame's payload. Large enough for ~260k match pairs
/// (the result of any query the demo datasets can produce, with room to
/// spare); anything larger on the wire is a protocol error and the
/// connection is dropped — the decoder never allocates more than this on
/// behalf of an unauthenticated peer.
inline constexpr uint32_t kMaxPayloadBytes = 4u << 20;

/// Most match pairs a kResult frame can carry (40 fixed bytes + 16 per
/// pair under kMaxPayloadBytes). The server replies RESOURCE_EXHAUSTED
/// instead of a result when a query produces more.
inline constexpr size_t kMaxResultPairs = (kMaxPayloadBytes - 40) / 16;

enum class MessageType : uint8_t {
  // Requests (client → server).
  kPing = 1,    // empty payload; replied with kPong
  kSelect = 2,  // SelectRequest payload; replied with kResult or kError
  kJoin = 3,    // JoinRequest payload; replied with kResult or kError
  kCancel = 4,  // CancelRequest payload; acked with kPong. The cancelled
                // query itself (if still running) replies kError/CANCELLED
                // under its own request_id.
  kStats = 5,   // empty payload; replied with kStatsReply. Answered inline
                // by the session (no scheduler admission), so STATS works
                // even when the query queue is saturated — exactly when an
                // operator needs it.

  // Replies (server → client).
  kPong = 65,
  kResult = 66,
  kError = 67,
  kStatsReply = 68,  // UTF-8 JSON snapshot (see server/telemetry.h)
};

/// True for the types a client may legally send.
bool IsRequestType(uint8_t type);

/// θ-operator selector on the wire; MakeWireOperator maps it to a Table 1
/// operator instance.
enum class WireOp : uint8_t {
  kOverlaps = 1,
  kWithinDistance = 2,  // param = distance
  kIncludes = 3,
  kContainedIn = 4,
  kNorthwestOf = 5,
  kAdjacent = 6,
};

/// Instantiates the operator a request names, or InvalidArgument for an
/// unknown code / non-finite parameter.
Result<std::unique_ptr<ThetaOperator>> MakeWireOperator(uint8_t op_code,
                                                        double param);

/// SELECT request payload (56 bytes exactly):
///   u32 dataset_id, u8 strategy (SelectStrategy), u8 op (WireOp),
///   u16 reserved, f64 op_param, f64 min_x/min_y/max_x/max_y (selector
///   rectangle), i64 deadline_ns (0 = server default).
struct SelectRequest {
  uint32_t dataset_id = 0;
  SelectStrategy strategy = SelectStrategy::kTree;
  uint8_t op_code = 0;
  double op_param = 0.0;
  Rectangle selector;
  int64_t deadline_ns = 0;
};

/// JOIN request payload (24 bytes exactly):
///   u32 dataset_id, u8 strategy (JoinStrategy), u8 op (WireOp),
///   u16 reserved, f64 op_param, i64 deadline_ns.
struct JoinRequest {
  uint32_t dataset_id = 0;
  JoinStrategy strategy = JoinStrategy::kTreeJoin;
  uint8_t op_code = 0;
  double op_param = 0.0;
  int64_t deadline_ns = 0;
};

/// CANCEL request payload (8 bytes): u64 target request_id.
struct CancelRequest {
  uint64_t target_request_id = 0;
};

/// Decoded reply, as a client sees it.
struct Reply {
  uint64_t request_id = 0;
  MessageType type = MessageType::kError;
  // kError only:
  StatusCode error_code = StatusCode::kInternal;
  std::string error_message;
  // kResult only — the result pairs and the counters the cost model
  // prices, byte-identical to an in-process JoinResult.
  JoinResult result;
  // kStatsReply only: the raw JSON snapshot. Opaque to the protocol
  // layer beyond being non-empty; sj_top and tests parse it.
  std::string stats_json;
};

// --- Encoding (always succeeds; writers bound their own sizes) ---------

std::string EncodePing(uint64_t request_id);
std::string EncodePong(uint64_t request_id);
std::string EncodeSelectRequest(uint64_t request_id, const SelectRequest& r);
std::string EncodeJoinRequest(uint64_t request_id, const JoinRequest& r);
std::string EncodeCancelRequest(uint64_t request_id, const CancelRequest& r);
std::string EncodeStatsRequest(uint64_t request_id);
std::string EncodeResultReply(uint64_t request_id, const JoinResult& result);
std::string EncodeErrorReply(uint64_t request_id, const Status& status);
/// `json` must be non-empty and at most kMaxPayloadBytes (the telemetry
/// layer's rings are bounded well under that; checked here regardless).
std::string EncodeStatsReply(uint64_t request_id, std::string_view json);

// --- Decoding (bounds-checked; never trusts wire lengths) --------------
//
// The Decode* functions are the service's validation boundary
// (SJ_VALIDATES, DESIGN.md §9): every field they return has been
// range-checked, so callers may use the decoded values freely. Their
// *bodies* are still under the wire-taint rule — a count pulled off the
// wire inside a decoder must be cross-checked before it sizes anything.

SJ_VALIDATES Result<SelectRequest> DecodeSelectRequest(
    std::string_view payload);
SJ_VALIDATES Result<JoinRequest> DecodeJoinRequest(std::string_view payload);
SJ_VALIDATES Result<CancelRequest> DecodeCancelRequest(
    std::string_view payload);
/// Decodes a reply frame's payload given its type.
SJ_VALIDATES Result<Reply> DecodeReply(MessageType type, uint64_t request_id,
                                       std::string_view payload);

/// One complete frame pulled off the byte stream.
struct Frame {
  uint8_t type = 0;
  uint64_t request_id = 0;
  std::string payload;
};

/// Incremental frame parser: feed it raw bytes as they arrive, pull
/// complete frames out. Malformed input (bad magic, nonzero reserved
/// bits, payload over kMaxPayloadBytes) poisons the decoder — the
/// transport layer replies with one kError/INVALID_ARGUMENT frame where
/// it can and drops the connection; there is no resynchronization on a
/// corrupt stream.
class FrameDecoder {
 public:
  /// Appends `data` to the internal buffer. Returns OK, or the sticky
  /// error if the stream is (or just became) poisoned.
  Status Feed(std::string_view data);

  /// Pops the next complete frame into `out`; false when more bytes are
  /// needed (or the decoder is poisoned).
  bool Next(Frame* out);

  bool poisoned() const { return !error_.ok(); }
  const Status& error() const { return error_; }

  /// Bytes buffered but not yet consumed (tests pin "no unbounded
  /// buffering" with this).
  size_t buffered_bytes() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;
  Status error_;
};

}  // namespace server
}  // namespace spatialjoin

#endif  // SPATIALJOIN_SERVER_PROTOCOL_H_
