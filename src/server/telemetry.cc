#include "server/telemetry.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/analysis_annotations.h"
#include "obs/event_log.h"
#include "obs/flight_recorder.h"
#include "obs/timer.h"

namespace spatialjoin {
namespace server {

namespace {

// Live quantiles cover the last 4 seconds: 16 slices × 250ms. Wide
// enough that a 1 Hz sj_top poll always has data, narrow enough that a
// load spike ages out of p99 within seconds of ending.
constexpr int kWindowSlices = 16;
constexpr int64_t kSliceNs = 250LL * 1000 * 1000;

constexpr int64_t kDefaultSlowEventThresholdNs = 10LL * 1000 * 1000;

// Ranking key for the slow-by-residual ring: distance of the residual
// from 1.0 in log space, so a 4× underprediction and a 4× overprediction
// are equally interesting.
double ResidualBadness(double residual) {
  return std::fabs(std::log2(std::max(residual, 1e-9)));
}

std::string ServiceSnapshotProvider() {
  return ServiceTelemetry::Global().ServiceSectionJson();
}

}  // namespace

const char* QueryOutcomeName(QueryOutcome outcome) {
  switch (outcome) {
    case QueryOutcome::kOk:
      return "ok";
    case QueryOutcome::kCancelled:
      return "cancelled";
    case QueryOutcome::kDeadline:
      return "deadline";
    case QueryOutcome::kOversized:
      return "oversized";
  }
  return "unknown";
}

ServiceTelemetry& ServiceTelemetry::Global() {
  // Leaked on purpose, like the registry it mirrors into: queries may
  // still be completing while static destructors run.
  // sj-lint: allow(naked-new)
  static ServiceTelemetry* telemetry = new ServiceTelemetry();
  return *telemetry;
}

ServiceTelemetry::ServiceTelemetry()
    : sessions_opened_(
          MetricsRegistry::Global().GetCounter("server.sessions.opened")),
      sessions_closed_(
          MetricsRegistry::Global().GetCounter("server.sessions.closed")),
      protocol_errors_(
          MetricsRegistry::Global().GetCounter("server.protocol.errors")),
      write_failures_(MetricsRegistry::Global().GetCounter(
          "server.session.write_failures")),
      cancel_requested_(MetricsRegistry::Global().GetCounter(
          "server.query.cancel_requested")),
      sched_admitted_(
          MetricsRegistry::Global().GetCounter("server.scheduler.admitted")),
      sched_rejected_(
          MetricsRegistry::Global().GetCounter("server.scheduler.rejected")),
      sched_completed_(
          MetricsRegistry::Global().GetCounter("server.scheduler.completed")),
      sched_inflight_(
          MetricsRegistry::Global().GetGauge("server.scheduler.inflight")),
      sched_peak_inflight_(MetricsRegistry::Global().GetGauge(
          "server.scheduler.peak_inflight")),
      query_ok_(MetricsRegistry::Global().GetCounter("server.query.ok")),
      query_stopped_(
          MetricsRegistry::Global().GetCounter("server.query.stopped")),
      query_oversized_(MetricsRegistry::Global().GetCounter(
          "server.query.oversized_result")),
      query_wall_ns_(
          MetricsRegistry::Global().GetHistogram("server.query.wall_ns")),
      latency_window_(kWindowSlices, kSliceNs),
      queue_wait_window_(kWindowSlices, kSliceNs),
      slow_event_threshold_ns_(kDefaultSlowEventThresholdNs) {
  recent_.reserve(kRecentRing);
  slow_by_latency_.reserve(kSlowRing);
  slow_by_residual_.reserve(kSlowRing);
  FlightRecorder::SetServiceSnapshotProvider(&ServiceSnapshotProvider);
}

void ServiceTelemetry::OnSessionOpened() { sessions_opened_->Increment(); }
void ServiceTelemetry::OnSessionClosed() { sessions_closed_->Increment(); }
void ServiceTelemetry::OnProtocolError() { protocol_errors_->Increment(); }
void ServiceTelemetry::OnWriteFailure() { write_failures_->Increment(); }
void ServiceTelemetry::OnCancelRequested() { cancel_requested_->Increment(); }
void ServiceTelemetry::OnQueryAdmitted() { sched_admitted_->Increment(); }
void ServiceTelemetry::OnQueryRejected() { sched_rejected_->Increment(); }

void ServiceTelemetry::OnQueryCompleted(int64_t inflight_now,
                                        int64_t peak_inflight) {
  sched_completed_->Increment();
  sched_inflight_->Set(static_cast<double>(inflight_now));
  sched_peak_inflight_->Set(static_cast<double>(peak_inflight));
}

void ServiceTelemetry::SetSlowEventThresholdNs(int64_t ns) {
  MutexLock lock(mu_);
  slow_event_threshold_ns_ = ns;
}

namespace {

// Inserts `record` into a worst-K ring ordered by `key` (descending),
// after expiring entries past the retention horizon. Returns true when
// the record made the ring.
template <typename KeyFn>
bool InsertSlow(std::vector<QueryRecord>* ring, const QueryRecord& record,
                int64_t now_ns, KeyFn key) {
  ring->erase(std::remove_if(ring->begin(), ring->end(),
                             [now_ns](const QueryRecord& r) {
                               return now_ns - r.end_ts_ns >
                                      ServiceTelemetry::kSlowRetentionNs;
                             }),
              ring->end());
  const double k = key(record);
  if (ring->size() >= static_cast<size_t>(ServiceTelemetry::kSlowRing)) {
    // Ring full: the record must beat the current weakest entry.
    auto weakest = std::min_element(
        ring->begin(), ring->end(),
        [&key](const QueryRecord& a, const QueryRecord& b) {
          return key(a) < key(b);
        });
    if (k <= key(*weakest)) return false;
    *weakest = record;
  } else {
    ring->push_back(record);
  }
  return true;
}

}  // namespace

void ServiceTelemetry::RecordQuery(const QueryRecord& record) {
  // Registry mirrors (outcome counters + cumulative latency histogram).
  switch (record.outcome) {
    case QueryOutcome::kOk:
      query_ok_->Increment();
      break;
    case QueryOutcome::kCancelled:
    case QueryOutcome::kDeadline:
      query_stopped_->Increment();
      break;
    case QueryOutcome::kOversized:
      query_oversized_->Increment();
      break;
  }
  query_wall_ns_->Record(record.wall_ns);
  latency_window_.Record(record.wall_ns, record.end_ts_ns);
  queue_wait_window_.Record(record.queue_wait_ns, record.end_ts_ns);

  bool emit_slow_event = false;
  {
    MutexLock lock(mu_);
    // Recent ring: newest overwrites oldest.
    if (recent_.size() < static_cast<size_t>(kRecentRing)) {
      recent_.push_back(record);
    } else {
      recent_[recent_next_] = record;
    }
    recent_next_ = (recent_next_ + 1) % static_cast<size_t>(kRecentRing);

    const bool entered_latency_ring =
        InsertSlow(&slow_by_latency_, record, record.end_ts_ns,
                   [](const QueryRecord& r) {
                     return static_cast<double>(r.wall_ns);
                   });
    InsertSlow(&slow_by_residual_, record, record.end_ts_ns,
               [](const QueryRecord& r) { return ResidualBadness(r.residual); });
    emit_slow_event =
        entered_latency_ring && record.wall_ns >= slow_event_threshold_ns_;

    auto charge = [&record](Aggregate* agg) {
      ++agg->queries;
      switch (record.outcome) {
        case QueryOutcome::kOk:
          ++agg->ok;
          break;
        case QueryOutcome::kCancelled:
          ++agg->cancelled;
          break;
        case QueryOutcome::kDeadline:
          ++agg->deadline;
          break;
        case QueryOutcome::kOversized:
          ++agg->oversized;
          break;
      }
      agg->wall_ns += record.wall_ns;
      agg->pages_read += record.charges.pages_read;
      agg->pages_hit += record.charges.pages_hit;
      agg->pairs_examined += record.charges.pairs_examined;
      agg->matches += record.matches;
    };
    // Fold new keys into the overflow bucket (-1) once the maps are at
    // capacity, so telemetry stays bounded on a long-lived server.
    auto slot = [](std::map<int64_t, Aggregate>* m, int64_t key) {
      auto it = m->find(key);
      if (it != m->end()) return &it->second;
      if (m->size() >= ServiceTelemetry::kMaxAggregates) key = -1;
      return &(*m)[key];
    };
    charge(slot(&per_session_, record.session_id));
    charge(slot(&per_dataset_, static_cast<int64_t>(record.dataset_id)));
  }

  if (emit_slow_event) {
    SJ_EVENT(kSlowQuery, kWarn,
             "sess%d req%llu %s %s %.1fms (residual %.3f)", record.session_id,
             static_cast<unsigned long long>(record.request_id),
             record.strategy, QueryOutcomeName(record.outcome),
             static_cast<double>(record.wall_ns) / 1e6, record.residual);
  }
}

void ServiceTelemetry::WriteRecordJson(JsonWriter* w,
                                       const QueryRecord& r) const {
  w->BeginObject();
  w->KV("request_id", static_cast<int64_t>(r.request_id));
  w->KV("session", static_cast<int64_t>(r.session_id));
  w->KV("dataset", static_cast<int64_t>(r.dataset_id));
  w->KV("kind", r.is_join ? "join" : "select");
  w->KV("strategy", r.strategy);
  w->KV("outcome", QueryOutcomeName(r.outcome));
  w->KV("end_ts_ns", r.end_ts_ns);
  w->KV("wall_ns", r.wall_ns);
  w->KV("queue_wait_ns", r.queue_wait_ns);
  w->KV("pool_tasks", r.charges.pool_tasks);
  w->KV("pages_read", r.charges.pages_read);
  w->KV("pages_hit", r.charges.pages_hit);
  w->KV("pairs_examined", r.charges.pairs_examined);
  w->KV("theta_tests", r.theta_tests);
  w->KV("qual_pairs", r.charges.qual_pairs);
  w->KV("nodes_accessed", r.nodes_accessed);
  w->KV("matches", r.matches);
  w->KV("residual", r.residual);
  w->EndObject();
}

ServiceTelemetry::Retained ServiceTelemetry::SnapshotRetained() const {
  Retained snap;
  MutexLock lock(mu_);
  // Unroll the ring oldest-first while copying, so serialization needs
  // no cursor.
  const size_t n = recent_.size();
  const size_t start = n < static_cast<size_t>(kRecentRing) ? 0 : recent_next_;
  snap.recent.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    SJ_BOUNDED_WORK;  // ring copy capped at kRecentRing
    snap.recent.push_back(recent_[(start + i) % n]);
  }
  snap.slow_by_latency = slow_by_latency_;
  snap.slow_by_residual = slow_by_residual_;
  snap.per_session = per_session_;
  snap.per_dataset = per_dataset_;
  return snap;
}

void ServiceTelemetry::WriteAggregatesJson(JsonWriter* w,
                                           const Retained& snap) const {
  auto write_map = [this, w](const char* key,
                             const std::map<int64_t, Aggregate>& m,
                             const char* id_key) {
    w->Key(key);
    w->BeginArray();
    for (const auto& [id, agg] : m) {
      SJ_BOUNDED_WORK;  // one row per live session/dataset id
      w->BeginObject();
      w->KV(id_key, id);
      w->KV("queries", agg.queries);
      w->KV("ok", agg.ok);
      w->KV("cancelled", agg.cancelled);
      w->KV("deadline", agg.deadline);
      w->KV("oversized", agg.oversized);
      w->KV("wall_ns", agg.wall_ns);
      w->KV("pages_read", agg.pages_read);
      w->KV("pages_hit", agg.pages_hit);
      w->KV("pairs_examined", agg.pairs_examined);
      w->KV("matches", agg.matches);
      w->EndObject();
    }
    w->EndArray();
  };
  write_map("per_session", snap.per_session, "session");
  write_map("per_dataset", snap.per_dataset, "dataset");
}

void ServiceTelemetry::WriteSlowRingsJson(JsonWriter* w, const Retained& snap,
                                          int64_t now_ns) const {
  auto write_ring = [this, w, now_ns](const char* key,
                                      std::vector<QueryRecord> ring,
                                      auto rank) {
    // Expired entries are dropped lazily on insert; a snapshot of a quiet
    // server must not resurrect them, so filter here too.
    ring.erase(std::remove_if(ring.begin(), ring.end(),
                              [now_ns](const QueryRecord& r) {
                                return now_ns - r.end_ts_ns >
                                       kSlowRetentionNs;
                              }),
               ring.end());
    std::sort(ring.begin(), ring.end(),
              [&rank](const QueryRecord& a, const QueryRecord& b) {
                return rank(a) > rank(b);
              });
    w->Key(key);
    w->BeginArray();
    for (const QueryRecord& r : ring) {
      SJ_BOUNDED_WORK;  // ring copy capped at kSlowRing
      WriteRecordJson(w, r);
    }
    w->EndArray();
  };
  write_ring("slow_by_latency", snap.slow_by_latency,
             [](const QueryRecord& r) {
               return static_cast<double>(r.wall_ns);
             });
  write_ring("slow_by_residual", snap.slow_by_residual,
             [](const QueryRecord& r) { return ResidualBadness(r.residual); });
}

namespace {

void WriteWindowJson(JsonWriter* w, const char* key,
                     const WindowedHistogram::Snapshot& snap) {
  w->Key(key);
  w->BeginObject();
  w->KV("window_ns", snap.window_ns);
  w->KV("count", snap.count);
  w->KV("mean_ns", snap.mean());
  w->KV("p50_ns", snap.QuantileUpperBound(0.5));
  w->KV("p90_ns", snap.QuantileUpperBound(0.9));
  w->KV("p99_ns", snap.QuantileUpperBound(0.99));
  w->EndObject();
}

}  // namespace

void ServiceTelemetry::WriteStatsJson(
    std::ostream& os, const QueryScheduler::Stats& scheduler, int max_inflight,
    const exec::ThreadPool::Stats& pool) const {
  const int64_t now_ns = MonotonicNowNs();
  JsonWriter w(os);
  w.BeginObject();
  w.KV("stats_version", int64_t{1});
  w.KV("now_ns", now_ns);
  w.Key("scheduler");
  w.BeginObject();
  w.KV("admitted", scheduler.admitted);
  w.KV("rejected", scheduler.rejected);
  w.KV("completed", scheduler.completed);
  w.KV("inflight", scheduler.inflight);
  w.KV("peak_inflight", scheduler.peak_inflight);
  w.KV("max_inflight", static_cast<int64_t>(max_inflight));
  w.EndObject();
  w.Key("pool");
  w.BeginObject();
  w.KV("workers", static_cast<int64_t>(pool.workers));
  w.KV("tasks_submitted", pool.tasks_submitted);
  w.KV("tasks_executed", pool.tasks_executed);
  w.KV("tasks_stolen", pool.tasks_stolen);
  w.KV("tasks_queued", pool.tasks_queued);
  w.EndObject();
  w.Key("sessions");
  w.BeginObject();
  w.KV("opened", sessions_opened_->Value());
  w.KV("closed", sessions_closed_->Value());
  w.KV("open", sessions_opened_->Value() - sessions_closed_->Value());
  w.KV("protocol_errors", protocol_errors_->Value());
  w.KV("write_failures", write_failures_->Value());
  w.EndObject();
  w.Key("queries");
  w.BeginObject();
  w.KV("ok", query_ok_->Value());
  w.KV("stopped", query_stopped_->Value());
  w.KV("oversized", query_oversized_->Value());
  w.KV("cancel_requested", cancel_requested_->Value());
  w.EndObject();
  WriteWindowJson(&w, "latency", latency_window_.Snap(now_ns));
  WriteWindowJson(&w, "queue_wait", queue_wait_window_.Snap(now_ns));
  const Retained snap = SnapshotRetained();
  WriteAggregatesJson(&w, snap);
  w.Key("recent");
  w.BeginArray();
  for (const QueryRecord& r : snap.recent) {
    SJ_BOUNDED_WORK;  // ring copy capped at kRecentRing
    WriteRecordJson(&w, r);
  }
  w.EndArray();
  WriteSlowRingsJson(&w, snap, now_ns);
  w.EndObject();
  os << '\n';
}

std::string ServiceTelemetry::ServiceSectionJson() const {
  const int64_t now_ns = MonotonicNowNs();
  std::ostringstream os;
  JsonWriter w(os);
  w.BeginObject();
  w.Key("queries");
  w.BeginObject();
  w.KV("ok", query_ok_->Value());
  w.KV("stopped", query_stopped_->Value());
  w.KV("oversized", query_oversized_->Value());
  w.EndObject();
  WriteWindowJson(&w, "latency", latency_window_.Snap(now_ns));
  WriteSlowRingsJson(&w, SnapshotRetained(), now_ns);
  w.EndObject();
  return os.str();
}

void ServiceTelemetry::Reset() {
  latency_window_.Reset();
  queue_wait_window_.Reset();
  MutexLock lock(mu_);
  recent_.clear();
  recent_next_ = 0;
  slow_by_latency_.clear();
  slow_by_residual_.clear();
  per_session_.clear();
  per_dataset_.clear();
  slow_event_threshold_ns_ = kDefaultSlowEventThresholdNs;
}

}  // namespace server
}  // namespace spatialjoin
