# Empty compiler generated dependencies file for example_houses_near_lakes.
# This may be replaced when dependencies are built.
