file(REMOVE_RECURSE
  "CMakeFiles/example_houses_near_lakes.dir/houses_near_lakes.cpp.o"
  "CMakeFiles/example_houses_near_lakes.dir/houses_near_lakes.cpp.o.d"
  "example_houses_near_lakes"
  "example_houses_near_lakes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_houses_near_lakes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
