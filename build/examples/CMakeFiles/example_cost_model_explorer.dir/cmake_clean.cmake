file(REMOVE_RECURSE
  "CMakeFiles/example_cost_model_explorer.dir/cost_model_explorer.cpp.o"
  "CMakeFiles/example_cost_model_explorer.dir/cost_model_explorer.cpp.o.d"
  "example_cost_model_explorer"
  "example_cost_model_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cost_model_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
