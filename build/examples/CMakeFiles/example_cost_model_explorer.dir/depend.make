# Empty dependencies file for example_cost_model_explorer.
# This may be replaced when dependencies are built.
