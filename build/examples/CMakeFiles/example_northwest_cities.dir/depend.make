# Empty dependencies file for example_northwest_cities.
# This may be replaced when dependencies are built.
