file(REMOVE_RECURSE
  "CMakeFiles/example_northwest_cities.dir/northwest_cities.cpp.o"
  "CMakeFiles/example_northwest_cities.dir/northwest_cities.cpp.o.d"
  "example_northwest_cities"
  "example_northwest_cities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_northwest_cities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
