# Empty compiler generated dependencies file for example_cartographic_map.
# This may be replaced when dependencies are built.
