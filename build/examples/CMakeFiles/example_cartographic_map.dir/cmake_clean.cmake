file(REMOVE_RECURSE
  "CMakeFiles/example_cartographic_map.dir/cartographic_map.cpp.o"
  "CMakeFiles/example_cartographic_map.dir/cartographic_map.cpp.o.d"
  "example_cartographic_map"
  "example_cartographic_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_cartographic_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
