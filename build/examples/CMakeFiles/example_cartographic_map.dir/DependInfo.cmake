
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/cartographic_map.cpp" "examples/CMakeFiles/example_cartographic_map.dir/cartographic_map.cpp.o" "gcc" "examples/CMakeFiles/example_cartographic_map.dir/cartographic_map.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/quadtree/CMakeFiles/sj_quadtree.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/sj_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/sj_core.dir/DependInfo.cmake"
  "/root/repo/build/src/zorder/CMakeFiles/sj_zorder.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/sj_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/sj_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/gridfile/CMakeFiles/sj_gridfile.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sj_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/sj_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
