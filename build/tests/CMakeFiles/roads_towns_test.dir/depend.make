# Empty dependencies file for roads_towns_test.
# This may be replaced when dependencies are built.
