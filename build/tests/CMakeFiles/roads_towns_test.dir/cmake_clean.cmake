file(REMOVE_RECURSE
  "CMakeFiles/roads_towns_test.dir/roads_towns_test.cc.o"
  "CMakeFiles/roads_towns_test.dir/roads_towns_test.cc.o.d"
  "roads_towns_test"
  "roads_towns_test.pdb"
  "roads_towns_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roads_towns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
