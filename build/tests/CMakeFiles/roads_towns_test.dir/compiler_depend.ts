# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for roads_towns_test.
