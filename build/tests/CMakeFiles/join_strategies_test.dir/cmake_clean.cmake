file(REMOVE_RECURSE
  "CMakeFiles/join_strategies_test.dir/join_strategies_test.cc.o"
  "CMakeFiles/join_strategies_test.dir/join_strategies_test.cc.o.d"
  "join_strategies_test"
  "join_strategies_test.pdb"
  "join_strategies_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/join_strategies_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
