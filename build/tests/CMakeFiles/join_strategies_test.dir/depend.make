# Empty dependencies file for join_strategies_test.
# This may be replaced when dependencies are built.
