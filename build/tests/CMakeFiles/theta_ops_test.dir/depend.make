# Empty dependencies file for theta_ops_test.
# This may be replaced when dependencies are built.
