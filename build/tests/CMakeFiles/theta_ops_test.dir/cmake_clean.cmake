file(REMOVE_RECURSE
  "CMakeFiles/theta_ops_test.dir/theta_ops_test.cc.o"
  "CMakeFiles/theta_ops_test.dir/theta_ops_test.cc.o.d"
  "theta_ops_test"
  "theta_ops_test.pdb"
  "theta_ops_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/theta_ops_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
