file(REMOVE_RECURSE
  "CMakeFiles/model_simulator_test.dir/model_simulator_test.cc.o"
  "CMakeFiles/model_simulator_test.dir/model_simulator_test.cc.o.d"
  "model_simulator_test"
  "model_simulator_test.pdb"
  "model_simulator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/model_simulator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
