# Empty compiler generated dependencies file for model_simulator_test.
# This may be replaced when dependencies are built.
