file(REMOVE_RECURSE
  "CMakeFiles/yao_test.dir/yao_test.cc.o"
  "CMakeFiles/yao_test.dir/yao_test.cc.o.d"
  "yao_test"
  "yao_test.pdb"
  "yao_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/yao_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
