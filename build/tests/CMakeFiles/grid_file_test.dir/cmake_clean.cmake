file(REMOVE_RECURSE
  "CMakeFiles/grid_file_test.dir/grid_file_test.cc.o"
  "CMakeFiles/grid_file_test.dir/grid_file_test.cc.o.d"
  "grid_file_test"
  "grid_file_test.pdb"
  "grid_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/grid_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
