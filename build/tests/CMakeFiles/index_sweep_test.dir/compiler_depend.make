# Empty compiler generated dependencies file for index_sweep_test.
# This may be replaced when dependencies are built.
