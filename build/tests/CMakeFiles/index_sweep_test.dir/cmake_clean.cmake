file(REMOVE_RECURSE
  "CMakeFiles/index_sweep_test.dir/index_sweep_test.cc.o"
  "CMakeFiles/index_sweep_test.dir/index_sweep_test.cc.o.d"
  "index_sweep_test"
  "index_sweep_test.pdb"
  "index_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
