file(REMOVE_RECURSE
  "CMakeFiles/gentree_test.dir/gentree_test.cc.o"
  "CMakeFiles/gentree_test.dir/gentree_test.cc.o.d"
  "gentree_test"
  "gentree_test.pdb"
  "gentree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gentree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
