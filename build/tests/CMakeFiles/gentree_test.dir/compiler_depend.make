# Empty compiler generated dependencies file for gentree_test.
# This may be replaced when dependencies are built.
