file(REMOVE_RECURSE
  "CMakeFiles/local_join_index_test.dir/local_join_index_test.cc.o"
  "CMakeFiles/local_join_index_test.dir/local_join_index_test.cc.o.d"
  "local_join_index_test"
  "local_join_index_test.pdb"
  "local_join_index_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/local_join_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
