file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_join_hiloc.dir/bench/bench_fig13_join_hiloc.cc.o"
  "CMakeFiles/bench_fig13_join_hiloc.dir/bench/bench_fig13_join_hiloc.cc.o.d"
  "bench/bench_fig13_join_hiloc"
  "bench/bench_fig13_join_hiloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_join_hiloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
