# Empty dependencies file for bench_fig13_join_hiloc.
# This may be replaced when dependencies are built.
