file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_geometry.dir/bench/bench_micro_geometry.cc.o"
  "CMakeFiles/bench_micro_geometry.dir/bench/bench_micro_geometry.cc.o.d"
  "bench/bench_micro_geometry"
  "bench/bench_micro_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
