# Empty compiler generated dependencies file for bench_micro_geometry.
# This may be replaced when dependencies are built.
