file(REMOVE_RECURSE
  "CMakeFiles/bench_fig11_join_uniform.dir/bench/bench_fig11_join_uniform.cc.o"
  "CMakeFiles/bench_fig11_join_uniform.dir/bench/bench_fig11_join_uniform.cc.o.d"
  "bench/bench_fig11_join_uniform"
  "bench/bench_fig11_join_uniform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig11_join_uniform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
