file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rtree_split.dir/bench/bench_ablation_rtree_split.cc.o"
  "CMakeFiles/bench_ablation_rtree_split.dir/bench/bench_ablation_rtree_split.cc.o.d"
  "bench/bench_ablation_rtree_split"
  "bench/bench_ablation_rtree_split.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rtree_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
