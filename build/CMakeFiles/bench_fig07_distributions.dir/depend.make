# Empty dependencies file for bench_fig07_distributions.
# This may be replaced when dependencies are built.
