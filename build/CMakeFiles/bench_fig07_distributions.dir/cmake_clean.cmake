file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_distributions.dir/bench/bench_fig07_distributions.cc.o"
  "CMakeFiles/bench_fig07_distributions.dir/bench/bench_fig07_distributions.cc.o.d"
  "bench/bench_fig07_distributions"
  "bench/bench_fig07_distributions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_distributions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
