file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_join_noloc.dir/bench/bench_fig12_join_noloc.cc.o"
  "CMakeFiles/bench_fig12_join_noloc.dir/bench/bench_fig12_join_noloc.cc.o.d"
  "bench/bench_fig12_join_noloc"
  "bench/bench_fig12_join_noloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_join_noloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
