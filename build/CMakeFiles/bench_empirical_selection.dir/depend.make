# Empty dependencies file for bench_empirical_selection.
# This may be replaced when dependencies are built.
