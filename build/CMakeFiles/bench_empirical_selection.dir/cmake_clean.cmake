file(REMOVE_RECURSE
  "CMakeFiles/bench_empirical_selection.dir/bench/bench_empirical_selection.cc.o"
  "CMakeFiles/bench_empirical_selection.dir/bench/bench_empirical_selection.cc.o.d"
  "bench/bench_empirical_selection"
  "bench/bench_empirical_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empirical_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
