# Empty dependencies file for bench_empirical_select.
# This may be replaced when dependencies are built.
