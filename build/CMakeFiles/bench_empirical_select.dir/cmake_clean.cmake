file(REMOVE_RECURSE
  "CMakeFiles/bench_empirical_select.dir/bench/bench_empirical_select.cc.o"
  "CMakeFiles/bench_empirical_select.dir/bench/bench_empirical_select.cc.o.d"
  "bench/bench_empirical_select"
  "bench/bench_empirical_select.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empirical_select.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
