file(REMOVE_RECURSE
  "CMakeFiles/bench_empirical_join.dir/bench/bench_empirical_join.cc.o"
  "CMakeFiles/bench_empirical_join.dir/bench/bench_empirical_join.cc.o.d"
  "bench/bench_empirical_join"
  "bench/bench_empirical_join.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_empirical_join.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
