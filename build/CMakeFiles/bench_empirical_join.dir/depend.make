# Empty dependencies file for bench_empirical_join.
# This may be replaced when dependencies are built.
