file(REMOVE_RECURSE
  "CMakeFiles/bench_local_join_index.dir/bench/bench_local_join_index.cc.o"
  "CMakeFiles/bench_local_join_index.dir/bench/bench_local_join_index.cc.o.d"
  "bench/bench_local_join_index"
  "bench/bench_local_join_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_local_join_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
