# Empty dependencies file for bench_local_join_index.
# This may be replaced when dependencies are built.
