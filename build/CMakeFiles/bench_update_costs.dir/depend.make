# Empty dependencies file for bench_update_costs.
# This may be replaced when dependencies are built.
