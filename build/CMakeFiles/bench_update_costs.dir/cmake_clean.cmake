file(REMOVE_RECURSE
  "CMakeFiles/bench_update_costs.dir/bench/bench_update_costs.cc.o"
  "CMakeFiles/bench_update_costs.dir/bench/bench_update_costs.cc.o.d"
  "bench/bench_update_costs"
  "bench/bench_update_costs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_update_costs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
