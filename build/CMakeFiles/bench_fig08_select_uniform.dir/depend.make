# Empty dependencies file for bench_fig08_select_uniform.
# This may be replaced when dependencies are built.
