# Empty dependencies file for bench_planner_accuracy.
# This may be replaced when dependencies are built.
