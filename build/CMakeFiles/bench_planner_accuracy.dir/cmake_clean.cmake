file(REMOVE_RECURSE
  "CMakeFiles/bench_planner_accuracy.dir/bench/bench_planner_accuracy.cc.o"
  "CMakeFiles/bench_planner_accuracy.dir/bench/bench_planner_accuracy.cc.o.d"
  "bench/bench_planner_accuracy"
  "bench/bench_planner_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_planner_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
