# Empty compiler generated dependencies file for bench_fig09_select_noloc.
# This may be replaced when dependencies are built.
