file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_select_noloc.dir/bench/bench_fig09_select_noloc.cc.o"
  "CMakeFiles/bench_fig09_select_noloc.dir/bench/bench_fig09_select_noloc.cc.o.d"
  "bench/bench_fig09_select_noloc"
  "bench/bench_fig09_select_noloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_select_noloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
