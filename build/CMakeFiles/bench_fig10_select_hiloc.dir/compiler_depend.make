# Empty compiler generated dependencies file for bench_fig10_select_hiloc.
# This may be replaced when dependencies are built.
