file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_select_hiloc.dir/bench/bench_fig10_select_hiloc.cc.o"
  "CMakeFiles/bench_fig10_select_hiloc.dir/bench/bench_fig10_select_hiloc.cc.o.d"
  "bench/bench_fig10_select_hiloc"
  "bench/bench_fig10_select_hiloc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_select_hiloc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
