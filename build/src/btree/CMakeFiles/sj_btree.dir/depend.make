# Empty dependencies file for sj_btree.
# This may be replaced when dependencies are built.
