file(REMOVE_RECURSE
  "libsj_btree.a"
)
