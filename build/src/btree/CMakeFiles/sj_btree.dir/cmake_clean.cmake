file(REMOVE_RECURSE
  "CMakeFiles/sj_btree.dir/bplus_tree.cc.o"
  "CMakeFiles/sj_btree.dir/bplus_tree.cc.o.d"
  "libsj_btree.a"
  "libsj_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
