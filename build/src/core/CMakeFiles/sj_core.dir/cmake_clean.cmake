file(REMOVE_RECURSE
  "CMakeFiles/sj_core.dir/histogram.cc.o"
  "CMakeFiles/sj_core.dir/histogram.cc.o.d"
  "CMakeFiles/sj_core.dir/index_nested_loop.cc.o"
  "CMakeFiles/sj_core.dir/index_nested_loop.cc.o.d"
  "CMakeFiles/sj_core.dir/join.cc.o"
  "CMakeFiles/sj_core.dir/join.cc.o.d"
  "CMakeFiles/sj_core.dir/join_index.cc.o"
  "CMakeFiles/sj_core.dir/join_index.cc.o.d"
  "CMakeFiles/sj_core.dir/local_join_index.cc.o"
  "CMakeFiles/sj_core.dir/local_join_index.cc.o.d"
  "CMakeFiles/sj_core.dir/memory_gentree.cc.o"
  "CMakeFiles/sj_core.dir/memory_gentree.cc.o.d"
  "CMakeFiles/sj_core.dir/naive_sort_merge.cc.o"
  "CMakeFiles/sj_core.dir/naive_sort_merge.cc.o.d"
  "CMakeFiles/sj_core.dir/nested_loop.cc.o"
  "CMakeFiles/sj_core.dir/nested_loop.cc.o.d"
  "CMakeFiles/sj_core.dir/planner.cc.o"
  "CMakeFiles/sj_core.dir/planner.cc.o.d"
  "CMakeFiles/sj_core.dir/select.cc.o"
  "CMakeFiles/sj_core.dir/select.cc.o.d"
  "CMakeFiles/sj_core.dir/sort_merge_zorder.cc.o"
  "CMakeFiles/sj_core.dir/sort_merge_zorder.cc.o.d"
  "CMakeFiles/sj_core.dir/spatial_join.cc.o"
  "CMakeFiles/sj_core.dir/spatial_join.cc.o.d"
  "CMakeFiles/sj_core.dir/theta_ops.cc.o"
  "CMakeFiles/sj_core.dir/theta_ops.cc.o.d"
  "CMakeFiles/sj_core.dir/window_join.cc.o"
  "CMakeFiles/sj_core.dir/window_join.cc.o.d"
  "libsj_core.a"
  "libsj_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
