# Empty dependencies file for sj_core.
# This may be replaced when dependencies are built.
