
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/histogram.cc" "src/core/CMakeFiles/sj_core.dir/histogram.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/histogram.cc.o.d"
  "/root/repo/src/core/index_nested_loop.cc" "src/core/CMakeFiles/sj_core.dir/index_nested_loop.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/index_nested_loop.cc.o.d"
  "/root/repo/src/core/join.cc" "src/core/CMakeFiles/sj_core.dir/join.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/join.cc.o.d"
  "/root/repo/src/core/join_index.cc" "src/core/CMakeFiles/sj_core.dir/join_index.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/join_index.cc.o.d"
  "/root/repo/src/core/local_join_index.cc" "src/core/CMakeFiles/sj_core.dir/local_join_index.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/local_join_index.cc.o.d"
  "/root/repo/src/core/memory_gentree.cc" "src/core/CMakeFiles/sj_core.dir/memory_gentree.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/memory_gentree.cc.o.d"
  "/root/repo/src/core/naive_sort_merge.cc" "src/core/CMakeFiles/sj_core.dir/naive_sort_merge.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/naive_sort_merge.cc.o.d"
  "/root/repo/src/core/nested_loop.cc" "src/core/CMakeFiles/sj_core.dir/nested_loop.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/nested_loop.cc.o.d"
  "/root/repo/src/core/planner.cc" "src/core/CMakeFiles/sj_core.dir/planner.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/planner.cc.o.d"
  "/root/repo/src/core/select.cc" "src/core/CMakeFiles/sj_core.dir/select.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/select.cc.o.d"
  "/root/repo/src/core/sort_merge_zorder.cc" "src/core/CMakeFiles/sj_core.dir/sort_merge_zorder.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/sort_merge_zorder.cc.o.d"
  "/root/repo/src/core/spatial_join.cc" "src/core/CMakeFiles/sj_core.dir/spatial_join.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/spatial_join.cc.o.d"
  "/root/repo/src/core/theta_ops.cc" "src/core/CMakeFiles/sj_core.dir/theta_ops.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/theta_ops.cc.o.d"
  "/root/repo/src/core/window_join.cc" "src/core/CMakeFiles/sj_core.dir/window_join.cc.o" "gcc" "src/core/CMakeFiles/sj_core.dir/window_join.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/zorder/CMakeFiles/sj_zorder.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sj_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/sj_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/costmodel/CMakeFiles/sj_costmodel.dir/DependInfo.cmake"
  "/root/repo/build/src/gridfile/CMakeFiles/sj_gridfile.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/sj_rtree.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
