file(REMOVE_RECURSE
  "libsj_core.a"
)
