file(REMOVE_RECURSE
  "libsj_gridfile.a"
)
