
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gridfile/grid_file.cc" "src/gridfile/CMakeFiles/sj_gridfile.dir/grid_file.cc.o" "gcc" "src/gridfile/CMakeFiles/sj_gridfile.dir/grid_file.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sj_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/sj_relational.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
