# Empty dependencies file for sj_gridfile.
# This may be replaced when dependencies are built.
