file(REMOVE_RECURSE
  "CMakeFiles/sj_gridfile.dir/grid_file.cc.o"
  "CMakeFiles/sj_gridfile.dir/grid_file.cc.o.d"
  "libsj_gridfile.a"
  "libsj_gridfile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_gridfile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
