file(REMOVE_RECURSE
  "libsj_workload.a"
)
