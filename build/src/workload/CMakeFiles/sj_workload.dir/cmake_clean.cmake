file(REMOVE_RECURSE
  "CMakeFiles/sj_workload.dir/hierarchy_generator.cc.o"
  "CMakeFiles/sj_workload.dir/hierarchy_generator.cc.o.d"
  "CMakeFiles/sj_workload.dir/model_simulator.cc.o"
  "CMakeFiles/sj_workload.dir/model_simulator.cc.o.d"
  "CMakeFiles/sj_workload.dir/rect_generator.cc.o"
  "CMakeFiles/sj_workload.dir/rect_generator.cc.o.d"
  "CMakeFiles/sj_workload.dir/scenario_houses_lakes.cc.o"
  "CMakeFiles/sj_workload.dir/scenario_houses_lakes.cc.o.d"
  "CMakeFiles/sj_workload.dir/scenario_roads_towns.cc.o"
  "CMakeFiles/sj_workload.dir/scenario_roads_towns.cc.o.d"
  "libsj_workload.a"
  "libsj_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
