# Empty dependencies file for sj_workload.
# This may be replaced when dependencies are built.
