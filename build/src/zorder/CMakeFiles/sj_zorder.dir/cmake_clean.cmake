file(REMOVE_RECURSE
  "CMakeFiles/sj_zorder.dir/hilbert.cc.o"
  "CMakeFiles/sj_zorder.dir/hilbert.cc.o.d"
  "CMakeFiles/sj_zorder.dir/zdecompose.cc.o"
  "CMakeFiles/sj_zorder.dir/zdecompose.cc.o.d"
  "CMakeFiles/sj_zorder.dir/zorder.cc.o"
  "CMakeFiles/sj_zorder.dir/zorder.cc.o.d"
  "libsj_zorder.a"
  "libsj_zorder.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_zorder.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
