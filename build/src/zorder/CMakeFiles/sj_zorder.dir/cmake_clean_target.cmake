file(REMOVE_RECURSE
  "libsj_zorder.a"
)
