
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/zorder/hilbert.cc" "src/zorder/CMakeFiles/sj_zorder.dir/hilbert.cc.o" "gcc" "src/zorder/CMakeFiles/sj_zorder.dir/hilbert.cc.o.d"
  "/root/repo/src/zorder/zdecompose.cc" "src/zorder/CMakeFiles/sj_zorder.dir/zdecompose.cc.o" "gcc" "src/zorder/CMakeFiles/sj_zorder.dir/zdecompose.cc.o.d"
  "/root/repo/src/zorder/zorder.cc" "src/zorder/CMakeFiles/sj_zorder.dir/zorder.cc.o" "gcc" "src/zorder/CMakeFiles/sj_zorder.dir/zorder.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sj_geometry.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
