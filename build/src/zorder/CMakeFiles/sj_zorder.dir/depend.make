# Empty dependencies file for sj_zorder.
# This may be replaced when dependencies are built.
