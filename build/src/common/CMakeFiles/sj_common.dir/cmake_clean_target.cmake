file(REMOVE_RECURSE
  "libsj_common.a"
)
