file(REMOVE_RECURSE
  "CMakeFiles/sj_common.dir/check.cc.o"
  "CMakeFiles/sj_common.dir/check.cc.o.d"
  "CMakeFiles/sj_common.dir/random.cc.o"
  "CMakeFiles/sj_common.dir/random.cc.o.d"
  "CMakeFiles/sj_common.dir/stats.cc.o"
  "CMakeFiles/sj_common.dir/stats.cc.o.d"
  "CMakeFiles/sj_common.dir/status.cc.o"
  "CMakeFiles/sj_common.dir/status.cc.o.d"
  "libsj_common.a"
  "libsj_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
