# Empty dependencies file for sj_common.
# This may be replaced when dependencies are built.
