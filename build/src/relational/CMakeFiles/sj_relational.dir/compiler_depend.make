# Empty compiler generated dependencies file for sj_relational.
# This may be replaced when dependencies are built.
