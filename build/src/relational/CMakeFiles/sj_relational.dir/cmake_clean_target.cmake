file(REMOVE_RECURSE
  "libsj_relational.a"
)
