file(REMOVE_RECURSE
  "CMakeFiles/sj_relational.dir/relation.cc.o"
  "CMakeFiles/sj_relational.dir/relation.cc.o.d"
  "CMakeFiles/sj_relational.dir/schema.cc.o"
  "CMakeFiles/sj_relational.dir/schema.cc.o.d"
  "CMakeFiles/sj_relational.dir/tuple.cc.o"
  "CMakeFiles/sj_relational.dir/tuple.cc.o.d"
  "CMakeFiles/sj_relational.dir/value.cc.o"
  "CMakeFiles/sj_relational.dir/value.cc.o.d"
  "libsj_relational.a"
  "libsj_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
