
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/relation.cc" "src/relational/CMakeFiles/sj_relational.dir/relation.cc.o" "gcc" "src/relational/CMakeFiles/sj_relational.dir/relation.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/sj_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/sj_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/tuple.cc" "src/relational/CMakeFiles/sj_relational.dir/tuple.cc.o" "gcc" "src/relational/CMakeFiles/sj_relational.dir/tuple.cc.o.d"
  "/root/repo/src/relational/value.cc" "src/relational/CMakeFiles/sj_relational.dir/value.cc.o" "gcc" "src/relational/CMakeFiles/sj_relational.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  "/root/repo/build/src/geometry/CMakeFiles/sj_geometry.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/sj_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
