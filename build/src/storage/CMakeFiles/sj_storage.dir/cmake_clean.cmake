file(REMOVE_RECURSE
  "CMakeFiles/sj_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/sj_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/sj_storage.dir/clustered_file.cc.o"
  "CMakeFiles/sj_storage.dir/clustered_file.cc.o.d"
  "CMakeFiles/sj_storage.dir/disk_manager.cc.o"
  "CMakeFiles/sj_storage.dir/disk_manager.cc.o.d"
  "CMakeFiles/sj_storage.dir/heap_file.cc.o"
  "CMakeFiles/sj_storage.dir/heap_file.cc.o.d"
  "CMakeFiles/sj_storage.dir/slotted_page.cc.o"
  "CMakeFiles/sj_storage.dir/slotted_page.cc.o.d"
  "libsj_storage.a"
  "libsj_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
