file(REMOVE_RECURSE
  "libsj_storage.a"
)
