# Empty dependencies file for sj_storage.
# This may be replaced when dependencies are built.
