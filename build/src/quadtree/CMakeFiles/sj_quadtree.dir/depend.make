# Empty dependencies file for sj_quadtree.
# This may be replaced when dependencies are built.
