file(REMOVE_RECURSE
  "CMakeFiles/sj_quadtree.dir/quadtree.cc.o"
  "CMakeFiles/sj_quadtree.dir/quadtree.cc.o.d"
  "libsj_quadtree.a"
  "libsj_quadtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_quadtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
