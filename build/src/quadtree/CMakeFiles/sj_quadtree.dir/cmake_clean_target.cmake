file(REMOVE_RECURSE
  "libsj_quadtree.a"
)
