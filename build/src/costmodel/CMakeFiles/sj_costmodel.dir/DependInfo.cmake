
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/costmodel/distributions.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/distributions.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/distributions.cc.o.d"
  "/root/repo/src/costmodel/join_cost.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/join_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/join_cost.cc.o.d"
  "/root/repo/src/costmodel/parameters.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/parameters.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/parameters.cc.o.d"
  "/root/repo/src/costmodel/report.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/report.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/report.cc.o.d"
  "/root/repo/src/costmodel/select_cost.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/select_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/select_cost.cc.o.d"
  "/root/repo/src/costmodel/update_cost.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/update_cost.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/update_cost.cc.o.d"
  "/root/repo/src/costmodel/yao.cc" "src/costmodel/CMakeFiles/sj_costmodel.dir/yao.cc.o" "gcc" "src/costmodel/CMakeFiles/sj_costmodel.dir/yao.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
