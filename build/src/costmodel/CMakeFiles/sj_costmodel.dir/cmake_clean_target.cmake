file(REMOVE_RECURSE
  "libsj_costmodel.a"
)
