# Empty dependencies file for sj_costmodel.
# This may be replaced when dependencies are built.
