file(REMOVE_RECURSE
  "CMakeFiles/sj_costmodel.dir/distributions.cc.o"
  "CMakeFiles/sj_costmodel.dir/distributions.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/join_cost.cc.o"
  "CMakeFiles/sj_costmodel.dir/join_cost.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/parameters.cc.o"
  "CMakeFiles/sj_costmodel.dir/parameters.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/report.cc.o"
  "CMakeFiles/sj_costmodel.dir/report.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/select_cost.cc.o"
  "CMakeFiles/sj_costmodel.dir/select_cost.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/update_cost.cc.o"
  "CMakeFiles/sj_costmodel.dir/update_cost.cc.o.d"
  "CMakeFiles/sj_costmodel.dir/yao.cc.o"
  "CMakeFiles/sj_costmodel.dir/yao.cc.o.d"
  "libsj_costmodel.a"
  "libsj_costmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_costmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
