file(REMOVE_RECURSE
  "CMakeFiles/sj_rtree.dir/rtree.cc.o"
  "CMakeFiles/sj_rtree.dir/rtree.cc.o.d"
  "CMakeFiles/sj_rtree.dir/rtree_gentree.cc.o"
  "CMakeFiles/sj_rtree.dir/rtree_gentree.cc.o.d"
  "libsj_rtree.a"
  "libsj_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
