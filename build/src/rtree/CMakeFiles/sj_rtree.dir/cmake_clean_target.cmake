file(REMOVE_RECURSE
  "libsj_rtree.a"
)
