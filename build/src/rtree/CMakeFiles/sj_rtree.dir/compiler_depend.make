# Empty compiler generated dependencies file for sj_rtree.
# This may be replaced when dependencies are built.
