
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geometry/buffer.cc" "src/geometry/CMakeFiles/sj_geometry.dir/buffer.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/buffer.cc.o.d"
  "/root/repo/src/geometry/distance.cc" "src/geometry/CMakeFiles/sj_geometry.dir/distance.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/distance.cc.o.d"
  "/root/repo/src/geometry/point.cc" "src/geometry/CMakeFiles/sj_geometry.dir/point.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/point.cc.o.d"
  "/root/repo/src/geometry/polygon.cc" "src/geometry/CMakeFiles/sj_geometry.dir/polygon.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/polygon.cc.o.d"
  "/root/repo/src/geometry/polyline.cc" "src/geometry/CMakeFiles/sj_geometry.dir/polyline.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/polyline.cc.o.d"
  "/root/repo/src/geometry/predicates.cc" "src/geometry/CMakeFiles/sj_geometry.dir/predicates.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/predicates.cc.o.d"
  "/root/repo/src/geometry/rectangle.cc" "src/geometry/CMakeFiles/sj_geometry.dir/rectangle.cc.o" "gcc" "src/geometry/CMakeFiles/sj_geometry.dir/rectangle.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/sj_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
