# Empty dependencies file for sj_geometry.
# This may be replaced when dependencies are built.
