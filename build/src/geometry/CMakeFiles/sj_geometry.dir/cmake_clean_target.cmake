file(REMOVE_RECURSE
  "libsj_geometry.a"
)
