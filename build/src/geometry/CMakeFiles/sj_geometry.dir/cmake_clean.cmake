file(REMOVE_RECURSE
  "CMakeFiles/sj_geometry.dir/buffer.cc.o"
  "CMakeFiles/sj_geometry.dir/buffer.cc.o.d"
  "CMakeFiles/sj_geometry.dir/distance.cc.o"
  "CMakeFiles/sj_geometry.dir/distance.cc.o.d"
  "CMakeFiles/sj_geometry.dir/point.cc.o"
  "CMakeFiles/sj_geometry.dir/point.cc.o.d"
  "CMakeFiles/sj_geometry.dir/polygon.cc.o"
  "CMakeFiles/sj_geometry.dir/polygon.cc.o.d"
  "CMakeFiles/sj_geometry.dir/polyline.cc.o"
  "CMakeFiles/sj_geometry.dir/polyline.cc.o.d"
  "CMakeFiles/sj_geometry.dir/predicates.cc.o"
  "CMakeFiles/sj_geometry.dir/predicates.cc.o.d"
  "CMakeFiles/sj_geometry.dir/rectangle.cc.o"
  "CMakeFiles/sj_geometry.dir/rectangle.cc.o.d"
  "libsj_geometry.a"
  "libsj_geometry.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sj_geometry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
