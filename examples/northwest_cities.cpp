// The paper's query (1): "Find all Californian cities to the Northwest
// of Lake Tahoe" — the degenerate spatial join (a spatial selection) with
// a direction operator, answered three ways: exhaustive scan, Algorithm
// SELECT over an R-tree (with the Fig.-5 NW-quadrant Θ), and a native
// window probe using the operator's probe window.
//
//   build/examples/example_northwest_cities
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "core/nested_loop.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace spatialjoin;

int main() {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);

  // A stylized California: x grows east, y grows north (km-ish units).
  Schema schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"location", ValueType::kPoint}});
  Relation cities("city", schema, &pool);
  struct City {
    const char* name;
    Point location;
  };
  std::vector<City> data = {
      {"Sacramento", {80, 270}},    {"San Francisco", {10, 230}},
      {"Oakland", {18, 228}},       {"San Jose", {30, 200}},
      {"Fresno", {140, 140}},       {"Los Angeles", {220, 30}},
      {"San Diego", {260, 0}},      {"Redding", {60, 380}},
      {"Eureka", {0, 360}},         {"Chico", {75, 330}},
      {"Reno-adjacent Truckee", {170, 300}},
      {"Bakersfield", {190, 80}},
  };
  RTree rtree(&pool, RTreeSplit::kQuadratic, 8);
  for (size_t i = 0; i < data.size(); ++i) {
    TupleId tid = cities.Insert(Tuple({Value(static_cast<int64_t>(i)),
                                       Value(data[i].name),
                                       Value(data[i].location)}));
    rtree.Insert(Rectangle::FromPoint(data[i].location), tid);
  }
  RTreeGenTree city_tree(&rtree, &cities, 2);

  // Lake Tahoe as a small rectangle in the Sierra.
  Value lake_tahoe(Rectangle(180, 270, 200, 290));
  NorthwestOfOp northwest;
  Rectangle world(0, 0, 300, 400);

  std::cout << "query (1): cities to the Northwest of Lake Tahoe "
            << lake_tahoe.ToString() << "\n\n";

  // Exhaustive scan (strategy I) — and the readable answer. The operator
  // is asymmetric, θ(city, lake), so the city is operand 1.
  std::vector<TupleId> answer;
  cities.Scan([&](TupleId tid, const Tuple& t) {
    if (northwest.Theta(t.value(2), lake_tahoe)) answer.push_back(tid);
  });
  std::cout << "answer (" << answer.size() << " cities):\n";
  for (TupleId tid : answer) {
    std::cout << "  " << cities.Read(tid).value(1).AsString() << "\n";
  }

  // Algorithm SELECT with the Fig.-5 Θ: probe the R-tree with the lake
  // as selector. θ must see (city, lake), so swap via a tiny adapter.
  class CityNwOfLake : public ThetaOperator {
   public:
    std::string name() const override { return "nw_swapped"; }
    bool Theta(const Value& lake, const Value& city) const override {
      return inner_.Theta(city, lake);
    }
    bool ThetaUpper(const Rectangle& lake,
                    const Rectangle& city) const override {
      return inner_.ThetaUpper(city, lake);
    }

   private:
    NorthwestOfOp inner_;
  };
  CityNwOfLake probe_op;
  SelectResult tree_result = SpatialSelect(lake_tahoe, city_tree, probe_op);
  std::printf("\nAlgorithm SELECT over the R-tree: %zu matches, %lld theta"
              " + %lld Theta tests (vs %lld exhaustive)\n",
              tree_result.matching_tuples.size(),
              static_cast<long long>(tree_result.theta_tests),
              static_cast<long long>(tree_result.theta_upper_tests),
              static_cast<long long>(cities.num_tuples()));

  // Native window probe from the operator's Fig.-5 quadrant.
  auto window = northwest.ProbeWindow(lake_tahoe.Mbr(), world);
  std::cout << "probe window (NW quadrant clipped to the world): "
            << window->ToString() << "\n";
  std::vector<TupleId> window_hits = rtree.SearchTids(*window);
  int verified = 0;
  for (TupleId tid : window_hits) {
    if (northwest.Theta(cities.Read(tid).value(2), lake_tahoe)) ++verified;
  }
  std::printf("window probe: %zu candidates, %d verified matches\n",
              window_hits.size(), verified);
  return 0;
}
