// Quickstart: store two spatial relations, index one with an R-tree, and
// run the same spatial join with three strategies.
//
//   build/examples/example_quickstart
#include <cstdio>
#include <iostream>

#include "core/index_nested_loop.h"
#include "core/nested_loop.h"
#include "core/theta_ops.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace spatialjoin;

int main() {
  // 1. A simulated disk (2000-byte pages, like the paper's Table 3) and
  //    a buffer pool on top of it. All I/O below is counted.
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);

  // 2. Two relations with spatial columns: parks (polygons reduced to
  //    rectangles here) and fountains (points).
  Schema park_schema({{"id", ValueType::kInt64},
                      {"area", ValueType::kRectangle}});
  Schema fountain_schema({{"id", ValueType::kInt64},
                          {"site", ValueType::kPoint}});
  Relation parks("parks", park_schema, &pool);
  Relation fountains("fountains", fountain_schema, &pool);

  parks.Insert(Tuple({Value(int64_t{0}), Value(Rectangle(0, 0, 30, 20))}));
  parks.Insert(Tuple({Value(int64_t{1}), Value(Rectangle(50, 10, 80, 40))}));
  parks.Insert(Tuple({Value(int64_t{2}), Value(Rectangle(20, 50, 45, 70))}));

  fountains.Insert(Tuple({Value(int64_t{0}), Value(Point(10, 10))}));
  fountains.Insert(Tuple({Value(int64_t{1}), Value(Point(60, 20))}));
  fountains.Insert(Tuple({Value(int64_t{2}), Value(Point(90, 90))}));
  fountains.Insert(Tuple({Value(int64_t{3}), Value(Point(33, 60))}));

  // 3. An R-tree on parks.area — a generalization tree in the paper's
  //    sense (interior nodes are technical bounding boxes).
  RTree rtree(&pool, RTreeSplit::kQuadratic);
  parks.Scan([&](TupleId tid, const Tuple& t) {
    rtree.Insert(t.value(1).Mbr(), tid);
  });
  RTreeGenTree parks_tree(&rtree, &parks, 1);

  // 4. The join: fountains within distance 5 of a park. θ is the exact
  //    predicate; Θ is its conservative MBR-level counterpart (Table 1).
  WithinDistanceOp op(5.0);

  std::cout << "nested loop (strategy I):\n";
  JoinResult nl = NestedLoopJoin(parks, 1, fountains, 1, op);
  for (auto [park, fountain] : nl.matches) {
    std::printf("  park %lld ~ fountain %lld\n",
                static_cast<long long>(park),
                static_cast<long long>(fountain));
  }
  std::printf("  theta tests: %lld\n\n",
              static_cast<long long>(nl.theta_tests));

  std::cout << "index-supported join over the R-tree:\n";
  JoinResult inl = IndexNestedLoopJoin(parks_tree, fountains, 1, op);
  for (auto [park, fountain] : inl.matches) {
    std::printf("  park %lld ~ fountain %lld\n",
                static_cast<long long>(park),
                static_cast<long long>(fountain));
  }
  std::printf("  theta tests: %lld (Theta pruned %lld candidates)\n\n",
              static_cast<long long>(inl.theta_tests),
              static_cast<long long>(inl.theta_upper_tests));

  std::cout << "disk I/O so far: " << disk.stats().ToString() << "\n";
  return 0;
}
