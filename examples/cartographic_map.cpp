// An application-specific generalization tree (paper Fig. 3): a
// hand-built cartographic hierarchy — map → countries → regions → cities
// — where *every* node is an application object that can qualify for a
// query answer. Demonstrates Algorithm SELECT with interior-node results
// and Algorithm JOIN between two hierarchies.
//
//   build/examples/example_cartographic_map
#include <cstdio>
#include <iostream>

#include "core/join.h"
#include "core/memory_gentree.h"
#include "core/select.h"
#include "core/theta_ops.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"

using namespace spatialjoin;

namespace {

TupleId StoreRegion(Relation* rel, int64_t id, const std::string& name,
                    const Rectangle& area) {
  return rel->Insert(Tuple({Value(id), Value(name), Value(area)}));
}

}  // namespace

int main() {
  DiskManager disk(2000);
  BufferPool pool(&disk, 256);
  Schema schema({{"id", ValueType::kInt64},
                 {"name", ValueType::kString},
                 {"area", ValueType::kRectangle}});
  Relation regions("regions", schema, &pool);

  // Build the hierarchy of Fig. 3 (coordinates are a stylized map).
  MemoryGenTree map;
  auto add = [&](NodeId parent, int64_t id, const std::string& name,
                 const Rectangle& area) {
    TupleId tid = StoreRegion(&regions, id, name, area);
    return map.AddNode(parent, Value(area), tid, name);
  };
  NodeId europe = add(kInvalidNodeId, 0, "Europe",
                      Rectangle(0, 0, 100, 100));
  NodeId germany = add(europe, 1, "Germany", Rectangle(40, 40, 80, 90));
  NodeId france = add(europe, 2, "France", Rectangle(5, 20, 45, 70));
  NodeId bavaria = add(germany, 3, "Bavaria", Rectangle(55, 42, 78, 65));
  NodeId bw = add(germany, 4, "Baden-Wuerttemberg",
                  Rectangle(42, 45, 58, 68));
  NodeId munich = add(bavaria, 5, "Munich", Rectangle(64, 47, 68, 51));
  add(bavaria, 6, "Nuremberg", Rectangle(60, 57, 63, 60));
  add(bw, 7, "Stuttgart", Rectangle(47, 55, 50, 58));
  add(france, 8, "Ile-de-France", Rectangle(18, 45, 28, 55));
  add(france, 9, "Paris", Rectangle(22, 49, 24, 51));
  map.AttachRelation(&regions, 2);
  std::cout << "hierarchy: " << map.num_nodes() << " regions, height "
            << map.height() << ", containment valid: "
            << (map.ValidateContainment() ? "yes" : "no") << "\n\n";

  // SELECT: everything within distance 10 of Munich — note that answers
  // appear at several hierarchy levels (the paper's "interior nodes may
  // correspond to application objects").
  WithinDistanceOp near(25.0);
  Value munich_area = map.Geometry(munich);
  SelectResult sel = SpatialSelect(munich_area, map, near);
  std::cout << "regions with centerpoint within 25 of Munich's:\n";
  for (NodeId node : sel.matching_nodes) {
    std::printf("  %-22s (height %d)\n", map.LabelOf(node).c_str(),
                map.HeightOf(node));
  }
  std::printf("  [theta tests: %lld of %lld nodes]\n\n",
              static_cast<long long>(sel.theta_tests),
              static_cast<long long>(map.num_nodes()));

  // A second thematic layer: rivers — curves (polylines) grouped into
  // basin regions, showing mixed geometry types in one hierarchy.
  Schema river_schema({{"id", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"course", ValueType::kPolyline}});
  Relation rivers("rivers", river_schema, &pool);
  MemoryGenTree river_map;
  auto add_basin = [&](NodeId parent, const std::string& name,
                       const Rectangle& area) {
    // Basins are technical grouping nodes (no stored tuple).
    return river_map.AddNode(parent, Value(area), kInvalidTupleId, name);
  };
  auto add_river = [&](NodeId parent, int64_t id, const std::string& name,
                       Polyline course) {
    TupleId tid = rivers.Insert(
        Tuple({Value(id), Value(name), Value(course)}));
    return river_map.AddNode(parent, Value(std::move(course)), tid, name);
  };
  NodeId all = add_basin(kInvalidNodeId, "all-rivers",
                         Rectangle(0, 0, 100, 100));
  NodeId danube = add_basin(all, "Danube-basin", Rectangle(45, 40, 95, 70));
  add_river(danube, 0, "Isar", Polyline({{64, 45}, {66, 50}, {69, 57}}));
  add_river(danube, 1, "Inn", Polyline({{71, 43}, {75, 48}, {79, 54}}));
  NodeId seine = add_basin(all, "Seine-basin", Rectangle(10, 40, 35, 60));
  add_river(seine, 2, "Seine", Polyline({{15, 44}, {22, 50}, {29, 55}}));
  river_map.AttachRelation(&rivers, 2);

  // JOIN: regions whose area touches a river course (Algorithm JOIN over
  // two trees with heterogeneous geometry: rectangles vs polylines).
  OverlapsOp overlaps;
  JoinResult join = TreeJoin(map, river_map, overlaps);
  std::cout << "regions crossed by rivers (" << join.matches.size()
            << " pairs):\n";
  for (auto [region_tid, river_tid] : join.matches) {
    Tuple region = regions.Read(region_tid);
    Tuple river = rivers.Read(river_tid);
    std::printf("  %-22s ~ %s\n", region.value(1).AsString().c_str(),
                river.value(1).AsString().c_str());
  }
  std::printf("  [Theta tests: %lld, qual pairs examined: %lld]\n",
              static_cast<long long>(join.theta_upper_tests),
              static_cast<long long>(join.qual_pairs_examined));
  return 0;
}
