// Interactive-ish exploration of the paper's analytical cost model:
// computes U/C/D costs for a parameter set given on the command line and
// prints the strategy ranking — handy for reproducing any single point
// of Figs. 8–13 or probing beyond the paper's Table 3.
//
//   build/examples/example_cost_model_explorer [p] [distribution] [n] [k]
//   e.g.: example_cost_model_explorer 1e-9 uniform 6 10
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "costmodel/join_cost.h"
#include "costmodel/parameters.h"
#include "costmodel/select_cost.h"
#include "costmodel/update_cost.h"

using namespace spatialjoin;

int main(int argc, char** argv) {
  ModelParameters params = PaperParameters();
  MatchDistribution dist = MatchDistribution::kUniform;
  if (argc > 1) params.p = std::atof(argv[1]);
  if (argc > 2) {
    if (std::strcmp(argv[2], "noloc") == 0) {
      dist = MatchDistribution::kNoLoc;
    } else if (std::strcmp(argv[2], "hiloc") == 0) {
      dist = MatchDistribution::kHiLoc;
    }
  }
  if (argc > 3) params.n = std::atoi(argv[3]);
  if (argc > 4) params.k = std::atoi(argv[4]);
  params.h = params.n;
  params.T = params.N();

  std::cout << "parameters: " << params.ToString() << "\n";
  std::cout << "distribution: " << MatchDistributionName(dist) << "\n\n";

  UpdateCosts u = ComputeUpdateCosts(params);
  std::printf("updates   U_I=%.3e U_IIa=%.3e U_IIb=%.3e U_III=%.3e\n",
              u.u_i, u.u_iia, u.u_iib, u.u_iii);

  SelectCosts c = ComputeSelectCosts(params, dist);
  std::printf("selection C_I=%.3e C_IIa=%.3e C_IIb=%.3e C_III=%.3e\n",
              c.c_i, c.c_iia, c.c_iib, c.c_iii);

  JoinCosts d = ComputeJoinCosts(params, dist);
  std::printf("join      D_I=%.3e D_IIa=%.3e D_IIb=%.3e D_III=%.3e\n\n",
              d.d_i, d.d_iia, d.d_iib, d.d_iii);

  auto winner = [](double i, double iia, double iib, double iii) {
    double best = std::min(std::min(i, iia), std::min(iib, iii));
    if (best == iib) return "clustered tree (IIb)";
    if (best == iia) return "unclustered tree (IIa)";
    if (best == iii) return "join index (III)";
    return "nested loop (I)";
  };
  std::cout << "cheapest for selection: "
            << winner(c.c_i, c.c_iia, c.c_iib, c.c_iii) << "\n";
  std::cout << "cheapest for join:      "
            << winner(d.d_i, d.d_iia, d.d_iib, d.d_iii) << "\n";
  std::cout << "\n(usage: " << argv[0]
            << " [p] [uniform|noloc|hiloc] [n] [k])\n";
  return 0;
}
