// The paper's running example (§1 query 2): "Find all houses within 10
// kilometers from a lake", on generated data, executed as (a) a blocked
// nested loop, (b) an index-supported join over an R-tree on the houses,
// and (c) a precomputed join index — with the paper's cost accounting.
//
//   build/examples/example_houses_near_lakes
#include <cstdio>
#include <iostream>

#include "core/index_nested_loop.h"
#include "common/check.h"
#include "core/join_index.h"
#include "core/nested_loop.h"
#include "core/planner.h"
#include "core/theta_ops.h"
#include "rtree/rtree.h"
#include "rtree/rtree_gentree.h"
#include "storage/buffer_pool.h"
#include "storage/disk_manager.h"
#include "workload/scenario_houses_lakes.h"

using namespace spatialjoin;

namespace {

// θ: the house location lies within the 10 km buffer of the lake area
// (distance between closest points). Θ: the MBRs come within 10 km.
class WithinLakeBufferOp : public ThetaOperator {
 public:
  explicit WithinLakeBufferOp(double km) : km_(km) {}
  std::string name() const override { return "within_lake_buffer"; }
  bool Theta(const Value& house, const Value& lake) const override {
    return MinDistanceBetween(house, lake) <= km_;
  }
  bool ThetaUpper(const Rectangle& h, const Rectangle& l) const override {
    return h.MinDistance(l) <= km_;
  }
  bool is_symmetric() const override { return true; }

 private:
  double km_;
};

void Report(const char* name, size_t matches, int64_t theta, int64_t reads) {
  std::printf("%-24s matches=%5zu  theta-tests=%8lld  page-reads=%6lld  "
              "cost=%.3e\n",
              name, matches, static_cast<long long>(theta),
              static_cast<long long>(reads),
              static_cast<double>(theta) + 1000.0 * static_cast<double>(reads));
}

}  // namespace

int main() {
  DiskManager disk(2000);
  BufferPool pool(&disk, 1024);

  HousesLakesOptions options;
  options.num_houses = 3000;
  options.num_lakes = 40;
  HousesLakesScenario scenario = GenerateHousesLakes(options, &pool);
  std::cout << "relations: house(" << scenario.houses->num_tuples()
            << " tuples, " << scenario.houses->num_pages() << " pages), "
            << "lake(" << scenario.lakes->num_tuples() << " tuples, "
            << scenario.lakes->num_pages() << " pages)\n";
  std::cout << "query: SELECT * FROM house, lake WHERE hlocation within "
               "10 km of larea\n\n";

  WithinLakeBufferOp op(10.0);

  // (a) Strategy I.
  SJ_CHECK_OK(pool.Clear());
  disk.ResetStats();
  JoinResult nl = NestedLoopJoin(*scenario.houses, 2, *scenario.lakes, 2,
                                 op, {.memory_pages = 64});
  Report("nested loop", nl.matches.size(), nl.theta_tests,
         disk.stats().page_reads);

  // (b) Index-supported join: R-tree on house.hlocation.
  RTree rtree(&pool, RTreeSplit::kQuadratic);
  scenario.houses->Scan([&](TupleId tid, const Tuple& t) {
    rtree.Insert(t.value(2).Mbr(), tid);
  });
  RTreeGenTree houses_tree(&rtree, scenario.houses.get(), 2);
  SJ_CHECK_OK(pool.Clear());
  disk.ResetStats();
  JoinResult inl = IndexNestedLoopJoin(houses_tree, *scenario.lakes, 2, op);
  Report("index-supported (tree)", inl.matches.size(),
         inl.theta_tests + inl.theta_upper_tests, disk.stats().page_reads);

  // (c) Strategy III: precompute once, query many times.
  JoinIndex index(&pool, 100);
  int64_t precompute = index.Build(*scenario.houses, 2, *scenario.lakes, 2,
                                   op);
  SJ_CHECK_OK(pool.Clear());
  disk.ResetStats();
  JoinResult ji = index.Execute(*scenario.houses, *scenario.lakes);
  Report("join index (query)", ji.matches.size(), 0,
         disk.stats().page_reads);
  std::printf("%-24s (amortized: %lld theta tests at build, %lld index "
              "pages, and every house insert re-tests all %lld lakes)\n",
              "join index (precompute)", static_cast<long long>(precompute),
              static_cast<long long>(index.num_pages()),
              static_cast<long long>(scenario.lakes->num_tuples()));

  // A follow-up selection: houses near one specific lake — the paper's
  // query (1) analogue, answered from the index backward direction.
  std::vector<TupleId> houses_near_lake_5 = index.RMatchesOf(5);
  std::cout << "\nhouses within 10 km of lake 5: "
            << houses_near_lake_5.size() << "\n";

  // Finally, ask the cost-model planner which strategy it would have
  // chosen for this workload (sampled selectivity, indexes available).
  JoinStatistics stats = EstimateJoinStatistics(
      *scenario.houses, 2, *scenario.lakes, 2, op, 500, 99);
  PlannerContext planner_ctx;
  planner_ctx.r_tree_available = true;
  planner_ctx.join_index_available = true;
  std::cout << "\nestimated selectivity p = " << stats.selectivity
            << " (from " << stats.sample_tests << " sampled pairs)\n";
  std::cout << PlanJoin(stats, planner_ctx).ToString() << "\n";
  std::cout << "with 5 inserts per query:\n";
  planner_ctx.updates_per_query = 5.0;
  std::cout << PlanJoin(stats, planner_ctx).ToString() << "\n";
  return 0;
}
