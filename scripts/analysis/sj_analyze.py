#!/usr/bin/env python3
"""sj_analyze: AST-level whole-program checks for the spatial-join engine.

Six repo-specific checkers run over a translation-unit-spanning call
graph (DESIGN.md §9):

  signal-safety   Every function transitively reachable from the flight
                  recorder's fatal-signal handler (and every function
                  marked SJ_SIGNAL_SAFE) must stay within an explicit
                  async-signal-safe allowlist: no allocation, no mutexes,
                  no stdio/iostream, no SJ_EVENT, no throw.
  lock-order      Extracts Mutex acquisition sites and SJ_REQUIRES /
                  SJ_EXCLUDES annotations, builds the acquired-while-held
                  graph, and fails on cycles or on edges that contradict
                  the documented storage-layer order
                  (HeapFile::mu_ -> BufferPool::mu_ -> DiskManager::mu_).
  hot-path        Functions marked SJ_HOT (per-pair join bodies, theta
                  kernels, FrozenTree node scans, slotted-page readers)
                  must not allocate, lock, throw, or make virtual calls,
                  transitively through every direct callee.

Three dataflow checkers (PR 10) run over per-function transfer
summaries iterated to a fixed point across the same call graph:

  wire-taint            Integers decoded from untrusted wire frames
                        (functions marked SJ_UNTRUSTED, e.g. WireReader
                        readers in server/protocol.cc) must pass an
                        SJ_VALIDATES sanitizer before reaching an
                        allocation size, container index, loop bound,
                        resize/reserve, or memcpy length — anywhere in
                        their interprocedural closure.
  blocking-under-lock   No Mutex may be held across a blocking sink
                        (send/recv/accept, CondVar::Wait*, disk I/O,
                        SJ_BLOCKING functions), computed from MutexLock
                        acquisition sites plus SJ_REQUIRES held-at-entry
                        annotations. CondVar waits are exempt for the
                        mutex they atomically release.
  cancellation          Every loop transitively reachable from
                        QueryScheduler dispatch must contain a
                        CancelToken::ShouldStop poll, an SJ_BOUNDED_WORK
                        marker, or a manifestly constant bound, so
                        DEADLINE_EXCEEDED is a proven property.

The dataflow checkers consume statement-level facts (assignments, call
arguments, returns, sinks, loop extents) produced by the shared textual
statement scanner under *both* frontends — under libclang the scanner
runs as a companion pass — so their verdicts are identical regardless
of which frontend drives the AST-level checkers. This mirrors how
signal roots and global mutexes are already harvested textually even in
libclang mode.

Frontends
---------
The analyzer has two interchangeable fact extractors that populate the
same per-function IR:

  libclang   Real AST walk via clang.cindex, driven by the exported
             compile_commands.json. Used when the bindings import and a
             matching libclang shared object loads (CI installs
             libclang==14.0.6).
  textual    A dependency-free fallback: a brace-depth scanner that
             recognizes function definitions, class/namespace context,
             call sites, MutexLock acquisitions, allocations, throws,
             and the SJ_* annotations from preprocessed-ish source text.
             It exists so the checkers run everywhere ctest runs, with
             no toolchain beyond Python.

`--frontend auto` (default) prefers libclang and falls back to textual.
Both frontends feed a per-file facts cache keyed on content + flags +
analyzer version, so re-runs only re-parse what changed.

Output
------
Human-readable text by default; `--json` emits the finding schema shared
with scripts/lint/sj_lint.py: a list of objects with exactly the keys
{rule, path, line, message, suppressed}.

Intentional exceptions live in a reviewed baseline file
(scripts/analysis/baseline.json), keyed by (rule, symbol, detail) so the
entries survive unrelated line churn. `--write-baseline` regenerates the
file from the current findings (justifications must then be filled in by
hand). Exit code is 0 when every finding is baseline-suppressed, 1
otherwise.
"""

import argparse
import bisect
import hashlib
import json
import os
import re
import sys

# Bumped whenever extraction or checker semantics change: the facts
# cache and the CI cache key both embed it, so a stale cache can never
# mask findings from a newer checker revision.
ANALYZER_VERSION = "2"

DEFAULT_SCAN_DIRS = ("src",)
DEFAULT_BASELINE = os.path.join("scripts", "analysis", "baseline.json")
DEFAULT_LOCK_ORDER = ["HeapFile::mu_", "BufferPool::mu_", "DiskManager::mu_"]
DEFAULT_DISPATCH = "QueryScheduler::Submit"

ALL_CHECKS = ("signal-safety", "lock-order", "hot-path",
              "wire-taint", "blocking-under-lock", "cancellation")

# Which rules each checker can emit — drives stale-baseline detection
# (a baseline entry for a rule whose checker ran, matching no finding,
# is itself a finding).
CHECK_RULES = {
    "signal-safety": ("signal-unsafe-call", "signal-alloc", "signal-lock",
                      "signal-throw", "signal-virtual-call", "signal-no-root"),
    "lock-order": ("lock-cycle", "lock-order-violation",
                   "lock-excludes-violation"),
    "hot-path": ("hot-alloc", "hot-lock", "hot-throw", "hot-virtual-call"),
    "wire-taint": ("wire-taint", "wire-taint-no-source"),
    "blocking-under-lock": ("lock-blocking-call",),
    "cancellation": ("cancel-unpolled-loop", "cancel-no-root"),
}

# --------------------------------------------------------------------------
# Policy tables
# --------------------------------------------------------------------------

# Names that look like calls to the textual scanner but are not.
NOT_A_CALL = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof",
    "decltype", "typeid", "static_assert", "alignas", "noexcept", "assert",
    "static_cast", "reinterpret_cast", "const_cast", "dynamic_cast",
    "defined", "case", "new", "delete", "throw", "do", "else", "goto",
    "co_await", "co_return", "co_yield", "operator", "template", "requires",
    "MutexLock",  # captured separately as a lock site
}

# Statement keywords that open a plain block, never a function body.
BLOCK_KEYWORDS = {
    "if", "for", "while", "switch", "do", "else", "try", "catch",
    "case", "default", "return", "goto",
}

# Leaf calls that are async-signal-safe by POSIX or by construction
# (lock-free atomics, the steady clock, raw byte moves). Matched on the
# last path component of the callee name.
SIGNAL_SAFE_LEAVES = {
    # POSIX async-signal-safe set (the subset this codebase uses).
    "write", "open", "close", "raise", "sigaction", "sigemptyset",
    "sigfillset", "sigaddset", "signal", "_exit", "abort", "getpid",
    "kill", "clock_gettime",
    # Raw byte moves / scans: no allocation, no locks, no errno games.
    "memset", "memcpy", "memmove", "memcmp", "strlen",
    # std::atomic operations are lock-free for the types used here.
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_and",
    "fetch_or", "fetch_xor", "compare_exchange_weak",
    "compare_exchange_strong", "atomic_signal_fence", "atomic_thread_fence",
    # steady_clock reads (clock_gettime(CLOCK_MONOTONIC) underneath).
    "now", "time_since_epoch", "count",
    # Pure value helpers / trivial accessors with no side effects.
    "min", "max", "duration_cast", "nanoseconds", "move", "size", "data",
    "begin", "end", "empty", "c_str", "get",
}

# Calls that are categorically banned in signal context even though the
# checker could not see inside them (libc/stdio, formatted logging).
SIGNAL_BANNED = {
    "malloc", "calloc", "realloc", "free", "printf", "fprintf", "sprintf",
    "snprintf", "vsnprintf", "vfprintf", "vprintf", "puts", "fputs",
    "fwrite", "fflush", "fopen", "fclose", "exit", "syslog",
    "SJ_EVENT", "Recordf", "va_start", "va_end", "va_arg",
}

# Callee names (last path component) that allocate. Used by both the
# hot-path checker (allocation ban) and the signal checker.
ALLOCATING_CALLS = {
    "make_unique", "make_shared", "push_back", "emplace_back", "emplace",
    "emplace_front", "push_front", "insert", "assign", "append", "resize",
    "reserve", "to_string", "str", "substr", "string", "vector", "deque",
    "map", "unordered_map", "set", "unordered_set", "ostringstream",
    "stringstream", "stoi", "stod", "operator new",
}

# Mutex-ish acquisition methods (receiver.Lock() style).
LOCK_METHODS = {"Lock", "TryLock"}

# Callee names (last path component) that may park the calling thread
# for an unbounded time: socket and disk I/O, condition waits, sleeps,
# thread joins, buffered-stream flushes. Unresolvable calls to these
# are blocking sinks for the blocking-under-lock checker; in-project
# functions become sinks transitively (or via SJ_BLOCKING).
BLOCKING_LEAVES = {
    # Sockets.
    "send", "recv", "sendto", "recvfrom", "sendmsg", "recvmsg",
    "accept", "accept4", "connect", "poll", "ppoll", "select",
    "epoll_wait", "getaddrinfo",
    # Disk.
    "pread", "pwrite", "fsync", "fdatasync", "read", "write",
    "fread", "fwrite", "fflush", "fgets", "flush", "open",
    # Waits / sleeps / joins.
    "wait", "wait_for", "wait_until", "sleep", "usleep", "nanosleep",
    "sleep_for", "sleep_until", "join",
}

# Condition-wait methods atomically release the mutex passed as their
# first argument, so that one mutex is exempt at the wait site.
CONDVAR_WAIT_METHODS = {"Wait", "WaitFor", "WaitUntil",
                        "wait", "wait_for", "wait_until"}

# Callee names whose arguments are taint sinks (allocation sizes,
# element counts, copy lengths). Values: the argument index that is the
# length/count, None when every argument is checked, or "tail" when
# every argument after the first is (assign/append/substr take content
# in position 0 — `s.assign(view)` copies bounded bytes — and sizes or
# offsets only from position 1 on).
TAINT_SINK_CALLS = {
    "resize": None, "reserve": None, "assign": "tail", "append": "tail",
    "at": None, "substr": "tail",
    "memcpy": 2, "memmove": 2, "memset": 2, "strncpy": 2, "memcmp": 2,
    "malloc": 0, "calloc": None, "alloca": 0,
}

RULE_DESCRIPTIONS = {
    "signal-unsafe-call": "call outside the async-signal-safe allowlist, "
                          "reachable from a fatal-signal handler",
    "signal-alloc": "allocation reachable from a fatal-signal handler",
    "signal-lock": "mutex acquisition reachable from a fatal-signal handler",
    "signal-throw": "throw reachable from a fatal-signal handler",
    "signal-virtual-call": "virtual dispatch reachable from a fatal-signal "
                           "handler",
    "signal-no-root": "no installed fatal-signal handler found (the checker "
                      "would silently cover nothing)",
    "lock-cycle": "cycle in the acquired-while-held graph",
    "lock-order-violation": "acquisition order contradicts the documented "
                            "lock hierarchy",
    "lock-excludes-violation": "function annotated SJ_EXCLUDES(mu) called "
                               "while mu is held",
    "hot-alloc": "allocation in an SJ_HOT function or its callees",
    "hot-lock": "mutex acquisition in an SJ_HOT function or its callees",
    "hot-throw": "throw in an SJ_HOT function or its callees",
    "hot-virtual-call": "virtual dispatch in an SJ_HOT function or its "
                        "callees",
    "wire-taint": "untrusted wire-derived value reaches an allocation "
                  "size, container index, loop bound, or copy length "
                  "without passing an SJ_VALIDATES sanitizer",
    "wire-taint-no-source": "no SJ_UNTRUSTED taint source found (the "
                            "wire-taint checker would silently cover "
                            "nothing)",
    "lock-blocking-call": "blocking call (socket/disk I/O, condition "
                          "wait, sleep, join) while a Mutex is held",
    "cancel-unpolled-loop": "loop reachable from QueryScheduler dispatch "
                            "with no CancelToken poll, SJ_BOUNDED_WORK "
                            "marker, or constant bound",
    "cancel-no-root": "no QueryScheduler dispatch definition found (the "
                      "cancellation checker would silently cover nothing)",
    "baseline-stale": "baseline entry matches no current finding — the "
                      "exception was fixed or renamed; delete the entry",
}


# --------------------------------------------------------------------------
# Finding / baseline model
# --------------------------------------------------------------------------

class Finding:
    """One checker result, identified for baselining by (rule, symbol,
    detail) so entries survive line churn."""

    def __init__(self, rule, path, line, message, symbol, detail):
        self.rule = rule
        self.path = path
        self.line = line
        self.message = message
        self.symbol = symbol
        self.detail = detail
        self.suppressed = False

    def key(self):
        return (self.rule, self.symbol, self.detail)

    def to_json(self):
        # The schema shared with sj_lint --json: exactly these keys.
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "suppressed": self.suppressed,
        }


def load_baseline(path):
    """Returns {(rule, symbol, detail): justification}."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as f:
        data = json.load(f)
    entries = {}
    for entry in data.get("entries", []):
        key = (entry["rule"], entry["symbol"], entry["detail"])
        entries[key] = entry.get("justification", "")
    return entries


def write_baseline(path, findings):
    entries = []
    seen = set()
    for finding in findings:
        if finding.key() in seen:
            continue
        seen.add(finding.key())
        entries.append({
            "rule": finding.rule,
            "symbol": finding.symbol,
            "detail": finding.detail,
            "justification": "TODO: justify or fix",
        })
    entries.sort(key=lambda e: (e["rule"], e["symbol"], e["detail"]))
    os.makedirs(os.path.dirname(path) or ".", exist_ok=True)
    with open(path, "w", encoding="utf-8") as f:
        json.dump({"version": 1, "entries": entries}, f, indent=2,
                  sort_keys=False)
        f.write("\n")


# --------------------------------------------------------------------------
# Per-function IR (shared by both frontends)
# --------------------------------------------------------------------------

class FunctionFacts:
    """Everything the checkers need to know about one function
    definition. `events` is the ordered body fact stream used by the
    lock-order checker: (kind, payload, line, depth) where kind is one of
    'call', 'lock', 'alloc', 'throw' and depth is the brace depth inside
    the body at the fact site (lock scopes end when depth drops below
    the acquisition depth).

    The dataflow checkers additionally consume (textual frontend only;
    under libclang a companion textual pass supplies them):
      params         parameter names in declaration order ("" keeps the
                     arity when a parameter is unnamed/unparsed)
      dflow          ordered statement-level facts, each a dict
                     {line, asgn: [lhs, [rhs_vars], merge] | None,
                      calls: [[callee, [[arg_vars], ...]], ...]
                      (innermost call first), sinks: [[kind, [vars]]],
                      ret: [vars] | None}
      loops          [[start_line, end_line, const_bounded, cond]] for
                     every for/while/do/range-for in the body
      bounded_lines  lines containing an SJ_BOUNDED_WORK marker
    """

    def __init__(self, qual, simple, file, line, class_ctx):
        self.qual = qual            # e.g. spatialjoin::exec::FrozenTree::NodeAt
        self.simple = simple        # NodeAt
        self.file = file            # repo-relative path
        self.line = line
        self.class_ctx = class_ctx  # innermost class name or ""
        self.annotations = []       # ["sj::hot", "sj::signal_safe"]
        self.requires = []          # raw SJ_REQUIRES expressions
        self.excludes = []          # raw SJ_EXCLUDES expressions
        self.events = []            # [(kind, payload, line, depth)]
        self.params = []            # parameter names, "" when unnamed
        self.dflow = []             # statement-level dataflow facts
        self.loops = []             # [[start, end, const_bounded, cond]]
        self.bounded_lines = []     # SJ_BOUNDED_WORK marker lines

    def key(self):
        return "%s@%s:%d" % (self.qual, self.file, self.line)

    def to_json(self):
        return {
            "qual": self.qual, "simple": self.simple, "file": self.file,
            "line": self.line, "class_ctx": self.class_ctx,
            "annotations": self.annotations, "requires": self.requires,
            "excludes": self.excludes, "events": self.events,
            "params": self.params, "dflow": self.dflow,
            "loops": self.loops, "bounded_lines": self.bounded_lines,
        }

    @staticmethod
    def from_json(d):
        fn = FunctionFacts(d["qual"], d["simple"], d["file"], d["line"],
                           d["class_ctx"])
        fn.annotations = d["annotations"]
        fn.requires = d["requires"]
        fn.excludes = d["excludes"]
        fn.events = [tuple(e) for e in d["events"]]
        fn.params = d.get("params", [])
        fn.dflow = d.get("dflow", [])
        fn.loops = d.get("loops", [])
        fn.bounded_lines = d.get("bounded_lines", [])
        return fn


class FileFacts:
    """Facts extracted from one scanned file."""

    def __init__(self, path):
        self.path = path
        self.functions = []       # [FunctionFacts]
        self.virtual_names = []   # method names declared virtual/override
        self.fields = []          # [(class, field, type_str)]
        self.global_mutexes = []  # namespace-scope Mutex variable names
        self.signal_roots = []    # function names assigned to sa_handler
        # Annotations found on *declarations* (header prototypes), keyed
        # so Program can attach them to the matching definitions:
        # [(class_or_empty, simple_name, kind, payload)] with kind in
        # {"hot", "signal_safe", "requires", "excludes"}.
        self.decl_annotations = []

    def to_json(self):
        return {
            "version": ANALYZER_VERSION,
            "path": self.path,
            "functions": [fn.to_json() for fn in self.functions],
            "virtual_names": self.virtual_names,
            "fields": self.fields,
            "global_mutexes": self.global_mutexes,
            "signal_roots": self.signal_roots,
            "decl_annotations": self.decl_annotations,
        }

    @staticmethod
    def from_json(d):
        facts = FileFacts(d["path"])
        facts.functions = [FunctionFacts.from_json(f) for f in d["functions"]]
        facts.virtual_names = d["virtual_names"]
        facts.fields = [tuple(f) for f in d["fields"]]
        facts.global_mutexes = d["global_mutexes"]
        facts.signal_roots = d["signal_roots"]
        facts.decl_annotations = [tuple(a) for a in d["decl_annotations"]]
        return facts


# --------------------------------------------------------------------------
# Textual frontend
# --------------------------------------------------------------------------

def strip_code(text):
    """Blanks comments, string/char literals, and preprocessor lines,
    preserving every line break so positions map back to line numbers."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            while i < n and text[i] != "\n":
                out.append(" ")
                i += 1
        elif c == "/" and nxt == "*":
            out.append("  ")
            i += 2
            while i + 1 < n and not (text[i] == "*" and text[i + 1] == "/"):
                out.append("\n" if text[i] == "\n" else " ")
                i += 1
            if i + 1 < n:
                out.append("  ")
                i += 2
        elif c == '"':
            # Raw string?
            j = len(out) - 1
            while j >= 0 and out[j].isalnum():
                j -= 1
            prefix = "".join(out[j + 1:])
            if prefix.endswith("R"):
                m = re.match(r'"([^(\s)\\]*)\(', text[i:])
                if m:
                    closer = ")" + m.group(1) + '"'
                    end = text.find(closer, i)
                    end = (end + len(closer)) if end != -1 else n
                    while i < end:
                        out.append("\n" if text[i] == "\n" else " ")
                        i += 1
                    continue
            out.append(" ")
            i += 1
            while i < n and text[i] != '"':
                if text[i] == "\\":
                    out.append("  " if text[i + 1:i + 2] != "\n" else " \n")
                    i += 2
                else:
                    out.append("\n" if text[i] == "\n" else " ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        elif c == "'":
            out.append(" ")
            i += 1
            while i < n and text[i] != "'":
                if text[i] == "\\":
                    out.append("  ")
                    i += 2
                else:
                    out.append(" ")
                    i += 1
            if i < n:
                out.append(" ")
                i += 1
        else:
            out.append(c)
            i += 1
    code = "".join(out)

    # Blank preprocessor directives (including continuation lines) so
    # macro definitions with braces cannot desynchronize the scanner.
    lines = code.split("\n")
    i = 0
    while i < len(lines):
        if lines[i].lstrip().startswith("#"):
            while True:
                cont = lines[i].rstrip().endswith("\\")
                lines[i] = ""
                if not cont or i + 1 >= len(lines):
                    break
                i += 1
        i += 1
    return "\n".join(lines)


class _LineIndex:
    def __init__(self, code):
        self.starts = [0]
        for m in re.finditer("\n", code):
            self.starts.append(m.end())

    def line_of(self, pos):
        return bisect.bisect_right(self.starts, pos)


_FN_NAME_RE = re.compile(
    r"((?:~?[A-Za-z_]\w*\s*::\s*)*~?[A-Za-z_]\w*)\s*$")
_CLASS_RE = re.compile(
    r"^(?:typedef\s+)?(?:class|struct|union)\b")
_CLASS_NAME_RE = re.compile(
    r"\b(?:class|struct|union)\s+(?:\[\[[^\]]*\]\]\s*)?"
    r"(?:alignas\s*\([^)]*\)\s*)?([A-Za-z_]\w*)")
_NS_RE = re.compile(r"^(?:inline\s+)?namespace(?:\s+([A-Za-z_][\w:]*))?\s*$")
_ENUM_RE = re.compile(r"^(?:typedef\s+)?enum\b")
_VIRTUAL_DECL_RE = re.compile(
    r"\bvirtual\b[^=]*?([A-Za-z_]\w*)\s*\(")
_OVERRIDE_DECL_RE = re.compile(
    r"([A-Za-z_]\w*)\s*\([^;{}]*\)\s*(?:const\s*)?(?:noexcept\s*)?"
    r"(?:override|final)\b")
_SA_HANDLER_RE = re.compile(
    r"sa_(?:sigaction|handler)\s*=\s*&?\s*((?:\w+\s*::\s*)*\w+)")
_GLOBAL_MUTEX_RE = re.compile(r"^(?:static\s+)?Mutex\s+([A-Za-z_]\w*)$")
_FIELD_RE = re.compile(
    r"^(.*?[\w>&*\]])\s+([A-Za-z_]\w*)\s*(?:\[[^\]]*\])?$")
_REQUIRES_RE = re.compile(r"\bSJ_REQUIRES\s*\(([^()]*)\)")
_EXCLUDES_RE = re.compile(r"\bSJ_EXCLUDES\s*\(([^()]*)\)")

_CALL_RE = re.compile(
    r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)\s*(?:<[^<>;(){}=]*>)?\s*\(")
_MUTEXLOCK_RE = re.compile(r"\bMutexLock\s+[A-Za-z_]\w*\s*\(([^()]*)\)")
_LOCK_CALL_RE = re.compile(
    r"([A-Za-z_][\w.:\->]*?)\s*(?:\.|->)\s*(Lock|TryLock)\s*\(\s*\)")
_NEW_RE = re.compile(r"\bnew\b\s*(?:\()?\s*[A-Za-z_(:]")
_THROW_RE = re.compile(r"\bthrow\b")
_CHECK_MACRO_RE = re.compile(r"\bSJ_D?CHECK\w*\s*\(")

_TRAILER_TOKEN_RE = re.compile(
    r"^(?:\s|const\b|noexcept\b(?:\s*\([^()]*\))?|override\b|final\b|"
    r"mutable\b|&&?|->\s*[\w:<>,&*\s]+?(?=\s*$)|"
    r"SJ_\w+(?:\s*\([^()]*\))?|try\b)+$")


def _first_word(text):
    m = re.match(r"\s*([A-Za-z_]\w*)", text)
    return m.group(1) if m else ""


def _match_paren(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "(":
            depth += 1
        elif text[i] == ")":
            depth -= 1
            if depth == 0:
                return i
    return -1


# Tokens that legitimately precede a call expression; anything else
# identifier-like before `name(` means the site is a declaration
# `Type name(args)` and the real callee is Type's constructor.
_PRECEDES_CALL = {
    "return", "throw", "else", "do", "case", "goto", "new", "delete",
    "co_return", "co_yield", "co_await", "and", "or", "not",
}
_BUILTIN_TYPES = {
    "const", "constexpr", "static", "auto", "volatile", "register",
    "thread_local", "mutable", "inline", "unsigned", "signed", "long",
    "short", "int", "char", "bool", "float", "double", "void", "size_t",
    "wchar_t",
}


def _decl_type_before(prev):
    """If the code before a `name(` site ends with a type token, the site
    is a declaration `Type name(args)`. Returns the type name (so the
    constructor call can be recorded), "" for builtin/cv types (nothing
    to record), or None when the site really is a call."""
    prev = prev.rstrip()
    if not prev or prev[-1] not in "&*>" and not (prev[-1].isalnum()
                                                  or prev[-1] == "_"):
        return None
    if prev[-1] in "&*":
        prev = prev[:-1].rstrip()
    if prev.endswith(">") and not prev.endswith("->"):
        depth = 0
        i = len(prev) - 1
        while i >= 0:
            if prev[i] == ">":
                depth += 1
            elif prev[i] == "<":
                depth -= 1
            if depth == 0:
                break
            i -= 1
        if depth != 0 or i < 0:
            return None
        prev = prev[:i].rstrip()
    m = re.search(r"((?:[A-Za-z_]\w*\s*::\s*)*[A-Za-z_]\w*)$", prev)
    if not m:
        return None
    tok = re.sub(r"\s+", "", m.group(1))
    simple = tok.rsplit("::", 1)[-1]
    if simple in _PRECEDES_CALL:
        return None
    if simple in _BUILTIN_TYPES:
        return ""
    return tok


def _mask_check_macros(body):
    """Blanks SJ_CHECK*/SJ_DCHECK* invocation argument lists: the abort
    path is exempt from purity rules, and its stream inserters would
    otherwise read as allocation."""
    out = list(body)
    for m in _CHECK_MACRO_RE.finditer(body):
        open_pos = body.index("(", m.start())
        close_pos = _match_paren(body, open_pos)
        if close_pos == -1:
            close_pos = len(body) - 1
        for i in range(m.start(), close_pos + 1):
            if out[i] != "\n":
                out[i] = " "
    return "".join(out)


# --------------------------------------------------------------------------
# Statement-level dataflow extraction (shared by both frontends: under
# libclang this scanner runs as a companion pass over the same text)
# --------------------------------------------------------------------------

_VARCHAIN_RE = re.compile(
    r"[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*")
_LOOP_HEAD_RE = re.compile(r"\b(for|while)\s*\(")
_DO_RE = re.compile(r"\bdo\s*\{")
_BOUNDED_WORK_RE = re.compile(r"\bSJ_BOUNDED_WORK\b")
# A loop condition comparing one variable against an integer literal, a
# kConstant, or a SHOUTY constant does manifestly bounded work.
_BOUNDED_COND_RE = re.compile(
    r"^\s*[\w.\[\]>\-]+\s*(?:<=?|!=)\s*"
    r"(?:\d+[uUlL]*|k[A-Z]\w*|[A-Z][A-Z0-9_]{2,}|sizeof\s*\([^()]*\))"
    r"(?:\s*[-+]\s*\d+[uUlL]*)?\s*$")

# Identifier bases that are never variables worth tracking.
_DF_NOISE = (NOT_A_CALL | _BUILTIN_TYPES | {
    "std", "true", "false", "nullptr", "NULL", "namespace", "using",
    "break", "continue", "default", "public", "private", "protected",
})


def _base_vars(expr):
    """Base identifiers of every variable-like chain in expr
    (`reply.result.matches` contributes `reply`; `this->n_` contributes
    `n_`). Taint is tracked at base-identifier granularity."""
    out = []
    for m in _VARCHAIN_RE.finditer(expr):
        comps = [c for c in re.split(r"\s*(?:\.|->)\s*", m.group(0)) if c]
        base = comps[0]
        if base == "this" and len(comps) > 1:
            base = comps[1]
        if base not in _DF_NOISE and base not in out:
            out.append(base)
    return out


def _split_top_level(text, sep=",", angle=True):
    """Splits on `sep` at zero bracket depth. `angle=False` skips <>
    tracking (needed when the pieces may contain comparisons, e.g.
    splitting a for-head on ';')."""
    opens, closes = ("([{<", ")]}>") if angle else ("([{", ")]}")
    parts, cur, depth = [], [], 0
    for c in text:
        if c in opens:
            depth += 1
        elif c in closes:
            depth = max(0, depth - 1)
        if c == sep and depth == 0:
            parts.append("".join(cur))
            cur = []
        else:
            cur.append(c)
    parts.append("".join(cur))
    return parts


def _parse_params(head):
    """Parameter names from a function head, "" for unnamed/unparsed
    entries so argument indexes stay aligned."""
    paren = head.find("(")
    if paren < 0:
        return []
    close = _match_paren(head, paren)
    if close < 0:
        return []
    inner = head[paren + 1:close].strip()
    if not inner or inner == "void":
        return []
    params = []
    for part in _split_top_level(inner):
        part = part.split("=")[0].strip()
        part = re.sub(r"\[[^\]]*\]\s*$", "", part).strip()
        m = re.search(r"([A-Za-z_]\w*)\s*$", part)
        name = m.group(1) if m else ""
        if name in _BUILTIN_TYPES or name in NOT_A_CALL:
            name = ""
        params.append(name)
    return params


def _find_assign(s):
    """Position of the top-level assignment operator in a statement, or
    None. Returns (index_of_'=', is_compound)."""
    depth = 0
    i = 0
    while i < len(s):
        c = s[i]
        if c in "([{":
            depth += 1
        elif c in ")]}":
            depth = max(0, depth - 1)
        elif c == "=" and depth == 0:
            prev = s[i - 1] if i else ""
            nxt = s[i + 1] if i + 1 < len(s) else ""
            if nxt == "=":
                i += 2
                continue
            if prev in "=!<>":
                i += 1
                continue
            return i, prev in "+-*/%&|^"
        i += 1
    return None


def _lhs_var(txt):
    """Base variable written by the left-hand side of an assignment."""
    txt = re.sub(r"\[[^\]]*\]\s*$", "", txt.strip())
    m = re.search(
        r"((?:this\s*->\s*)?[A-Za-z_]\w*(?:\s*(?:\.|->)\s*[A-Za-z_]\w*)*)"
        r"\s*$", txt)
    if not m:
        return ""
    comps = [c for c in re.split(r"\s*(?:\.|->)\s*", m.group(1)) if c]
    base = comps[0]
    if base == "this" and len(comps) > 1:
        base = comps[1]
    if base in _DF_NOISE:
        return ""
    return base


def _match_brace(text, open_pos):
    depth = 0
    for i in range(open_pos, len(text)):
        if text[i] == "{":
            depth += 1
        elif text[i] == "}":
            depth -= 1
            if depth == 0:
                return i
    return len(text) - 1


def _df_statement(body, start, end, body_start, lines):
    """One statement chunk -> a dflow entry dict, or None."""
    s = body[start:end]
    if not s.strip():
        return None
    lead = len(s) - len(s.lstrip())
    entry = {"line": lines.line_of(body_start + start + lead),
             "asgn": None, "calls": [], "sinks": [], "ret": None}
    if re.match(r"\s*(?:co_)?return\b", s):
        entry["ret"] = _base_vars(s.split("return", 1)[1])
    eq = _find_assign(s)
    if eq is not None:
        pos, compound = eq
        lhs = _lhs_var(s[:pos])
        if lhs:
            entry["asgn"] = [lhs, _base_vars(s[pos + 1:]), compound]
    for m in _CALL_RE.finditer(s):
        name = re.sub(r"\s+", "", m.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in NOT_A_CALL or simple in BLOCK_KEYWORDS:
            continue
        decl_type = _decl_type_before(s[:m.start()])
        if decl_type is not None:
            if not decl_type:
                continue
            name = decl_type
        open_pos = s.find("(", m.end() - 1)
        if open_pos < 0:
            continue
        close = _match_paren(s, open_pos)
        arg_txt = s[open_pos + 1:close] if close != -1 else s[open_pos + 1:]
        if arg_txt.strip():
            args = [_base_vars(a) for a in _split_top_level(arg_txt)]
        else:
            args = []
        entry["calls"].append([name, args, m.start()])
    # Innermost (rightmost) call first: its result taint lands in the
    # statement pool before enclosing calls consume it.
    entry["calls"].sort(key=lambda c: -c[2])
    entry["calls"] = [[n, a] for n, a, _pos in entry["calls"]]
    for m in re.finditer(r"([A-Za-z_]\w*)\s*\[([^\][]*)\]", s):
        if re.search(r"\bnew\b[\w\s:<>]*$", s[:m.start()]):
            continue  # `new T[n]` is the alloc-size sink below
        if m.group(1) in _DF_NOISE:
            continue
        vars_ = _base_vars(m.group(2))
        if vars_:
            entry["sinks"].append(["index", vars_])
    for m in re.finditer(r"\bnew\b[^;()=]*?\[([^\][]*)\]", s):
        vars_ = _base_vars(m.group(1))
        if vars_:
            entry["sinks"].append(["alloc-size", vars_])
    if (entry["asgn"] or entry["calls"] or entry["sinks"]
            or entry["ret"] is not None):
        return entry
    return None


def _extract_dataflow(code, body_start, body_end, fn, lines):
    """Populates fn.dflow, fn.loops, and fn.bounded_lines from the body
    span. Statement boundaries are `;`, `{`, `}` — `for(init;cond;inc)`
    heads intentionally split into three mini-statements, which the
    generic assignment/call extraction handles correctly."""
    body = _mask_check_macros(code[body_start:body_end])

    for m in _BOUNDED_WORK_RE.finditer(body):
        fn.bounded_lines.append(lines.line_of(body_start + m.start()))

    entries = []
    start = 0
    for i, c in enumerate(body):
        if c in ";{}":
            entry = _df_statement(body, start, i, body_start, lines)
            if entry:
                entries.append(entry)
            start = i + 1
    entry = _df_statement(body, start, len(body), body_start, lines)
    if entry:
        entries.append(entry)

    for m in _LOOP_HEAD_RE.finditer(body):
        open_pos = body.find("(", m.end() - 1)
        close = _match_paren(body, open_pos)
        if close == -1:
            continue
        inner = body[open_pos + 1:close]
        if m.group(1) == "for":
            parts = _split_top_level(inner, ";", angle=False)
            cond = parts[1] if len(parts) == 3 else ""  # range-for: ""
            range_for = len(parts) == 1
        else:
            cond = inner
            range_for = False
        # Body extent: a brace block or a single statement.
        j = close + 1
        while j < len(body) and body[j].isspace():
            j += 1
        if j < len(body) and body[j] == "{":
            end_pos = _match_brace(body, j)
        else:
            depth = 0
            end_pos = len(body) - 1
            for k in range(j, len(body)):
                if body[k] in "([{":
                    depth += 1
                elif body[k] in ")]}":
                    depth -= 1
                elif body[k] == ";" and depth == 0:
                    end_pos = k
                    break
        bounded = (not range_for and cond.strip() != "" and
                   bool(_BOUNDED_COND_RE.match(cond)))
        fn.loops.append([lines.line_of(body_start + m.start()),
                         lines.line_of(body_start + end_pos),
                         bounded, re.sub(r"\s+", " ", cond.strip())[:80]])
        # A loop condition is a numeric-bound sink only when it actually
        # compares something: `while (decoder.Next(&frame))` iterates on
        # a call result, and tainting its operands as loop bounds would
        # flag every pump loop over wire data.
        cond_vars = _base_vars(cond) if re.search(r"[<>]|!=", cond) else []
        if cond_vars:
            entries.append({"line": lines.line_of(body_start + open_pos),
                            "asgn": None, "calls": [],
                            "sinks": [["loop-bound", cond_vars]],
                            "ret": None})
    for m in _DO_RE.finditer(body):
        end_pos = _match_brace(body, body.find("{", m.start()))
        fn.loops.append([lines.line_of(body_start + m.start()),
                         lines.line_of(body_start + end_pos), False, "do"])

    entries.sort(key=lambda e: e["line"])
    fn.dflow = entries
    fn.loops.sort()
    fn.bounded_lines.sort()


class _Scope:
    def __init__(self, kind, name, fn=None):
        self.kind = kind  # namespace | class | function | block | enum
        self.name = name
        self.fn = fn      # FunctionFacts for function scopes
        self.body_start = 0


def _extract_body_facts(code, body_start, body_end, fn, lines):
    """Populates fn.events from the body span [body_start, body_end)."""
    body = _mask_check_macros(code[body_start:body_end])

    facts = []  # (pos, kind, payload)
    lock_spans = []
    for m in _MUTEXLOCK_RE.finditer(body):
        facts.append((m.start(), "lock", m.group(1).strip()))
        lock_spans.append((m.start(), m.end()))
    for m in _LOCK_CALL_RE.finditer(body):
        facts.append((m.start(), "lock",
                      re.sub(r"\s+", "", m.group(1))))
        lock_spans.append((m.start(), m.end()))
    for m in _NEW_RE.finditer(body):
        facts.append((m.start(), "alloc", "new"))
    for m in _THROW_RE.finditer(body):
        facts.append((m.start(), "throw", "throw"))
    for m in _CALL_RE.finditer(body):
        name = re.sub(r"\s+", "", m.group(1))
        simple = name.rsplit("::", 1)[-1]
        if simple in NOT_A_CALL:
            continue
        if any(s <= m.start() < e for s, e in lock_spans):
            continue  # the MutexLock/Lock site itself
        decl_type = _decl_type_before(body[:m.start()])
        if decl_type is not None:
            # `Type name(args)`: the constructor runs, not `name`.
            if decl_type:
                facts.append((m.start(), "call", decl_type))
            continue
        facts.append((m.start(), "call", name))

    facts.sort(key=lambda f: f[0])

    depth = 0
    fi = 0
    for i, c in enumerate(body):
        while fi < len(facts) and facts[fi][0] == i:
            pos, kind, payload = facts[fi]
            line = lines.line_of(body_start + pos)
            fn.events.append((kind, payload, line, depth))
            fi += 1
        if c == "{":
            depth += 1
        elif c == "}":
            depth -= 1
            # Scope boundary: a MutexLock declared inside this brace pair
            # is destroyed here. Depth alone cannot distinguish sibling
            # scopes (`{ MutexLock l(mu_); } if (x) { Blocking(); }` —
            # both at depth 1), so the held-set walks consume these
            # explicit close events to drop dead locks.
            fn.events.append(("scope-close", "",
                              lines.line_of(body_start + i), depth))
    # Flush any fact recorded exactly at the final brace (unlikely).
    while fi < len(facts):
        pos, kind, payload = facts[fi]
        fn.events.append((kind, payload, lines.line_of(body_start + pos), 0))
        fi += 1


def _classify_head(head, scopes):
    """Returns (kind, name-or-head-info) for the text preceding a '{'."""
    stripped = head.strip()
    if not stripped:
        return ("block", None)
    if stripped[-1] in "=,([":
        return ("block", None)  # brace initializer
    first = _first_word(stripped)
    if first in BLOCK_KEYWORDS:
        return ("block", None)
    m = _NS_RE.match(stripped)
    if m:
        return ("namespace", m.group(1) or "")
    if _ENUM_RE.match(stripped):
        return ("enum", None)
    if _CLASS_RE.match(stripped):
        m = _CLASS_NAME_RE.search(stripped)
        return ("class", m.group(1) if m else "")
    # Function definition: identifier immediately before the first
    # top-level '(' in the head, with an acceptable trailer after the
    # matching ')'.
    paren = stripped.find("(")
    if paren <= 0:
        return ("block", None)
    name_m = _FN_NAME_RE.search(stripped[:paren])
    if not name_m:
        return ("block", None)
    name = re.sub(r"\s+", "", name_m.group(1))
    simple = name.rsplit("::", 1)[-1]
    if simple in NOT_A_CALL or simple in BLOCK_KEYWORDS:
        return ("block", None)
    close = _match_paren(stripped, paren)
    if close == -1:
        return ("block", None)
    trailer = stripped[close + 1:].strip()
    if trailer and not trailer.startswith(":") \
            and not _TRAILER_TOKEN_RE.match(trailer):
        return ("block", None)
    return ("function", (name, head))


def extract_textual(rel_path, text):
    """The fallback frontend: extracts FileFacts from raw source text."""
    code = strip_code(text)
    lines = _LineIndex(code)
    facts = FileFacts(rel_path)

    for m in _SA_HANDLER_RE.finditer(code):
        name = re.sub(r"\s+", "", m.group(1)).rsplit("::", 1)[-1]
        if name not in ("SIG_DFL", "SIG_IGN"):
            facts.signal_roots.append(name)

    scopes = []
    head_start = 0

    def ns_prefix():
        return [s.name for s in scopes
                if s.kind in ("namespace", "class") and s.name]

    def class_ctx():
        for s in reversed(scopes):
            if s.kind == "class":
                return s.name
        return ""

    def harvest_decl_annotations(stmt):
        """Attaches SJ_* contract annotations found on a declaration
        (prototype) to the named function, so marking the header is
        enough even when the definition lives in a .cc."""
        if not re.search(r"\bSJ_(?:HOT|SIGNAL_SAFE|REQUIRES|EXCLUDES|"
                         r"UNTRUSTED|VALIDATES|BLOCKING)\b", stmt):
            return
        paren = stmt.find("(")
        if paren <= 0:
            return
        name_m = _FN_NAME_RE.search(stmt[:paren])
        if not name_m:
            return
        simple = re.sub(r"\s+", "", name_m.group(1)).rsplit("::", 1)[-1]
        if simple in NOT_A_CALL or simple in BLOCK_KEYWORDS:
            return
        cls = class_ctx()
        for token, kind in (("SJ_HOT", "hot"),
                            ("SJ_SIGNAL_SAFE", "signal_safe"),
                            ("SJ_UNTRUSTED", "untrusted"),
                            ("SJ_VALIDATES", "validates"),
                            ("SJ_BLOCKING", "blocking")):
            if re.search(r"\b%s\b" % token, stmt):
                facts.decl_annotations.append((cls, simple, kind, ""))
        for expr in _REQUIRES_RE.findall(stmt):
            facts.decl_annotations.append(
                (cls, simple, "requires", expr.strip()))
        for expr in _EXCLUDES_RE.findall(stmt):
            facts.decl_annotations.append(
                (cls, simple, "excludes", expr.strip()))

    def harvest_statement(stmt):
        """Virtual-method, field, and global-mutex harvesting at ';'."""
        in_class = any(s.kind == "class" for s in scopes)
        in_function = any(s.kind == "function" for s in scopes)
        if not in_function:
            harvest_decl_annotations(stmt)
        if in_class and not in_function:
            vm = _VIRTUAL_DECL_RE.search(stmt)
            if vm:
                facts.virtual_names.append(vm.group(1))
            om = _OVERRIDE_DECL_RE.search(stmt)
            if om:
                facts.virtual_names.append(om.group(1))
            if "(" not in re.sub(r"SJ_\w+\s*\([^()]*\)", "", stmt):
                decl = re.sub(r"SJ_\w+\s*\([^()]*\)", "", stmt)
                decl = re.sub(r"=[^;]*$", "", decl).strip()
                decl = re.sub(r"^\s*(?:public|private|protected)\s*:",
                              "", decl).strip()
                fm = _FIELD_RE.match(decl)
                if fm:
                    facts.fields.append(
                        (class_ctx(), fm.group(2), fm.group(1).strip()))
        elif not in_function:
            decl = re.sub(r"=[^;]*$", "", stmt).strip()
            gm = _GLOBAL_MUTEX_RE.match(decl)
            if gm:
                facts.global_mutexes.append(gm.group(1))

    i = 0
    n = len(code)
    while i < n:
        c = code[i]
        if c == "{":
            head = code[head_start:i]
            kind, info = _classify_head(head, scopes)
            scope = _Scope(kind, None)
            if kind == "namespace":
                scope.name = info
            elif kind == "class":
                scope.name = info
            elif kind == "function":
                name, full_head = info
                simple = name.rsplit("::", 1)[-1]
                # Qualified written names contribute their class part.
                written_prefix = name.split("::")[:-1]
                qual_parts = ns_prefix() + written_prefix + [simple]
                cctx = (written_prefix[-1] if written_prefix
                        else class_ctx())
                fn = FunctionFacts("::".join(qual_parts), simple, rel_path,
                                   lines.line_of(i), cctx)
                if re.search(r"\bSJ_HOT\b", full_head):
                    fn.annotations.append("sj::hot")
                if re.search(r"\bSJ_SIGNAL_SAFE\b", full_head):
                    fn.annotations.append("sj::signal_safe")
                if re.search(r"\bSJ_UNTRUSTED\b", full_head):
                    fn.annotations.append("sj::untrusted")
                if re.search(r"\bSJ_VALIDATES\b", full_head):
                    fn.annotations.append("sj::validates")
                if re.search(r"\bSJ_BLOCKING\b", full_head):
                    fn.annotations.append("sj::blocking")
                fn.params = _parse_params(full_head.strip())
                fn.requires = [x.strip()
                               for x in _REQUIRES_RE.findall(full_head)]
                fn.excludes = [x.strip()
                               for x in _EXCLUDES_RE.findall(full_head)]
                if re.search(r"\b(?:virtual|override|final)\b", full_head):
                    facts.virtual_names.append(simple)
                scope.fn = fn
                scope.body_start = i + 1
            scopes.append(scope)
            head_start = i + 1
        elif c == "}":
            if scopes:
                scope = scopes.pop()
                if scope.kind == "function":
                    _extract_body_facts(code, scope.body_start, i,
                                        scope.fn, lines)
                    _extract_dataflow(code, scope.body_start, i,
                                      scope.fn, lines)
                    facts.functions.append(scope.fn)
            head_start = i + 1
        elif c == ";":
            harvest_statement(code[head_start:i])
            head_start = i + 1
        i += 1
    return facts


# --------------------------------------------------------------------------
# libclang frontend
# --------------------------------------------------------------------------

def libclang_available():
    try:
        import clang.cindex as ci  # noqa: F401
        ci.Index.create()
        return True
    except Exception:
        return False


def _clang_qual(cursor):
    import clang.cindex as ci
    parts = []
    parent = cursor.semantic_parent
    while parent is not None and parent.kind != ci.CursorKind.TRANSLATION_UNIT:
        if parent.spelling:
            parts.append(parent.spelling)
        parent = parent.semantic_parent
    parts.reverse()
    parts.append(cursor.spelling)
    return "::".join(p for p in parts if p)


def extract_libclang(root, rel_path, compile_args):
    """Real AST extraction via clang.cindex. Returns FileFacts covering
    every in-project function definition seen in this TU (the caller
    dedupes header functions that appear in several TUs)."""
    import clang.cindex as ci

    abs_path = os.path.join(root, rel_path)
    index = ci.Index.create()
    tu = index.parse(abs_path, args=compile_args,
                     options=ci.TranslationUnit.PARSE_DETAILED_PROCESSING_RECORD)
    facts = FileFacts(rel_path)

    fn_kinds = {
        ci.CursorKind.FUNCTION_DECL, ci.CursorKind.CXX_METHOD,
        ci.CursorKind.CONSTRUCTOR, ci.CursorKind.DESTRUCTOR,
        ci.CursorKind.FUNCTION_TEMPLATE,
    }

    def in_project(cursor):
        loc = cursor.location
        if loc.file is None:
            return None
        try:
            rel = os.path.relpath(os.path.realpath(loc.file.name),
                                  os.path.realpath(root))
        except ValueError:
            return None
        if rel.startswith(".."):
            return None
        return rel.replace(os.sep, "/")

    def collect_body(cursor, fn, depth):
        for child in cursor.get_children():
            kind = child.kind
            line = child.location.line or fn.line
            if kind == ci.CursorKind.CXX_NEW_EXPR:
                fn.events.append(("alloc", "new", line, depth))
            elif kind == ci.CursorKind.CXX_THROW_EXPR:
                fn.events.append(("throw", "throw", line, depth))
            elif kind == ci.CursorKind.CALL_EXPR:
                ref = child.referenced
                name = None
                if ref is not None and ref.spelling:
                    name = _clang_qual(ref)
                elif child.spelling:
                    name = child.spelling
                if name:
                    virtual = bool(
                        ref is not None
                        and ref.kind == ci.CursorKind.CXX_METHOD
                        and ref.is_virtual_method())
                    fn.events.append((
                        "vcall" if virtual else "call", name, line, depth))
            elif kind == ci.CursorKind.VAR_DECL and \
                    "MutexLock" in child.type.spelling:
                tokens = [t.spelling for t in child.get_tokens()]
                if "(" in tokens:
                    expr = "".join(
                        tokens[tokens.index("(") + 1:
                               len(tokens) - 1 - tokens[::-1].index(")")])
                    fn.events.append(("lock", expr, line, depth))
            new_depth = depth + (
                1 if kind == ci.CursorKind.COMPOUND_STMT else 0)
            collect_body(child, fn, new_depth)

    def visit(cursor):
        for child in cursor.get_children():
            rel = in_project(child)
            if rel is None:
                continue
            if child.kind in fn_kinds and child.is_definition():
                fn = FunctionFacts(
                    _clang_qual(child), child.spelling, rel,
                    child.location.line,
                    child.semantic_parent.spelling
                    if child.semantic_parent is not None and
                    child.semantic_parent.kind in (
                        ci.CursorKind.CLASS_DECL, ci.CursorKind.STRUCT_DECL)
                    else "")
                for sub in child.get_children():
                    if sub.kind == ci.CursorKind.ANNOTATE_ATTR:
                        fn.annotations.append(sub.spelling)
                if child.kind == ci.CursorKind.CXX_METHOD and \
                        child.is_virtual_method():
                    facts.virtual_names.append(child.spelling)
                collect_body(child, fn, 0)
                facts.functions.append(fn)
            elif child.kind == ci.CursorKind.CXX_METHOD and \
                    child.is_virtual_method():
                facts.virtual_names.append(child.spelling)
            if child.kind in (ci.CursorKind.NAMESPACE,
                              ci.CursorKind.CLASS_DECL,
                              ci.CursorKind.STRUCT_DECL,
                              ci.CursorKind.LINKAGE_SPEC):
                visit(child)

    visit(tu.cursor)

    # Signal roots + global mutexes come from a cheap textual pass even
    # in libclang mode (the assignments are plain statements).
    with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
        text = f.read()
    code = strip_code(text)
    for m in _SA_HANDLER_RE.finditer(code):
        name = re.sub(r"\s+", "", m.group(1)).rsplit("::", 1)[-1]
        if name not in ("SIG_DFL", "SIG_IGN"):
            facts.signal_roots.append(name)
    for m in re.finditer(r"(?m)^\s*(?:static\s+)?Mutex\s+([A-Za-z_]\w*)\s*;",
                         code):
        facts.global_mutexes.append(m.group(1))
    return facts


def load_compile_commands(path):
    """Returns {abs source path: [clang args]}."""
    if not os.path.exists(path):
        return {}
    with open(path, "r", encoding="utf-8") as f:
        db = json.load(f)
    commands = {}
    for entry in db:
        args = entry.get("arguments")
        if args is None:
            args = entry.get("command", "").split()
        keep = []
        skip_next = False
        for a in args[1:]:
            if skip_next:
                skip_next = False
                continue
            if a in ("-c", entry["file"]):
                continue
            if a == "-o":
                skip_next = True
                continue
            keep.append(a)
        src = os.path.realpath(
            os.path.join(entry.get("directory", "."), entry["file"]))
        commands[src] = keep
    return commands


# --------------------------------------------------------------------------
# Program index
# --------------------------------------------------------------------------

class Program:
    """The merged whole-program view the checkers run over."""

    def __init__(self, file_facts):
        self.functions = {}       # key -> FunctionFacts
        self.by_simple = {}       # simple name -> [key]
        self.by_qual = {}         # qual -> [key]
        self.virtual_names = set()
        self.fields = {}          # (class, field) -> type_str
        self.field_classes = {}   # field -> set of classes
        self.global_mutexes = set()
        self.signal_roots = set()

        seen = set()
        decl_annotations = {}  # (class, simple) -> [(kind, payload)]
        for facts in file_facts:
            self.virtual_names.update(facts.virtual_names)
            self.global_mutexes.update(facts.global_mutexes)
            self.signal_roots.update(facts.signal_roots)
            for cls, field, type_str in facts.fields:
                self.fields[(cls, field)] = type_str
                self.field_classes.setdefault(field, set()).add(cls)
            for cls, simple, kind, payload in facts.decl_annotations:
                decl_annotations.setdefault((cls, simple), []).append(
                    (kind, payload))
            for fn in facts.functions:
                key = fn.key()
                if key in seen:
                    continue
                seen.add(key)
                self.functions[key] = fn
                self.by_simple.setdefault(fn.simple, []).append(key)
                self.by_qual.setdefault(fn.qual, []).append(key)

        # Header prototypes annotate; definitions inherit.
        marker_kinds = {"hot": "sj::hot", "signal_safe": "sj::signal_safe",
                        "untrusted": "sj::untrusted",
                        "validates": "sj::validates",
                        "blocking": "sj::blocking"}
        for fn in self.functions.values():
            for kind, payload in decl_annotations.get(
                    (fn.class_ctx, fn.simple), []):
                if kind in marker_kinds:
                    if marker_kinds[kind] not in fn.annotations:
                        fn.annotations.append(marker_kinds[kind])
                elif kind == "requires" and payload not in fn.requires:
                    fn.requires.append(payload)
                elif kind == "excludes" and payload not in fn.excludes:
                    fn.excludes.append(payload)

    def resolve_call(self, caller, name):
        """Maps a call-site name to candidate function keys. Prefers an
        exact qualified match, then same-class, then same-file, then any
        same-simple-name definition (conservative: all of them)."""
        name = name.strip()
        if name in self.by_qual:
            return self.by_qual[name]
        # Suffix match on qualified names (call "exec::Foo" vs qual
        # "spatialjoin::exec::Foo").
        if "::" in name:
            matches = [k for q, keys in self.by_qual.items()
                       if q.endswith("::" + name) for k in keys]
            if matches:
                return matches
        simple = name.rsplit("::", 1)[-1]
        keys = self.by_simple.get(simple, [])
        if not keys:
            return []
        same_class = [k for k in keys
                      if self.functions[k].class_ctx == caller.class_ctx
                      and caller.class_ctx]
        if same_class:
            return same_class
        same_file = [k for k in keys
                     if self.functions[k].file == caller.file]
        if same_file:
            return same_file
        return keys

    def canon_mutex(self, fn, expr):
        """Canonical identity for a mutex expression at a lock site.
        `mu_` inside a HeapFile method becomes HeapFile::mu_; a global
        becomes ::name; anything unresolvable gets a per-function
        placeholder so it can never fabricate a cross-function cycle."""
        expr = expr.strip().replace("this->", "")
        expr = re.sub(r"\s+", "", expr)
        if not expr:
            return "?%s:empty" % fn.qual
        if "::" in expr and "." not in expr and "->" not in expr:
            return expr  # already qualified
        if re.fullmatch(r"[A-Za-z_]\w*", expr):
            if fn.class_ctx and (fn.class_ctx, expr) in self.fields:
                return "%s::%s" % (fn.class_ctx, expr)
            if expr in self.global_mutexes:
                return "::" + expr
            classes = self.field_classes.get(expr)
            if classes and len(classes) == 1:
                return "%s::%s" % (next(iter(classes)), expr)
            return "?%s:%s" % (fn.qual, expr)
        m = re.fullmatch(r"([A-Za-z_]\w*)(?:\.|->)([A-Za-z_]\w*)", expr)
        if m:
            recv, field = m.group(1), m.group(2)
            recv_type = None
            if fn.class_ctx and (fn.class_ctx, recv) in self.fields:
                recv_type = self.fields[(fn.class_ctx, recv)]
            if recv_type is not None:
                tm = re.search(r"([A-Za-z_]\w*)\s*[*&>]*$",
                               recv_type.replace(">", " >"))
                if tm and (tm.group(1), field) in self.fields:
                    return "%s::%s" % (tm.group(1), field)
            classes = self.field_classes.get(field)
            if classes and len(classes) == 1:
                return "%s::%s" % (next(iter(classes)), field)
        return "?%s:%s" % (fn.qual, expr)


# --------------------------------------------------------------------------
# Checkers
# --------------------------------------------------------------------------

def _is_virtual_call(program, name):
    simple = name.rsplit("::", 1)[-1]
    return simple in program.virtual_names and "::" not in name


def _reach_closure(program, roots):
    """BFS over direct (non-virtual) calls. Returns (order, parents)
    where parents maps key -> (parent key, call line) for chain
    reconstruction."""
    parents = {}
    order = []
    queue = list(roots)
    visited = set(roots)
    while queue:
        key = queue.pop(0)
        order.append(key)
        fn = program.functions[key]
        for kind, payload, line, _depth in fn.events:
            if kind != "call":
                continue
            if _is_virtual_call(program, payload):
                continue
            for callee in program.resolve_call(fn, payload):
                if callee not in visited:
                    visited.add(callee)
                    parents[callee] = (key, line)
                    queue.append(callee)
    return order, parents


def _chain(program, parents, key, roots):
    names = [program.functions[key].simple]
    while key in parents:
        key = parents[key][0]
        names.append(program.functions[key].simple)
    names.reverse()
    return " -> ".join(names)


def check_signal_safety(program):
    findings = []
    root_keys = set()
    handler_keys = set()
    for root_name in program.signal_roots:
        for key in program.by_simple.get(root_name, []):
            root_keys.add(key)
            handler_keys.add(key)
    for key, fn in program.functions.items():
        if "sj::signal_safe" in fn.annotations:
            root_keys.add(key)

    if not handler_keys:
        findings.append(Finding(
            "signal-no-root", "<program>", 0,
            "no sa_handler/sa_sigaction installation site found; the "
            "signal-safety checker has no handler root to cover",
            "<program>", "no-handler"))

    order, parents = _reach_closure(program, root_keys)
    for key in order:
        fn = program.functions[key]
        chain = _chain(program, parents, key, root_keys)
        for kind, payload, line, _depth in fn.events:
            if kind == "alloc":
                findings.append(Finding(
                    "signal-alloc", fn.file, line,
                    "allocation (%s) in signal-reachable %s [%s]"
                    % (payload, fn.qual, chain), fn.qual, payload))
            elif kind == "lock":
                findings.append(Finding(
                    "signal-lock", fn.file, line,
                    "mutex acquisition (%s) in signal-reachable %s [%s]"
                    % (payload, fn.qual, chain), fn.qual, payload))
            elif kind == "throw":
                findings.append(Finding(
                    "signal-throw", fn.file, line,
                    "throw in signal-reachable %s [%s]" % (fn.qual, chain),
                    fn.qual, "throw"))
            elif kind in ("call", "vcall"):
                if kind == "vcall" or _is_virtual_call(program, payload):
                    findings.append(Finding(
                        "signal-virtual-call", fn.file, line,
                        "virtual dispatch (%s) in signal-reachable %s [%s]"
                        % (payload, fn.qual, chain), fn.qual, payload))
                    continue
                if program.resolve_call(fn, payload):
                    continue  # traversed by the closure
                simple = payload.rsplit("::", 1)[-1]
                if simple in SIGNAL_BANNED or payload in SIGNAL_BANNED:
                    findings.append(Finding(
                        "signal-unsafe-call", fn.file, line,
                        "banned call %s in signal-reachable %s [%s]"
                        % (payload, fn.qual, chain), fn.qual, payload))
                elif simple in ALLOCATING_CALLS:
                    findings.append(Finding(
                        "signal-alloc", fn.file, line,
                        "allocating call %s in signal-reachable %s [%s]"
                        % (payload, fn.qual, chain), fn.qual, payload))
                elif simple not in SIGNAL_SAFE_LEAVES:
                    findings.append(Finding(
                        "signal-unsafe-call", fn.file, line,
                        "call %s is outside the async-signal-safe "
                        "allowlist in %s [%s]" % (payload, fn.qual, chain),
                        fn.qual, payload))
    return findings


def _transitive_acquires(program):
    """Fixpoint: for every function, the set of canonical mutexes it may
    acquire directly or through any resolvable callee."""
    direct = {}
    calls = {}
    for key, fn in program.functions.items():
        acq = set()
        for kind, payload, _line, _depth in fn.events:
            if kind == "lock":
                acq.add(program.canon_mutex(fn, payload))
        direct[key] = acq
        callees = set()
        for kind, payload, _line, _depth in fn.events:
            if kind == "call" and not _is_virtual_call(program, payload):
                callees.update(program.resolve_call(fn, payload))
        calls[key] = callees

    acquires = {k: set(v) for k, v in direct.items()}
    changed = True
    while changed:
        changed = False
        for key in program.functions:
            before = len(acquires[key])
            for callee in calls[key]:
                acquires[key] |= acquires.get(callee, set())
            if len(acquires[key]) != before:
                changed = True
    return acquires


def check_lock_order(program, lock_order):
    findings = []
    acquires = _transitive_acquires(program)

    # Edges: held -> acquired, with one witness site each.
    edges = {}  # (a, b) -> (file, line, via)

    def add_edge(a, b, file, line, via):
        if a == b:
            return
        edges.setdefault((a, b), (file, line, via))

    for key, fn in program.functions.items():
        held = []  # [(mutex, depth)]
        for mu_expr in fn.requires:
            held.append((program.canon_mutex(fn, mu_expr), -1))
        for kind, payload, line, depth in fn.events:
            while held and held[-1][1] >= 0 and held[-1][1] > depth:
                held.pop()
            if kind == "lock":
                mu = program.canon_mutex(fn, payload)
                for h, _d in held:
                    add_edge(h, mu, fn.file, line, fn.qual)
                held.append((mu, depth))
            elif kind == "call" and not _is_virtual_call(program, payload):
                callees = program.resolve_call(fn, payload)
                for callee in callees:
                    cfn = program.functions[callee]
                    for mu_expr in cfn.excludes:
                        mu = program.canon_mutex(cfn, mu_expr)
                        if any(h == mu for h, _d in held):
                            findings.append(Finding(
                                "lock-excludes-violation", fn.file, line,
                                "%s calls %s (annotated SJ_EXCLUDES(%s)) "
                                "while holding %s"
                                % (fn.qual, cfn.qual, mu_expr, mu),
                                fn.qual, "%s-excludes-%s"
                                % (cfn.simple, mu)))
                    for mu in acquires.get(callee, set()):
                        for h, _d in held:
                            add_edge(h, mu, fn.file, line,
                                     "%s -> %s" % (fn.qual, cfn.qual))

    # Documented-order violations (both endpoints named in the order).
    order_index = {name: i for i, name in enumerate(lock_order)}
    for (a, b), (file, line, via) in sorted(edges.items()):
        if a.startswith("?") or b.startswith("?"):
            continue  # unresolved receivers never report
        ia, ib = order_index.get(a), order_index.get(b)
        if ia is not None and ib is not None and ia > ib:
            findings.append(Finding(
                "lock-order-violation", file, line,
                "acquires %s while holding %s, against the documented "
                "order %s (via %s)" % (b, a, " -> ".join(lock_order), via),
                via.split(" -> ")[0], "%s->%s" % (a, b)))

    # Cycles in the full graph (unresolved placeholders excluded: they
    # are per-function-unique and cannot close a real cycle anyway).
    graph = {}
    for (a, b) in edges:
        if a.startswith("?") or b.startswith("?"):
            continue
        graph.setdefault(a, set()).add(b)

    state = {}
    stack = []

    def dfs(node):
        state[node] = 1
        stack.append(node)
        for succ in sorted(graph.get(node, ())):
            if state.get(succ, 0) == 1:
                cycle = stack[stack.index(succ):] + [succ]
                file, line, via = edges[(node, succ)]
                findings.append(Finding(
                    "lock-cycle", file, line,
                    "acquired-while-held cycle: %s (closing edge via %s)"
                    % (" -> ".join(cycle), via),
                    via.split(" -> ")[0], "->".join(cycle)))
            elif state.get(succ, 0) == 0:
                dfs(succ)
        stack.pop()
        state[node] = 2

    for node in sorted(graph):
        if state.get(node, 0) == 0:
            dfs(node)

    return findings


def check_hot_path(program):
    findings = []
    roots = {key for key, fn in program.functions.items()
             if "sj::hot" in fn.annotations}
    order, parents = _reach_closure(program, roots)
    for key in order:
        fn = program.functions[key]
        chain = _chain(program, parents, key, roots)
        for kind, payload, line, _depth in fn.events:
            if kind == "alloc":
                findings.append(Finding(
                    "hot-alloc", fn.file, line,
                    "allocation (%s) on hot path %s [%s]"
                    % (payload, fn.qual, chain), fn.qual, payload))
            elif kind == "lock":
                findings.append(Finding(
                    "hot-lock", fn.file, line,
                    "mutex acquisition (%s) on hot path %s [%s]"
                    % (payload, fn.qual, chain), fn.qual, payload))
            elif kind == "throw":
                findings.append(Finding(
                    "hot-throw", fn.file, line,
                    "throw on hot path %s [%s]" % (fn.qual, chain),
                    fn.qual, "throw"))
            elif kind in ("call", "vcall"):
                if kind == "vcall" or _is_virtual_call(program, payload):
                    findings.append(Finding(
                        "hot-virtual-call", fn.file, line,
                        "virtual dispatch (%s) on hot path %s [%s]"
                        % (payload, fn.qual, chain), fn.qual,
                        "virtual:%s" % payload.rsplit("::", 1)[-1]))
                    continue
                if program.resolve_call(fn, payload):
                    continue  # traversed
                simple = payload.rsplit("::", 1)[-1]
                if simple in ALLOCATING_CALLS:
                    findings.append(Finding(
                        "hot-alloc", fn.file, line,
                        "allocating call %s on hot path %s [%s]"
                        % (payload, fn.qual, chain), fn.qual, payload))
    return findings


# --------------------------------------------------------------------------
# Dataflow checkers (run over the textual dataflow program under both
# frontends)
# --------------------------------------------------------------------------

def _taint_eval(program, summaries, key, report):
    """Evaluates one function against the current summaries. Taint tags
    are "T" (wire-derived) or an int parameter index. Returns
    (summary, findings): summary = {ret: tags, sinks: {param: (desc,
    line)}, out: {param: tags}}."""
    fn = program.functions[key]
    out_findings = []
    summary = {"ret": set(), "sinks": {}, "out": {}}
    tags = {}
    for i, p in enumerate(fn.params):
        if p:
            tags[p] = {i}

    def vtags(vs):
        t = set()
        for v in vs:
            t |= tags.get(v, set())
        return t

    def hit(t, desc, line, via):
        for tag in sorted(t, key=str):
            if tag == "T":
                if report:
                    out_findings.append(Finding(
                        "wire-taint", fn.file, line,
                        "untrusted wire value reaches %s in %s%s without "
                        "passing an SJ_VALIDATES sanitizer"
                        % (desc, fn.qual, via), fn.qual, desc))
            else:
                summary["sinks"].setdefault(tag, (desc, line))

    for st in fn.dflow:
        line = st["line"]
        pool = set()  # taint returned by calls inside this statement
        if st["asgn"]:
            lhs, rhs, compound = st["asgn"]
            nt = vtags(rhs)
            tags[lhs] = (tags.get(lhs, set()) | nt) if compound else nt
        for name, args in st["calls"]:
            simple = name.rsplit("::", 1)[-1]
            argtags = [vtags(a) | pool for a in args]
            cands = program.resolve_call(fn, name)
            is_src = any("sj::untrusted" in program.functions[c].annotations
                         for c in cands)
            is_san = any("sj::validates" in program.functions[c].annotations
                         for c in cands)
            rt = set()
            if is_src:
                # Source: the return value and every by-reference
                # argument now carry wire taint.
                rt.add("T")
                for a in args:
                    for v in a:
                        tags[v] = tags.get(v, set()) | {"T"}
            elif is_san:
                # Sanitizer: arguments, out-params, and the return value
                # are validated from here on. The assignment target was
                # already tagged from the raw rhs vars above, so a
                # statement of the form `x = Validate(y)` must bless the
                # lhs as well.
                for a in args:
                    for v in a:
                        tags[v] = set()
                pool.clear()
                if st["asgn"]:
                    tags[st["asgn"][0]] = set()
            elif cands:
                for c in cands:
                    cs = summaries[c]
                    for tag in cs["ret"]:
                        if tag == "T":
                            rt.add("T")
                        elif isinstance(tag, int) and tag < len(argtags):
                            rt |= argtags[tag]
                    for pi, (desc, _l) in sorted(cs["sinks"].items()):
                        if pi < len(argtags):
                            hit(argtags[pi], desc, line,
                                " (via %s)" % program.functions[c].simple)
                    for pi, otags in sorted(cs["out"].items()):
                        if pi < len(argtags):
                            resolved = set()
                            for tag in otags:
                                if tag == "T":
                                    resolved.add("T")
                                elif isinstance(tag, int) and \
                                        tag < len(argtags):
                                    resolved |= argtags[tag]
                            for v in args[pi]:
                                tags[v] = tags.get(v, set()) | resolved
            if simple in TAINT_SINK_CALLS and not is_san:
                idx = TAINT_SINK_CALLS[simple]
                desc = "%s argument" % simple
                if idx is None:
                    checked = argtags
                elif idx == "tail":
                    checked = argtags[1:]
                elif idx < len(argtags):
                    checked = [argtags[idx]]
                else:
                    checked = []
                for t in checked:
                    hit(t, desc, line, "")
            pool |= rt
            if st["asgn"] and rt:
                lhs = st["asgn"][0]
                tags[lhs] = tags.get(lhs, set()) | rt
        for kind, vs in st["sinks"]:
            hit(vtags(vs) | pool, kind, line, "")
        if st["ret"] is not None:
            summary["ret"] |= vtags(st["ret"]) | pool

    # Out-params: taint a parameter accumulated beyond its own identity
    # tag is visible to the caller through that argument.
    for i, p in enumerate(fn.params):
        if not p:
            continue
        extra = tags.get(p, set()) - {i}
        if extra:
            summary["out"][i] = extra
    return summary, out_findings


def check_wire_taint(program):
    findings = []
    sources = sorted(key for key, fn in program.functions.items()
                     if "sj::untrusted" in fn.annotations)
    if not sources:
        findings.append(Finding(
            "wire-taint-no-source", "<program>", 0,
            "no SJ_UNTRUSTED function found; the wire-taint checker has "
            "no taint source to track", "<program>", "no-source"))
        return findings

    keys = sorted(program.functions)
    summaries = {k: {"ret": set(), "sinks": {}, "out": {}} for k in keys}
    for _round in range(50):
        changed = False
        for k in keys:
            new, _ = _taint_eval(program, summaries, k, report=False)
            old = summaries[k]
            if (new["ret"] != old["ret"] or new["out"] != old["out"]
                    or set(new["sinks"]) != set(old["sinks"])):
                summaries[k] = new
                changed = True
        if not changed:
            break
    for k in keys:
        _, fs = _taint_eval(program, summaries, k, report=True)
        findings.extend(fs)
    return findings


def _transitive_blockers(program):
    """Fixpoint: for every function, the set of blocking leaf names
    (or SJ_BLOCKING function names) reachable through direct calls."""
    blocks = {}
    calls = {}
    for k, fn in sorted(program.functions.items()):
        b = set()
        if "sj::blocking" in fn.annotations:
            b.add(fn.simple)
        resolved_calls = []
        for kind, payload, _line, _depth in fn.events:
            if kind != "call" or _is_virtual_call(program, payload):
                continue
            cands = program.resolve_call(fn, payload)
            simple = payload.rsplit("::", 1)[-1]
            if not cands and simple in BLOCKING_LEAVES:
                b.add(simple)
            resolved_calls.append(cands)
        blocks[k] = b
        calls[k] = resolved_calls
    changed = True
    while changed:
        changed = False
        for k in blocks:
            for cands in calls[k]:
                for c in cands:
                    extra = blocks.get(c, set()) - blocks[k]
                    if extra:
                        blocks[k] |= extra
                        changed = True
    return blocks


def check_blocking_under_lock(program):
    findings = []
    blocks = _transitive_blockers(program)
    for k in sorted(program.functions):
        fn = program.functions[k]
        # Wait-call arguments, for the CondVar release exemption.
        wait_args = {}
        for st in fn.dflow:
            for name, args in st["calls"]:
                simple = name.rsplit("::", 1)[-1]
                if simple in CONDVAR_WAIT_METHODS and args:
                    wait_args.setdefault((st["line"], simple), args[0])
        held = []  # [(canonical mutex, depth)]
        for mu_expr in fn.requires:
            held.append((program.canon_mutex(fn, mu_expr), -1))
        for kind, payload, line, depth in fn.events:
            while held and held[-1][1] >= 0 and held[-1][1] > depth:
                held.pop()
            if kind == "lock":
                held.append((program.canon_mutex(fn, payload), depth))
                continue
            if kind != "call" or not held:
                continue
            if _is_virtual_call(program, payload):
                continue
            simple = payload.rsplit("::", 1)[-1]
            cands = program.resolve_call(fn, payload)
            witness = set()
            if not cands and simple in BLOCKING_LEAVES:
                witness.add(simple)
            for c in cands:
                witness |= blocks.get(c, set())
            if not witness:
                continue
            # CondVar::Wait* atomically releases the mutex it is handed,
            # so holding exactly that mutex across the wait is the
            # intended protocol, not a finding. The dflow arg records
            # base identifiers (`sync_` for `sync_->mu`), so match both
            # the canonical form and the held expression's base.
            wvars = (wait_args.get((line, simple)) or []) \
                if simple in CONDVAR_WAIT_METHODS else []
            exempt = {program.canon_mutex(fn, v) for v in wvars}
            remaining = []
            for h, _d in held:
                if h in exempt:
                    continue
                tail = h.rsplit(":", 1)[-1]
                if any(tail == v or tail.startswith(v + ".") or
                       tail.startswith(v + "->") for v in wvars):
                    continue
                remaining.append(h)
            if remaining:
                findings.append(Finding(
                    "lock-blocking-call", fn.file, line,
                    "%s calls %s (may block: %s) while holding %s"
                    % (fn.qual, payload, ", ".join(sorted(witness)),
                       ", ".join(remaining)),
                    fn.qual, "%s:%s" % (simple, remaining[0])))
    return findings


def _dispatch_anchors(program, dispatch):
    return {k for k, fn in program.functions.items()
            if fn.qual == dispatch or fn.qual.endswith("::" + dispatch)}


def _cancellation_closure(program, dispatch):
    """(roots, order, parents): roots are the dispatch definition plus
    everything that can reach it (the lambda bodies handed to Submit are
    attributed to their enclosing functions, so the work they dispatch
    is reachable from those ancestors); order is the forward closure."""
    anchors = _dispatch_anchors(program, dispatch)
    rev = {}
    for k, fn in program.functions.items():
        for kind, payload, _line, _depth in fn.events:
            if kind == "call" and not _is_virtual_call(program, payload):
                for c in program.resolve_call(fn, payload):
                    rev.setdefault(c, set()).add(k)
    roots = set(anchors)
    queue = list(anchors)
    while queue:
        k = queue.pop()
        for p in rev.get(k, ()):
            if p not in roots:
                roots.add(p)
                queue.append(p)
    order, parents = _reach_closure(program, roots)
    return roots, order, parents


def check_cancellation(program, dispatch):
    findings = []
    if not _dispatch_anchors(program, dispatch):
        findings.append(Finding(
            "cancel-no-root", "<program>", 0,
            "no %s definition found; the cancellation checker has no "
            "dispatch root to cover" % dispatch, "<program>", "no-dispatch"))
        return findings
    roots, order, parents = _cancellation_closure(program, dispatch)

    # Fixpoint: functions that (transitively) poll CancelToken.
    fwd = {}
    polls = set()
    for k, fn in program.functions.items():
        callees = set()
        for kind, payload, _line, _depth in fn.events:
            if kind == "call" and not _is_virtual_call(program, payload):
                if payload.rsplit("::", 1)[-1] == "ShouldStop":
                    polls.add(k)
                callees.update(program.resolve_call(fn, payload))
        fwd[k] = callees
    changed = True
    while changed:
        changed = False
        for k in fwd:
            if k not in polls and fwd[k] & polls:
                polls.add(k)
                changed = True

    for k in sorted(set(order)):
        fn = program.functions[k]
        if not fn.loops:
            continue
        # Assign each SJ_BOUNDED_WORK marker to its innermost loop: the
        # marker is a claim about one specific loop, not its enclosers.
        marked = [False] * len(fn.loops)
        for ml in fn.bounded_lines:
            best = None
            for i, (start, end, _b, _c) in enumerate(fn.loops):
                if start <= ml <= end and (
                        best is None or
                        end - start < fn.loops[best][1] - fn.loops[best][0]):
                    best = i
            if best is not None:
                marked[best] = True
        chain = _chain(program, parents, k, roots)
        for i, (start, end, bounded, cond) in enumerate(fn.loops):
            if bounded or marked[i]:
                continue
            ok = False
            for kind, payload, line, _depth in fn.events:
                if kind != "call" or not (start <= line <= end):
                    continue
                if payload.rsplit("::", 1)[-1] == "ShouldStop":
                    ok = True
                    break
                if not _is_virtual_call(program, payload) and \
                        polls & set(program.resolve_call(fn, payload)):
                    ok = True
                    break
            if ok:
                continue
            findings.append(Finding(
                "cancel-unpolled-loop", fn.file, start,
                "loop in %s (reachable from %s [%s]) has no CancelToken "
                "poll, SJ_BOUNDED_WORK marker, or constant bound%s"
                % (fn.qual, dispatch, chain,
                   " (cond: %s)" % cond if cond else ""),
                fn.qual, "loop#%d" % (i + 1)))
    return findings


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def scan_files(root, scan_dirs):
    files = []
    for scan_dir in scan_dirs:
        base = os.path.join(root, scan_dir)
        if not os.path.isdir(base):
            continue
        for dirpath, _dirnames, filenames in os.walk(base):
            for name in sorted(filenames):
                if name.endswith((".h", ".cc", ".cpp", ".hpp")):
                    rel = os.path.relpath(os.path.join(dirpath, name), root)
                    files.append(rel.replace(os.sep, "/"))
    files.sort()
    return files


def _cache_path(cache_dir, rel_path, frontend):
    # The frontend participates in the file name: under libclang the
    # textual companion pass caches its facts alongside the AST facts
    # for the same file.
    digest = hashlib.sha256(
        ("%s\0%s" % (frontend, rel_path)).encode()).hexdigest()[:24]
    return os.path.join(cache_dir, digest + ".json")


def _cache_key(text, frontend, flags):
    h = hashlib.sha256()
    h.update(ANALYZER_VERSION.encode())
    h.update(frontend.encode())
    h.update("\0".join(flags).encode())
    h.update(text.encode("utf-8", errors="replace"))
    return h.hexdigest()


def extract_all(root, files, frontend, compdb, cache_dir):
    """Runs the selected frontend over every file, with a per-file facts
    cache keyed on content + flags + analyzer version."""
    all_facts = []
    for rel in files:
        abs_path = os.path.join(root, rel)
        with open(abs_path, "r", encoding="utf-8", errors="replace") as f:
            text = f.read()
        flags = []
        if frontend == "libclang":
            flags = compdb.get(os.path.realpath(abs_path), [])
        key = _cache_key(text, frontend, flags)
        cache_file = (_cache_path(cache_dir, rel, frontend)
                      if cache_dir else None)
        if cache_file and os.path.exists(cache_file):
            try:
                with open(cache_file, "r", encoding="utf-8") as f:
                    cached = json.load(f)
                if cached.get("key") == key:
                    all_facts.append(FileFacts.from_json(cached["facts"]))
                    continue
            except (ValueError, KeyError):
                pass
        if frontend == "libclang":
            args = flags
            if not args:
                # Headers are not TUs; parse standalone as C++.
                args = ["-x", "c++", "-std=c++17",
                        "-I" + os.path.join(root, "src")]
            try:
                facts = extract_libclang(root, rel, args)
            except Exception as exc:  # noqa: BLE001 - degrade per file
                sys.stderr.write(
                    "sj_analyze: libclang failed on %s (%s); using "
                    "textual frontend for this file\n" % (rel, exc))
                facts = extract_textual(rel, text)
        else:
            facts = extract_textual(rel, text)
        all_facts.append(facts)
        if cache_file:
            os.makedirs(cache_dir, exist_ok=True)
            with open(cache_file, "w", encoding="utf-8") as f:
                json.dump({"key": key, "facts": facts.to_json()}, f)
    return all_facts


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="sj_analyze",
        description="Whole-program signal-safety, lock-order, and "
                    "hot-path purity checks.")
    parser.add_argument("--root", default=".",
                        help="repository root (default: cwd)")
    parser.add_argument("--scan-dir", action="append", dest="scan_dirs",
                        help="directory under root to scan "
                             "(default: src; repeatable)")
    parser.add_argument("--frontend", choices=("auto", "libclang", "textual"),
                        default="auto")
    parser.add_argument("--compdb", default=None,
                        help="compile_commands.json path (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--checks", default=",".join(ALL_CHECKS),
                        help="comma-separated subset of: %s"
                             % ", ".join(ALL_CHECKS))
    parser.add_argument("--order", default=",".join(DEFAULT_LOCK_ORDER),
                        help="documented lock hierarchy, outermost first")
    parser.add_argument("--dispatch", default=DEFAULT_DISPATCH,
                        help="qualified suffix of the query-dispatch "
                             "function rooting the cancellation checker "
                             "(default: %(default)s)")
    parser.add_argument("--baseline", default=None,
                        help="baseline JSON (default: "
                             "<root>/%s)" % DEFAULT_BASELINE)
    parser.add_argument("--no-baseline", action="store_true",
                        help="ignore the baseline file")
    parser.add_argument("--write-baseline", action="store_true",
                        help="rewrite the baseline from current findings")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON (the schema shared "
                             "with sj_lint --json)")
    parser.add_argument("--cache-dir", default=None,
                        help="facts cache directory (default: "
                             "<root>/build/sj_analyze_cache)")
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--dump-reachable",
                        choices=("signal-safety", "hot-path", "wire-taint",
                                 "blocking-under-lock", "cancellation"),
                        help="print the checker's roots and reachable "
                             "set as JSON and exit")
    parser.add_argument("--list-rules", action="store_true")
    args = parser.parse_args(argv)

    if args.list_rules:
        for rule in sorted(RULE_DESCRIPTIONS):
            print("%-24s %s" % (rule, RULE_DESCRIPTIONS[rule]))
        return 0

    root = os.path.abspath(args.root)
    scan_dirs = args.scan_dirs or list(DEFAULT_SCAN_DIRS)
    checks = [c.strip() for c in args.checks.split(",") if c.strip()]
    for check in checks:
        if check not in ALL_CHECKS:
            parser.error("unknown check %r" % check)
    lock_order = [m.strip() for m in args.order.split(",") if m.strip()]

    frontend = args.frontend
    if frontend == "auto":
        frontend = "libclang" if libclang_available() else "textual"
    elif frontend == "libclang" and not libclang_available():
        sys.stderr.write("sj_analyze: --frontend libclang requested but "
                         "clang.cindex is unavailable\n")
        return 2

    compdb = {}
    if frontend == "libclang":
        compdb_path = args.compdb or os.path.join(
            root, "build", "compile_commands.json")
        compdb = load_compile_commands(compdb_path)

    cache_dir = None
    if not args.no_cache:
        cache_dir = args.cache_dir or os.path.join(
            root, "build", "sj_analyze_cache")

    files = scan_files(root, scan_dirs)
    if not files:
        sys.stderr.write("sj_analyze: nothing to scan under %s\n"
                         % ", ".join(scan_dirs))
        return 2

    all_facts = extract_all(root, files, frontend, compdb, cache_dir)
    program = Program(all_facts)

    # The dataflow checkers always run over the shared textual
    # statement-level facts so both frontends agree bit-for-bit; under
    # the textual frontend that program *is* the main program.
    if frontend == "libclang":
        dprogram = Program(extract_all(root, files, "textual", {},
                                       cache_dir))
    else:
        dprogram = program

    if args.dump_reachable:
        if args.dump_reachable == "signal-safety":
            roots = set()
            for name in program.signal_roots:
                roots.update(program.by_simple.get(name, []))
            for key, fn in program.functions.items():
                if "sj::signal_safe" in fn.annotations:
                    roots.add(key)
        elif args.dump_reachable == "hot-path":
            roots = {key for key, fn in program.functions.items()
                     if "sj::hot" in fn.annotations}
        elif args.dump_reachable == "wire-taint":
            print(json.dumps({
                "frontend": frontend,
                "sources": sorted(fn.qual for fn in
                                  dprogram.functions.values()
                                  if "sj::untrusted" in fn.annotations),
                "sanitizers": sorted(fn.qual for fn in
                                     dprogram.functions.values()
                                     if "sj::validates" in fn.annotations),
            }, indent=2))
            return 0
        elif args.dump_reachable == "blocking-under-lock":
            blocks = _transitive_blockers(dprogram)
            print(json.dumps({
                "frontend": frontend,
                "blocking": {dprogram.functions[k].qual: sorted(v)
                             for k, v in sorted(blocks.items()) if v},
            }, indent=2))
            return 0
        elif args.dump_reachable == "cancellation":
            anchors = _dispatch_anchors(dprogram, args.dispatch)
            if not anchors:
                print(json.dumps({"frontend": frontend, "dispatch": [],
                                  "covered": [], "loops": {}}, indent=2))
                return 0
            _roots, order, _parents = _cancellation_closure(
                dprogram, args.dispatch)
            print(json.dumps({
                "frontend": frontend,
                "dispatch": sorted(dprogram.functions[k].qual
                                   for k in anchors),
                "covered": sorted(dprogram.functions[k].qual
                                  for k in set(order)),
                "loops": {dprogram.functions[k].qual:
                          len(dprogram.functions[k].loops)
                          for k in sorted(set(order))
                          if dprogram.functions[k].loops},
            }, indent=2))
            return 0
        order, _parents = _reach_closure(program, roots)
        print(json.dumps({
            "frontend": frontend,
            "roots": sorted(program.functions[k].qual for k in roots),
            "handler_roots": sorted(program.signal_roots),
            "reachable": sorted(program.functions[k].qual for k in order),
        }, indent=2))
        return 0

    findings = []
    if "signal-safety" in checks:
        findings.extend(check_signal_safety(program))
    if "lock-order" in checks:
        findings.extend(check_lock_order(program, lock_order))
    if "hot-path" in checks:
        findings.extend(check_hot_path(program))
    if "wire-taint" in checks:
        findings.extend(check_wire_taint(dprogram))
    if "blocking-under-lock" in checks:
        findings.extend(check_blocking_under_lock(dprogram))
    if "cancellation" in checks:
        findings.extend(check_cancellation(dprogram, args.dispatch))
    findings.sort(key=lambda f: (f.path, f.line, f.rule, f.detail))

    # Collapse duplicates (the same site reached via several roots).
    unique = []
    seen = set()
    for finding in findings:
        k = (finding.rule, finding.path, finding.line, finding.symbol,
             finding.detail)
        if k not in seen:
            seen.add(k)
            unique.append(finding)
    findings = unique

    if args.write_baseline:
        baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
        write_baseline(baseline_path, findings)
        print("sj_analyze: wrote %d baseline entries to %s"
              % (len({f.key() for f in findings}), baseline_path))
        return 0

    baseline = {}
    if not args.no_baseline:
        baseline_path = args.baseline or os.path.join(root, DEFAULT_BASELINE)
        baseline = load_baseline(baseline_path)
    for finding in findings:
        if finding.key() in baseline:
            finding.suppressed = True

    # Stale-baseline detection: an entry for a rule whose checker ran,
    # matching no current finding, is dead weight that would silently
    # suppress a future regression at the same key — fail until the
    # entry is deleted. Entries for checkers that did not run this
    # invocation are left alone.
    if baseline:
        ran_rules = set()
        for check in checks:
            ran_rules.update(CHECK_RULES[check])
        found_keys = {f.key() for f in findings}
        rel_baseline = os.path.relpath(baseline_path, root) \
            if os.path.isabs(baseline_path) else baseline_path
        for bkey in sorted(baseline):
            if bkey[0] in ran_rules and bkey not in found_keys:
                findings.append(Finding(
                    "baseline-stale", rel_baseline.replace(os.sep, "/"), 0,
                    "baseline entry (rule=%s, symbol=%s, detail=%s) "
                    "matches no current finding — the exception was fixed "
                    "or the symbol renamed; delete the entry"
                    % bkey, bkey[1], "%s:%s" % (bkey[0], bkey[2])))

    unsuppressed = [f for f in findings if not f.suppressed]

    if args.json:
        print(json.dumps([f.to_json() for f in findings], indent=2))
    else:
        for finding in unsuppressed:
            print("%s:%d: [%s] %s"
                  % (finding.path, finding.line, finding.rule,
                     finding.message))
        suppressed_count = len(findings) - len(unsuppressed)
        print("sj_analyze (%s frontend): %d finding(s), %d suppressed "
              "by baseline, %d file(s) scanned"
              % (frontend, len(unsuppressed), suppressed_count, len(files)))

    return 1 if unsuppressed else 0


if __name__ == "__main__":
    sys.exit(main())
