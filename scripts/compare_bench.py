#!/usr/bin/env python3
"""Bench regression gate: diff fresh *.metrics.json runs against a baseline.

Every bench binary stamps a `*.metrics.json` artifact (see
bench/figure_common.h) whose numeric leaves are seeded-deterministic —
theta/Theta test counts, match counts, page reads, registry counters.
This script flattens both documents to `path -> number` maps, compares
them leaf by leaf, and exits nonzero when a tracked metric drifts past
the threshold. Machine-dependent leaves (wall clock, speedups, steal
counts, process gauges) are ignored by default.

Usage:
  # Seed (or refresh) the committed baseline from fresh artifacts:
  scripts/compare_bench.py --baseline BENCH_baseline.json --seed a.metrics.json b.metrics.json

  # Gate a fresh run against the baseline (CI):
  scripts/compare_bench.py --baseline BENCH_baseline.json a.metrics.json b.metrics.json

  # Docs-only PRs: report drift but always exit 0:
  scripts/compare_bench.py --baseline BENCH_baseline.json --warn-only ...

Exit codes: 0 clean (or --warn-only / --seed), 1 regression past
threshold or missing metric, 2 usage/IO error.
"""

import argparse
import fnmatch
import json
import sys

# Leaves that legitimately differ run-to-run or machine-to-machine.
# Everything else in the artifacts is seeded-deterministic and gated.
DEFAULT_IGNORE = [
    "*wall_ns*",
    "*speedup*",
    "*hardware_threads*",
    "*tasks_stolen*",
    "*peak_rss*",
    "*.process.*",
    "*.commit",
    "*.build_type",
    "*.build_flags",
    "*elapsed*",
    "*_seconds*",
    "*.dropped_events",
    # The service bench's admitted/rejected split is timing-dependent,
    # and that split propagates into nearly every registry counter it
    # stamps; its *invariants* (all replies accounted, bound respected,
    # rejections observed, probes returning the right codes, STATS
    # polling healthy, attribution exact, telemetry overhead bounded)
    # are booleans gated under service_load.invariants instead. The
    # "polled" phase counters (including the STATS poll count) are just
    # as timing-dependent as "load".
    "*.service_load.load.*",
    "*.service_load.polled.*",
    "bench_service_load.registry.*",
]

# Absolute latency is machine-dependent, so latency leaves are ignored
# unless --latency-rel-tol opts in — and then only the stable tail
# markers (p50/p99) and throughput are gated, at the looser tolerance;
# p90/max stay ignored (too noisy even on one machine).
LATENCY_LEAVES = [
    "*latency_ns.*",
    "*throughput_qps*",
]
LATENCY_GATED = [
    "*latency_ns.p50",
    "*latency_ns.p99",
    "*throughput_qps*",
]


def flatten(doc, prefix=""):
    """Yields (dotted_path, leaf) for every scalar leaf of a JSON doc.

    Array elements use their index unless the element is an object with a
    recognizable identity key ("strategy", "threads"+"grid", "threads"),
    in which case that identity names the path — so inserting a row in
    the middle of a sweep doesn't shift every later leaf's path.
    """
    out = {}
    if isinstance(doc, dict):
        for key, val in sorted(doc.items()):
            out.update(flatten(val, f"{prefix}.{key}" if prefix else key))
    elif isinstance(doc, list):
        for i, val in enumerate(doc):
            label = str(i)
            if isinstance(val, dict):
                if "strategy" in val:
                    label = str(val["strategy"])
                elif "threads" in val and "grid" in val:
                    label = f"t{val['threads']}g{val['grid']}"
                elif "threads" in val:
                    label = f"t{val['threads']}"
                elif "n_tuples" in val:
                    label = f"n{val['n_tuples']}"
            out.update(flatten(val, f"{prefix}[{label}]"))
    else:
        out[prefix] = doc
    return out


def is_ignored(path, patterns):
    return any(fnmatch.fnmatch(path, p) for p in patterns)


def latency_tolerance(path, args):
    """Returns (skip, rel_tol) for a leaf, folding in the latency policy.

    Latency leaves are skipped outright unless --latency-rel-tol was
    given; then p50/p99/throughput are compared at that tolerance and the
    remaining latency leaves are still skipped.
    """
    if is_ignored(path, LATENCY_LEAVES):
        if args.latency_rel_tol is not None and is_ignored(path, LATENCY_GATED):
            return False, args.latency_rel_tol
        return True, None
    return False, args.rel_tol


def compare_doc(name, base, fresh, args):
    """Returns a list of (severity, message); severity in {"FAIL", "WARN"}."""
    findings = []
    base_flat = flatten(base)
    fresh_flat = flatten(fresh)

    for path, base_val in sorted(base_flat.items()):
        full = f"{name}.{path}"
        if is_ignored(full, args.ignore):
            continue
        skip, rel_tol = latency_tolerance(full, args)
        if skip:
            continue
        if path not in fresh_flat:
            findings.append(("FAIL", f"{full}: in baseline but missing from fresh run"))
            continue
        fresh_val = fresh_flat[path]
        if isinstance(base_val, bool) or isinstance(fresh_val, bool):
            if bool(base_val) != bool(fresh_val):
                findings.append(("FAIL", f"{full}: {base_val} -> {fresh_val}"))
        elif isinstance(base_val, (int, float)) and isinstance(fresh_val, (int, float)):
            if base_val == fresh_val:
                continue
            denom = max(abs(base_val), abs(fresh_val), 1e-12)
            rel = abs(fresh_val - base_val) / denom
            if rel > rel_tol:
                findings.append(
                    ("FAIL",
                     f"{full}: {base_val} -> {fresh_val} "
                     f"(rel drift {rel:.2%}, tol {rel_tol:.2%})"))
        elif base_val != fresh_val:
            findings.append(("FAIL", f"{full}: {base_val!r} -> {fresh_val!r}"))

    for path in sorted(set(fresh_flat) - set(base_flat)):
        full = f"{name}.{path}"
        if is_ignored(full, args.ignore) or latency_tolerance(full, args)[0]:
            continue
        findings.append(
            ("WARN", f"{full}: new metric not in baseline "
                     f"(= {fresh_flat[path]!r}; re-seed to track it)"))
    return findings


def load_fresh(paths):
    docs = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        name = doc.get("bench")
        if not name:
            print(f"error: {path} has no top-level \"bench\" key", file=sys.stderr)
            sys.exit(2)
        docs[name] = doc
    return docs


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("fresh", nargs="+", metavar="METRICS_JSON",
                        help="fresh *.metrics.json artifacts to compare")
    parser.add_argument("--baseline", required=True,
                        help="committed baseline file (see --seed)")
    parser.add_argument("--seed", action="store_true",
                        help="write the baseline from the fresh artifacts and exit")
    parser.add_argument("--warn-only", action="store_true",
                        help="report drift but always exit 0 (docs-only PRs)")
    parser.add_argument("--rel-tol", type=float, default=1e-6,
                        help="relative drift tolerated per numeric leaf "
                             "(default %(default)s — counters are exact)")
    parser.add_argument("--latency-rel-tol", type=float, default=None,
                        metavar="FRAC",
                        help="gate p50/p99 latency and throughput leaves at "
                             "this relative tolerance (e.g. 0.5 = 50%%); "
                             "default: latency leaves are ignored entirely "
                             "(absolute latency is machine-dependent)")
    parser.add_argument("--ignore", action="append", default=list(DEFAULT_IGNORE),
                        metavar="GLOB",
                        help="additional path glob to ignore (repeatable)")
    args = parser.parse_args()

    try:
        fresh_docs = load_fresh(args.fresh)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: {err}", file=sys.stderr)
        return 2

    if args.seed:
        with open(args.baseline, "w") as f:
            json.dump({"benches": fresh_docs}, f, indent=1, sort_keys=True)
            f.write("\n")
        print(f"seeded {args.baseline} from {len(fresh_docs)} artifact(s): "
              + ", ".join(sorted(fresh_docs)))
        return 0

    try:
        with open(args.baseline) as f:
            baseline = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read baseline: {err}", file=sys.stderr)
        return 2
    benches = baseline.get("benches", {})

    findings = []
    compared = 0
    for name, fresh in sorted(fresh_docs.items()):
        if name not in benches:
            findings.append(("WARN", f"{name}: not in baseline (re-seed to track it)"))
            continue
        compared += 1
        findings.extend(compare_doc(name, benches[name], fresh, args))

    fails = [m for sev, m in findings if sev == "FAIL"]
    warns = [m for sev, m in findings if sev == "WARN"]
    for m in fails:
        print(f"FAIL {m}")
    for m in warns:
        print(f"warn {m}")
    print(f"compared {compared} bench(es) against {args.baseline}: "
          f"{len(fails)} regression(s), {len(warns)} warning(s)")

    if fails and not args.warn_only:
        return 1
    if fails:
        print("(--warn-only: exiting 0 despite regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
