#!/usr/bin/env bash
# Check-only formatting gate: verifies every tracked C++ file against
# .clang-format without modifying anything. Exits 0 with a notice when
# clang-format is not installed (the tool is not part of the minimal
# build environment; CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

FORMATTER="${CLANG_FORMAT:-clang-format}"
if ! command -v "$FORMATTER" >/dev/null 2>&1; then
  echo "check_format: $FORMATTER not found; skipping (install clang-format" \
       "or set CLANG_FORMAT to enable this check)"
  exit 0
fi

mapfile -t files < <(git ls-files '*.cc' '*.h' '*.cpp')
if [ "${#files[@]}" -eq 0 ]; then
  echo "check_format: no C++ files tracked"
  exit 0
fi

echo "check_format: $FORMATTER --dry-run over ${#files[@]} files"
status=0
"$FORMATTER" --dry-run -Werror "${files[@]}" || status=$?
if [ "$status" -ne 0 ]; then
  echo "check_format: FAILED — run '$FORMATTER -i <file>' on the files above"
  exit "$status"
fi
echo "check_format: OK"
