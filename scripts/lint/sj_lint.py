#!/usr/bin/env python3
"""sj_lint: repo-specific lint rules for the spatialjoin tree.

Checks the conventions that neither the compiler nor clang-tidy enforce
for us, each as a small path-scoped rule:

  raw-clock            std::chrono::*_clock::now() outside obs/timer.h.
                       All timing flows through MonotonicNowNs() so traces
                       and metrics share one clock domain.
  naked-new            `new` / `delete` expressions outside src/storage/.
                       Library code uses containers and smart pointers;
                       the storage layer owns the only raw frames.
  stdout-in-lib        std::cout / printf in src/ library code. stdout
                       belongs to the embedding tool (benches pipe JSON
                       through it); diagnostics go to the event log.
  stderr-in-lib        std::cerr / fprintf(stderr) in src/ library code.
                       Diagnostics go through SJ_EVENT so they land in
                       the flight recorder's event log (which still
                       echoes warn+ records to stderr) instead of
                       bypassing the black box.
  detail-include       including another subsystem's *_detail.h header.
                       Detail headers are private to their subsystem
                       unless listed in DETAIL_FRIENDS below.
  dcheck-side-effect   SJ_DCHECK(...) whose condition mutates state
                       (++/--/assignment). SJ_DCHECK compiles out under
                       NDEBUG, so a side effect there changes behaviour
                       between build types.
  iostream-in-lib      `#include <iostream>` in src/ library code. The
                       header drags in static stream constructors (ios
                       init) into every TU and invites cout/cerr use;
                       library code formats through <cstdio>-free event
                       logging or std::snprintf.
  metrics-in-server    direct MetricsRegistry access in src/server/
                       request paths. Service-layer counters flow through
                       ServiceTelemetry (telemetry.cc owns the registry
                       instruments) and per-query costs through
                       attribution scopes, so the STATS snapshot, flight
                       dumps, and bench artifacts can never disagree
                       about what the server did.

Suppression: append `// sj-lint: allow(<rule>)` to the offending line, or
put it alone on the line directly above. Multiple rules separate with
commas. Every suppression should carry a justification comment.

Output: human-readable `path:line: [rule] message` by default; `--json`
emits the same findings as the shared static-analysis schema
`{rule, path, line, message, suppressed}` used by sj_analyze, including
suppressed findings with `"suppressed": true`.

Exit codes: 0 = clean, 1 = findings, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import os
import re
import sys
from typing import Callable, Iterator, NamedTuple

CXX_EXTENSIONS = (".h", ".hpp", ".cc", ".cpp")

# Directories scanned relative to the repo root. Anything outside (docs,
# scripts, third-party checkouts in build/) is out of scope.
SCAN_DIRS = ("src", "bench", "tests", "examples", "tools")

# Directory names skipped anywhere in the walk. `fixtures` holds the
# intentionally-violating inputs for this linter's own tests.
SKIP_DIR_NAMES = {"build", "fixtures", ".git"}

# Cross-subsystem detail-header whitelist: include path -> subsystems
# (top-level directory under src/) allowed to include it, beyond the
# subsystem that owns the header. exec/parallel_join.cc shares the join
# kernel's refinement helpers rather than duplicating them.
DETAIL_FRIENDS = {
    "core/join_detail.h": {"core", "exec"},
}

ALLOW_RE = re.compile(r"//\s*sj-lint:\s*allow\(([^)]*)\)")


class Finding(NamedTuple):
    path: str
    line: int  # 1-based
    rule: str
    message: str


class SourceFile(NamedTuple):
    """One scanned file: raw lines plus comment/string-stripped lines.

    Rules match against `code` so identifiers in comments or string
    literals never trigger them; suppressions are read from `raw`.
    """

    rel_path: str  # repo-relative, '/'-separated
    raw: list[str]
    code: list[str]


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Blanks out comments and string/char literals, keeping geometry.

    Line-oriented scanner with carried block-comment state; enough for
    this codebase (no raw strings in scanned code, and a stray mismatch
    only costs a false negative on one line).
    """
    out = []
    in_block = False
    for line in lines:
        result = []
        i = 0
        n = len(line)
        while i < n:
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    i = n
                else:
                    in_block = False
                    i = end + 2
                continue
            ch = line[i]
            nxt = line[i + 1] if i + 1 < n else ""
            if ch == "/" and nxt == "/":
                break
            if ch == "/" and nxt == "*":
                in_block = True
                i += 2
                continue
            if ch in "\"'":
                quote = ch
                i += 1
                while i < n:
                    if line[i] == "\\":
                        i += 2
                        continue
                    if line[i] == quote:
                        i += 1
                        break
                    i += 1
                result.append(quote + quote)
                continue
            result.append(ch)
            i += 1
        out.append("".join(result))
    return out


def allowed_rules(raw: list[str], lineno: int) -> set[str]:
    """Rules suppressed at 1-based `lineno`: same line or the line above."""
    rules: set[str] = set()
    for idx in (lineno - 1, lineno - 2):
        if 0 <= idx < len(raw):
            m = ALLOW_RE.search(raw[idx])
            if m:
                rules.update(r.strip() for r in m.group(1).split(","))
    return rules


# ---------------------------------------------------------------------------
# Rules. Each takes a SourceFile and yields Findings (pre-suppression).
# ---------------------------------------------------------------------------

RAW_CLOCK_RE = re.compile(r"std::chrono::\w*_clock::now")


def check_raw_clock(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/"):
        return
    if f.rel_path == "src/obs/timer.h":
        return
    for i, line in enumerate(f.code, start=1):
        if RAW_CLOCK_RE.search(line):
            yield Finding(
                f.rel_path, i, "raw-clock",
                "raw std::chrono clock; use MonotonicNowNs() from "
                "obs/timer.h so all timings share one clock domain")


NEW_RE = re.compile(r"\bnew\b")
DELETE_RE = re.compile(r"\bdelete\b")
# `= delete;` declarations and `delete`d special members are language
# syntax, not deallocation.
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def check_naked_new(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/"):
        return
    if f.rel_path.startswith("src/storage/"):
        return
    for i, line in enumerate(f.code, start=1):
        scrubbed = DELETED_FN_RE.sub("", line)
        if NEW_RE.search(scrubbed) or DELETE_RE.search(scrubbed):
            yield Finding(
                f.rel_path, i, "naked-new",
                "raw new/delete outside src/storage/; use containers or "
                "std::make_unique")


STDOUT_RE = re.compile(r"std::cout|(?<![\w])printf\s*\(")


def check_stdout_in_lib(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/"):
        return
    for i, line in enumerate(f.code, start=1):
        if STDOUT_RE.search(line):
            yield Finding(
                f.rel_path, i, "stdout-in-lib",
                "stdout write in library code; stdout belongs to the "
                "embedding tool — record through SJ_EVENT instead")


STDERR_RE = re.compile(r"std::cerr|(?<![\w])fprintf\s*\(\s*stderr\b")


def check_stderr_in_lib(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/"):
        return
    for i, line in enumerate(f.code, start=1):
        if STDERR_RE.search(line):
            yield Finding(
                f.rel_path, i, "stderr-in-lib",
                "direct stderr write in library code; record through "
                "SJ_EVENT (obs/event_log.h) so the message lands in the "
                "flight recorder — warn+ events still echo to stderr")


DETAIL_INCLUDE_RE = re.compile(r'#\s*include\s+"([\w./-]*_detail\.h)"')


def file_subsystem(rel_path: str) -> str:
    """The subsystem a file belongs to: src/<sub>/... -> <sub>; files in
    bench/tests/examples belong to no subsystem (empty string)."""
    parts = rel_path.split("/")
    if parts[0] == "src" and len(parts) > 2:
        return parts[1]
    return ""


def check_detail_include(f: SourceFile) -> Iterator[Finding]:
    sub = file_subsystem(f.rel_path)
    for i, line in enumerate(f.raw, start=1):
        m = DETAIL_INCLUDE_RE.search(line)
        if not m:
            continue
        include = m.group(1)
        owner = include.split("/")[0] if "/" in include else sub
        if sub == owner:
            continue
        if sub and sub in DETAIL_FRIENDS.get(include, set()):
            continue
        yield Finding(
            f.rel_path, i, "detail-include",
            f'"{include}" is private to {owner}/; include the public '
            "header, or add a DETAIL_FRIENDS entry with justification")


DCHECK_RE = re.compile(r"\bSJ_DCHECK\w*\s*\(")
SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%&|^])=(?![=])")


def check_dcheck_side_effect(f: SourceFile) -> Iterator[Finding]:
    # check.h defines the macros; their expansions are not uses.
    if f.rel_path == "src/common/check.h":
        return
    for i, line in enumerate(f.code, start=1):
        m = DCHECK_RE.search(line)
        if not m:
            continue
        # Extract the parenthesised condition (single-line conditions
        # only; multi-line SJ_DCHECKs are rare and caught by review).
        depth = 0
        start = m.end() - 1
        cond = None
        for j in range(start, len(line)):
            if line[j] == "(":
                depth += 1
            elif line[j] == ")":
                depth -= 1
                if depth == 0:
                    cond = line[start + 1:j]
                    break
        if cond is None:
            cond = line[start + 1:]
        if SIDE_EFFECT_RE.search(cond):
            yield Finding(
                f.rel_path, i, "dcheck-side-effect",
                "SJ_DCHECK condition has a side effect (++/--/=); the "
                "macro compiles out under NDEBUG, so behaviour would "
                "differ between build types")


IOSTREAM_INCLUDE_RE = re.compile(r"#\s*include\s*<iostream>")


def check_iostream_in_lib(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/"):
        return
    for i, line in enumerate(f.code, start=1):
        if IOSTREAM_INCLUDE_RE.search(line):
            yield Finding(
                f.rel_path, i, "iostream-in-lib",
                "<iostream> in library code; it injects static stream "
                "constructors into every TU and invites cout/cerr — "
                "format with std::snprintf or record through SJ_EVENT")


METRICS_ACCESS_RE = re.compile(
    r"MetricsRegistry\s*::|\bGetCounter\s*\(|\bGetGauge\s*\(|"
    r"\bGetHistogram\s*\(")


def check_metrics_in_server(f: SourceFile) -> Iterator[Finding]:
    if not f.rel_path.startswith("src/server/"):
        return
    # telemetry.cc is the one sanctioned owner of the service layer's
    # registry instruments.
    if f.rel_path == "src/server/telemetry.cc":
        return
    for i, line in enumerate(f.code, start=1):
        if METRICS_ACCESS_RE.search(line):
            yield Finding(
                f.rel_path, i, "metrics-in-server",
                "direct MetricsRegistry access in the server layer; "
                "route counters through ServiceTelemetry::On* and "
                "per-query costs through attribution scopes so STATS, "
                "flight dumps, and bench artifacts stay consistent")


RULES: dict[str, Callable[[SourceFile], Iterator[Finding]]] = {
    "raw-clock": check_raw_clock,
    "naked-new": check_naked_new,
    "stdout-in-lib": check_stdout_in_lib,
    "stderr-in-lib": check_stderr_in_lib,
    "detail-include": check_detail_include,
    "dcheck-side-effect": check_dcheck_side_effect,
    "iostream-in-lib": check_iostream_in_lib,
    "metrics-in-server": check_metrics_in_server,
}


# ---------------------------------------------------------------------------
# Driver.
# ---------------------------------------------------------------------------

def iter_files(root: str, paths: list[str]) -> Iterator[str]:
    """Yields repo-relative paths of the C++ files to scan."""
    if paths:
        for p in paths:
            abs_p = p if os.path.isabs(p) else os.path.join(root, p)
            if os.path.isfile(abs_p):
                yield os.path.relpath(abs_p, root).replace(os.sep, "/")
            elif os.path.isdir(abs_p):
                yield from _walk(root, abs_p)
            else:
                raise FileNotFoundError(p)
        return
    for d in SCAN_DIRS:
        top = os.path.join(root, d)
        if os.path.isdir(top):
            yield from _walk(root, top)


def _walk(root: str, top: str) -> Iterator[str]:
    for dirpath, dirnames, filenames in os.walk(top):
        dirnames[:] = sorted(
            d for d in dirnames if d not in SKIP_DIR_NAMES)
        for name in sorted(filenames):
            if name.endswith(CXX_EXTENSIONS):
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                yield rel.replace(os.sep, "/")


def lint_file(root: str, rel_path: str,
              rules: dict[str, Callable],
              include_suppressed: bool = False):
    """Lints one file. Returns the unsuppressed Findings, or — with
    include_suppressed — (Finding, suppressed) pairs for every match so
    callers (the --json output) can surface allow()-ed findings too."""
    with open(os.path.join(root, rel_path), encoding="utf-8") as fp:
        raw = fp.read().splitlines()
    f = SourceFile(rel_path, raw, strip_comments_and_strings(raw))
    results = []
    for check in rules.values():
        for finding in check(f):
            suppressed = finding.rule in allowed_rules(f.raw, finding.line)
            if include_suppressed:
                results.append((finding, suppressed))
            elif not suppressed:
                results.append(finding)
    return results


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="sj_lint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this "
                             "script)")
    parser.add_argument("--rule", action="append", default=None,
                        metavar="RULE",
                        help="run only this rule (repeatable)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("--json", action="store_true",
                        help="emit findings as JSON in the shared "
                             "{rule, path, line, message, suppressed} "
                             "schema (suppressed findings included)")
    parser.add_argument("paths", nargs="*",
                        help="files or directories to scan (default: "
                             f"{', '.join(SCAN_DIRS)} under the root)")
    args = parser.parse_args(argv)

    if args.list_rules:
        for name in RULES:
            print(name)
        return 0

    root = args.root or os.path.dirname(
        os.path.dirname(os.path.dirname(os.path.abspath(__file__))))

    rules = RULES
    if args.rule:
        unknown = [r for r in args.rule if r not in RULES]
        if unknown:
            print(f"sj_lint: unknown rule(s): {', '.join(unknown)} "
                  f"(see --list-rules)", file=sys.stderr)
            return 2
        rules = {name: RULES[name] for name in args.rule}

    try:
        files = list(iter_files(root, args.paths))
    except FileNotFoundError as e:
        print(f"sj_lint: no such file or directory: {e}", file=sys.stderr)
        return 2

    if args.json:
        pairs: list[tuple[Finding, bool]] = []
        for rel_path in files:
            pairs.extend(lint_file(root, rel_path, rules,
                                   include_suppressed=True))
        pairs.sort(key=lambda p: p[0])
        print(json.dumps(
            [{"rule": f.rule, "path": f.path, "line": f.line,
              "message": f.message, "suppressed": suppressed}
             for f, suppressed in pairs],
            indent=2))
        return 1 if any(not s for _, s in pairs) else 0

    findings: list[Finding] = []
    for rel_path in files:
        findings.extend(lint_file(root, rel_path, rules))

    for f in sorted(findings):
        print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
    if findings:
        print(f"sj_lint: {len(findings)} finding(s) in "
              f"{len(files)} file(s)", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
