#!/usr/bin/env bash
# Runs clang-tidy (profile: .clang-tidy) over every first-party
# translation unit using the compile database of an existing build.
#
#   scripts/run_clang_tidy.sh [build-dir]
#
# The root CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS, so any
# configured build dir already has the database — the same one
# scripts/analysis/sj_analyze.py's libclang frontend consumes via
# --compdb. Exits 0 with a notice when
# clang-tidy is not installed (not part of the minimal build
# environment; CI installs it).
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR="${1:-build}"
TIDY="${CLANG_TIDY:-clang-tidy}"

if ! command -v "$TIDY" >/dev/null 2>&1; then
  echo "run_clang_tidy: $TIDY not found; skipping (install clang-tidy or" \
       "set CLANG_TIDY to enable this check)"
  exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
  echo "run_clang_tidy: $BUILD_DIR/compile_commands.json missing —" \
       "run cmake -B $BUILD_DIR -S . first (the root CMakeLists" \
       "exports the database on every configure)" >&2
  exit 1
fi

mapfile -t files < <(git ls-files 'src/*.cc' 'bench/*.cc' 'examples/*.cpp')
echo "run_clang_tidy: $TIDY over ${#files[@]} files (build dir $BUILD_DIR)"

# run-clang-tidy parallelizes when available; fall back to a serial loop.
if command -v run-clang-tidy >/dev/null 2>&1; then
  run-clang-tidy -clang-tidy-binary "$TIDY" -p "$BUILD_DIR" -quiet \
    "${files[@]/#/^}" > /tmp/clang_tidy_out.txt 2>&1 || {
    grep -E "warning:|error:" /tmp/clang_tidy_out.txt || true
    echo "run_clang_tidy: FAILED"
    exit 1
  }
else
  status=0
  for f in "${files[@]}"; do
    "$TIDY" -p "$BUILD_DIR" --quiet "$f" || status=1
  done
  if [ "$status" -ne 0 ]; then
    echo "run_clang_tidy: FAILED"
    exit 1
  fi
fi
echo "run_clang_tidy: OK"
