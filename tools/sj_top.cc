// sj_top — live telemetry viewer for a running sj_server.
//
// Connects to the service socket, polls the STATS message, and renders a
// one-screen summary: throughput (completed-query deltas between polls),
// windowed p50/p99 latency, in-flight/admission counters, and the
// slow-query rings retained by ServiceTelemetry. STATS is answered
// inline by the session reader thread, bypassing admission, so this
// works exactly when the server is saturated and sj_top matters most.
//
//   sj_top [--socket=PATH] [--interval-ms=N] [--once] [--snapshot=FILE]
//
//   --once           print a single frame and exit (CI smoke mode)
//   --snapshot=FILE  also write the raw STATS JSON of the last poll
//
// The reply schema is produced by ServiceTelemetry::WriteStatsJson; the
// embedded parser below is deliberately tolerant — unknown keys are
// ignored and absent ones render as zero — so sj_top from one build can
// usually read a slightly newer server.

#include <signal.h>
#include <unistd.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "obs/timer.h"
#include "server/client.h"

using namespace spatialjoin;

namespace {

std::atomic<bool> g_stop{false};

void HandleSignal(int) { g_stop.store(true, std::memory_order_relaxed); }

const char* StringFlag(int argc, char** argv, const char* name) {
  const size_t len = std::strlen(name);
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
      return argv[i] + len + 1;
    }
  }
  return nullptr;
}

int64_t IntFlag(int argc, char** argv, const char* name, int64_t fallback) {
  const char* value = StringFlag(argc, argv, name);
  return value ? std::atoll(value) : fallback;
}

bool BoolFlag(int argc, char** argv, const char* name) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], name) == 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Minimal JSON document model (same shape as sj_inspect's; trimmed to
// what reading a STATS reply needs).
// ---------------------------------------------------------------------------

struct Json {
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<Json> array;
  std::vector<std::pair<std::string, Json>> object;

  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  const Json* Get(std::string_view key) const {
    if (!is_object()) return nullptr;
    for (const auto& [k, v] : object) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  // Tolerant dotted-path lookups: absent anywhere along the path reads
  // as the fallback, so a frame renders even if the server is newer or
  // older than this binary.
  int64_t Int(std::string_view path, int64_t fallback = 0) const {
    const Json* node = Walk(path);
    if (node == nullptr || node->type != Type::kNumber) return fallback;
    return static_cast<int64_t>(node->number);
  }

  double Num(std::string_view path, double fallback = 0.0) const {
    const Json* node = Walk(path);
    if (node == nullptr || node->type != Type::kNumber) return fallback;
    return node->number;
  }

  std::string Str(std::string_view path, std::string fallback = "?") const {
    const Json* node = Walk(path);
    if (node == nullptr || node->type != Type::kString) return fallback;
    return node->string;
  }

 private:
  const Json* Walk(std::string_view path) const {
    const Json* node = this;
    while (!path.empty()) {
      const size_t dot = path.find('.');
      const std::string_view key =
          dot == std::string_view::npos ? path : path.substr(0, dot);
      node = node->Get(key);
      if (node == nullptr) return nullptr;
      path = dot == std::string_view::npos ? std::string_view()
                                           : path.substr(dot + 1);
    }
    return node;
  }
};

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  bool Parse(Json* out) {
    SkipWs();
    if (!Value(out, 0)) return false;
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  static constexpr int kMaxDepth = 32;

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  bool Value(Json* out, int depth) {
    if (depth > kMaxDepth || pos_ >= text_.size()) return false;
    switch (text_[pos_]) {
      case '{':
        return Object(out, depth);
      case '[':
        return Array(out, depth);
      case '"':
        out->type = Json::Type::kString;
        return String(&out->string);
      case 't':
        out->type = Json::Type::kBool;
        out->boolean = true;
        return Literal("true");
      case 'f':
        out->type = Json::Type::kBool;
        out->boolean = false;
        return Literal("false");
      case 'n':
        out->type = Json::Type::kNull;
        return Literal("null");
      default:
        return Number(out);
    }
  }

  bool Object(Json* out, int depth) {
    out->type = Json::Type::kObject;
    if (!Eat('{')) return false;
    SkipWs();
    if (Eat('}')) return true;
    while (true) {
      SkipWs();
      std::string key;
      if (!String(&key)) return false;
      SkipWs();
      if (!Eat(':')) return false;
      SkipWs();
      Json value;
      if (!Value(&value, depth + 1)) return false;
      out->object.emplace_back(std::move(key), std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      return Eat('}');
    }
  }

  bool Array(Json* out, int depth) {
    out->type = Json::Type::kArray;
    if (!Eat('[')) return false;
    SkipWs();
    if (Eat(']')) return true;
    while (true) {
      SkipWs();
      Json value;
      if (!Value(&value, depth + 1)) return false;
      out->array.push_back(std::move(value));
      SkipWs();
      if (Eat(',')) continue;
      return Eat(']');
    }
  }

  bool String(std::string* out) {
    if (!Eat('"')) return false;
    out->clear();
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return false;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'n': out->push_back('\n'); break;
        case 't': out->push_back('\t'); break;
        case 'r': out->push_back('\r'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'u':
          // STATS strings are ASCII identifiers; a \u escape is decoded
          // lossily to '?' rather than rejected.
          if (text_.size() - pos_ < 4) return false;
          pos_ += 4;
          out->push_back('?');
          break;
        default:
          return false;
      }
    }
    return false;
  }

  bool Number(Json* out) {
    const size_t start = pos_;
    if (Eat('-')) {}
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return false;
    out->type = Json::Type::kNumber;
    out->number = std::atof(std::string(text_.substr(start, pos_ - start)).c_str());
    return true;
  }

  std::string_view text_;
  size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

std::string FmtDuration(int64_t ns) {
  char buf[32];
  if (ns < 0) ns = 0;
  if (ns < 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fus", static_cast<double>(ns) / 1e3);
  } else if (ns < 10'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.1fms", static_cast<double>(ns) / 1e6);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1fs", static_cast<double>(ns) / 1e9);
  }
  return buf;
}

void RenderSlowRing(const Json& stats, const char* key, const char* title) {
  const Json* ring = stats.Get(key);
  if (ring == nullptr || !ring->is_array() || ring->array.empty()) return;
  std::printf("\n%s\n", title);
  std::printf("  %4s %6s %-6s %-22s %-9s %9s %8s %10s %9s\n", "sess", "req",
              "kind", "strategy", "outcome", "wall", "reads", "pairs",
              "residual");
  for (const Json& rec : ring->array) {
    std::printf("  %4lld %6llu %-6s %-22s %-9s %9s %8lld %10lld %9.3f\n",
                static_cast<long long>(rec.Int("session")),
                static_cast<unsigned long long>(rec.Int("request_id")),
                rec.Str("kind").c_str(), rec.Str("strategy").c_str(),
                rec.Str("outcome").c_str(),
                FmtDuration(rec.Int("wall_ns")).c_str(),
                static_cast<long long>(rec.Int("pages_read")),
                static_cast<long long>(rec.Int("pairs_examined")),
                rec.Num("residual"));
  }
}

struct PollDelta {
  bool have_prev = false;
  int64_t prev_completed = 0;
  int64_t prev_ns = 0;
};

void RenderFrame(const Json& stats, const std::string& socket_path,
                 int64_t now_ns, PollDelta* delta, bool clear_screen) {
  if (clear_screen) std::fputs("\x1b[H\x1b[2J", stdout);

  const int64_t completed = stats.Int("scheduler.completed");
  double qps = -1.0;
  if (delta->have_prev && now_ns > delta->prev_ns) {
    qps = static_cast<double>(completed - delta->prev_completed) * 1e9 /
          static_cast<double>(now_ns - delta->prev_ns);
  }
  delta->have_prev = true;
  delta->prev_completed = completed;
  delta->prev_ns = now_ns;

  std::printf("sj_top — %s\n", socket_path.c_str());
  std::printf(
      "scheduler   inflight %lld/%lld (peak %lld)   admitted %lld   "
      "rejected %lld   completed %lld\n",
      static_cast<long long>(stats.Int("scheduler.inflight")),
      static_cast<long long>(stats.Int("scheduler.max_inflight")),
      static_cast<long long>(stats.Int("scheduler.peak_inflight")),
      static_cast<long long>(stats.Int("scheduler.admitted")),
      static_cast<long long>(stats.Int("scheduler.rejected")),
      static_cast<long long>(completed));

  if (qps >= 0.0) {
    std::printf("throughput  %.1f q/s\n", qps);
  } else {
    std::printf("throughput  (first poll)\n");
  }

  std::printf(
      "latency     last %s: %lld queries   p50 %s   p90 %s   p99 %s   "
      "mean %s\n",
      FmtDuration(stats.Int("latency.window_ns")).c_str(),
      static_cast<long long>(stats.Int("latency.count")),
      FmtDuration(stats.Int("latency.p50_ns")).c_str(),
      FmtDuration(stats.Int("latency.p90_ns")).c_str(),
      FmtDuration(stats.Int("latency.p99_ns")).c_str(),
      FmtDuration(stats.Int("latency.mean_ns")).c_str());
  std::printf("queue wait  p50 %s   p99 %s\n",
              FmtDuration(stats.Int("queue_wait.p50_ns")).c_str(),
              FmtDuration(stats.Int("queue_wait.p99_ns")).c_str());
  std::printf(
      "queries     ok %lld   stopped %lld   oversized %lld   "
      "cancel-requested %lld\n",
      static_cast<long long>(stats.Int("queries.ok")),
      static_cast<long long>(stats.Int("queries.stopped")),
      static_cast<long long>(stats.Int("queries.oversized")),
      static_cast<long long>(stats.Int("queries.cancel_requested")));
  std::printf(
      "sessions    open %lld (opened %lld)   protocol errors %lld   "
      "write failures %lld\n",
      static_cast<long long>(stats.Int("sessions.open")),
      static_cast<long long>(stats.Int("sessions.opened")),
      static_cast<long long>(stats.Int("sessions.protocol_errors")),
      static_cast<long long>(stats.Int("sessions.write_failures")));
  std::printf("pool        workers %lld   submitted %lld   stolen %lld   "
              "queued %lld\n",
              static_cast<long long>(stats.Int("pool.workers")),
              static_cast<long long>(stats.Int("pool.tasks_submitted")),
              static_cast<long long>(stats.Int("pool.tasks_stolen")),
              static_cast<long long>(stats.Int("pool.tasks_queued")));

  RenderSlowRing(stats, "slow_by_latency", "slowest queries (last 60s)");
  RenderSlowRing(stats, "slow_by_residual",
                 "worst cost-model residuals (last 60s)");
  std::fflush(stdout);
}

}  // namespace

int main(int argc, char** argv) {
  const char* socket_flag = StringFlag(argc, argv, "--socket");
  if (socket_flag == nullptr) {
    // The server's default socket path embeds its pid, so there is no
    // sensible default here — the flag is mandatory.
    std::fprintf(stderr,
                 "usage: sj_top --socket=PATH [--interval-ms=N] [--once] "
                 "[--snapshot=FILE]\n");
    return 2;
  }
  const std::string socket_path = socket_flag;
  const int64_t interval_ms = IntFlag(argc, argv, "--interval-ms", 1000);
  const bool once = BoolFlag(argc, argv, "--once");
  const char* snapshot_path = StringFlag(argc, argv, "--snapshot");

  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = HandleSignal;
  sigaction(SIGINT, &action, nullptr);
  sigaction(SIGTERM, &action, nullptr);

  auto client = server::ServiceClient::Connect(socket_path);
  if (!client.ok()) {
    std::fprintf(stderr, "sj_top: %s\n", client.status().message().c_str());
    return 1;
  }

  // Only repaint in place when driving a live terminal; piped output
  // (CI logs) gets plain appended frames.
  const bool clear_screen = !once && ::isatty(STDOUT_FILENO) != 0;

  PollDelta delta;
  while (!g_stop.load(std::memory_order_relaxed)) {
    Result<std::string> reply = client.value()->Stats();
    if (!reply.ok()) {
      std::fprintf(stderr, "sj_top: STATS failed: %s\n",
                   reply.status().message().c_str());
      return 1;
    }
    Json stats;
    if (!Parser(reply.value()).Parse(&stats) || !stats.is_object()) {
      std::fprintf(stderr, "sj_top: malformed STATS reply (%zu bytes)\n",
                   reply.value().size());
      return 1;
    }
    RenderFrame(stats, socket_path, MonotonicNowNs(), &delta, clear_screen);
    if (snapshot_path != nullptr) {
      std::ofstream out(snapshot_path, std::ios::trunc);
      out << reply.value() << "\n";
      if (!out) {
        std::fprintf(stderr, "sj_top: cannot write snapshot %s\n",
                     snapshot_path);
        return 1;
      }
    }
    if (once) break;
    // Sleep in small slices so SIGINT exits promptly.
    int64_t remaining_ms = interval_ms > 0 ? interval_ms : 1;
    while (remaining_ms > 0 && !g_stop.load(std::memory_order_relaxed)) {
      const int64_t slice = remaining_ms < 50 ? remaining_ms : 50;
      std::this_thread::sleep_for(std::chrono::milliseconds(slice));
      remaining_ms -= slice;
    }
  }
  return 0;
}
